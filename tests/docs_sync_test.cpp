// Documentation that cannot drift: docs/METRICS.md is a machine-checked
// contract. This test instantiates every instrumented subsystem (which
// links their translation units, so every namespace-scope metric handle
// registers), snapshots the default registry, and diffs the registered
// names against the tables in docs/METRICS.md — in BOTH directions. A
// metric added without a doc row fails; a doc row whose metric was
// removed or renamed fails.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cache/answer_cache.h"
#include "cache/proximity_cache.h"
#include "cache/reuse_router.h"
#include "cache/tiered_cache.h"
#include "cluster/router.h"
#include "common/rng.h"
#include "embed/hash_embedder.h"
#include "index/flat_index.h"
#include "index/mutable_index.h"
#include "index/sharded_index.h"
#include "net/admin.h"
#include "net/server.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "rag/batching_driver.h"
#include "rag/concurrent_driver.h"
#include "rag/pipeline.h"
#include "rag/retriever.h"
#include "tenant/tenant_registry.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

constexpr std::size_t kDim = 8;

/// A documented metric: name plus its documented type column.
using MetricTable = std::map<std::string, std::string>;

/// Parses the tables of docs/METRICS.md: rows are
/// `| \`name\` | counter|gauge|histogram | ... |`.
MetricTable ParseMetricsDoc(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  MetricTable table;
  const std::regex row(R"(^\|\s*`([^`]+)`\s*\|\s*(\w+)\s*\|)");
  std::string line;
  while (std::getline(in, line)) {
    std::smatch m;
    if (!std::regex_search(line, m, row)) continue;
    const std::string type = m[2];
    if (type != "counter" && type != "gauge" && type != "histogram") {
      continue;  // header or separator row
    }
    EXPECT_TRUE(table.emplace(m[1], type).second)
        << "duplicate row for " << m[1];
  }
  return table;
}

/// Collapses per-tenant families onto the documented placeholder:
/// `tenant.search.hits` -> `tenant.<tenant>.hits`. `tenant.registered`
/// has no second dot and passes through unchanged. Per-shard-group
/// router families collapse the same way: `cluster.backend.0.inflight`
/// -> `cluster.backend.<backend>.inflight`.
std::string Normalize(const std::string& name) {
  static const std::regex tenant(R"(^tenant\.([^.]+)\.(.+)$)");
  static const std::regex backend(R"(^cluster\.backend\.([^.]+)\.(.+)$)");
  const std::string collapsed =
      std::regex_replace(name, tenant, "tenant.<tenant>.$2");
  return std::regex_replace(collapsed, backend, "cluster.backend.<backend>.$2");
}

/// Touches every instrumented subsystem so each translation unit with
/// namespace-scope metric handles is linked into this binary, and the
/// runtime-registered families (per-tenant) actually register.
void InstantiateTheStack() {
  Rng rng(5);
  std::vector<float> vec(kDim);
  for (auto& x : vec) x = static_cast<float>(rng.Gaussian(0, 1));

  // cache.* — and via ShardedIndex, shard.*.
  FlatIndex index(kDim);
  index.Add(vec);
  ProximityCache cache(kDim, {});
  cache.Insert(vec, {1});
  (void)cache.Lookup(vec);

  // cache.stale_* — a stale hit under the default serve-stale policy.
  cache.set_generation(1);
  (void)cache.Lookup(vec);

  // index.* — one full live-corpus mutation cycle (DESIGN.md §13).
  MutableGraphIndex mutable_index(kDim, {});
  const VectorId mid = mutable_index.Insert(vec);
  (void)mutable_index.Delete(mid);
  (void)mutable_index.Consolidate();

  // tcache.*
  TieredCache tiered(kDim, {});
  (void)tiered.Lookup(vec);

  // acache.* — the answer tier (DESIGN.md §15): a miss, an insert, a
  // fresh hit, and a stale hit after a generation stamp.
  AnswerCache acache(kDim, {});
  (void)acache.Lookup(vec);
  CachedAnswer cached_answer;
  cached_answer.source_docs = {1};
  cached_answer.source_distances = {0.0f};
  acache.Insert(vec, cached_answer);
  (void)acache.Lookup(vec);
  acache.set_generation(1);
  (void)acache.Lookup(vec);

  // router.* — one grounded serve and one stale-forced regenerate.
  ReuseRouter reuse_router;
  const std::vector<VectorId> evidence{1};
  const std::vector<float> evidence_dists{0.0f};
  (void)reuse_router.Route(false, evidence, evidence_dists, evidence,
                           evidence_dists);
  (void)reuse_router.Route(true, evidence, evidence_dists, evidence,
                           evidence_dists);

  // overlap.* — the pipeline TU's draft-accounting handles (odr-used
  // via the member pointer, same idiom as RunStreamConcurrent below).
  volatile auto overlap_touch = &RagPipeline::RunStream;
  (void)overlap_touch;

  // retriever.* / retrieve.*
  Retriever retriever(&index, &cache, nullptr, {});
  (void)retriever.Retrieve(vec);

  // driver.* (RunStreamConcurrent's TU; odr-used, not run — the
  // volatile store keeps the discarded address from being elided,
  // which would drop the relocation and skip the archive member).
  volatile auto drive = static_cast<ConcurrentRunResult (*)(
      const Workload&, const VectorIndex&, ConcurrentProximityCache&,
      const AnswerModel&, std::uint64_t, const std::vector<StreamEntry>&,
      const Matrix&, std::size_t, std::size_t)>(&RunStreamConcurrent);
  (void)drive;

  // shard.*
  std::vector<std::unique_ptr<VectorIndex>> shards;
  auto shard = std::make_unique<FlatIndex>(kDim);
  shard->Add(vec);
  shards.push_back(std::move(shard));
  ShardedIndex sharded(std::move(shards), {{0}});
  (void)sharded.Search(vec, 1);

  // tenant.* — enough tenants to cross the cardinality cap, so the
  // shared `tenant.other.*` family registers too; ccache.* rides along
  // (every tenant cache is a ConcurrentProximityCache).
  TenantRegistryOptions topts;
  topts.max_obs_tenants = 2;
  TenantRegistry registry(kDim, topts);
  for (TenantId id = 1; id <= 3; ++id) {
    TenantSpec spec;
    spec.id = id;
    if (id == 1) spec.name = "search";
    registry.Register(spec);
    registry.Record(id, {});
  }
  (void)registry.CacheFor(kDefaultTenant).Lookup(vec);

  // serve.* (+ net.* via the server TU's handles).
  BatchingDriverOptions dopts;
  dopts.max_batch = 4;
  dopts.top_k = 1;
  BatchingDriver driver(index, registry, nullptr, dopts);
  (void)driver.Query(vec);
  driver.Shutdown();
  volatile auto drain =
      static_cast<void (*)(net::Server*)>(&net::InstallSignalDrain);
  (void)drain;

  // cluster.* — constructing a Router links the router TU (its
  // namespace-scope handles register) and mints the per-group inflight
  // gauge; no sockets are opened until Start().
  {
    const cluster::Router router(
        cluster::ShardMap::Parse("shard 0 rpc=127.0.0.1:1\n"));
    (void)router.stats();
  }

  // trace.* — emit one span into the rings and complete the trace
  // through the tail sampler so its counters/gauge register.
  {
    const obs::TraceContext ctx{obs::NewTraceId(), obs::NewSpanId()};
    obs::EmitTraceSpan({ctx.trace_id, obs::NewSpanId(), ctx.span_id,
                        obs::TraceOp::kRequest, 0, 1, 2});
    (void)obs::TraceCollector::Default().Complete(ctx, RequestStatus::kOk,
                                                  1000);
  }

  // admin.* — route one hit and one 404 through the introspection plane
  // (no sockets needed; Handle() is the whole routed surface).
  {
    const net::AdminServer admin;
    (void)admin.Handle("/healthz");
    (void)admin.Handle("/no-such-endpoint");
  }

  // run.*
  obs::PublishRunGauges(obs::RunReport{});
}

TEST(DocsSyncTest, MetricsDocMatchesRegistryExactly) {
#if !PROXIMITY_OBS_ENABLED
  GTEST_SKIP() << "metrics are compiled out under PROXIMITY_OBS=OFF";
#else
  InstantiateTheStack();

  const MetricTable documented =
      ParseMetricsDoc(std::string(PROXIMITY_DOCS_DIR) + "/METRICS.md");
  ASSERT_FALSE(documented.empty()) << "no metric rows parsed";

  MetricTable registered;
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::Default().Snapshot();
  for (const auto& c : snap.counters) {
    registered.emplace(Normalize(c.name), "counter");
  }
  for (const auto& g : snap.gauges) {
    registered.emplace(Normalize(g.name), "gauge");
  }
  for (const auto& h : snap.histograms) {
    registered.emplace(Normalize(h.name), "histogram");
  }

  for (const auto& [name, type] : registered) {
    const auto it = documented.find(name);
    if (it == documented.end()) {
      ADD_FAILURE() << "metric `" << name << "` (" << type
                    << ") is registered but missing from "
                       "docs/METRICS.md — add a table row for it";
    } else {
      EXPECT_EQ(it->second, type)
          << "docs/METRICS.md documents `" << name << "` as "
          << it->second << " but it registers as a " << type;
    }
  }
  for (const auto& [name, type] : documented) {
    if (!registered.count(name)) {
      ADD_FAILURE() << "docs/METRICS.md documents `" << name << "` ("
                    << type
                    << ") but nothing registers it — the metric was "
                       "removed or renamed; update the doc";
    }
  }
#endif
}

// The doc promises fixed registry capacities stay comfortably above the
// registered population; a silent kInvalidMetric overflow would make
// new metrics vanish without failing the sync above.
TEST(DocsSyncTest, RegistryCapacityHasHeadroom) {
#if !PROXIMITY_OBS_ENABLED
  GTEST_SKIP() << "metrics are compiled out under PROXIMITY_OBS=OFF";
#else
  InstantiateTheStack();
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::Default().Snapshot();
  EXPECT_LT(snap.counters.size(), obs::MetricsRegistry::kMaxCounters);
  EXPECT_LT(snap.gauges.size(), obs::MetricsRegistry::kMaxGauges);
  EXPECT_LT(snap.histograms.size(), obs::MetricsRegistry::kMaxHistograms);
#endif
}

// The RunReport stage table is the other half of the coverage audit:
// every histogram family with samples must surface as a row, so a new
// timing metric cannot silently miss the per-run report.
TEST(DocsSyncTest, StageTableCoversEveryPopulatedHistogram) {
#if !PROXIMITY_OBS_ENABLED
  GTEST_SKIP() << "metrics are compiled out under PROXIMITY_OBS=OFF";
#else
  InstantiateTheStack();
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::Default().Snapshot();

  std::set<std::string> rows;
  for (const auto& row : obs::StageBreakdown(snap)) {
    EXPECT_TRUE(rows.insert(row.name).second)
        << "duplicate stage row `" << row.name << "`";
  }
  std::size_t populated = 0;
  for (const auto& h : snap.histograms) {
    if (h.histogram.count() == 0) continue;
    ++populated;
  }
  // Every populated histogram produced exactly one row (stage.* rows
  // are renamed to their stage; everything else keeps its family name
  // minus a trailing `_ns`), so the counts must line up.
  EXPECT_EQ(rows.size(), populated)
      << "StageBreakdown dropped or duplicated a histogram family — "
         "new timing metrics must appear in the run report";
  ASSERT_FALSE(rows.empty());
  const std::string table = obs::RenderStageTable(snap);
  for (const auto& name : rows) {
    EXPECT_NE(table.find(name), std::string::npos)
        << "rendered table is missing row `" << name << "`";
  }
#endif
}

}  // namespace
}  // namespace proximity
