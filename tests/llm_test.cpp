// Unit tests for src/llm: prompt assembly, context judgment, and the
// calibrated answer model.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "llm/answer_model.h"
#include "llm/prompt.h"
#include "workload/corpus.h"

namespace proximity {
namespace {

// Minimal workload fixture: 2 questions, 2 golds each, 2 distractors.
Workload TinyWorkload() {
  Workload w;
  w.passages = {"gold q0 a", "gold q0 b", "gold q1 a",
                "gold q1 b", "distractor", "background"};
  w.gold_for = {0, 0, 1, 1, -1, -1};
  w.passage_cluster = {0, 0, 0, 0, 0, -1};
  Question q0;
  q0.text = "question zero";
  q0.cluster = 0;
  q0.gold_ids = {0, 1};
  Question q1;
  q1.text = "question one";
  q1.cluster = 0;
  q1.gold_ids = {2, 3};
  w.questions = {q0, q1};
  return w;
}

// --------------------------------------------------------------- Prompt --

TEST(PromptTest, ContainsPreambleContextAndQuestion) {
  const std::vector<std::string_view> passages = {"passage one",
                                                  "passage two"};
  const std::string prompt = BuildPrompt("what is x?", passages);
  EXPECT_NE(prompt.find("passage one"), std::string::npos);
  EXPECT_NE(prompt.find("[2] passage two"), std::string::npos);
  EXPECT_NE(prompt.find("Question: what is x?"), std::string::npos);
  EXPECT_NE(prompt.find("Answer:"), std::string::npos);
}

TEST(PromptTest, TruncatesToContextWindow) {
  const std::string long_passage(10000, 'x');
  const std::vector<std::string_view> passages = {long_passage, long_passage,
                                                  long_passage};
  PromptOptions opts;
  opts.max_chars = 12000;
  const std::string prompt = BuildPrompt("q", passages, opts);
  EXPECT_LE(prompt.size(), 12000u);
  EXPECT_NE(prompt.find("[1]"), std::string::npos);
  EXPECT_EQ(prompt.find("[2]"), std::string::npos);  // second dropped
}

TEST(PromptTest, ResolvesIdsAgainstCorpus) {
  const Workload w = TinyWorkload();
  const std::string prompt =
      BuildPrompt("q?", std::vector<VectorId>{0, 4}, w.passages);
  EXPECT_NE(prompt.find("gold q0 a"), std::string::npos);
  EXPECT_NE(prompt.find("distractor"), std::string::npos);
}

TEST(PromptTest, RejectsBadIds) {
  const Workload w = TinyWorkload();
  EXPECT_THROW(BuildPrompt("q?", std::vector<VectorId>{99}, w.passages),
               std::out_of_range);
  EXPECT_THROW(BuildPrompt("q?", std::vector<VectorId>{-1}, w.passages),
               std::out_of_range);
}

// --------------------------------------------------------- JudgeContext --

TEST(JudgeContextTest, FullGoldContextIsFullyRelevant) {
  const Workload w = TinyWorkload();
  const std::vector<VectorId> served = {0, 1};
  const auto j = JudgeContext(served, w.questions[0], w);
  EXPECT_DOUBLE_EQ(j.relevance, 1.0);
  EXPECT_DOUBLE_EQ(j.misleading, 0.0);
}

TEST(JudgeContextTest, OtherQuestionsGoldsAreMisleading) {
  const Workload w = TinyWorkload();
  const std::vector<VectorId> served = {2, 3};  // q1's golds served to q0
  const auto j = JudgeContext(served, w.questions[0], w);
  EXPECT_DOUBLE_EQ(j.relevance, 0.0);
  EXPECT_DOUBLE_EQ(j.misleading, 1.0);
}

TEST(JudgeContextTest, DistractorsAreNeutral) {
  const Workload w = TinyWorkload();
  const std::vector<VectorId> served = {4, 5};
  const auto j = JudgeContext(served, w.questions[0], w);
  EXPECT_DOUBLE_EQ(j.relevance, 0.0);
  EXPECT_DOUBLE_EQ(j.misleading, 0.0);
}

TEST(JudgeContextTest, MixedContext) {
  const Workload w = TinyWorkload();
  const std::vector<VectorId> served = {0, 2, 4, 5};
  const auto j = JudgeContext(served, w.questions[0], w);
  // denom = min(4 served, 2 golds) = 2.
  EXPECT_DOUBLE_EQ(j.relevance, 0.5);
  EXPECT_DOUBLE_EQ(j.misleading, 0.5);
}

TEST(JudgeContextTest, EmptyContext) {
  const Workload w = TinyWorkload();
  const auto j = JudgeContext({}, w.questions[0], w);
  EXPECT_DOUBLE_EQ(j.relevance, 0.0);
  EXPECT_DOUBLE_EQ(j.misleading, 0.0);
}

TEST(JudgeContextTest, ForeignIdsIgnored) {
  const Workload w = TinyWorkload();
  const std::vector<VectorId> served = {999, -5, 0, 1};
  const auto j = JudgeContext(served, w.questions[0], w);
  EXPECT_DOUBLE_EQ(j.relevance, 1.0);
}

// ---------------------------------------------------------- AnswerModel --

TEST(AnswerModelTest, MmluAnchors) {
  const AnswerModel model(MmluAnswerParams());
  // §4.3.1 anchors: 48% without RAG, ~50.2% with exact retrieval.
  EXPECT_NEAR(model.CorrectProbability({.relevance = 0, .misleading = 0}),
              0.48, 1e-9);
  EXPECT_NEAR(model.CorrectProbability({.relevance = 1, .misleading = 0}),
              0.502, 1e-9);
  // Misleading context degrades only mildly for MMLU.
  const double misled =
      model.CorrectProbability({.relevance = 0, .misleading = 1});
  EXPECT_GT(misled, 0.46);
  EXPECT_LT(misled, 0.48);
}

TEST(AnswerModelTest, MedragAnchors) {
  const AnswerModel model(MedragAnswerParams());
  // §4.3.1 anchors: 57% without RAG, 88% with RAG, ~37% misled (tau=10).
  EXPECT_NEAR(model.CorrectProbability({.relevance = 0, .misleading = 0}),
              0.57, 1e-9);
  EXPECT_NEAR(model.CorrectProbability({.relevance = 1, .misleading = 0}),
              0.88, 1e-9);
  const double misled =
      model.CorrectProbability({.relevance = 0, .misleading = 1});
  EXPECT_NEAR(misled, 0.29, 0.05);
}

TEST(AnswerModelTest, FullRelevanceDrownsOutConfusers) {
  const AnswerModel model(MedragAnswerParams());
  EXPECT_DOUBLE_EQ(
      model.CorrectProbability({.relevance = 1, .misleading = 1}),
      model.CorrectProbability({.relevance = 1, .misleading = 0}));
}

TEST(AnswerModelTest, MonotoneInRelevance) {
  const AnswerModel model(MedragAnswerParams());
  double prev = -1;
  for (double r : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double p =
        model.CorrectProbability({.relevance = r, .misleading = 0});
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(AnswerModelTest, ProbabilityClamped) {
  const AnswerModel model(
      AnswerModelParams{.p_no_rag = 0.1, .p_full_rag = 0.2,
                        .misleading_penalty = 5.0});
  EXPECT_GE(model.CorrectProbability({.relevance = 0, .misleading = 1}),
            0.02);
  const AnswerModel high(
      AnswerModelParams{.p_no_rag = 0.99, .p_full_rag = 1.5,
                        .misleading_penalty = 0});
  EXPECT_LE(high.CorrectProbability({.relevance = 1, .misleading = 0}),
            0.98);
}

TEST(AnswerModelTest, StochasticMatchesProbability) {
  const AnswerModel model(MedragAnswerParams());
  Rng rng(5);
  int correct = 0;
  for (int i = 0; i < 20000; ++i) {
    correct +=
        model.AnswerCorrectly({.relevance = 1, .misleading = 0}, rng);
  }
  EXPECT_NEAR(correct / 20000.0, 0.88, 0.01);
}

TEST(AnswerModelTest, DeterministicDifficultyVariant) {
  const AnswerModel model(MedragAnswerParams());
  const ContextJudgment good{.relevance = 1, .misleading = 0};
  EXPECT_TRUE(model.AnswerCorrectly(good, /*difficulty=*/0.5));
  EXPECT_FALSE(model.AnswerCorrectly(good, /*difficulty=*/0.9));
}

// ------------------------------------------------------ DifficultyTable --

TEST(DifficultyTableTest, StratificationPinsAccuracy) {
  // The realized accuracy at fixed p equals p within 1/n, for any seed.
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    const auto table = MakeDifficultyTable(131, seed);
    for (double p : {0.48, 0.502, 0.88}) {
      const auto correct = static_cast<double>(
          std::count_if(table.begin(), table.end(),
                        [p](double d) { return d < p; }));
      EXPECT_NEAR(correct / 131.0, p, 1.0 / 131.0) << "seed=" << seed;
    }
  }
}

TEST(DifficultyTableTest, SeedsPermuteDifferently) {
  const auto a = MakeDifficultyTable(100, 1);
  const auto b = MakeDifficultyTable(100, 2);
  EXPECT_NE(a, b);
  auto sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);  // same quantile midpoints underneath
}

TEST(DifficultyTableTest, ValuesInUnitInterval) {
  const auto table = MakeDifficultyTable(10, 3);
  for (double d : table) {
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace proximity
