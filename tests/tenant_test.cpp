// Multi-tenant serving layer (DESIGN.md §10): the TenantRegistry
// (per-tenant caches, token-bucket quotas, adaptive τ, roster parsing)
// and the BatchingDriver's tenant mode (quota shedding before any
// embedding work, per-tenant conservation, cache non-interference,
// same-tenant-only coalescing, weighted deficit-round-robin fairness
// against a flooding tenant, and the FIFO contrast).
//
// The acceptance equation pinned here, per tenant AND globally:
//   hits + retrieved + coalesced + shed + expired + quota_shed
//       == submitted
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/flat_index.h"
#include "rag/batching_driver.h"
#include "tenant/tenant_registry.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

constexpr std::size_t kDim = 8;

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(0, dim);
  m.Reserve(rows);
  std::vector<float> row(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
    m.AppendRow(row);
  }
  return m;
}

FlatIndex MakeIndex(std::uint64_t seed = 11) {
  FlatIndex index(kDim);
  const Matrix corpus = RandomMatrix(100, kDim, seed);
  for (std::size_t r = 0; r < corpus.rows(); ++r) index.Add(corpus.Row(r));
  return index;
}

/// Parks the flusher: the batch never fills, the timer never fires, so
/// entries accumulate until Flush()/Shutdown() (the net_test idiom).
BatchingDriverOptions ParkedFlusher() {
  BatchingDriverOptions opts;
  opts.max_batch = 1000;
  opts.max_wait_us = 60ull * 1000000ull;
  opts.top_k = 3;
  return opts;
}

/// SubmitAsync wrapped into a future over the full BatchResult, so tests
/// can assert on status/cache_hit/coalesced per tenant.
std::future<BatchResult> SubmitFor(BatchingDriver& driver,
                                   std::vector<float> embedding,
                                   TenantId tenant) {
  auto promise = std::make_shared<std::promise<BatchResult>>();
  auto future = promise->get_future();
  SubmitOptions opts;
  opts.tenant = tenant;
  driver.SubmitAsync(std::move(embedding), opts,
                     [promise](BatchResult r) {
                       promise->set_value(std::move(r));
                     });
  return future;
}

void ExpectConserved(const BatchingDriverStats& s) {
  EXPECT_EQ(s.hits + s.retrieved + s.coalesced + s.shed + s.expired +
                s.quota_shed,
            s.submitted);
  EXPECT_EQ(s.completed, s.submitted - s.shed - s.quota_shed);
}

// --------------------------------------------------------- TokenBucket --

TEST(TokenBucketTest, BurstThenRefillAtRate) {
  TokenBucket bucket(/*rate=*/10.0, /*burst=*/2.0);
  const auto t0 = std::chrono::steady_clock::time_point{} +
                  std::chrono::seconds(100);
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_FALSE(bucket.TryAcquire(t0));  // burst exhausted

  // 100 ms at 10 tokens/s refills exactly one token.
  const auto t1 = t0 + std::chrono::milliseconds(100);
  EXPECT_TRUE(bucket.TryAcquire(t1));
  EXPECT_FALSE(bucket.TryAcquire(t1));

  // A long idle period refills to the burst cap, not beyond.
  const auto t2 = t1 + std::chrono::hours(1);
  EXPECT_TRUE(bucket.TryAcquire(t2));
  EXPECT_TRUE(bucket.TryAcquire(t2));
  EXPECT_FALSE(bucket.TryAcquire(t2));
}

// ----------------------------------------------------- roster parsing --

TEST(TenantSpecTest, ParsesRosterWithCommentsAndBlankLines) {
  const auto specs = ParseTenantSpecs(
      "# fleet roster\n"
      "id=1 name=search qps=100 burst=20 max_inflight=64 weight=3\n"
      "\n"
      "id=2 capacity=50 tau=1.5 adaptive=true target_hit_rate=0.7\n"
      "id=3  # defaults only\n");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].id, 1u);
  EXPECT_EQ(specs[0].name, "search");
  EXPECT_DOUBLE_EQ(specs[0].quota.qps, 100.0);
  EXPECT_DOUBLE_EQ(specs[0].quota.burst, 20.0);
  EXPECT_EQ(specs[0].quota.max_inflight, 64u);
  EXPECT_DOUBLE_EQ(specs[0].weight, 3.0);
  EXPECT_EQ(specs[1].id, 2u);
  EXPECT_EQ(specs[1].cache_capacity, 50u);
  EXPECT_DOUBLE_EQ(specs[1].tolerance, 1.5);
  EXPECT_TRUE(specs[1].adaptive_tau);
  EXPECT_DOUBLE_EQ(specs[1].adaptive.target_hit_rate, 0.7);
  EXPECT_EQ(specs[2].id, 3u);
  EXPECT_FALSE(specs[2].adaptive_tau);
}

TEST(TenantSpecTest, RejectsMalformedRosters) {
  EXPECT_THROW(ParseTenantSpecs("name=orphan\n"), std::invalid_argument);
  EXPECT_THROW(ParseTenantSpecs("id=1 nonsense\n"), std::invalid_argument);
  EXPECT_THROW(ParseTenantSpecs("id=1 qps=fast\n"), std::invalid_argument);
  EXPECT_THROW(ParseTenantSpecs("id=1 color=red\n"), std::invalid_argument);
}

// ---------------------------------------------------- TenantRegistry --

TEST(TenantRegistryTest, DefaultTenantAlwaysExists) {
  TenantRegistry registry(kDim);
  EXPECT_EQ(registry.tenant_count(), 1u);
  EXPECT_TRUE(registry.Has(kDefaultTenant));
  EXPECT_EQ(registry.Admit(kDefaultTenant), Admission::kAdmitted);
  registry.OnDone(kDefaultTenant);
}

TEST(TenantRegistryTest, RegisterIsIdempotentAndValidatesWeight) {
  TenantRegistry registry(kDim);
  TenantSpec spec;
  spec.id = 7;
  EXPECT_EQ(registry.Register(spec), 7u);
  EXPECT_EQ(registry.Register(spec), 7u);
  EXPECT_EQ(registry.tenant_count(), 2u);

  spec.id = 8;
  spec.weight = 0.0;
  EXPECT_THROW(registry.Register(spec), std::invalid_argument);
}

TEST(TenantRegistryTest, ResolvePolicyAutoRegisterVsMapToDefault) {
  TenantRegistry open(kDim);  // kAutoRegister is the default
  EXPECT_EQ(open.Resolve(42), 42u);
  EXPECT_TRUE(open.Has(42));

  TenantRegistryOptions closed_opts;
  closed_opts.unknown_policy = UnknownTenantPolicy::kMapToDefault;
  TenantRegistry closed(kDim, closed_opts);
  EXPECT_EQ(closed.Resolve(42), kDefaultTenant);
  EXPECT_FALSE(closed.Has(42));
}

TEST(TenantRegistryTest, InflightCapRefusesUntilOnDone) {
  TenantRegistry registry(kDim);
  TenantSpec spec;
  spec.id = 1;
  spec.quota.max_inflight = 2;
  registry.Register(spec);

  EXPECT_EQ(registry.Admit(1), Admission::kAdmitted);
  EXPECT_EQ(registry.Admit(1), Admission::kAdmitted);
  EXPECT_EQ(registry.Admit(1), Admission::kOverInflight);
  registry.OnDone(1);
  EXPECT_EQ(registry.Admit(1), Admission::kAdmitted);
}

TEST(TenantRegistryTest, QpsQuotaRefusesOnceBurstIsSpent) {
  TenantRegistry registry(kDim);
  TenantSpec spec;
  spec.id = 1;
  // A refill rate far below one token per test-lifetime: exactly the
  // initial burst (= max(qps, 1) = 1 token) is admitted.
  spec.quota.qps = 1e-9;
  registry.Register(spec);

  EXPECT_EQ(registry.Admit(1), Admission::kAdmitted);
  EXPECT_EQ(registry.Admit(1), Admission::kOverRate);
  registry.OnDone(1);
  // OnDone frees the inflight slot, not the rate: still over quota.
  EXPECT_EQ(registry.Admit(1), Admission::kOverRate);
}

TEST(TenantRegistryTest, AdaptiveTauSteersTheTenantsCacheTolerance) {
  TenantRegistry registry(kDim);
  TenantSpec spec;
  spec.id = 1;
  spec.adaptive_tau = true;
  spec.adaptive.target_hit_rate = 0.9;
  spec.adaptive.window = 4;
  spec.adaptive.period = 4;
  spec.adaptive.step = 2.0;
  spec.adaptive.initial_tau = 1.0;
  registry.Register(spec);

  ASSERT_FLOAT_EQ(registry.CacheFor(1).tolerance(), 1.0f);
  // A run of misses below the target hit rate must widen τ.
  for (int i = 0; i < 8; ++i) registry.ObserveLookup(1, /*hit=*/false);
  EXPECT_GT(registry.CacheFor(1).tolerance(), 1.0f);
  // The default tenant's cache is untouched by tenant 1's controller.
  EXPECT_FLOAT_EQ(registry.CacheFor(kDefaultTenant).tolerance(),
                  registry.options().cache_defaults.tolerance);
}

// -------------------------------------------- driver: quota shedding --

TEST(TenantDriverTest, OverQuotaSubmissionsShedBeforeAnyWork) {
  const FlatIndex index = MakeIndex();
  TenantRegistry registry(kDim);
  TenantSpec spec;
  spec.id = 1;
  spec.quota.qps = 1e-9;  // one-token burst, no refill at test timescale
  registry.Register(spec);
  BatchingDriver driver(index, registry, nullptr, ParkedFlusher());

  const Matrix queries = RandomMatrix(5, kDim, 21);
  std::vector<std::future<BatchResult>> futures;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto row = queries.Row(q);
    futures.push_back(SubmitFor(
        driver, std::vector<float>(row.begin(), row.end()), 1));
  }
  driver.Shutdown();

  std::size_t ok = 0, exhausted = 0;
  for (auto& f : futures) {
    const BatchResult r = f.get();
    if (r.status == RequestStatus::kOk) {
      ++ok;
      EXPECT_EQ(r.documents.size(), 3u);
    } else {
      EXPECT_EQ(r.status, RequestStatus::kResourceExhausted);
      EXPECT_TRUE(r.documents.empty());  // no retrieval work was spent
      ++exhausted;
    }
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(exhausted, 4u);

  const auto stats = driver.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.quota_shed, 4u);
  EXPECT_EQ(stats.shed, 0u);
  ExpectConserved(stats);
  const auto per_tenant = driver.tenant_stats();
  ASSERT_TRUE(per_tenant.count(1));
  EXPECT_EQ(per_tenant.at(1).quota_shed, 4u);
  ExpectConserved(per_tenant.at(1));
}

// --------------------------------- driver: conservation + isolation --

TEST(TenantDriverTest, CachesDoNotInterfereAcrossTenants) {
  const FlatIndex index = MakeIndex();
  TenantRegistry registry(kDim);
  TenantSpec spec;
  spec.id = 1;
  registry.Register(spec);
  spec.id = 2;
  registry.Register(spec);
  BatchingDriver driver(index, registry, nullptr, ParkedFlusher());

  const std::vector<float> q(kDim, 0.25f);
  // Tenant 1 retrieves, then hits its own cache.
  auto f1 = SubmitFor(driver, q, 1);
  driver.Flush();
  EXPECT_FALSE(f1.get().cache_hit);
  auto f2 = SubmitFor(driver, q, 1);
  driver.Flush();
  EXPECT_TRUE(f2.get().cache_hit);

  // Tenant 2 issues the SAME query: tenant 1's cached answer must not
  // leak — this must be a fresh retrieval against the shared index.
  auto f3 = SubmitFor(driver, q, 2);
  driver.Flush();
  EXPECT_FALSE(f3.get().cache_hit);
  auto f4 = SubmitFor(driver, q, 2);
  driver.Flush();
  EXPECT_TRUE(f4.get().cache_hit);
  driver.Shutdown();

  const auto per_tenant = driver.tenant_stats();
  for (const TenantId id : {TenantId{1}, TenantId{2}}) {
    ASSERT_TRUE(per_tenant.count(id));
    const auto& s = per_tenant.at(id);
    EXPECT_EQ(s.submitted, 2u);
    EXPECT_EQ(s.retrieved, 1u);
    EXPECT_EQ(s.hits, 1u);
    ExpectConserved(s);
  }
  ExpectConserved(driver.stats());
}

TEST(TenantDriverTest, CoalescingNeverCrossesTenants) {
  const FlatIndex index = MakeIndex();
  TenantRegistry registry(kDim);
  TenantSpec spec;
  spec.id = 1;
  registry.Register(spec);
  spec.id = 2;
  registry.Register(spec);
  BatchingDriver driver(index, registry, nullptr, ParkedFlusher());

  // Six identical queries in ONE batch, three per tenant: within a
  // tenant they coalesce onto one leader; across tenants they must not.
  const std::vector<float> q(kDim, 0.5f);
  std::vector<std::future<BatchResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(SubmitFor(driver, q, 1));
  for (int i = 0; i < 3; ++i) futures.push_back(SubmitFor(driver, q, 2));
  driver.Flush();
  for (auto& f : futures) EXPECT_EQ(f.get().status, RequestStatus::kOk);
  driver.Shutdown();

  const auto per_tenant = driver.tenant_stats();
  for (const TenantId id : {TenantId{1}, TenantId{2}}) {
    ASSERT_TRUE(per_tenant.count(id));
    EXPECT_EQ(per_tenant.at(id).retrieved, 1u) << "tenant " << id;
    EXPECT_EQ(per_tenant.at(id).coalesced, 2u) << "tenant " << id;
  }
  const auto stats = driver.stats();
  EXPECT_EQ(stats.retrieved, 2u);  // one leader per tenant, not one total
  EXPECT_EQ(stats.coalesced, 4u);
  ExpectConserved(stats);
}

TEST(TenantDriverTest, UnknownTenantsFoldIntoDefaultUnderClosedRoster) {
  const FlatIndex index = MakeIndex();
  TenantRegistryOptions opts;
  opts.unknown_policy = UnknownTenantPolicy::kMapToDefault;
  TenantRegistry registry(kDim, opts);
  BatchingDriver driver(index, registry, nullptr, ParkedFlusher());

  auto f = SubmitFor(driver, std::vector<float>(kDim, 0.1f), 42);
  driver.Flush();
  EXPECT_EQ(f.get().status, RequestStatus::kOk);
  driver.Shutdown();

  const auto per_tenant = driver.tenant_stats();
  ASSERT_TRUE(per_tenant.count(kDefaultTenant));
  EXPECT_EQ(per_tenant.at(kDefaultTenant).submitted, 1u);
  EXPECT_FALSE(per_tenant.count(42));
  EXPECT_FALSE(registry.Has(42));
}

// --------------------------------------------- driver: DRR fairness --

// Builds a backlog while the flusher is blocked inside a decoy batch
// (its callback waits on a shared_future), then releases it and records
// the order in which the backlog completes. With weighted DRR a 100:4
// flood cannot push the small tenant to the back; with FIFO it does.
struct FloodOutcome {
  std::vector<std::size_t> small_positions;  // completion indices
  BatchingDriverStats stats;
};

FloodOutcome RunFlood(bool fair) {
  const FlatIndex index = MakeIndex(31);
  TenantRegistry registry(kDim);
  TenantSpec spec;
  spec.id = 1;  // the flooding tenant
  registry.Register(spec);
  spec.id = 2;  // the compliant tenant
  registry.Register(spec);

  BatchingDriverOptions opts;
  opts.max_batch = 8;
  opts.max_wait_us = 1000;
  opts.top_k = 3;
  opts.coalesce = false;  // one retrieval per entry: order is visible
  opts.fair = fair;
  BatchingDriver driver(index, registry, nullptr, opts);

  // Decoy entry whose completion callback blocks the flusher thread
  // until the backlog below is fully enqueued.
  std::promise<void> entered, release;
  auto entered_future = entered.get_future();
  auto release_future = release.get_future().share();
  SubmitOptions decoy_opts;
  decoy_opts.tenant = 1;
  driver.SubmitAsync(std::vector<float>(kDim, 0.9f), decoy_opts,
                     [&entered, release_future](BatchResult) {
                       entered.set_value();
                       release_future.wait();
                     });
  entered_future.wait();  // the decoy's batch has been taken

  const Matrix flood = RandomMatrix(100, kDim, 32);
  const Matrix small = RandomMatrix(4, kDim, 33);
  std::atomic<std::size_t> order{0};
  std::vector<std::size_t> flood_pos(100), small_pos(4);
  std::vector<std::future<BatchResult>> futures;
  auto submit = [&](const Matrix& m, std::size_t i, TenantId tenant,
                    std::size_t* pos) {
    auto promise = std::make_shared<std::promise<BatchResult>>();
    futures.push_back(promise->get_future());
    SubmitOptions sopts;
    sopts.tenant = tenant;
    const auto row = m.Row(i);
    driver.SubmitAsync(std::vector<float>(row.begin(), row.end()), sopts,
                       [&order, pos, promise](BatchResult r) {
                         *pos = order.fetch_add(1);
                         promise->set_value(std::move(r));
                       });
  };
  for (std::size_t i = 0; i < 100; ++i) submit(flood, i, 1, &flood_pos[i]);
  for (std::size_t i = 0; i < 4; ++i) submit(small, i, 2, &small_pos[i]);
  release.set_value();  // un-park the flusher

  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, RequestStatus::kOk);
  }
  driver.Shutdown();

  FloodOutcome outcome;
  outcome.small_positions = small_pos;
  outcome.stats = driver.stats();
  return outcome;
}

TEST(TenantDriverTest, DeficitRoundRobinShieldsSmallTenantFromFlood) {
  const FloodOutcome outcome = RunFlood(/*fair=*/true);
  // Equal weights: each 8-slot batch alternates tenants, so all four
  // compliant entries ride the FIRST post-flood batch. Allow slack for
  // a timer flush racing the enqueue loop: two batches' worth.
  for (const std::size_t pos : outcome.small_positions) {
    EXPECT_LT(pos, 16u) << "compliant tenant starved by the flood";
  }
  ExpectConserved(outcome.stats);
}

TEST(TenantDriverTest, FifoModeLetsTheFloodStarveSmallTenant) {
  const FloodOutcome outcome = RunFlood(/*fair=*/false);
  // Strict arrival order: the flood's 100 entries were enqueued first,
  // so every compliant entry completes after them. The decoy and any
  // timer-flushed prefix shift positions by at most the flood that
  // remained; the compliant entries must still land in the last batch.
  for (const std::size_t pos : outcome.small_positions) {
    EXPECT_GE(pos, 100u) << "FIFO contrast lost its starvation";
  }
  ExpectConserved(outcome.stats);
}

// Concurrent submissions across tenants under TSan: per-tenant and
// global conservation hold with racing Submit/Flush/quota traffic.
TEST(TenantDriverTest, ConcurrentMultiTenantTrafficConserves) {
  const FlatIndex index = MakeIndex(41);
  TenantRegistry registry(kDim);
  for (TenantId id = 1; id <= 4; ++id) {
    TenantSpec spec;
    spec.id = id;
    if (id == 4) spec.quota.max_inflight = 2;  // one throttled tenant
    registry.Register(spec);
  }
  BatchingDriverOptions opts;
  opts.max_batch = 8;
  opts.max_wait_us = 200;
  opts.top_k = 3;
  BatchingDriver driver(index, registry, nullptr, opts);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 64;
  const Matrix queries = RandomMatrix(16, kDim, 42);
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> ok{0}, exhausted{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const auto row = queries.Row((t * kPerThread + i) % queries.rows());
        auto f = SubmitFor(driver,
                           std::vector<float>(row.begin(), row.end()),
                           static_cast<TenantId>(1 + (t + i) % 4));
        const BatchResult r = f.get();
        if (r.status == RequestStatus::kOk) {
          ++ok;
        } else {
          ASSERT_EQ(r.status, RequestStatus::kResourceExhausted);
          ++exhausted;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  driver.Shutdown();

  const auto stats = driver.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(ok.load() + exhausted.load(), stats.submitted);
  ExpectConserved(stats);
  const auto per_tenant = driver.tenant_stats();
  std::uint64_t submitted_sum = 0;
  for (const auto& [id, s] : per_tenant) {
    ExpectConserved(s);
    submitted_sum += s.submitted;
  }
  EXPECT_EQ(submitted_sum, stats.submitted);
}

}  // namespace
}  // namespace proximity
