// Wire-compatibility regression suite for the PRXQ/PRXR framing.
//
// The golden files under tests/golden/ are byte-exact protocol-v1
// frames, generated when v1 was current and NEVER regenerated: a parser
// change that breaks them breaks every deployed v1 client. The v2
// tenant extension is additive — the tenant id travels only when
// `kReqFlagHasTenant` is set, so a default-tenant v2 writer emits
// byte-identical v1 frames (pinned here against the same goldens).
// The v3 trace extension follows the same rule: sixteen bytes of
// trace_id/trace_parent travel only under `kReqFlagHasTrace`, pinned
// byte-exact against request_v3_trace.bin.
// The v4 mutation extension likewise: twelve bytes of
// mutation_op/mutation_target travel only under `kReqFlagHasMutation`,
// pinned byte-exact against request_v4_mutation.bin.
// The v5 distance extension rides the response: one f32 per document
// travels only under `kFlagHasDistances` (and the request side is a
// pure flag bit), pinned against response_v5_distances.bin; the fully
// composed tenant+trace+mutation request — the frame the cluster
// router relays byte-identically — is pinned against
// request_v4_all_extensions.bin.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace proximity {
namespace {

std::vector<std::uint8_t> ReadGolden(const std::string& name) {
  const std::string path = std::string(PROXIMITY_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing golden file " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// The canonical v1 request: the exact struct the golden bytes encode.
net::Request GoldenRequest() {
  net::Request req;
  req.id = 0x0123456789ABCDEFull;
  req.flags = 0;
  req.deadline_us = 250000;
  req.text = "hello tenant";
  return req;
}

net::Response GoldenResponse() {
  net::Response resp;
  resp.id = 0x0123456789ABCDEFull;
  resp.status = RequestStatus::kOk;
  resp.flags = net::kFlagCacheHit;
  resp.queue_ns = 1111;
  resp.server_ns = 2222;
  resp.documents = {3, 1, 4};
  return resp;
}

TEST(ProtocolCompatTest, ParsesGoldenV1Request) {
  const auto wire = ReadGolden("request_v1.bin");
  ASSERT_FALSE(wire.empty());
  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  const net::Request want = GoldenRequest();
  EXPECT_EQ(out.id, want.id);
  EXPECT_EQ(out.flags, want.flags);
  EXPECT_EQ(out.deadline_us, want.deadline_us);
  EXPECT_EQ(out.text, want.text);
  // A v1 frame names no tenant: it lands on the default tenant.
  EXPECT_EQ(out.tenant, kDefaultTenant);
}

TEST(ProtocolCompatTest, DefaultTenantWriterEmitsByteExactV1Frame) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenRequest());
  EXPECT_EQ(wire, ReadGolden("request_v1.bin"));
}

TEST(ProtocolCompatTest, ParsesGoldenV1Response) {
  const auto wire = ReadGolden("response_v1.bin");
  ASSERT_FALSE(wire.empty());
  net::Response out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  const net::Response want = GoldenResponse();
  EXPECT_EQ(out.id, want.id);
  EXPECT_EQ(out.status, want.status);
  EXPECT_EQ(out.flags, want.flags);
  EXPECT_TRUE(out.cache_hit());
  EXPECT_EQ(out.queue_ns, want.queue_ns);
  EXPECT_EQ(out.server_ns, want.server_ns);
  EXPECT_EQ(out.documents, want.documents);
}

TEST(ProtocolCompatTest, ResponseWriterEmitsByteExactV1Frame) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenResponse());
  EXPECT_EQ(wire, ReadGolden("response_v1.bin"));
}

TEST(ProtocolCompatTest, TenantFieldIsExactlyFourAddedBytes) {
  net::Request req = GoldenRequest();
  req.tenant = 7;
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, req);
  EXPECT_EQ(wire.size(), ReadGolden("request_v1.bin").size() + 4);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.tenant, 7u);
  EXPECT_TRUE((out.flags & net::kReqFlagHasTenant) != 0);
  EXPECT_EQ(out.text, req.text);
  EXPECT_EQ(out.deadline_us, req.deadline_us);
}

TEST(ProtocolCompatTest, TenantFlagWithoutTenantBytesIsAProtocolError) {
  // Take the golden v1 frame and flip the has-tenant flag bit without
  // adding the four tenant bytes: the text length is then consumed as
  // the tenant id and the frame no longer adds up.
  auto wire = ReadGolden("request_v1.bin");
  ASSERT_GT(wire.size(), 17u);
  wire[16] |= static_cast<std::uint8_t>(net::kReqFlagHasTenant);
  net::Request out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::ParseFrame(wire, &consumed, &out),
            net::ParseResult::kError);
}

TEST(ProtocolCompatTest, ProtocolVersionIsBumpedForTheDistanceField) {
  // Documentation pin: OPERATIONS.md and `proximity_cli info` both cite
  // v5 (v2 added the tenant field, v3 the trace field, v4 the mutation
  // field, v5 the response distance array); keep the constant honest.
  EXPECT_EQ(net::kProtocolVersion, 5u);
}

// ------------------------------------------------- v3 trace extension --

// The canonical v3 traced request: the exact struct the golden bytes
// under request_v3_trace.bin encode. Generated when v3 was current and
// never regenerated.
net::Request GoldenTracedRequest() {
  net::Request req = GoldenRequest();
  req.trace_id = 0xFEEDFACECAFEBEEFull;
  req.trace_parent = 0x0011223344556677ull;
  return req;
}

TEST(ProtocolCompatTest, TraceFieldIsExactlySixteenAddedBytes) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenTracedRequest());
  EXPECT_EQ(wire.size(), ReadGolden("request_v1.bin").size() + 16);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.trace_id, 0xFEEDFACECAFEBEEFull);
  EXPECT_EQ(out.trace_parent, 0x0011223344556677ull);
  EXPECT_TRUE((out.flags & net::kReqFlagHasTrace) != 0);
  EXPECT_EQ(out.text, GoldenRequest().text);
  EXPECT_EQ(out.deadline_us, GoldenRequest().deadline_us);
  EXPECT_EQ(out.tenant, kDefaultTenant);
}

TEST(ProtocolCompatTest, UntracedWriterStillEmitsByteExactV1Frame) {
  // The trace field is strictly opt-in: a v3 writer that never sets a
  // trace id emits bytes a v1 parser accepts, pinned against the same
  // golden that deployed v1 clients speak.
  net::Request req = GoldenRequest();
  EXPECT_EQ(req.trace_id, 0u);
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, req);
  EXPECT_EQ(wire, ReadGolden("request_v1.bin"));
}

TEST(ProtocolCompatTest, ParsesGoldenV3TracedRequest) {
  const auto wire = ReadGolden("request_v3_trace.bin");
  ASSERT_FALSE(wire.empty());
  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  const net::Request want = GoldenTracedRequest();
  EXPECT_EQ(out.id, want.id);
  EXPECT_EQ(out.deadline_us, want.deadline_us);
  EXPECT_EQ(out.text, want.text);
  EXPECT_EQ(out.trace_id, want.trace_id);
  EXPECT_EQ(out.trace_parent, want.trace_parent);
}

TEST(ProtocolCompatTest, TracedWriterEmitsByteExactV3Frame) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenTracedRequest());
  EXPECT_EQ(wire, ReadGolden("request_v3_trace.bin"));
}

TEST(ProtocolCompatTest, TraceFlagWithoutTraceBytesIsAProtocolError) {
  // Flip the has-trace flag on the golden v1 frame without appending
  // the sixteen trace bytes: the text is consumed as trace ids and the
  // frame no longer adds up.
  auto wire = ReadGolden("request_v1.bin");
  ASSERT_GT(wire.size(), 17u);
  wire[16] |= static_cast<std::uint8_t>(net::kReqFlagHasTrace);
  net::Request out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::ParseFrame(wire, &consumed, &out),
            net::ParseResult::kError);
}

// ---------------------------------------------- v4 mutation extension --

// The canonical v4 mutation request: the exact struct the golden bytes
// under request_v4_mutation.bin encode. Generated when v4 was current
// and never regenerated. A DELETE keeps the text field (empty for
// deletes on the real client path, but the layout carries it either
// way — this golden pins the non-empty case).
net::Request GoldenMutationRequest() {
  net::Request req = GoldenRequest();
  req.mutation_op = net::kMutationDelete;
  req.mutation_target = 0x0F1E2D3C4B5A6978ull;
  return req;
}

TEST(ProtocolCompatTest, MutationFieldIsExactlyTwelveAddedBytes) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenMutationRequest());
  EXPECT_EQ(wire.size(), ReadGolden("request_v1.bin").size() + 12);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.mutation_op, net::kMutationDelete);
  EXPECT_EQ(out.mutation_target, 0x0F1E2D3C4B5A6978ull);
  EXPECT_TRUE((out.flags & net::kReqFlagHasMutation) != 0);
  EXPECT_EQ(out.text, GoldenRequest().text);
  EXPECT_EQ(out.tenant, kDefaultTenant);
}

TEST(ProtocolCompatTest, NonMutatingWriterStillEmitsByteExactV1Frame) {
  // The mutation field is strictly opt-in: a v4 writer that only ever
  // queries emits bytes a v1 parser accepts, pinned against the same
  // golden that deployed v1 clients speak.
  net::Request req = GoldenRequest();
  EXPECT_EQ(req.mutation_op, net::kMutationNone);
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, req);
  EXPECT_EQ(wire, ReadGolden("request_v1.bin"));
}

TEST(ProtocolCompatTest, ParsesGoldenV4MutationRequest) {
  const auto wire = ReadGolden("request_v4_mutation.bin");
  ASSERT_FALSE(wire.empty());
  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  const net::Request want = GoldenMutationRequest();
  EXPECT_EQ(out.id, want.id);
  EXPECT_EQ(out.deadline_us, want.deadline_us);
  EXPECT_EQ(out.text, want.text);
  EXPECT_EQ(out.mutation_op, want.mutation_op);
  EXPECT_EQ(out.mutation_target, want.mutation_target);
}

TEST(ProtocolCompatTest, MutationWriterEmitsByteExactV4Frame) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenMutationRequest());
  EXPECT_EQ(wire, ReadGolden("request_v4_mutation.bin"));
}

TEST(ProtocolCompatTest, InsertRequestRoundTripsWithText) {
  net::Request req = GoldenRequest();
  req.mutation_op = net::kMutationInsert;
  req.text = "a freshly ingested document body";
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, req);
  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.mutation_op, net::kMutationInsert);
  EXPECT_EQ(out.mutation_target, 0u);
  EXPECT_EQ(out.text, req.text);
}

TEST(ProtocolCompatTest, MutationFlagWithoutMutationBytesIsAProtocolError) {
  // Flip the has-mutation flag on the golden v1 frame without appending
  // the twelve mutation bytes: the text is consumed as op/target and
  // the frame no longer adds up.
  auto wire = ReadGolden("request_v1.bin");
  ASSERT_GT(wire.size(), 17u);
  wire[16] |= static_cast<std::uint8_t>(net::kReqFlagHasMutation);
  net::Request out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::ParseFrame(wire, &consumed, &out),
            net::ParseResult::kError);
}

TEST(ProtocolCompatTest, UnknownMutationOpcodeIsAProtocolError) {
  // An opcode this version does not speak must close the connection,
  // not silently degrade into a query: corrupt the golden v4 frame's
  // opcode and the parser must refuse the frame.
  net::Request req = GoldenMutationRequest();
  std::vector<std::uint8_t> reference;
  net::AppendFrame(reference, req);
  auto wire = ReadGolden("request_v4_mutation.bin");
  ASSERT_EQ(wire, reference);
  // The opcode is the u32 right after the fixed header + tenant/trace
  // fields (absent here): locate it by value, then corrupt it.
  req.mutation_op = 0xEE;
  std::vector<std::uint8_t> corrupted;
  net::AppendFrame(corrupted, req);
  net::Request out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::ParseFrame(corrupted, &consumed, &out),
            net::ParseResult::kError);
}

TEST(ProtocolCompatTest, TenantAndTraceFieldsComposeInOrder) {
  // Both extensions on one frame: tenant (4 bytes) then trace (16),
  // header-order, 20 bytes over the v1 frame. Round-trips exactly.
  net::Request req = GoldenTracedRequest();
  req.tenant = 7;
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, req);
  EXPECT_EQ(wire.size(), ReadGolden("request_v1.bin").size() + 20);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.tenant, 7u);
  EXPECT_EQ(out.trace_id, req.trace_id);
  EXPECT_EQ(out.trace_parent, req.trace_parent);
  EXPECT_EQ(out.text, req.text);
}

TEST(ProtocolCompatTest, AllThreeExtensionsComposeInOrder) {
  // Tenant (4) then trace (16) then mutation (12), header-order: 32
  // bytes over the v1 frame. Round-trips exactly.
  net::Request req = GoldenTracedRequest();
  req.tenant = 7;
  req.mutation_op = net::kMutationDelete;
  req.mutation_target = 42;
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, req);
  EXPECT_EQ(wire.size(), ReadGolden("request_v1.bin").size() + 32);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.tenant, 7u);
  EXPECT_EQ(out.trace_id, req.trace_id);
  EXPECT_EQ(out.trace_parent, req.trace_parent);
  EXPECT_EQ(out.mutation_op, net::kMutationDelete);
  EXPECT_EQ(out.mutation_target, 42u);
  EXPECT_EQ(out.text, req.text);
}

// ---------------------------------------------- v5 distance extension --

// The canonical fully-composed v4 request: tenant + trace + mutation
// INSERT on one frame, the exact struct request_v4_all_extensions.bin
// encodes. This is the frame the cluster router relays byte-identically
// (tests/cluster_test.cpp pins the relay against the same golden).
net::Request GoldenAllExtensionsRequest() {
  net::Request req;
  req.id = 0x0102030405060708ull;
  req.deadline_us = 750000;
  req.tenant = 7;
  req.trace_id = 0xABCDEF0012345678ull;
  req.trace_parent = 0x1111222233334444ull;
  req.mutation_op = net::kMutationInsert;
  req.text = "fresh document for the mutable corpus";
  return req;
}

// The canonical v5 response with the distance side-channel: the exact
// struct response_v5_distances.bin encodes.
net::Response GoldenDistancesResponse() {
  net::Response resp;
  resp.id = 0x0102030405060708ull;
  resp.status = RequestStatus::kOk;
  resp.queue_ns = 1500;
  resp.server_ns = 420000;
  resp.documents = {11, 3, 42};
  resp.distances = {0.125f, 0.5f, 2.75f};
  return resp;
}

TEST(ProtocolCompatTest, AllExtensionsWriterEmitsByteExactV4Frame) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenAllExtensionsRequest());
  EXPECT_EQ(wire, ReadGolden("request_v4_all_extensions.bin"));
}

TEST(ProtocolCompatTest, ParsesGoldenAllExtensionsRequest) {
  const auto wire = ReadGolden("request_v4_all_extensions.bin");
  ASSERT_FALSE(wire.empty());
  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  const net::Request want = GoldenAllExtensionsRequest();
  EXPECT_EQ(out.id, want.id);
  EXPECT_EQ(out.tenant, want.tenant);
  EXPECT_EQ(out.trace_id, want.trace_id);
  EXPECT_EQ(out.trace_parent, want.trace_parent);
  EXPECT_EQ(out.mutation_op, want.mutation_op);
  EXPECT_EQ(out.text, want.text);
}

TEST(ProtocolCompatTest, WantDistancesFlagAddsNoRequestBytes) {
  // The v5 request extension is a pure flag bit: the payload grows no
  // field, so the frame is the v1 golden with one header bit flipped —
  // which is also why pre-v5 servers parse it unchanged (unknown
  // request flag bits are ignored).
  net::Request req = GoldenRequest();
  req.flags |= net::kReqFlagWantDistances;
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, req);
  auto golden = ReadGolden("request_v1.bin");
  EXPECT_EQ(wire.size(), golden.size());
  golden[16] |= static_cast<std::uint8_t>(net::kReqFlagWantDistances);
  EXPECT_EQ(wire, golden);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_TRUE((out.flags & net::kReqFlagWantDistances) != 0);
  EXPECT_EQ(out.text, req.text);
}

TEST(ProtocolCompatTest, DistancesWriterEmitsByteExactV5Frame) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenDistancesResponse());
  EXPECT_EQ(wire, ReadGolden("response_v5_distances.bin"));
}

TEST(ProtocolCompatTest, ParsesGoldenV5DistancesResponse) {
  const auto wire = ReadGolden("response_v5_distances.bin");
  ASSERT_FALSE(wire.empty());
  net::Response out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  const net::Response want = GoldenDistancesResponse();
  EXPECT_EQ(out.id, want.id);
  EXPECT_TRUE(out.has_distances());
  EXPECT_EQ(out.documents, want.documents);
  EXPECT_EQ(out.distances, want.distances);
  EXPECT_EQ(out.queue_ns, want.queue_ns);
  EXPECT_EQ(out.server_ns, want.server_ns);
}

TEST(ProtocolCompatTest, DistancelessResponseStaysByteExactV1) {
  // The distance array is strictly opt-in: a v5 writer answering a
  // client that did not ask emits bytes a v1 parser accepts, pinned
  // against the same golden deployed v1 clients speak.
  net::Response resp = GoldenResponse();
  EXPECT_TRUE(resp.distances.empty());
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, resp);
  EXPECT_EQ(wire, ReadGolden("response_v1.bin"));
}

TEST(ProtocolCompatTest, DistanceFieldIsExactlyFourBytesPerDocument) {
  net::Response resp = GoldenResponse();
  resp.distances = {1.0f, 2.0f, 3.0f};
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, resp);
  EXPECT_EQ(wire.size(),
            ReadGolden("response_v1.bin").size() + 4 * resp.documents.size());

  net::Response out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_TRUE(out.has_distances());
  EXPECT_EQ(out.distances, resp.distances);
}

TEST(ProtocolCompatTest, DistancesFlagWithoutDistanceBytesIsAProtocolError) {
  // Flip the has-distances flag on the golden v1 response without
  // appending the f32 array: the frame no longer adds up.
  auto wire = ReadGolden("response_v1.bin");
  ASSERT_GT(wire.size(), 21u);
  // Response layout: len(4) magic(4) id(8) status(4) -> flags at 20.
  wire[20] |= static_cast<std::uint8_t>(net::kFlagHasDistances);
  net::Response out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::ParseFrame(wire, &consumed, &out),
            net::ParseResult::kError);
}

}  // namespace
}  // namespace proximity
