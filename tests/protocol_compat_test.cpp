// Wire-compatibility regression suite for the PRXQ/PRXR framing.
//
// The golden files under tests/golden/ are byte-exact protocol-v1
// frames, generated when v1 was current and NEVER regenerated: a parser
// change that breaks them breaks every deployed v1 client. The v2
// tenant extension is additive — the tenant id travels only when
// `kReqFlagHasTenant` is set, so a default-tenant v2 writer emits
// byte-identical v1 frames (pinned here against the same goldens).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace proximity {
namespace {

std::vector<std::uint8_t> ReadGolden(const std::string& name) {
  const std::string path = std::string(PROXIMITY_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing golden file " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// The canonical v1 request: the exact struct the golden bytes encode.
net::Request GoldenRequest() {
  net::Request req;
  req.id = 0x0123456789ABCDEFull;
  req.flags = 0;
  req.deadline_us = 250000;
  req.text = "hello tenant";
  return req;
}

net::Response GoldenResponse() {
  net::Response resp;
  resp.id = 0x0123456789ABCDEFull;
  resp.status = RequestStatus::kOk;
  resp.flags = net::kFlagCacheHit;
  resp.queue_ns = 1111;
  resp.server_ns = 2222;
  resp.documents = {3, 1, 4};
  return resp;
}

TEST(ProtocolCompatTest, ParsesGoldenV1Request) {
  const auto wire = ReadGolden("request_v1.bin");
  ASSERT_FALSE(wire.empty());
  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  const net::Request want = GoldenRequest();
  EXPECT_EQ(out.id, want.id);
  EXPECT_EQ(out.flags, want.flags);
  EXPECT_EQ(out.deadline_us, want.deadline_us);
  EXPECT_EQ(out.text, want.text);
  // A v1 frame names no tenant: it lands on the default tenant.
  EXPECT_EQ(out.tenant, kDefaultTenant);
}

TEST(ProtocolCompatTest, DefaultTenantWriterEmitsByteExactV1Frame) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenRequest());
  EXPECT_EQ(wire, ReadGolden("request_v1.bin"));
}

TEST(ProtocolCompatTest, ParsesGoldenV1Response) {
  const auto wire = ReadGolden("response_v1.bin");
  ASSERT_FALSE(wire.empty());
  net::Response out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  const net::Response want = GoldenResponse();
  EXPECT_EQ(out.id, want.id);
  EXPECT_EQ(out.status, want.status);
  EXPECT_EQ(out.flags, want.flags);
  EXPECT_TRUE(out.cache_hit());
  EXPECT_EQ(out.queue_ns, want.queue_ns);
  EXPECT_EQ(out.server_ns, want.server_ns);
  EXPECT_EQ(out.documents, want.documents);
}

TEST(ProtocolCompatTest, ResponseWriterEmitsByteExactV1Frame) {
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, GoldenResponse());
  EXPECT_EQ(wire, ReadGolden("response_v1.bin"));
}

TEST(ProtocolCompatTest, TenantFieldIsExactlyFourAddedBytes) {
  net::Request req = GoldenRequest();
  req.tenant = 7;
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, req);
  EXPECT_EQ(wire.size(), ReadGolden("request_v1.bin").size() + 4);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.tenant, 7u);
  EXPECT_TRUE((out.flags & net::kReqFlagHasTenant) != 0);
  EXPECT_EQ(out.text, req.text);
  EXPECT_EQ(out.deadline_us, req.deadline_us);
}

TEST(ProtocolCompatTest, TenantFlagWithoutTenantBytesIsAProtocolError) {
  // Take the golden v1 frame and flip the has-tenant flag bit without
  // adding the four tenant bytes: the text length is then consumed as
  // the tenant id and the frame no longer adds up.
  auto wire = ReadGolden("request_v1.bin");
  ASSERT_GT(wire.size(), 17u);
  wire[16] |= static_cast<std::uint8_t>(net::kReqFlagHasTenant);
  net::Request out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::ParseFrame(wire, &consumed, &out),
            net::ParseResult::kError);
}

TEST(ProtocolCompatTest, ProtocolVersionIsBumpedForTheTenantField) {
  // Documentation pin: OPERATIONS.md and `proximity_cli info` both cite
  // v2; keep the constant honest.
  EXPECT_EQ(net::kProtocolVersion, 2u);
}

}  // namespace
}  // namespace proximity
