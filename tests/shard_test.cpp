// Sharded scatter-gather layer + batching driver (DESIGN.md §8).
//
// The load-bearing claim: for exact indexes, sharding is invisible —
// ShardedIndex over FlatIndex returns bit-identical top-k to the
// unsharded index for any shard count, because the batch kernels are
// bit-identical per pair and the merge uses the same (distance, id)
// order as every index's TopK. Approximate indexes get a recall-parity
// bound instead. The BatchingDriver tests pin the serving invariant:
// every submitted query is exactly one of {hit, retrieved, coalesced}
// and none is dropped, even when Shutdown lands mid-batch.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "cache/concurrent_cache.h"
#include "common/rng.h"
#include "embed/hash_embedder.h"
#include "index/flat_index.h"
#include "index/index_factory.h"
#include "index/sharded_index.h"
#include "rag/batching_driver.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(0, dim);
  m.Reserve(rows);
  std::vector<float> row(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
    m.AppendRow(row);
  }
  return m;
}

void ExpectBitIdentical(const std::vector<Neighbor>& a,
                        const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    // Bit equality, not approximate: the kernels guarantee the same
    // float for the same pair regardless of batch position.
    EXPECT_EQ(a[i].distance, b[i].distance) << "rank " << i;
  }
}

double RecallAtK(const std::vector<Neighbor>& got,
                 const std::vector<Neighbor>& truth) {
  std::set<VectorId> truth_ids;
  for (const auto& n : truth) truth_ids.insert(n.id);
  std::size_t found = 0;
  for (const auto& n : got) found += truth_ids.count(n.id);
  return truth.empty() ? 1.0
                       : static_cast<double>(found) /
                             static_cast<double>(truth.size());
}

// ---------------------------------------------------- exactness (flat) --

// Acceptance gate: shards ∈ {1, 2, 8} over a >=100k-vector corpus must
// reproduce the unsharded FlatIndex top-k bit for bit, Search and
// SearchBatch alike.
TEST(ShardedIndexTest, FlatBitIdenticalAcrossShardCounts) {
  constexpr std::size_t kRows = 100000;
  constexpr std::size_t kDim = 32;
  constexpr std::size_t kK = 10;
  const Matrix corpus = RandomMatrix(kRows, kDim, 7);
  const Matrix queries = RandomMatrix(16, kDim, 8);

  IndexSpec spec;
  spec.kind = "flat";
  const auto unsharded = BuildIndex(spec, corpus);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    ShardedIndexOptions opts;
    opts.num_shards = shards;
    const auto sharded = BuildShardedIndex(spec, corpus, opts);
    ASSERT_EQ(sharded->num_shards(), shards);
    ASSERT_EQ(sharded->size(), kRows);

    const auto batch = sharded->SearchBatch(queries, kK);
    ASSERT_EQ(batch.size(), queries.rows());
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      const auto truth = unsharded->Search(queries.Row(q), kK);
      const auto single = sharded->Search(queries.Row(q), kK);
      ExpectBitIdentical(single, truth);
      ExpectBitIdentical(batch[q], truth);
    }
  }
}

// The sequential fallback (parallel=false) must agree with the
// scattered path — the pool is an execution detail, not a semantic one.
TEST(ShardedIndexTest, SequentialMatchesParallel) {
  const Matrix corpus = RandomMatrix(5000, 16, 11);
  const Matrix queries = RandomMatrix(8, 16, 12);
  IndexSpec spec;
  spec.kind = "flat";

  ShardedIndexOptions par;
  par.num_shards = 4;
  ShardedIndexOptions seq = par;
  seq.parallel = false;
  const auto a = BuildShardedIndex(spec, corpus, par);
  const auto b = BuildShardedIndex(spec, corpus, seq);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    ExpectBitIdentical(a->Search(queries.Row(q), 5),
                       b->Search(queries.Row(q), 5));
  }
}

TEST(ShardedIndexTest, FilteredSearchSeesGlobalIds) {
  const Matrix corpus = RandomMatrix(2000, 8, 21);
  IndexSpec spec;
  spec.kind = "flat";
  ShardedIndexOptions opts;
  opts.num_shards = 4;
  const auto sharded = BuildShardedIndex(spec, corpus, opts);
  const auto unsharded = BuildIndex(spec, corpus);

  // Keep only even global ids; results must match the unsharded
  // filtered search and contain no odd id.
  const VectorIndex::Filter even = [](VectorId id) { return id % 2 == 0; };
  const auto query = RandomMatrix(1, 8, 22);
  const auto got = sharded->SearchFiltered(query.Row(0), 10, even);
  const auto truth = unsharded->SearchFiltered(query.Row(0), 10, even);
  for (const auto& n : got) EXPECT_EQ(n.id % 2, 0u);
  ExpectBitIdentical(got, truth);
}

// ------------------------------------------------- merge determinism --

// Duplicate vectors spread across shards produce equal distances; the
// merge must order ties by ascending global id, exactly as a single
// index's TopK would.
TEST(ShardedIndexTest, MergeBreaksTiesById) {
  constexpr std::size_t kDim = 4;
  const std::vector<float> v{1.0f, 2.0f, 3.0f, 4.0f};

  // Interleave the same vector across two shards: shard 0 holds global
  // ids {0, 2}, shard 1 holds {1, 3}.
  std::vector<std::unique_ptr<VectorIndex>> shards;
  std::vector<std::vector<VectorId>> global_ids;
  for (int s = 0; s < 2; ++s) {
    auto flat = std::make_unique<FlatIndex>(kDim);
    flat->Add(v);
    flat->Add(v);
    shards.push_back(std::move(flat));
    global_ids.push_back({static_cast<VectorId>(s),
                          static_cast<VectorId>(s + 2)});
  }
  const ShardedIndex index(std::move(shards), std::move(global_ids));

  const auto got = index.Search(v, 4);
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, i);
    EXPECT_EQ(got[i].distance, 0.0f);
  }
}

TEST(ShardedIndexTest, AddRoutesToSmallestShardWithGlobalId) {
  constexpr std::size_t kDim = 4;
  std::vector<std::unique_ptr<VectorIndex>> shards;
  std::vector<std::vector<VectorId>> global_ids;
  // Uneven start: shard 0 has two vectors, shard 1 has one.
  auto s0 = std::make_unique<FlatIndex>(kDim);
  s0->Add(std::vector<float>{0, 0, 0, 0});
  s0->Add(std::vector<float>{1, 0, 0, 0});
  auto s1 = std::make_unique<FlatIndex>(kDim);
  s1->Add(std::vector<float>{0, 1, 0, 0});
  shards.push_back(std::move(s0));
  shards.push_back(std::move(s1));
  global_ids.push_back({0, 1});
  global_ids.push_back({2});
  ShardedIndex index(std::move(shards), std::move(global_ids));

  // Next insertion gets the next global id regardless of target shard.
  const std::vector<float> added{9, 9, 9, 9};
  EXPECT_EQ(index.Add(added), 3u);
  EXPECT_EQ(index.size(), 4u);
  // The smaller shard (1) received it.
  EXPECT_EQ(index.shard(1).size(), 2u);

  const auto got = index.Search(added, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 3u);
  EXPECT_EQ(got[0].distance, 0.0f);
}

// -------------------------------------------- recall parity (approx) --

// Approximate indexes are not bit-stable under sharding, but each shard
// runs its full search over a smaller sub-corpus, so recall must stay
// in the same band as the unsharded index.
TEST(ShardedIndexTest, ApproximateRecallParity) {
  constexpr std::size_t kRows = 2000;
  constexpr std::size_t kDim = 16;
  constexpr std::size_t kK = 10;
  const Matrix corpus = RandomMatrix(kRows, kDim, 31);
  const Matrix queries = RandomMatrix(32, kDim, 32);

  IndexSpec flat_spec;
  flat_spec.kind = "flat";
  const auto exact = BuildIndex(flat_spec, corpus);

  for (const char* kind : {"hnsw", "ivf_flat"}) {
    IndexSpec spec;
    spec.kind = kind;
    const auto unsharded = BuildIndex(spec, corpus);
    ShardedIndexOptions opts;
    opts.num_shards = 4;
    const auto sharded = BuildShardedIndex(spec, corpus, opts);

    double base = 0.0, shard = 0.0;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      const auto truth = exact->Search(queries.Row(q), kK);
      base += RecallAtK(unsharded->Search(queries.Row(q), kK), truth);
      shard += RecallAtK(sharded->Search(queries.Row(q), kK), truth);
    }
    base /= static_cast<double>(queries.rows());
    shard /= static_cast<double>(queries.rows());
    // Parity with slack for partition boundary effects.
    EXPECT_GE(shard, base - 0.05) << kind;
    EXPECT_GE(shard, 0.7) << kind;
  }
}

// ------------------------------------------------------ batching driver --

ProximityCacheOptions SmallCache() {
  ProximityCacheOptions opts;
  opts.capacity = 64;
  opts.tolerance = 2.0f;
  return opts;
}

// The serving invariant, under real contention: every query completes
// and is counted exactly once as hit, retrieved, or coalesced.
TEST(BatchingDriverTest, ConcurrentSubmitsAccountForEveryQuery) {
  constexpr std::size_t kDim = 16;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 64;
  const Matrix corpus = RandomMatrix(1000, kDim, 41);
  IndexSpec spec;
  spec.kind = "flat";
  ShardedIndexOptions sopts;
  sopts.num_shards = 2;
  const auto index = BuildShardedIndex(spec, corpus, sopts);
  ConcurrentProximityCache cache(kDim, SmallCache());

  BatchingDriverOptions opts;
  opts.max_batch = 8;
  opts.max_wait_us = 500;
  opts.top_k = 5;
  BatchingDriver driver(*index, cache, nullptr, opts);

  // A small pool of distinct queries so later submits hit the cache.
  const Matrix pool = RandomMatrix(24, kDim, 42);
  std::atomic<std::size_t> empty_results{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const auto row = pool.Row((t * kPerThread + i) % pool.rows());
        const auto docs = driver.Query(row);
        if (docs.size() != opts.top_k) empty_results.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  driver.Shutdown();

  EXPECT_EQ(empty_results.load(), 0u);
  const auto stats = driver.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.hits + stats.retrieved + stats.coalesced,
            stats.completed);
  EXPECT_GT(stats.batches, 0u);
  // 24 distinct queries, 256 submits: the cache must absorb repeats.
  EXPECT_GT(stats.hits, 0u);
}

// Shutdown mid-batch: with flush-on-full and flush-on-timer both out of
// reach, only the drain path can complete these queries.
TEST(BatchingDriverTest, ShutdownDrainsPendingQueries) {
  constexpr std::size_t kDim = 8;
  const Matrix corpus = RandomMatrix(200, kDim, 51);
  FlatIndex index(kDim);
  for (std::size_t r = 0; r < corpus.rows(); ++r) index.Add(corpus.Row(r));
  ConcurrentProximityCache cache(kDim, SmallCache());

  BatchingDriverOptions opts;
  opts.max_batch = 1000;                 // never fills
  opts.max_wait_us = 60ull * 1000000ull; // never times out
  opts.top_k = 3;
  BatchingDriver driver(index, cache, nullptr, opts);

  const Matrix queries = RandomMatrix(10, kDim, 52);
  std::vector<std::future<std::vector<VectorId>>> futures;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto row = queries.Row(q);
    futures.push_back(
        driver.Submit(std::vector<float>(row.begin(), row.end())));
  }
  driver.Shutdown();

  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f.get().size(), opts.top_k);
  }
  const auto stats = driver.stats();
  EXPECT_EQ(stats.completed, queries.rows());
  EXPECT_EQ(stats.hits + stats.retrieved + stats.coalesced,
            stats.completed);
  EXPECT_GT(stats.flushes_on_drain, 0u);
  EXPECT_EQ(stats.flushes_on_full, 0u);

  EXPECT_THROW(driver.Submit(std::vector<float>(kDim, 0.0f)),
               std::runtime_error);
}

// Identical embeddings within one flush coalesce onto a single
// retrieval instead of issuing duplicate searches.
TEST(BatchingDriverTest, IdenticalMissesCoalesceWithinBatch) {
  constexpr std::size_t kDim = 8;
  const Matrix corpus = RandomMatrix(200, kDim, 61);
  FlatIndex index(kDim);
  for (std::size_t r = 0; r < corpus.rows(); ++r) index.Add(corpus.Row(r));
  ConcurrentProximityCache cache(kDim, SmallCache());

  BatchingDriverOptions opts;
  opts.max_batch = 1000;
  opts.max_wait_us = 60ull * 1000000ull;
  opts.top_k = 4;
  BatchingDriver driver(index, cache, nullptr, opts);

  const std::vector<float> q(kDim, 0.25f);
  std::vector<std::future<std::vector<VectorId>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(driver.Submit(q));
  }
  driver.Flush();

  std::vector<VectorId> first;
  for (auto& f : futures) {
    const auto docs = f.get();
    if (first.empty()) first = docs;
    EXPECT_EQ(docs, first);  // followers get the leader's documents
  }
  driver.Shutdown();

  const auto stats = driver.stats();
  EXPECT_EQ(stats.retrieved, 1u);
  EXPECT_EQ(stats.coalesced + stats.hits, 5u);
}

// Post-shutdown submissions fail fast — exception from the future path,
// kUnavailable callback from the async path — and never deadlock. The
// concurrent variant races Submit against Shutdown from many threads
// (the TSan workout): every submission either completes with documents
// or fails with the shutdown error; none hangs, none is dropped.
TEST(BatchingDriverTest, SubmitAfterShutdownFailsFast) {
  constexpr std::size_t kDim = 8;
  FlatIndex index(kDim);
  const Matrix corpus = RandomMatrix(50, kDim, 71);
  for (std::size_t r = 0; r < corpus.rows(); ++r) index.Add(corpus.Row(r));
  ConcurrentProximityCache cache(kDim, SmallCache());

  HashEmbedderOptions eopts;
  eopts.dim = kDim;
  const HashEmbedder embedder(eopts);
  BatchingDriver driver(index, cache, &embedder, {});
  driver.Shutdown();

  EXPECT_THROW(driver.Submit(std::vector<float>(kDim, 0.1f)),
               std::runtime_error);
  EXPECT_THROW(driver.SubmitText("after shutdown"), std::runtime_error);

  // The async path reports kUnavailable through the callback instead.
  RequestStatus got = RequestStatus::kOk;
  driver.SubmitAsync(std::vector<float>(kDim, 0.1f), {},
                     [&](BatchResult r) { got = r.status; });
  EXPECT_EQ(got, RequestStatus::kUnavailable);
  got = RequestStatus::kOk;
  driver.SubmitTextAsync("also after shutdown", {},
                         [&](BatchResult r) { got = r.status; });
  EXPECT_EQ(got, RequestStatus::kUnavailable);
}

TEST(BatchingDriverTest, ConcurrentSubmitVersusShutdownNeverDeadlocks) {
  constexpr std::size_t kDim = 8;
  FlatIndex index(kDim);
  const Matrix corpus = RandomMatrix(50, kDim, 72);
  for (std::size_t r = 0; r < corpus.rows(); ++r) index.Add(corpus.Row(r));
  ConcurrentProximityCache cache(kDim, SmallCache());

  BatchingDriverOptions opts;
  opts.max_batch = 4;
  opts.top_k = 2;
  BatchingDriver driver(index, cache, nullptr, opts);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 64;
  std::atomic<std::uint64_t> completed{0}, rejected{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        std::vector<float> q(kDim);
        for (auto& x : q) x = static_cast<float>(rng.Gaussian(0, 1));
        try {
          auto fut = driver.Submit(std::move(q));
          // The future resolves either with documents or with the
          // drain-time rejection — but always resolves.
          try {
            if (!fut.get().empty()) ++completed;
          } catch (const std::exception&) {
            ++rejected;
          }
        } catch (const std::runtime_error&) {
          ++rejected;  // Submit itself refused: driver already stopped
        }
      }
    });
  }
  // Land Shutdown mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  driver.Shutdown();
  for (auto& th : threads) th.join();

  EXPECT_EQ(completed.load() + rejected.load(), kThreads * kPerThread);
  const auto stats = driver.stats();
  EXPECT_EQ(stats.hits + stats.retrieved + stats.coalesced + stats.shed +
                stats.expired,
            stats.completed);
}

TEST(BatchingDriverTest, SubmitTextMatchesEmbeddedSubmit) {
  HashEmbedderOptions eopts;
  eopts.dim = 32;
  const HashEmbedder embedder(eopts);

  const std::vector<std::string> docs_text{
      "the cache returns approximate neighbors",
      "vector databases scale with shards",
      "retrieval augmented generation pipeline",
      "microbatching amortizes embedding calls",
      "thread pools scatter and gather work",
      "similarity tolerance controls hit rate",
  };
  const Matrix corpus = embedder.EmbedBatch(docs_text);
  FlatIndex index(eopts.dim);
  for (std::size_t r = 0; r < corpus.rows(); ++r) index.Add(corpus.Row(r));
  ConcurrentProximityCache cache(eopts.dim, SmallCache());

  BatchingDriverOptions opts;
  opts.top_k = 3;
  BatchingDriver driver(index, cache, &embedder, opts);

  const std::string query = "approximate cache neighbors";
  auto via_text = driver.SubmitText(query);
  auto via_embed = driver.Submit(embedder.Embed(query));
  EXPECT_EQ(via_text.get(), via_embed.get());
  driver.Shutdown();
}

}  // namespace
}  // namespace proximity
