// Net serving front-end (DESIGN.md §9): protocol framing, the loopback
// integration path, and the unglamorous cases the server must get right
// — overload shedding, in-queue deadlines, disconnecting clients, and
// the signal-driven drain.
//
// The acceptance equation pinned here: after a drain,
//   hits + retrieved + coalesced + shed + expired == submitted
// on the driver, and requests == responses on the server — every frame
// that reaches the server is answered exactly once, every submitted
// query is accounted for, nothing leaks.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "cache/concurrent_cache.h"
#include "embed/hash_embedder.h"
#include "index/flat_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "rag/batching_driver.h"

namespace proximity {
namespace {

// ------------------------------------------------------------ protocol --

TEST(NetProtocolTest, RequestRoundTrip) {
  net::Request in;
  in.id = 0x1122334455667788ull;
  in.flags = 7;
  in.deadline_us = 2500;
  in.text = "what is approximate caching?";
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, in);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.deadline_us, in.deadline_us);
  EXPECT_EQ(out.text, in.text);
}

TEST(NetProtocolTest, ResponseRoundTrip) {
  net::Response in;
  in.id = 42;
  in.status = RequestStatus::kOk;
  in.flags = net::kFlagCacheHit;
  in.queue_ns = 1234;
  in.server_ns = 56789;
  in.documents = {3, 1, 4, 1, 5};
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, in);

  net::Response out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_TRUE(out.cache_hit());
  EXPECT_FALSE(out.coalesced());
  EXPECT_EQ(out.queue_ns, in.queue_ns);
  EXPECT_EQ(out.server_ns, in.server_ns);
  EXPECT_EQ(out.documents, in.documents);
}

// Partial reads: every strict prefix parses as kNeedMore, never kError,
// and the full buffer parses exactly once.
TEST(NetProtocolTest, PartialFramesNeedMore) {
  net::Request in;
  in.id = 9;
  in.text = "prefix safety";
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, in);

  for (std::size_t n = 0; n < wire.size(); ++n) {
    net::Request out;
    std::size_t consumed = 0;
    EXPECT_EQ(net::ParseFrame(
                  std::span<const std::uint8_t>(wire.data(), n), &consumed,
                  &out),
              net::ParseResult::kNeedMore)
        << "prefix length " << n;
  }
}

// Pipelining: two frames in one buffer separate cleanly.
TEST(NetProtocolTest, PipelinedFramesSeparate) {
  net::Request a, b;
  a.id = 1;
  a.text = "first";
  b.id = 2;
  b.text = "second, longer than the first";
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, a);
  net::AppendFrame(wire, b);

  net::Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::ParseFrame(wire, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.id, 1u);
  const auto rest =
      std::span<const std::uint8_t>(wire).subspan(consumed);
  ASSERT_EQ(net::ParseFrame(rest, &consumed, &out), net::ParseResult::kOk);
  EXPECT_EQ(out.id, 2u);
  EXPECT_EQ(out.text, b.text);
}

TEST(NetProtocolTest, MalformedFramesAreErrors) {
  net::Request in;
  in.id = 5;
  in.text = "ok";
  std::vector<std::uint8_t> wire;
  net::AppendFrame(wire, in);

  // Corrupt magic.
  auto bad_magic = wire;
  bad_magic[4] ^= 0xFF;
  net::Request out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::ParseFrame(bad_magic, &consumed, &out),
            net::ParseResult::kError);

  // Oversized length prefix.
  std::vector<std::uint8_t> oversize(8, 0);
  const std::uint32_t huge = net::kMaxFrameBytes + 1;
  std::memcpy(oversize.data(), &huge, sizeof(huge));
  EXPECT_EQ(net::ParseFrame(oversize, &consumed, &out),
            net::ParseResult::kError);

  // Truncated payload: length prefix says 4 bytes of garbage.
  std::vector<std::uint8_t> garbage{4, 0, 0, 0, 1, 2, 3, 4};
  EXPECT_EQ(net::ParseFrame(garbage, &consumed, &out),
            net::ParseResult::kError);
}

// -------------------------------------------------------------- server --

// The full serving stack over a tiny corpus; per-test options.
struct TestStack {
  HashEmbedder embedder;
  FlatIndex index;
  std::unique_ptr<ConcurrentProximityCache> cache;
  std::unique_ptr<BatchingDriver> driver;
  std::unique_ptr<net::Server> server;

  explicit TestStack(BatchingDriverOptions dopts = {},
                     net::ServerOptions nopts = {})
      : embedder(SmallEmbedder()), index(embedder.dim()) {
    const std::vector<std::string> docs{
        "approximate caching for retrieval augmented generation",
        "vector databases shard across cores",
        "epoll event loops serve many sockets",
        "microbatching amortizes embedding and search",
        "deadlines and backpressure keep tails bounded",
        "graceful drains finish in-flight work",
    };
    const Matrix corpus = embedder.EmbedBatch(docs);
    for (std::size_t r = 0; r < corpus.rows(); ++r) {
      index.Add(corpus.Row(r));
    }
    ProximityCacheOptions copts;
    copts.capacity = 16;
    copts.tolerance = 1.0f;
    cache = std::make_unique<ConcurrentProximityCache>(embedder.dim(),
                                                       copts);
    dopts.top_k = 3;
    driver = std::make_unique<BatchingDriver>(index, *cache, &embedder,
                                              dopts);
    server = std::make_unique<net::Server>(*driver, nopts);
    server->Start();
  }

  static HashEmbedderOptions SmallEmbedder() {
    HashEmbedderOptions eopts;
    eopts.dim = 32;
    return eopts;
  }

  ~TestStack() {
    server->Stop();
    driver->Shutdown();
  }
};

// Acceptance: N connections × M requests each; every id answered exactly
// once; after a SIGTERM-triggered drain the driver accounts for every
// submission.
TEST(NetServerTest, LoopbackIntegrationAnswersEveryRequestOnce) {
  constexpr std::size_t kConns = 4;
  constexpr std::size_t kPerConn = 50;
  TestStack stack;

  std::vector<std::map<std::uint64_t, int>> seen(kConns);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      net::Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));
      for (std::size_t i = 0; i < kPerConn; ++i) {
        net::Request req;
        req.id = c * kPerConn + i + 1;
        req.text = "query number " + std::to_string(i % 7);
        net::Response resp;
        ASSERT_TRUE(client.Call(req, &resp));
        EXPECT_EQ(resp.id, req.id);
        EXPECT_EQ(resp.status, RequestStatus::kOk);
        EXPECT_EQ(resp.documents.size(), 3u);
        ++seen[c][resp.id];
      }
    });
  }
  for (auto& t : threads) t.join();

  std::size_t answered = 0;
  for (const auto& m : seen) {
    for (const auto& [id, count] : m) {
      EXPECT_EQ(count, 1) << "id " << id << " answered more than once";
      ++answered;
    }
  }
  EXPECT_EQ(answered, kConns * kPerConn);

  // Signal-driven drain: the handler only calls RequestDrain.
  net::InstallSignalDrain(stack.server.get());
  std::raise(SIGTERM);
  stack.server->Join();
  net::InstallSignalDrain(nullptr);
  stack.driver->Shutdown();

  const net::ServerStats ns = stack.server->stats();
  EXPECT_EQ(ns.requests, kConns * kPerConn);
  EXPECT_EQ(ns.responses, ns.requests);
  EXPECT_EQ(ns.protocol_errors, 0u);

  const BatchingDriverStats ds = stack.driver->stats();
  EXPECT_EQ(ds.submitted, kConns * kPerConn);
  EXPECT_EQ(ds.hits + ds.retrieved + ds.coalesced + ds.shed + ds.expired,
            ds.submitted);
}

// Overload: the driver's admission queue is bounded at 4 and the flusher
// is parked (flush-on-full and flush-on-timer out of reach), so of 40
// pipelined requests exactly 4 can queue — the rest must be shed with
// RESOURCE_EXHAUSTED while every request still gets an answer.
TEST(NetServerTest, OverloadShedsWithResourceExhausted) {
  BatchingDriverOptions dopts;
  dopts.max_batch = 1000;
  dopts.max_wait_us = 60ull * 1000000ull;
  dopts.queue_bound = 4;
  TestStack stack(dopts);

  constexpr std::size_t kRequests = 40;
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));
  for (std::size_t i = 0; i < kRequests; ++i) {
    net::Request req;
    req.id = i + 1;
    req.text = "overload " + std::to_string(i);
    ASSERT_TRUE(client.Send(req));
  }

  // Release the queued 4 only after every request has been admitted or
  // shed, so the outcome split is deterministic.
  std::thread flusher([&] {
    while (stack.server->stats().requests < kRequests) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stack.driver->Flush();
  });

  std::size_t ok = 0, shed = 0;
  std::map<std::uint64_t, int> seen;
  for (std::size_t i = 0; i < kRequests; ++i) {
    net::Response resp;
    ASSERT_TRUE(client.Recv(&resp));
    ++seen[resp.id];
    if (resp.status == RequestStatus::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(resp.status, RequestStatus::kResourceExhausted);
      ++shed;
    }
  }
  flusher.join();

  EXPECT_EQ(ok, dopts.queue_bound);
  EXPECT_EQ(shed, kRequests - dopts.queue_bound);
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1) << "id " << id;
  }
  const BatchingDriverStats ds = stack.driver->stats();
  EXPECT_EQ(ds.shed, shed);
  EXPECT_EQ(ds.hits + ds.retrieved + ds.coalesced + ds.shed + ds.expired,
            ds.submitted);
}

// A request whose deadline passes while queued completes with
// DEADLINE_EXCEEDED without ever being embedded or searched.
TEST(NetServerTest, DeadlineExpiresInQueueWithoutRunning) {
  BatchingDriverOptions dopts;
  dopts.max_batch = 1000;
  dopts.max_wait_us = 30000;  // flush-on-timer at 30ms
  TestStack stack(dopts);

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));
  net::Request req;
  req.id = 77;
  req.deadline_us = 1000;  // 1ms — long gone when the 30ms flush fires
  req.text = "too late";
  net::Response resp;
  ASSERT_TRUE(client.Call(req, &resp));
  EXPECT_EQ(resp.id, 77u);
  EXPECT_EQ(resp.status, RequestStatus::kDeadlineExceeded);
  EXPECT_TRUE(resp.documents.empty());

  const BatchingDriverStats ds = stack.driver->stats();
  EXPECT_EQ(ds.expired, 1u);
  EXPECT_EQ(ds.retrieved, 0u);  // the index was never touched
  EXPECT_EQ(ds.hits, 0u);
}

// A client that disconnects mid-flight: its completion finds no
// connection and is discarded (counted), never written to a dead fd.
TEST(NetServerTest, DisconnectedClientCompletionIsAbandoned) {
  BatchingDriverOptions dopts;
  dopts.max_batch = 1000;
  dopts.max_wait_us = 100000;  // 100ms: long enough to disconnect first
  TestStack stack(dopts);

  {
    net::Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));
    net::Request req;
    req.id = 1;
    req.text = "abandon me";
    ASSERT_TRUE(client.Send(req));
  }  // destructor closes the socket with the request still in flight

  // The flush at 100ms completes the request; its connection is gone.
  for (int i = 0; i < 100; ++i) {
    if (stack.server->stats().abandoned > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const net::ServerStats ns = stack.server->stats();
  EXPECT_EQ(ns.abandoned, 1u);
  EXPECT_EQ(ns.requests, 1u);
  EXPECT_EQ(ns.responses, 0u);

  const BatchingDriverStats ds = stack.driver->stats();
  EXPECT_EQ(ds.completed, 1u);  // the work itself was not dropped
}

// Garbage on the wire is a protocol error: the connection closes and the
// server stays healthy for other clients.
TEST(NetServerTest, MalformedFrameClosesConnectionOnly) {
  TestStack stack;

  {
    // A raw loopback socket sends a frame with a corrupted magic.
    net::Request poison;
    poison.id = 1;
    poison.text = "x";
    std::vector<std::uint8_t> wire;
    net::AppendFrame(wire, poison);
    wire[4] ^= 0xFF;  // corrupt the magic inside the payload

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(stack.server->port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    // The server closes on us without answering: read() sees EOF.
    std::uint8_t buf[16];
    EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);
    ::close(fd);
  }

  // A healthy client still gets served.
  net::Client good;
  ASSERT_TRUE(good.Connect("127.0.0.1", stack.server->port()));
  net::Request req;
  req.id = 2;
  req.text = "still alive?";
  net::Response resp;
  ASSERT_TRUE(good.Call(req, &resp));
  EXPECT_EQ(resp.status, RequestStatus::kOk);
  EXPECT_GE(stack.server->stats().protocol_errors, 1u);
}

// Draining server answers new requests UNAVAILABLE (when they arrive on
// an existing connection) and refuses new connections.
TEST(NetServerTest, DrainAnswersUnavailable) {
  BatchingDriverOptions dopts;
  dopts.max_batch = 1000;
  dopts.max_wait_us = 200000;  // park in-flight work during the drain
  net::ServerOptions nopts;
  nopts.drain_timeout_ms = 2000;
  TestStack stack(dopts, nopts);

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.server->port()));
  net::Request held;
  held.id = 1;
  held.text = "held in queue";
  ASSERT_TRUE(client.Send(held));

  // Give the event loop a beat to admit the request, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stack.server->RequestDrain();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  net::Request late;
  late.id = 2;
  late.text = "too late to start";
  ASSERT_TRUE(client.Send(late));

  // Both answers arrive: UNAVAILABLE for the late one, then the held
  // request completes when the 200ms flush fires and the drain ends.
  std::map<std::uint64_t, RequestStatus> got;
  for (int i = 0; i < 2; ++i) {
    net::Response resp;
    ASSERT_TRUE(client.Recv(&resp));
    got[resp.id] = resp.status;
  }
  EXPECT_EQ(got[1], RequestStatus::kOk);
  EXPECT_EQ(got[2], RequestStatus::kUnavailable);

  stack.server->Join();
  EXPECT_EQ(stack.server->stats().unavailable, 1u);
}

}  // namespace
}  // namespace proximity
