// End-to-end integration tests: the full Figure-1 workflow driven through
// text (no precomputed embeddings), combining components the unit suites
// test in isolation — tiered caching inside a retrieval flow, filtered
// retrieval with router isolation, trace round-trips through the
// pipeline, and snapshot/restore of a mid-session state.
#include <gtest/gtest.h>

#include <sstream>

#include "cache/filtered_router.h"
#include "cache/tiered_cache.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "index/index_io.h"
#include "llm/answer_model.h"
#include "llm/prompt.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"
#include "workload/trace.h"

namespace proximity {
namespace {

class QuietLogs : public ::testing::Environment {
 public:
  void SetUp() override { SetLogLevel(LogLevel::kWarn); }
};
const auto* const kQuietLogs =
    ::testing::AddGlobalTestEnvironment(new QuietLogs);

struct E2eFixture {
  E2eFixture() {
    WorkloadSpec spec = MmluLikeSpec(700, 42);
    spec.num_questions = 12;
    spec.num_clusters = 3;
    workload = BuildWorkload(spec);
    corpus_embeddings = embedder.EmbedBatch(workload.passages);
    IndexSpec ispec;
    ispec.kind = "flat";
    index = BuildIndex(ispec, corpus_embeddings);

    QueryStreamOptions sopts;
    sopts.seed = 5;
    stream = BuildQueryStream(workload, sopts);
  }

  HashEmbedder embedder;
  Workload workload;
  Matrix corpus_embeddings;
  std::unique_ptr<VectorIndex> index;
  std::vector<StreamEntry> stream;
};

TEST(E2eTest, TextToPromptCarriesRetrievedPassages) {
  E2eFixture fx;
  // Step 3-7 of Figure 1 for one query, all through text.
  const auto& entry = fx.stream.front();
  const auto embedding = fx.embedder.Embed(entry.text);
  const auto neighbors = fx.index->Search(embedding, 3);
  std::vector<VectorId> ids;
  for (const auto& n : neighbors) ids.push_back(n.id);
  const std::string prompt = BuildPrompt(entry.text, ids, fx.workload.passages);
  // The prompt must quote the retrieved passages verbatim and end with
  // the user question.
  for (VectorId id : ids) {
    EXPECT_NE(prompt.find(fx.workload.passages[static_cast<std::size_t>(id)]),
              std::string::npos);
  }
  EXPECT_NE(prompt.find(entry.text), std::string::npos);
}

TEST(E2eTest, RetrievalForAQuestionFindsItsGoldPassages) {
  E2eFixture fx;
  // Every verbatim question retrieves all of its gold passages in the
  // top-k (this is the ground-truth property the accuracy panel rests
  // on).
  for (const auto& question : fx.workload.questions) {
    const auto embedding = fx.embedder.Embed(question.text);
    const auto neighbors = fx.index->Search(embedding, 10);
    std::size_t found = 0;
    for (const auto& n : neighbors) {
      if (std::find(question.gold_ids.begin(), question.gold_ids.end(),
                    n.id) != question.gold_ids.end()) {
        ++found;
      }
    }
    EXPECT_EQ(found, question.gold_ids.size())
        << "question: " << question.text.substr(0, 40);
  }
}

TEST(E2eTest, TieredCacheServesVariantTrafficThroughBothLevels) {
  E2eFixture fx;
  TieredCacheOptions topts;
  topts.l1_capacity = 64;
  topts.l2.capacity = 64;
  topts.l2.tolerance = 2.0f;
  TieredCache cache(fx.embedder.dim(), topts);

  auto retrieve = [&](std::span<const float> q) {
    std::vector<VectorId> ids;
    for (const auto& n : fx.index->Search(q, 10)) ids.push_back(n.id);
    return ids;
  };

  // First pass: all misses fill both levels; second pass over identical
  // text: all L1; a variant-perturbed pass: L2.
  for (const auto& e : fx.stream) {
    cache.FetchOrRetrieve(fx.embedder.Embed(e.text), retrieve);
  }
  const auto after_fill = cache.stats();
  for (const auto& e : fx.stream) {
    TieredCache::Source source;
    cache.FetchOrRetrieve(fx.embedder.Embed(e.text), retrieve, &source);
    EXPECT_EQ(source, TieredCache::Source::kL1);
  }
  EXPECT_EQ(cache.stats().l1_hits - after_fill.l1_hits, fx.stream.size());
}

TEST(E2eTest, TraceRoundTripReproducesPipelineMetricsExactly) {
  E2eFixture fx;
  std::stringstream trace;
  WriteTrace(trace, fx.stream);
  const auto replayed = ReadTrace(trace, fx.workload.questions.size());

  auto run = [&](const std::vector<StreamEntry>& entries) {
    ProximityCacheOptions copts;
    copts.capacity = 32;
    copts.tolerance = 2.0f;
    ProximityCache cache(fx.embedder.dim(), copts);
    Retriever retriever(fx.index.get(), &cache, nullptr, {.top_k = 10});
    RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                         AnswerModel(MmluAnswerParams()), 5);
    std::vector<std::string> texts;
    for (const auto& e : entries) texts.push_back(e.text);
    const Matrix embeddings = fx.embedder.EmbedBatch(texts);
    return pipeline.RunStream(entries, embeddings);
  };

  const RunMetrics original = run(fx.stream);
  const RunMetrics replay = run(replayed);
  EXPECT_DOUBLE_EQ(replay.accuracy, original.accuracy);
  EXPECT_DOUBLE_EQ(replay.hit_rate, original.hit_rate);
}

TEST(E2eTest, MidSessionSnapshotRestoresServingState) {
  E2eFixture fx;
  ProximityCacheOptions copts;
  copts.capacity = 48;
  copts.tolerance = 2.0f;
  ProximityCache cache(fx.embedder.dim(), copts);
  Retriever retriever(fx.index.get(), &cache, nullptr, {.top_k = 10});

  // Serve half the stream, snapshot index + cache, reload, serve the rest.
  const std::size_t half = fx.stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    retriever.Retrieve(fx.embedder.Embed(fx.stream[i].text));
  }
  std::stringstream index_snap, cache_snap;
  fx.index->SaveTo(index_snap);
  cache.SaveTo(cache_snap);

  auto restored_index = LoadIndex(index_snap);
  ProximityCache restored_cache = ProximityCache::LoadFrom(cache_snap);
  Retriever restored(restored_index.get(), &restored_cache, nullptr,
                     {.top_k = 10});

  // Both instances serve the second half identically (documents must
  // match query by query; latencies obviously differ).
  for (std::size_t i = half; i < fx.stream.size(); ++i) {
    const auto embedding = fx.embedder.Embed(fx.stream[i].text);
    const auto a = retriever.Retrieve(embedding);
    const auto b = restored.Retrieve(embedding);
    EXPECT_EQ(a.documents, b.documents) << "query " << i;
    EXPECT_EQ(a.cache_hit, b.cache_hit) << "query " << i;
  }
}

TEST(E2eTest, FilteredPipelineNeverLeaksAcrossCollections) {
  E2eFixture fx;
  // Two collections split by passage id parity; queries alternate
  // between them with a shared router.
  ProximityCacheOptions copts;
  copts.capacity = 32;
  copts.tolerance = 5.0f;  // loose: would leak without per-tag isolation
  FilteredCacheRouter router(fx.embedder.dim(), copts);

  for (std::size_t i = 0; i < fx.stream.size(); ++i) {
    const FilterTag tag = 1 + (i % 2);
    const bool want_even = tag == 1;
    const auto embedding = fx.embedder.Embed(fx.stream[i].text);

    std::vector<VectorId> documents;
    const auto cached = router.Lookup(tag, embedding);
    if (cached.hit) {
      documents.assign(cached.documents.begin(), cached.documents.end());
    } else {
      const auto results = fx.index->SearchFiltered(
          embedding, 5, [want_even](VectorId id) {
            return (id % 2 == 0) == want_even;
          });
      for (const auto& n : results) documents.push_back(n.id);
      router.Insert(tag, embedding, documents);
    }
    for (VectorId id : documents) {
      EXPECT_EQ(id % 2 == 0, want_even) << "filter leak at query " << i;
    }
  }
  // With loose tau and alternating tags, both caches must have seen hits
  // (the test would be vacuous otherwise).
  EXPECT_GT(router.TotalStats().hits, 0u);
}

TEST(E2eTest, HnswAndFlatPipelinesAgreeOnHighRecallSettings) {
  E2eFixture fx;
  IndexSpec hspec;
  hspec.kind = "hnsw";
  hspec.hnsw_ef_construction = 100;
  hspec.hnsw_ef_search = 700;  // ef >= corpus: exhaustive
  auto hnsw = BuildIndex(hspec, fx.corpus_embeddings);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto embedding = fx.embedder.Embed(fx.stream[i].text);
    EXPECT_EQ(hnsw->Search(embedding, 5), fx.index->Search(embedding, 5))
        << "query " << i;
  }
}

}  // namespace
}  // namespace proximity
