// Failure-injection and edge-case tests: how the cache, retriever, and
// sweep harness behave when the database misbehaves or inputs are
// degenerate.
#include <gtest/gtest.h>

#include <memory>

#include "cache/proximity_cache.h"
#include "common/rng.h"
#include "embed/hash_embedder.h"
#include "index/flat_index.h"
#include "index/slow_storage_index.h"
#include "rag/experiment.h"
#include "rag/retriever.h"

namespace proximity {
namespace {

/// Test double: a VectorIndex whose Search throws on selected calls.
class FlakyIndex final : public VectorIndex {
 public:
  FlakyIndex(std::unique_ptr<VectorIndex> inner, int fail_every)
      : inner_(std::move(inner)), fail_every_(fail_every) {}

  std::size_t dim() const noexcept override { return inner_->dim(); }
  Metric metric() const noexcept override { return inner_->metric(); }
  std::size_t size() const noexcept override { return inner_->size(); }
  VectorId Add(std::span<const float> vec) override {
    return inner_->Add(vec);
  }
  std::string Describe() const override { return "flaky"; }

  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override {
    ++calls_;
    if (fail_every_ > 0 && calls_ % fail_every_ == 0) {
      throw std::runtime_error("injected database failure");
    }
    return inner_->Search(query, k);
  }

  int calls() const noexcept { return calls_; }

 private:
  std::unique_ptr<VectorIndex> inner_;
  int fail_every_;
  mutable int calls_ = 0;
};

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Matrix m(rows, dim);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : m.MutableRow(r)) {
      x = static_cast<float>(rng.Gaussian(0, 1));
    }
  }
  return m;
}

std::unique_ptr<FlakyIndex> MakeFlaky(int fail_every) {
  auto inner = std::make_unique<FlatIndex>(4);
  inner->AddBatch(RandomMatrix(100, 4, 1));
  return std::make_unique<FlakyIndex>(std::move(inner), fail_every);
}

TEST(FaultTest, RetrieverPropagatesDatabaseFailure) {
  auto flaky = MakeFlaky(/*fail_every=*/1);  // always fails
  Retriever retriever(flaky.get(), nullptr, nullptr, {.top_k = 5});
  const std::vector<float> q = {0, 0, 0, 0};
  EXPECT_THROW(retriever.Retrieve(q), std::runtime_error);
}

TEST(FaultTest, FailedRetrievalDoesNotPolluteCache) {
  ProximityCacheOptions opts;
  opts.capacity = 4;
  opts.tolerance = 100.0f;
  ProximityCache cache(4, opts);
  const std::vector<float> q = {1, 1, 1, 1};
  EXPECT_THROW(
      cache.FetchOrRetrieve(
          q,
          [](std::span<const float>) -> std::vector<VectorId> {
            throw std::runtime_error("db down");
          }),
      std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // nothing half-inserted
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(FaultTest, CacheAbsorbsIntermittentFailures) {
  // With a warm cache, hits keep flowing even while the database is down:
  // the availability benefit of caching layers.
  auto flaky = MakeFlaky(/*fail_every=*/0);  // healthy for warm-up
  ProximityCacheOptions opts;
  opts.capacity = 16;
  opts.tolerance = 0.5f;
  ProximityCache cache(4, opts);
  Retriever retriever(flaky.get(), &cache, nullptr, {.top_k = 5});

  const std::vector<float> q = {0.5f, 0.5f, 0.5f, 0.5f};
  const auto warm = retriever.Retrieve(q);
  EXPECT_FALSE(warm.cache_hit);

  // Now the database "goes down" — but the cached neighborhood still
  // serves.
  auto broken = std::make_unique<FlakyIndex>(
      std::make_unique<FlatIndex>(4), /*fail_every=*/1);
  Retriever broken_retriever(broken.get(), &cache, nullptr, {.top_k = 5});
  const auto hit = broken_retriever.Retrieve(q);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.documents, warm.documents);
  // Outside the cached neighborhood the failure surfaces.
  const std::vector<float> far = {50, 50, 50, 50};
  EXPECT_THROW(broken_retriever.Retrieve(far), std::runtime_error);
}

TEST(FaultTest, SlowStorageOverFlakyIndexStillCharges) {
  VirtualClock clock;
  auto flaky = MakeFlaky(/*fail_every=*/1);
  SlowStorageIndex slow(std::move(flaky), {.fixed_ns = 100}, &clock);
  const std::vector<float> q = {0, 0, 0, 0};
  EXPECT_THROW(slow.Search(q, 1), std::runtime_error);
  // The failure happened before any results: no latency charged.
  EXPECT_EQ(clock.Now(), 0);
}

// ------------------------------------------------------------ Edge cases --

TEST(EdgeCaseTest, IndexReturningFewerThanTopK) {
  FlatIndex tiny(4);
  tiny.Add(std::vector<float>{1, 2, 3, 4});
  ProximityCacheOptions opts;
  opts.capacity = 4;
  opts.tolerance = 0.1f;
  ProximityCache cache(4, opts);
  Retriever retriever(&tiny, &cache, nullptr, {.top_k = 10});
  const std::vector<float> q = {0, 0, 0, 0};
  const auto r1 = retriever.Retrieve(q);
  EXPECT_EQ(r1.documents.size(), 1u);  // index only holds one vector
  const auto r2 = retriever.Retrieve(q);
  EXPECT_TRUE(r2.cache_hit);  // short lists are cached faithfully
  EXPECT_EQ(r2.documents, r1.documents);
}

TEST(EdgeCaseTest, EmptyIndexCachesEmptyResult) {
  FlatIndex empty(4);
  ProximityCacheOptions opts;
  opts.capacity = 4;
  opts.tolerance = 0.1f;
  ProximityCache cache(4, opts);
  Retriever retriever(&empty, &cache, nullptr, {.top_k = 5});
  const std::vector<float> q = {0, 0, 0, 0};
  EXPECT_TRUE(retriever.Retrieve(q).documents.empty());
  const auto r2 = retriever.Retrieve(q);
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_TRUE(r2.documents.empty());
}

TEST(EdgeCaseTest, LatencySummaryWithoutBaselineIsEmpty) {
  // No tau = 0 cells -> no reduction rows (and no crash).
  std::vector<SweepCell> cells(2);
  cells[0].capacity = 10;
  cells[0].tolerance = 1.0;
  cells[1].capacity = 10;
  cells[1].tolerance = 2.0;
  const CsvTable summary = SweepRunner::LatencyReductionSummary(cells);
  EXPECT_EQ(summary.rows(), 0u);
}

TEST(EdgeCaseTest, EmbedderHandlesBatchEdges) {
  HashEmbedder embedder({.dim = 32});
  const Matrix empty = embedder.EmbedBatch({});
  EXPECT_EQ(empty.rows(), 0u);
  const Matrix one = embedder.EmbedBatch({""});
  EXPECT_EQ(one.rows(), 1u);
  for (float x : one.Row(0)) EXPECT_EQ(x, 0.f);
}

TEST(EdgeCaseTest, CacheWithCapacityOne) {
  ProximityCacheOptions opts;
  opts.capacity = 1;
  opts.tolerance = 0.1f;
  ProximityCache cache(2, opts);
  cache.Insert(std::vector<float>{0, 0}, {1});
  cache.Insert(std::vector<float>{5, 5}, {2});  // evicts the only entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup(std::vector<float>{0, 0}).hit);
  EXPECT_TRUE(cache.Lookup(std::vector<float>{5, 5}).hit);
}

}  // namespace
}  // namespace proximity
