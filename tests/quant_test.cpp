// Compressed-vector fast path (DESIGN.md §11): CompressedStore layout
// and encode invariants, analytic SQ8/SQ4 error bounds, SIMD-level
// parity of the quantized kernels, the recall@10 gate of the two-level
// search against exact float results, serialization round-trips
// (including float32 back-compat), factory wiring, scan.* telemetry,
// and the parallel quantized scan (the TSan workout of this suite).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/index_factory.h"
#include "index/ivf_flat_index.h"
#include "index/recall.h"
#include "index/vamana_index.h"
#include "obs/metrics_registry.h"
#include "vecmath/compressed_store.h"
#include "vecmath/kernels.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(0, dim);
  m.Reserve(rows);
  std::vector<float> row(dim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
    m.AppendRow(row);
  }
  return m;
}

// ------------------------------------------------------------ layout ----

TEST(QuantLayout, NameParseRoundTrip) {
  for (StorageLayout l : {StorageLayout::kFloat32, StorageLayout::kSq8,
                          StorageLayout::kSq4}) {
    StorageLayout parsed;
    ASSERT_TRUE(ParseStorageLayout(StorageLayoutName(l), &parsed));
    EXPECT_EQ(parsed, l);
  }
  StorageLayout out;
  EXPECT_FALSE(ParseStorageLayout("bogus", &out));
  EXPECT_FALSE(ParseStorageLayout("", &out));
}

TEST(QuantLayout, BlocksAreCacheLineAligned) {
  for (StorageLayout l : {StorageLayout::kSq8, StorageLayout::kSq4}) {
    for (std::size_t dim : {1u, 7u, 48u, 64u, 100u, 768u}) {
      CompressedStore s(dim, l);
      const std::size_t code_bytes =
          l == StorageLayout::kSq8 ? dim : (dim + 1) / 2;
      EXPECT_EQ(s.block_stride() % CompressedStore::kBlockAlign, 0u);
      EXPECT_GE(s.block_stride(), CompressedStore::kHeaderBytes + code_bytes);
      // Padding never exceeds one extra cache line.
      EXPECT_LT(s.block_stride(),
                CompressedStore::kHeaderBytes + code_bytes +
                    CompressedStore::kBlockAlign);
    }
  }
  // sq8 at 768-d: 16 + 768 = 784 -> one 64-byte pad step to 832.
  EXPECT_EQ(CompressedStore(768, StorageLayout::kSq8).block_stride(), 832u);
  EXPECT_EQ(CompressedStore(768, StorageLayout::kSq4).block_stride(), 448u);
}

TEST(QuantLayout, RejectsFloat32AndZeroDim) {
  EXPECT_THROW(CompressedStore(16, StorageLayout::kFloat32),
               std::invalid_argument);
  EXPECT_THROW(CompressedStore(0, StorageLayout::kSq8),
               std::invalid_argument);
}

// ------------------------------------------------------------ encode ----

TEST(QuantEncode, DecodeWithinHalfStep) {
  for (StorageLayout l : {StorageLayout::kSq8, StorageLayout::kSq4}) {
    const std::size_t dim = 65;  // odd: exercises the sq4 high-half pad
    const Matrix data = RandomMatrix(50, dim, 7);
    CompressedStore s(dim, l);
    for (std::size_t r = 0; r < data.rows(); ++r) s.AppendRow(data.Row(r));
    ASSERT_EQ(s.rows(), data.rows());
    std::vector<float> decoded(dim);
    for (std::size_t r = 0; r < s.rows(); ++r) {
      const float half_step = s.RowScale(r) * 0.5f;
      s.DecodeRow(r, decoded);
      const auto row = data.Row(r);
      for (std::size_t j = 0; j < dim; ++j) {
        EXPECT_LE(std::abs(decoded[j] - row[j]), half_step + 1e-5f)
            << StorageLayoutName(l) << " row " << r << " dim " << j;
      }
      EXPECT_NEAR(s.RowSqNorm(r), SquaredNorm(row), 1e-2f);
    }
  }
}

TEST(QuantEncode, DeterministicAndConstantRowExact) {
  const std::vector<float> v = {0.25f, -1.5f, 3.75f, 0.f, 2.f};
  CompressedStore a(v.size(), StorageLayout::kSq8);
  CompressedStore b(v.size(), StorageLayout::kSq8);
  a.AppendRow(v);
  b.AppendRow(v);
  EXPECT_EQ(a.RowScale(0), b.RowScale(0));
  EXPECT_EQ(a.RowBias(0), b.RowBias(0));
  std::vector<float> da(v.size()), db(v.size());
  a.DecodeRow(0, da);
  b.DecodeRow(0, db);
  EXPECT_EQ(da, db);

  // A constant row has zero range: scale 0, exact reconstruction.
  const std::vector<float> flat(8, 4.5f);
  CompressedStore c(flat.size(), StorageLayout::kSq4);
  c.AppendRow(flat);
  EXPECT_EQ(c.RowScale(0), 0.f);
  std::vector<float> dc(flat.size());
  c.DecodeRow(0, dc);
  for (float x : dc) EXPECT_EQ(x, 4.5f);
}

// ------------------------------------------------- analytic error bounds --

// Quantization moves each coordinate by at most scale/2, so the error
// vector e has ||e||_2 <= E = (scale/2)*sqrt(dim) and the distances obey
//   L2:  |dq - df| <= 2*sqrt(df)*E + E^2
//   IP:  |dq - df| <= (scale/2) * ||q||_1
// (cosine goes through the IP bound divided by the norms). The test
// allows a small floating-point slop on top of the analytic bound.
TEST(QuantErrorBound, DistancesWithinAnalyticBound) {
  for (StorageLayout l : {StorageLayout::kSq8, StorageLayout::kSq4}) {
    for (std::size_t dim : {17u, 64u, 768u}) {
      const Matrix data = RandomMatrix(100, dim, 1000 + dim);
      const Matrix queries = RandomMatrix(8, dim, 2000 + dim);
      CompressedStore s(dim, l);
      for (std::size_t r = 0; r < data.rows(); ++r) s.AppendRow(data.Row(r));

      std::vector<float> dist(data.rows());
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        const auto q = queries.Row(qi);
        float q_l1 = 0.f, q_norm = 0.f;
        for (float x : q) q_l1 += std::abs(x);
        q_norm = std::sqrt(SquaredNorm(q));

        for (const Metric metric :
             {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
          s.Scan(metric, q, dist.data());
          for (std::size_t r = 0; r < data.rows(); ++r) {
            const float exact = Distance(metric, q, data.Row(r));
            const float half_step = s.RowScale(r) * 0.5f;
            double bound;
            if (metric == Metric::kL2) {
              const double e =
                  half_step * std::sqrt(static_cast<double>(dim));
              bound = 2.0 * std::sqrt(static_cast<double>(exact)) * e + e * e;
            } else if (metric == Metric::kInnerProduct) {
              bound = static_cast<double>(half_step) * q_l1;
            } else {
              const double row_norm = std::sqrt(s.RowSqNorm(r));
              bound = static_cast<double>(half_step) * q_l1 /
                      std::max(1e-12, static_cast<double>(q_norm) * row_norm);
            }
            const double slop = 1e-3 * (1.0 + std::abs(exact));
            EXPECT_LE(std::abs(static_cast<double>(dist[r]) - exact),
                      bound + slop)
                << StorageLayoutName(l) << " dim=" << dim
                << " metric=" << MetricName(metric) << " row=" << r;
          }
        }
      }
    }
  }
}

// ------------------------------------------------------- SIMD parity ----

// Every supported SIMD level must agree with the portable reference to
// floating-point reassociation tolerance, for both layouts, all metrics,
// contiguous and gathered access.
TEST(QuantSimdParity, AllLevelsMatchPortable) {
  const SimdLevel original = ActiveSimdLevel();
  const std::size_t dim = 768;
  const Matrix data = RandomMatrix(64, dim, 31);
  const Matrix queries = RandomMatrix(2, dim, 32);
  const std::vector<std::uint32_t> gather_ids = {63, 0, 17, 5, 5, 42};

  for (StorageLayout l : {StorageLayout::kSq8, StorageLayout::kSq4}) {
    CompressedStore s(dim, l);
    for (std::size_t r = 0; r < data.rows(); ++r) s.AppendRow(data.Row(r));

    for (const Metric metric :
         {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        const auto q = queries.Row(qi);
        ASSERT_TRUE(SetActiveSimdLevel(SimdLevel::kPortable));
        std::vector<float> ref(data.rows());
        s.Scan(metric, q, ref.data());

        for (const SimdLevel level : {SimdLevel::kNeon, SimdLevel::kAvx2,
                                      SimdLevel::kAvx512}) {
          if (!SimdLevelSupported(level)) continue;
          ASSERT_TRUE(SetActiveSimdLevel(level));
          std::vector<float> got(data.rows());
          s.Scan(metric, q, got.data());
          for (std::size_t r = 0; r < data.rows(); ++r) {
            EXPECT_NEAR(got[r], ref[r], 1e-3f * (1.f + std::abs(ref[r])))
                << SimdLevelName(level) << " " << StorageLayoutName(l)
                << " " << MetricName(metric) << " row " << r;
          }
          std::vector<float> gathered(gather_ids.size());
          s.GatherScan(metric, q, gather_ids.data(), gather_ids.size(),
                       gathered.data());
          for (std::size_t j = 0; j < gather_ids.size(); ++j) {
            EXPECT_EQ(gathered[j],
                      s.RowDistance(metric, q, gather_ids[j]));
            EXPECT_NEAR(gathered[j], ref[gather_ids[j]],
                        1e-3f * (1.f + std::abs(ref[gather_ids[j]])));
          }
        }
      }
    }
  }
  SetActiveSimdLevel(original);
}

// ------------------------------------------------------- recall gates ----

// The headline quality gate: two-level sq8 search on a seeded 100k
// corpus must keep recall@10 >= 0.95 against the exact float scan
// (bench/quantized_scan checks the same gate at 768-d with timing).
TEST(QuantRecall, FlatSq8RecallGateOn100k) {
  const std::size_t n = 100'000, dim = 64, k = 10;
  const Matrix corpus = RandomMatrix(n, dim, 5151);
  const Matrix queries = RandomMatrix(10, dim, 5252);

  FlatIndexOptions fopts;
  fopts.parallel_threshold = 0;
  FlatIndex exact(dim, fopts);
  exact.AddBatch(corpus);

  FlatIndexOptions qopts = fopts;
  qopts.storage = StorageLayout::kSq8;
  qopts.rerank_factor = 4;
  FlatIndex quant(dim, qopts);
  quant.AddBatch(corpus);

  std::vector<std::vector<Neighbor>> truth, approx;
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    truth.push_back(exact.Search(queries.Row(qi), k));
    approx.push_back(quant.Search(queries.Row(qi), k));
  }
  EXPECT_GE(MeanRecallAtK(approx, truth), 0.95);
}

TEST(QuantRecall, FlatSq4KeepsUsableRecall) {
  const std::size_t n = 20'000, dim = 64, k = 10;
  const Matrix corpus = RandomMatrix(n, dim, 6161);
  const Matrix queries = RandomMatrix(10, dim, 6262);
  FlatIndexOptions fopts;
  fopts.parallel_threshold = 0;
  FlatIndex exact(dim, fopts);
  exact.AddBatch(corpus);
  FlatIndexOptions qopts = fopts;
  qopts.storage = StorageLayout::kSq4;
  FlatIndex quant(dim, qopts);
  quant.AddBatch(corpus);
  std::vector<std::vector<Neighbor>> truth, approx;
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    truth.push_back(exact.Search(queries.Row(qi), k));
    approx.push_back(quant.Search(queries.Row(qi), k));
  }
  EXPECT_GE(MeanRecallAtK(approx, truth), 0.85);
}

// Quantized posting scans / graph traversal keep each index close to its
// own float-storage twin (same structure, same seeds; only the primary
// representation differs).
TEST(QuantRecall, IvfHnswVamanaTrackTheirFloatTwins) {
  const std::size_t n = 4000, dim = 32, k = 10;
  const Matrix corpus = RandomMatrix(n, dim, 717);
  const Matrix queries = RandomMatrix(10, dim, 718);

  const auto run = [&](VectorIndex& index) {
    std::vector<std::vector<Neighbor>> out;
    for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
      out.push_back(index.Search(queries.Row(qi), k));
    }
    return out;
  };

  {
    IvfFlatOptions base;
    base.nlist = 32;
    base.nprobe = 8;
    IvfFlatIndex f(dim, base);
    f.Train(corpus);
    f.AddBatch(corpus);
    IvfFlatOptions qo = base;
    qo.storage = StorageLayout::kSq8;
    IvfFlatIndex q(dim, qo);
    q.Train(corpus);
    q.AddBatch(corpus);
    EXPECT_GE(MeanRecallAtK(run(q), run(f)), 0.95) << "ivf_flat";
  }
  {
    HnswOptions base;
    base.M = 16;
    base.ef_search = 64;
    HnswIndex f(dim, base);
    f.AddBatch(corpus);
    HnswOptions qo = base;
    qo.storage = StorageLayout::kSq8;
    HnswIndex q(dim, qo);
    q.AddBatch(corpus);
    EXPECT_GE(MeanRecallAtK(run(q), run(f)), 0.90) << "hnsw";
  }
  {
    VamanaOptions base;
    VamanaIndex f(dim, base);
    f.AddBatch(corpus);
    f.Build();
    VamanaOptions qo = base;
    qo.storage = StorageLayout::kSq8;
    VamanaIndex q(dim, qo);
    q.AddBatch(corpus);
    q.Build();
    EXPECT_GE(MeanRecallAtK(run(q), run(f)), 0.90) << "vamana";
  }
}

// ------------------------------------------------------ serialization ----

TEST(QuantSerde, FlatRoundTripAndFloatBackCompat) {
  const std::size_t dim = 24;
  const Matrix corpus = RandomMatrix(300, dim, 99);
  const Matrix queries = RandomMatrix(4, dim, 98);

  FlatIndexOptions qopts;
  qopts.storage = StorageLayout::kSq4;
  qopts.rerank_factor = 6;
  FlatIndex quant(dim, qopts);
  quant.AddBatch(corpus);
  std::stringstream ss;
  quant.SaveTo(ss);
  const FlatIndex loaded = FlatIndex::LoadFrom(ss);
  EXPECT_EQ(loaded.storage(), StorageLayout::kSq4);
  EXPECT_EQ(loaded.size(), quant.size());
  EXPECT_NE(loaded.Describe().find("storage=sq4"), std::string::npos);
  EXPECT_NE(loaded.Describe().find("rerank=6"), std::string::npos);
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto a = quant.Search(queries.Row(qi), 5);
    const auto b = loaded.Search(queries.Row(qi), 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id);
      EXPECT_EQ(a[j].distance, b[j].distance);
    }
  }

  // Float32 stores keep the version-1 on-disk shape: they round-trip
  // with storage still float32 and no quantized segment in Describe().
  FlatIndex plain(dim, FlatIndexOptions{});
  plain.AddBatch(corpus);
  std::stringstream ps;
  plain.SaveTo(ps);
  const FlatIndex ploaded = FlatIndex::LoadFrom(ps);
  EXPECT_EQ(ploaded.storage(), StorageLayout::kFloat32);
  EXPECT_EQ(ploaded.Describe().find("storage="), std::string::npos);
}

TEST(QuantSerde, IvfAndHnswRoundTripQuantized) {
  const std::size_t dim = 16;
  const Matrix corpus = RandomMatrix(600, dim, 77);
  const Matrix queries = RandomMatrix(3, dim, 78);

  IvfFlatOptions iopts;
  iopts.nlist = 8;
  iopts.nprobe = 4;
  iopts.storage = StorageLayout::kSq8;
  IvfFlatIndex ivf(dim, iopts);
  ivf.Train(corpus);
  ivf.AddBatch(corpus);
  std::stringstream is;
  ivf.SaveTo(is);
  const IvfFlatIndex iloaded = IvfFlatIndex::LoadFrom(is);
  EXPECT_EQ(iloaded.storage(), StorageLayout::kSq8);
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto a = ivf.Search(queries.Row(qi), 5);
    const auto b = iloaded.Search(queries.Row(qi), 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }

  HnswOptions hopts;
  hopts.storage = StorageLayout::kSq8;
  HnswIndex hnsw(dim, hopts);
  hnsw.AddBatch(corpus);
  std::stringstream hs;
  hnsw.SaveTo(hs);
  const auto hloaded = HnswIndex::LoadFrom(hs);
  EXPECT_EQ(hloaded->storage(), StorageLayout::kSq8);
  EXPECT_NE(hloaded->Describe().find("storage=sq8"), std::string::npos);
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto a = hnsw.Search(queries.Row(qi), 5);
    const auto b = hloaded->Search(queries.Row(qi), 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }
}

// ------------------------------------------------------------ factory ----

TEST(QuantFactory, StorageKnobReachesEveryKind) {
  const Matrix corpus = RandomMatrix(500, 16, 55);
  for (const char* kind : {"flat", "ivf_flat", "hnsw", "vamana"}) {
    IndexSpec spec;
    spec.kind = kind;
    spec.storage = "sq8";
    spec.ivf_nlist = 8;
    const auto index = BuildIndex(spec, corpus);
    EXPECT_NE(index->Describe().find("storage=sq8"), std::string::npos)
        << kind << ": " << index->Describe();
    EXPECT_FALSE(index->Search(corpus.Row(0), 3).empty()) << kind;
  }
  IndexSpec bad;
  bad.storage = "sq2";
  EXPECT_THROW(BuildIndex(bad, corpus), std::invalid_argument);
}

// ---------------------------------------------------------- telemetry ----

#if PROXIMITY_OBS_ENABLED
TEST(QuantMetrics, ScanCountersAdvanceOnQuantizedSearch) {
  const std::size_t dim = 32;
  const Matrix corpus = RandomMatrix(2000, dim, 404);
  FlatIndexOptions opts;
  opts.parallel_threshold = 0;
  opts.storage = StorageLayout::kSq8;
  FlatIndex index(dim, opts);
  index.AddBatch(corpus);

  const auto before = obs::MetricsRegistry::Default().Snapshot();
  (void)index.Search(corpus.Row(1), 10);
  const auto after = obs::MetricsRegistry::Default().Snapshot();

  EXPECT_GT(after.CounterValue("scan.primary_bytes"),
            before.CounterValue("scan.primary_bytes"));
  EXPECT_GT(after.CounterValue("scan.rerank_bytes"),
            before.CounterValue("scan.rerank_bytes"));
  EXPECT_GT(after.CounterValue("scan.candidates"),
            before.CounterValue("scan.candidates"));
  EXPECT_EQ(after.CounterValue("scan.queries"),
            before.CounterValue("scan.queries") + 1);
  const double ratio = after.GaugeValue("scan.rerank_ratio");
  EXPECT_GT(ratio, 0.0);
  EXPECT_LE(ratio, 1.0);
}
#endif

// -------------------------------------------------------- concurrency ----

// Forces the pooled quantized scan (parallel_threshold = 1) and checks
// it against the serial path; concurrent Search calls from the pool are
// the TSan surface of the compressed read path.
TEST(QuantConcurrent, ParallelQuantizedScanMatchesSerial) {
  const std::size_t dim = 48, n = 8000, k = 10;
  const Matrix corpus = RandomMatrix(n, dim, 321);
  const Matrix queries = RandomMatrix(8, dim, 322);

  FlatIndexOptions serial_opts;
  serial_opts.parallel_threshold = 0;
  serial_opts.storage = StorageLayout::kSq8;
  FlatIndex serial(dim, serial_opts);
  serial.AddBatch(corpus);

  FlatIndexOptions par_opts = serial_opts;
  par_opts.parallel_threshold = 1;
  FlatIndex parallel(dim, par_opts);
  parallel.AddBatch(corpus);

  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto a = serial.Search(queries.Row(qi), k);
    const auto b = parallel.Search(queries.Row(qi), k);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id) << "query " << qi << " rank " << j;
      EXPECT_EQ(a[j].distance, b[j].distance);
    }
  }
}

}  // namespace
}  // namespace proximity
