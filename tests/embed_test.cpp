// Unit tests for src/embed: tokenizer, hashing embedder, perturbation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "embed/hash_embedder.h"
#include "embed/perturb.h"
#include "embed/tokenizer.h"
#include "vecmath/kernels.h"

namespace proximity {
namespace {

// ------------------------------------------------------------ Tokenizer --

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("What is GDP?"),
            (std::vector<std::string>{"what", "is", "gdp"}));
}

TEST(TokenizerTest, KeepsDigits) {
  EXPECT_EQ(Tokenize("top10 results"),
            (std::vector<std::string>{"top10", "results"}));
}

TEST(TokenizerTest, HandlesPunctuationRuns) {
  EXPECT_EQ(Tokenize("a--b,,c  d"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t\n .,").empty());
}

TEST(TokenizerTest, JoinRoundTrip) {
  const auto tokens = Tokenize("Hello, World! 42");
  EXPECT_EQ(JoinTokens(tokens), "hello world 42");
}

// --------------------------------------------------------- HashEmbedder --

TEST(HashEmbedderTest, Deterministic) {
  HashEmbedder embedder;
  EXPECT_EQ(embedder.Embed("the quick brown fox"),
            embedder.Embed("the quick brown fox"));
}

TEST(HashEmbedderTest, NormEqualsScale) {
  HashEmbedder embedder;
  const auto v = embedder.Embed("some interesting question about economics");
  EXPECT_NEAR(std::sqrt(SquaredNorm(v)), embedder.scale(), 1e-3);
}

TEST(HashEmbedderTest, EmptyTextIsZeroVector) {
  HashEmbedder embedder;
  const auto v = embedder.Embed("");
  EXPECT_FLOAT_EQ(SquaredNorm(v), 0.f);
}

TEST(HashEmbedderTest, CaseAndPunctuationInvariant) {
  HashEmbedder embedder;
  EXPECT_EQ(embedder.Embed("What is GDP?"), embedder.Embed("what is gdp"));
}

TEST(HashEmbedderTest, WordOrderMattersThroughBigrams) {
  HashEmbedder embedder;
  const auto a = embedder.Embed("alpha beta gamma");
  const auto b = embedder.Embed("gamma beta alpha");
  EXPECT_GT(L2SquaredDistance(a, b), 0.f);
  // But far less different than unrelated text (unigrams shared).
  const auto c = embedder.Embed("totally unrelated words here");
  EXPECT_LT(L2SquaredDistance(a, b), L2SquaredDistance(a, c));
}

TEST(HashEmbedderTest, PrefixedTextStaysClose) {
  // The geometric property Proximity relies on (§4.2 variant protocol).
  HashEmbedder embedder;
  const std::string question =
      "which of the following statements about elasticity of demand is "
      "correct given the market equilibrium model";
  const auto base = embedder.Embed(question);
  const auto variant = embedder.Embed("please tell me " + question);
  const auto unrelated =
      embedder.Embed("protein folding in mitochondrial membranes of yeast");
  const float d_variant = L2SquaredDistance(base, variant);
  const float d_unrelated = L2SquaredDistance(base, unrelated);
  EXPECT_LT(d_variant, 2.0f);
  EXPECT_GT(d_unrelated, 10.0f);
}

TEST(HashEmbedderTest, DifferentSaltsGiveDifferentSpaces) {
  HashEmbedder a({.salt = 1});
  HashEmbedder b({.salt = 2});
  EXPECT_GT(L2SquaredDistance(a.Embed("hello world"), b.Embed("hello world")),
            1.0f);
}

TEST(HashEmbedderTest, BatchMatchesSingle) {
  HashEmbedder embedder;
  const std::vector<std::string> texts = {"first text", "second text",
                                          "third text goes here"};
  const Matrix batch = embedder.EmbedBatch(texts);
  ASSERT_EQ(batch.rows(), 3u);
  for (std::size_t i = 0; i < texts.size(); ++i) {
    const auto single = embedder.Embed(texts[i]);
    for (std::size_t j = 0; j < embedder.dim(); ++j) {
      EXPECT_FLOAT_EQ(batch.Row(i)[j], single[j]);
    }
  }
}

TEST(HashEmbedderTest, CustomDimension) {
  HashEmbedder embedder({.dim = 128});
  EXPECT_EQ(embedder.Embed("test").size(), 128u);
}

TEST(HashEmbedderTest, ValidatesOptions) {
  EXPECT_THROW(HashEmbedder({.dim = 0}), std::invalid_argument);
  EXPECT_THROW(HashEmbedder({.dim = 10, .scale = 0.f}),
               std::invalid_argument);
  HashEmbedder embedder({.dim = 8});
  std::vector<float> wrong(4);
  EXPECT_THROW(embedder.EmbedInto("x", wrong), std::invalid_argument);
}

// -------------------------------------------------------------- Perturb --

TEST(PerturbTest, VariantZeroIsVerbatim) {
  EXPECT_EQ(MakeVariant("my question", 3, 0, 42), "my question");
}

TEST(PerturbTest, NonZeroVariantsHavePrefix) {
  const std::string v = MakeVariant("my question", 3, 1, 42);
  EXPECT_NE(v, "my question");
  EXPECT_NE(v.find("my question"), std::string::npos);
  EXPECT_EQ(v.find("my question"),
            v.size() - std::string("my question").size());
}

TEST(PerturbTest, VariantsOfSameQuestionDiffer) {
  std::set<std::string> variants;
  for (std::size_t v = 0; v < 4; ++v) {
    variants.insert(MakeVariant("the question text", 7, v, 42));
  }
  EXPECT_EQ(variants.size(), 4u);
}

TEST(PerturbTest, DeterministicPerSeed) {
  EXPECT_EQ(MakeVariant("q", 1, 2, 42), MakeVariant("q", 1, 2, 42));
  // Different seeds may select different prefixes for the same slot.
  // (Not strictly guaranteed per-instance, but across many ids the seed
  // must matter.)
  int differing = 0;
  for (std::size_t qid = 0; qid < 32; ++qid) {
    if (MakeVariant("q", qid, 1, 1) != MakeVariant("q", qid, 1, 2)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(PerturbTest, MakeVariantsCount) {
  const auto variants = MakeVariants("base", 1, 4, 42);
  ASSERT_EQ(variants.size(), 4u);
  EXPECT_EQ(variants[0], "base");
}

TEST(PerturbTest, PrefixPoolAccessors) {
  EXPECT_GT(PrefixPoolSize(), 8u);
  EXPECT_FALSE(PrefixAt(0).empty());
  EXPECT_EQ(PrefixAt(PrefixPoolSize()), PrefixAt(0));  // wraps
}

}  // namespace
}  // namespace proximity
