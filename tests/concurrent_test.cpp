// Tests for the thread-safe cache and the concurrent stream driver:
// linearizable counters, single-flight coalescing, failure fallback, and
// end-to-end invariants under racing workers.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <thread>

#include "cache/concurrent_cache.h"
#include "common/log.h"
#include "common/rng.h"
#include "index/flat_index.h"
#include "obs/metrics_registry.h"
#include "rag/concurrent_driver.h"
#include "workload/benchmark_spec.h"

namespace proximity {
namespace {

ProximityCacheOptions CacheOpts(std::size_t capacity, float tolerance) {
  ProximityCacheOptions opts;
  opts.capacity = capacity;
  opts.tolerance = tolerance;
  return opts;
}

std::vector<float> Vec4(float a, float b = 0, float c = 0, float d = 0) {
  return {a, b, c, d};
}

TEST(ConcurrentCacheTest, BasicLookupInsert) {
  ConcurrentProximityCache cache(4, CacheOpts(10, 1.0f));
  EXPECT_FALSE(cache.Lookup(Vec4(0)).has_value());
  cache.Insert(Vec4(0), {7, 8});
  const auto hit = cache.Lookup(Vec4(0.5f));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<VectorId>{7, 8}));
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ConcurrentCacheTest, FetchOrRetrieveCachesResult) {
  ConcurrentProximityCache cache(4, CacheOpts(10, 1.0f));
  std::atomic<int> calls{0};
  auto retrieve = [&](std::span<const float>) {
    ++calls;
    return std::vector<VectorId>{1, 2, 3};
  };
  EXPECT_EQ(cache.FetchOrRetrieve(Vec4(5), retrieve),
            (std::vector<VectorId>{1, 2, 3}));
  EXPECT_EQ(cache.FetchOrRetrieve(Vec4(5.1f), retrieve),
            (std::vector<VectorId>{1, 2, 3}));
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(cache.stats().retrievals, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ConcurrentCacheTest, SingleFlightCoalescesSimilarQueries) {
  ConcurrentProximityCache cache(4, CacheOpts(10, 1.0f));
  constexpr int kThreads = 8;
  std::atomic<int> retrievals{0};
  std::barrier barrier(kThreads);

  auto slow_retrieve = [&](std::span<const float>) {
    ++retrievals;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::vector<VectorId>{42};
  };

  std::vector<std::thread> threads;
  std::atomic<int> served{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();  // maximize overlap
      // All queries are within tolerance of each other.
      const auto docs = cache.FetchOrRetrieve(
          Vec4(1.0f + 0.01f * static_cast<float>(t)), slow_retrieve);
      if (docs == std::vector<VectorId>{42}) ++served;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(served.load(), kThreads);
  // Coalescing must have collapsed most retrievals; with a 50ms window
  // and a barrier start, one retrieval is the expected outcome.
  EXPECT_LE(retrievals.load(), 2);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.hits + stats.coalesced + stats.retrievals,
            static_cast<std::uint64_t>(kThreads));
}

TEST(ConcurrentCacheTest, DissimilarQueriesDoNotCoalesce) {
  ConcurrentProximityCache cache(4, CacheOpts(10, 0.1f));
  std::atomic<int> retrievals{0};
  auto retrieve = [&](std::span<const float> q) {
    ++retrievals;
    return std::vector<VectorId>{static_cast<VectorId>(q[0])};
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const auto docs =
          cache.FetchOrRetrieve(Vec4(static_cast<float>(t) * 100), retrieve);
      EXPECT_EQ(docs.size(), 1u);
      EXPECT_EQ(docs[0], t * 100);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(retrievals.load(), 4);
}

TEST(ConcurrentCacheTest, FailedFlightFallsBack) {
  ConcurrentProximityCache cache(4, CacheOpts(10, 1.0f));
  std::atomic<int> attempts{0};
  auto flaky_retrieve = [&](std::span<const float>) -> std::vector<VectorId> {
    const int attempt = ++attempts;
    if (attempt == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      throw std::runtime_error("database unavailable");
    }
    return {7};
  };

  std::thread owner([&] {
    EXPECT_THROW(cache.FetchOrRetrieve(Vec4(1), flaky_retrieve),
                 std::runtime_error);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // This waiter coalesces onto the failing flight, then retries itself.
  const auto docs = cache.FetchOrRetrieve(Vec4(1.01f), flaky_retrieve);
  owner.join();
  EXPECT_EQ(docs, (std::vector<VectorId>{7}));
  EXPECT_GE(attempts.load(), 2);
}

TEST(ConcurrentCacheTest, ParallelHammeringKeepsInvariants) {
  ConcurrentProximityCache cache(8, CacheOpts(32, 2.0f));
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::atomic<std::uint64_t> retrievals{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        std::vector<float> q(8);
        for (auto& x : q) x = static_cast<float>(rng.Gaussian(0, 3));
        cache.FetchOrRetrieve(q, [&](std::span<const float>) {
          retrievals.fetch_add(1, std::memory_order_relaxed);
          return std::vector<VectorId>{static_cast<VectorId>(op)};
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(stats.hits + stats.coalesced + stats.retrievals, stats.lookups);
  EXPECT_EQ(stats.retrievals, retrievals.load());
  EXPECT_LE(cache.size(), 32u);
}

// The ProximityCacheStats lost-update audit, exercised: the plain stats
// fields are mutated only under the cache mutex, so raw integer counters
// must stay exact under heavy contention — and the lock-free registry
// mirrors (`ccache.*`, inner `cache.*`) must agree with them.
TEST(ConcurrentCacheTest, StatsStayExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kOpsPerThread;

#if PROXIMITY_OBS_ENABLED
  const auto before = obs::MetricsRegistry::Default().Snapshot();
#endif

  ConcurrentProximityCache cache(8, CacheOpts(64, 1.0f));
  std::barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      barrier.arrive_and_wait();
      for (int op = 0; op < kOpsPerThread; ++op) {
        std::vector<float> q(8);
        for (auto& x : q) x = static_cast<float>(rng.Gaussian(0, 4));
        cache.FetchOrRetrieve(q, [](std::span<const float>) {
          return std::vector<VectorId>{1};
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  // Plain counters: no lost updates despite kThreads racing writers.
  const ConcurrentCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, total);
  EXPECT_EQ(stats.hits + stats.coalesced + stats.retrievals, total);

  // Every FetchOrRetrieve probes the inner cache exactly once; every
  // owned retrieval inserts exactly once.
  const ProximityCacheStats inner = cache.inner_stats();
  EXPECT_EQ(inner.lookups, total);
  EXPECT_EQ(inner.hits, stats.hits);
  EXPECT_EQ(inner.insertions, stats.retrievals);

#if PROXIMITY_OBS_ENABLED
  // Registry mirrors recorded through per-thread shards reconcile with
  // the mutex-serialized plain counters.
  const auto after = obs::MetricsRegistry::Default().Snapshot();
  const auto delta = [&](const char* name) {
    return after.CounterValue(name) - before.CounterValue(name);
  };
  EXPECT_EQ(delta("ccache.lookups"), total);
  EXPECT_EQ(delta("ccache.hits"), stats.hits);
  EXPECT_EQ(delta("ccache.coalesced"), stats.coalesced);
  EXPECT_EQ(delta("ccache.retrievals"), stats.retrievals);
  EXPECT_EQ(delta("cache.lookups"), inner.lookups);
  EXPECT_EQ(delta("cache.insertions"), inner.insertions);
#endif
}

// ----------------------------------------------------------- The driver --

TEST(ConcurrentDriverTest, InvariantsHoldAcrossThreadCounts) {
  SetLogLevel(LogLevel::kWarn);
  WorkloadSpec spec = MmluLikeSpec(600, 42);
  spec.num_questions = 15;
  spec.num_clusters = 3;
  const Workload workload = BuildWorkload(spec);
  HashEmbedder embedder;
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  FlatIndex index(embedder.dim());
  index.AddBatch(corpus_embeddings);

  QueryStreamOptions sopts;
  sopts.seed = 1;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);

  for (std::size_t threads : {1u, 4u}) {
    ConcurrentProximityCache cache(embedder.dim(), CacheOpts(50, 2.0f));
    const auto result = RunStreamConcurrent(
        workload, index, cache, AnswerModel(MmluAnswerParams()), 1, stream,
        embeddings, threads);
    EXPECT_EQ(result.metrics.queries, stream.size());
    EXPECT_EQ(result.cache_stats.lookups, stream.size());
    EXPECT_EQ(result.cache_stats.hits + result.cache_stats.coalesced +
                  result.cache_stats.retrievals,
              stream.size());
    // Variant geometry guarantees substantial hits at tau = 2 regardless
    // of interleaving.
    EXPECT_GT(result.metrics.hit_rate, 0.2);
    EXPECT_GT(result.metrics.mean_relevance, 0.9);
    EXPECT_GT(result.metrics.accuracy, 0.3);
    EXPECT_LT(result.metrics.accuracy, 0.7);
  }
}

TEST(ConcurrentDriverTest, SingleThreadMatchesSequentialHitRate) {
  SetLogLevel(LogLevel::kWarn);
  WorkloadSpec spec = MmluLikeSpec(500, 42);
  spec.num_questions = 10;
  spec.num_clusters = 2;
  const Workload workload = BuildWorkload(spec);
  HashEmbedder embedder;
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  FlatIndex index(embedder.dim());
  index.AddBatch(corpus_embeddings);

  QueryStreamOptions sopts;
  sopts.seed = 2;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);

  // Sequential reference via the plain cache.
  ProximityCache reference(embedder.dim(), CacheOpts(50, 2.0f));
  std::size_t ref_hits = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    bool hit = false;
    reference.FetchOrRetrieve(
        embeddings.Row(i),
        [&](std::span<const float> q) {
          std::vector<VectorId> ids;
          for (const auto& n : index.Search(q, 10)) ids.push_back(n.id);
          return ids;
        },
        &hit);
    ref_hits += hit ? 1 : 0;
  }

  ConcurrentProximityCache cache(embedder.dim(), CacheOpts(50, 2.0f));
  const auto result = RunStreamConcurrent(
      workload, index, cache, AnswerModel(MmluAnswerParams()), 2, stream,
      embeddings, /*threads=*/1);
  EXPECT_EQ(result.cache_stats.hits, ref_hits);
}

TEST(ConcurrentDriverTest, ValidatesArguments) {
  const Workload workload = BuildWorkload([] {
    WorkloadSpec spec = MmluLikeSpec(200, 42);
    spec.num_questions = 5;
    spec.num_clusters = 1;
    return spec;
  }());
  HashEmbedder embedder;
  FlatIndex index(embedder.dim());
  ConcurrentProximityCache cache(embedder.dim(), CacheOpts(10, 1.0f));
  const std::vector<StreamEntry> stream(3);
  const Matrix wrong(2, embedder.dim());
  EXPECT_THROW(
      RunStreamConcurrent(workload, index, cache,
                          AnswerModel(MmluAnswerParams()), 1, stream, wrong,
                          1),
      std::invalid_argument);
  const Matrix right(3, embedder.dim());
  EXPECT_THROW(
      RunStreamConcurrent(workload, index, cache,
                          AnswerModel(MmluAnswerParams()), 1, stream, right,
                          0),
      std::invalid_argument);
}

}  // namespace
}  // namespace proximity
