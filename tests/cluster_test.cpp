// Cluster router plane (DESIGN.md §14): shard-map parsing and ring
// stability, the bit-identical pin (a routed k-NN over N partitioned
// backends equals the single-process ShardedIndex answer, distance bits
// included), replica failover when a backend dies mid-run, hedged
// requests winning on a stalled primary, client timeout primitives, and
// the byte-identical relay contract — a fully composed v4
// tenant+trace+mutation frame reaches the backend exactly as the client
// sent it (pinned against tests/golden/request_v4_all_extensions.bin),
// while query legs differ from the client frame in only the flags word.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/concurrent_cache.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "index/sharded_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "rag/batching_driver.h"

namespace proximity {
namespace {

// ----------------------------------------------------------- shard map --

TEST(ShardMapTest, ParsesGroupsReplicasAndComments) {
  const cluster::ShardMap map = cluster::ShardMap::Parse(
      "# routing for the two-group cluster\n"
      "\n"
      "shard 0 rpc=127.0.0.1:7101 admin=127.0.0.1:7201\n"
      "shard 0 rpc=127.0.0.1:7102\n"
      "shard 1 rpc=10.0.0.5:7103 admin=10.0.0.5:7203\n");
  ASSERT_EQ(map.num_groups(), 2u);
  ASSERT_EQ(map.group(0).replicas.size(), 2u);
  ASSERT_EQ(map.group(1).replicas.size(), 1u);
  EXPECT_EQ(map.group(0).replicas[0].host, "127.0.0.1");
  EXPECT_EQ(map.group(0).replicas[0].port, 7101);
  EXPECT_EQ(map.group(0).replicas[0].admin_port, 7201);
  // admin= is optional: the second replica is probed passively.
  EXPECT_EQ(map.group(0).replicas[1].admin_port, 0);
  EXPECT_EQ(map.group(1).replicas[0].host, "10.0.0.5");
  EXPECT_EQ(map.group(1).replicas[0].Address(), "10.0.0.5:7103");
}

TEST(ShardMapTest, RejectsMalformedMaps) {
  // Group ids must be dense 0..G-1: group g serves corpus partition
  // g/G, so a hole is a missing corpus slice, not a formatting nit.
  EXPECT_THROW(cluster::ShardMap::Parse("shard 1 rpc=127.0.0.1:7101\n"),
               std::invalid_argument);
  EXPECT_THROW(cluster::ShardMap::Parse(""), std::invalid_argument);
  EXPECT_THROW(cluster::ShardMap::Parse("shard 0 admin=127.0.0.1:7201\n"),
               std::invalid_argument);
  EXPECT_THROW(cluster::ShardMap::Parse("shard 0 rpc=noport\n"),
               std::invalid_argument);
  EXPECT_THROW(cluster::ShardMap::Parse("shard 0 rpc=127.0.0.1:99999\n"),
               std::invalid_argument);
  EXPECT_THROW(cluster::ShardMap::Parse("shard 0 bogus=1 rpc=127.0.0.1:1\n"),
               std::invalid_argument);
  EXPECT_THROW(cluster::ShardMap::Parse("replica 0 rpc=127.0.0.1:1\n"),
               std::invalid_argument);
}

TEST(ShardMapTest, RingIsDeterministicAndCoversEveryGroup) {
  const std::string text =
      "shard 0 rpc=127.0.0.1:7101\n"
      "shard 1 rpc=127.0.0.1:7102\n"
      "shard 2 rpc=127.0.0.1:7103\n";
  const cluster::ShardMap a = cluster::ShardMap::Parse(text);
  const cluster::ShardMap b = cluster::ShardMap::Parse(text);
  std::vector<std::size_t> hits(3, 0);
  for (std::uint64_t key = 0; key < 3000; ++key) {
    const std::uint32_t g = a.GroupForKey(key);
    // Same key, same map text -> same group, across instances: the
    // property mutation routing correctness rests on.
    EXPECT_EQ(g, b.GroupForKey(key));
    ASSERT_LT(g, 3u);
    ++hits[g];
  }
  // The ring must spread keys over every group: 64 mixed vnodes/group
  // keeps every share within a few percent of even, so a 20% floor has
  // wide margin yet still catches the degenerate rings (an unmixed
  // point hash once collapsed each group's vnodes into one cluster).
  for (std::size_t g = 0; g < 3; ++g) {
    EXPECT_GT(hits[g], 3000u / 5) << "group " << g << " starved";
  }
  // Text hashing is deterministic too (INSERT routing key).
  EXPECT_EQ(cluster::ShardMap::HashText("hello"),
            cluster::ShardMap::HashText("hello"));
  EXPECT_NE(cluster::ShardMap::HashText("hello"),
            cluster::ShardMap::HashText("world"));
}

// ------------------------------------------------------- backend stack --

HashEmbedderOptions SmallEmbedder() {
  HashEmbedderOptions eopts;
  eopts.dim = 32;
  return eopts;
}

std::vector<std::string> TestCorpus(std::size_t n) {
  std::vector<std::string> docs;
  docs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    docs.push_back("corpus document number " + std::to_string(i) +
                   " about topic " + std::to_string(i % 7));
  }
  return docs;
}

// One backend shard server over partition `part`/`parts` of the corpus
// — exactly what `proximity_cli serve partition=I/N` boots, minus the
// CLI. `tolerance` 0 keeps unique queries on the fresh-retrieval path
// (distances attach); a large tolerance exercises cache-hit legs.
struct BackendStack {
  HashEmbedder embedder;
  std::unique_ptr<ShardedIndex> index;
  std::unique_ptr<ConcurrentProximityCache> cache;
  std::unique_ptr<BatchingDriver> driver;
  std::unique_ptr<net::Server> server;

  BackendStack(const Matrix& corpus, std::size_t part, std::size_t parts,
               float tolerance = 0.0f, net::ServerOptions nopts = {})
      : embedder(SmallEmbedder()) {
    IndexSpec spec;
    spec.kind = "flat";
    index = BuildPartitionedIndex(spec, corpus, part, parts);
    ProximityCacheOptions copts;
    copts.capacity = 64;
    copts.tolerance = tolerance;
    cache = std::make_unique<ConcurrentProximityCache>(embedder.dim(),
                                                       copts);
    BatchingDriverOptions dopts;
    dopts.top_k = 5;
    dopts.max_batch = 8;
    driver = std::make_unique<BatchingDriver>(*index, *cache, &embedder,
                                              dopts);
    server = std::make_unique<net::Server>(*driver, nopts);
    server->Start();
  }

  std::uint16_t port() const { return server->port(); }

  ~BackendStack() {
    server->Stop();
    driver->Shutdown();
  }
};

std::string MapLine(std::uint32_t group, std::uint16_t port) {
  return "shard " + std::to_string(group) + " rpc=127.0.0.1:" +
         std::to_string(port) + "\n";
}

// -------------------------------------------------- bit-identical pin --

// The tentpole acceptance pin: a k-NN routed over three partitioned
// backends is bit-identical — ids AND distance bits — to the same
// query against a single-process ShardedIndex over the whole corpus,
// because partition striping matches shard striping and the router
// reuses ShardedIndex::MergeSorted for the cross-group merge.
TEST(ClusterRouterTest, RoutedKnnBitIdenticalToSingleProcess) {
  constexpr std::size_t kParts = 3;
  constexpr std::size_t kTopK = 5;
  HashEmbedder embedder(SmallEmbedder());
  const Matrix corpus = embedder.EmbedBatch(TestCorpus(61));

  std::vector<std::unique_ptr<BackendStack>> backends;
  std::string map_text;
  for (std::size_t p = 0; p < kParts; ++p) {
    backends.push_back(std::make_unique<BackendStack>(corpus, p, kParts));
    map_text +=
        MapLine(static_cast<std::uint32_t>(p), backends[p]->port());
  }

  cluster::RouterOptions ropts;
  ropts.workers = 2;
  ropts.hedge = false;  // single replica per group; nothing to hedge to
  cluster::Router router(cluster::ShardMap::Parse(map_text), ropts);
  router.Start();

  IndexSpec spec;
  spec.kind = "flat";
  ShardedIndexOptions sopts;
  sopts.num_shards = kParts;
  const auto reference = BuildShardedIndex(spec, corpus, sopts);

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()));
  for (std::size_t q = 0; q < 12; ++q) {
    const std::string text =
        "unique probe query " + std::to_string(q) + " about topic " +
        std::to_string(q % 7);
    net::Request req;
    req.id = q + 1;
    req.flags = net::kReqFlagWantDistances;
    req.text = text;
    net::Response resp;
    ASSERT_TRUE(client.Call(req, &resp));
    ASSERT_EQ(resp.status, RequestStatus::kOk);
    ASSERT_TRUE(resp.has_distances());

    const Matrix embedded = embedder.EmbedBatch({text});
    const auto want = reference->Search(embedded.Row(0), kTopK);
    ASSERT_EQ(resp.documents.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(resp.documents[i], want[i].id) << "rank " << i;
      // Bit-identical, not approximately-equal: the router merged the
      // very floats the backends computed, through the same routine.
      EXPECT_EQ(std::memcmp(&resp.distances[i], &want[i].distance,
                            sizeof(float)),
                0)
          << "distance bits differ at rank " << i;
    }
  }
  EXPECT_EQ(router.stats().queries, 12u);
  EXPECT_EQ(router.stats().merge_fallbacks, 0u)
      << "unique queries must stay on the exact-merge path";
  router.Stop();
}

// When a leg answers from the approximate cache it has no distances, so
// the router must fall back to deterministic rank interleaving — and
// count it — instead of fabricating an exact merge.
TEST(ClusterRouterTest, CacheHitLegsFallBackToRankInterleave) {
  HashEmbedder embedder(SmallEmbedder());
  const Matrix corpus = embedder.EmbedBatch(TestCorpus(40));
  // Generous tolerance: the second identical query hits the cache.
  BackendStack b0(corpus, 0, 2, /*tolerance=*/100.0f);
  BackendStack b1(corpus, 1, 2, /*tolerance=*/100.0f);

  cluster::RouterOptions ropts;
  ropts.workers = 1;
  ropts.hedge = false;
  cluster::Router router(
      cluster::ShardMap::Parse(MapLine(0, b0.port()) +
                               MapLine(1, b1.port())),
      ropts);
  router.Start();

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()));
  net::Response first;
  net::Response second;
  for (int round = 0; round < 2; ++round) {
    net::Request req;
    req.id = static_cast<std::uint64_t>(round) + 1;
    req.text = "the same query twice";
    net::Response resp;
    ASSERT_TRUE(client.Call(req, &resp));
    ASSERT_EQ(resp.status, RequestStatus::kOk);
    ASSERT_FALSE(resp.documents.empty());
    (round == 0 ? first : second) = resp;
  }
  // Round two answered from both backend caches: hit-flagged and merged
  // by rank, counted as a fallback.
  EXPECT_TRUE(second.cache_hit());
  EXPECT_GE(router.stats().merge_fallbacks, 1u);
  router.Stop();
}

// ------------------------------------------------------------ failover --

TEST(ClusterRouterTest, FailsOverToReplicaWhenBackendDies) {
  HashEmbedder embedder(SmallEmbedder());
  const Matrix corpus = embedder.EmbedBatch(TestCorpus(30));
  // One group, two replicas serving the same (whole) partition.
  auto primary = std::make_unique<BackendStack>(corpus, 0, 1);
  BackendStack replica(corpus, 0, 1);

  cluster::RouterOptions ropts;
  ropts.workers = 1;
  ropts.hedge = false;
  ropts.recv_timeout_ms = 2000;
  cluster::Router router(
      cluster::ShardMap::Parse(MapLine(0, primary->port()) +
                               MapLine(0, replica.port())),
      ropts);
  router.Start();

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()));
  auto ask = [&](std::uint64_t id) {
    net::Request req;
    req.id = id;
    req.text = "failover probe " + std::to_string(id);
    net::Response resp;
    EXPECT_TRUE(client.Call(req, &resp));
    EXPECT_EQ(resp.status, RequestStatus::kOk);
  };
  ask(1);

  // Kill the primary outright. The router's next leg to it fails, the
  // replica serves, and the client sees zero failed requests.
  primary.reset();
  for (std::uint64_t id = 2; id <= 6; ++id) ask(id);

  const auto status = router.backend_status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].healthy, 1u);
  const cluster::RouterStats stats = router.stats();
  EXPECT_GE(stats.failovers, 1u);
  // The dead leg surfaced either as a recv error (connection was up
  // when the backend died) or as a failed redial — both retry.
  EXPECT_GE(stats.leg_errors + stats.retries, 1u);
  router.Stop();
}

// ------------------------------------------------------------- hedging --

TEST(ClusterRouterTest, HedgedLegWinsOverStalledPrimary) {
  HashEmbedder embedder(SmallEmbedder());
  const Matrix corpus = embedder.EmbedBatch(TestCorpus(30));
  // Replica 0 stalls every SECOND response by 50 ms (debug injection);
  // replica 1 is healthy. The unstalled responses keep the recorded
  // latency quantile small, so each stalled response blows far past the
  // hedge delay and the hedge leg to the fast replica wins decisively
  // — no race against the stall duration itself.
  net::ServerOptions stall;
  stall.debug_stall_every = 2;
  stall.debug_stall_us = 50000;
  BackendStack slow(corpus, 0, 1, 0.0f, stall);
  BackendStack fast(corpus, 0, 1);

  cluster::RouterOptions ropts;
  ropts.workers = 1;
  ropts.hedge = true;
  ropts.hedge_warmup = 4;
  ropts.hedge_min_us = 500;
  // A low quantile keeps the hedge delay near the fast-path latency.
  ropts.hedge_quantile = 0.25;
  cluster::Router router(
      cluster::ShardMap::Parse(MapLine(0, slow.port()) +
                               MapLine(0, fast.port())),
      ropts);
  router.Start();

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()));
  for (std::uint64_t id = 1; id <= 20; ++id) {
    net::Request req;
    req.id = id;
    req.text = "hedge probe " + std::to_string(id);
    net::Response resp;
    ASSERT_TRUE(client.Call(req, &resp));
    ASSERT_EQ(resp.status, RequestStatus::kOk);
  }
  const cluster::RouterStats stats = router.stats();
  EXPECT_GE(stats.hedges, 1u) << "hedging never armed";
  EXPECT_GE(stats.hedge_wins, 1u)
      << "the fast replica never beat the stalled primary";
  router.Stop();
}

// ----------------------------------------------------------- mutations --

TEST(ClusterRouterTest, MutationsRouteToOneGroupAndRoundTrip) {
  HashEmbedder embedder(SmallEmbedder());
  const Matrix corpus = embedder.EmbedBatch(TestCorpus(30));

  // Mutable backends: index=mutable equivalents, partitioned 2 ways.
  auto make_mutable = [&](std::size_t part) {
    IndexSpec spec;
    spec.kind = "mutable";
    auto index = BuildPartitionedIndex(spec, corpus, part, 2);
    return index;
  };
  struct MutableStack {
    HashEmbedder embedder{SmallEmbedder()};
    std::unique_ptr<ShardedIndex> index;
    std::unique_ptr<ConcurrentProximityCache> cache;
    std::unique_ptr<BatchingDriver> driver;
    std::unique_ptr<net::Server> server;
  };
  std::vector<MutableStack> backends(2);
  std::string map_text;
  for (std::size_t p = 0; p < 2; ++p) {
    MutableStack& b = backends[p];
    b.index = make_mutable(p);
    ProximityCacheOptions copts;
    copts.capacity = 16;
    copts.tolerance = 0.0f;
    b.cache = std::make_unique<ConcurrentProximityCache>(b.embedder.dim(),
                                                         copts);
    BatchingDriverOptions dopts;
    dopts.top_k = 3;
    b.driver = std::make_unique<BatchingDriver>(*b.index, *b.cache,
                                                &b.embedder, dopts);
    b.driver->EnableMutation(*b.index);
    b.server = std::make_unique<net::Server>(*b.driver);
    b.server->Start();
    map_text += MapLine(static_cast<std::uint32_t>(p), b.server->port());
  }

  cluster::RouterOptions ropts;
  ropts.workers = 1;
  cluster::Router router(cluster::ShardMap::Parse(map_text), ropts);
  router.Start();

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()));
  net::Request ins;
  ins.id = 1;
  ins.mutation_op = net::kMutationInsert;
  ins.text = "a brand new live document";
  net::Response resp;
  ASSERT_TRUE(client.Call(ins, &resp));
  ASSERT_EQ(resp.status, RequestStatus::kOk);
  ASSERT_EQ(resp.documents.size(), 1u);

  // Exactly one backend applied it (single-group routing), and the ring
  // says which.
  const std::size_t want_group =
      router.map().GroupForKey(cluster::ShardMap::HashText(ins.text));
  EXPECT_EQ(router.stats().mutations, 1u);
  const auto status = router.backend_status();
  for (std::size_t g = 0; g < status.size(); ++g) {
    EXPECT_EQ(status[g].sent, g == want_group ? 1u : 0u)
        << "mutation leg on group " << g;
  }

  // DELETE the id just assigned, routed by target id this time.
  net::Request del;
  del.id = 2;
  del.mutation_op = net::kMutationDelete;
  del.mutation_target = static_cast<std::uint64_t>(resp.documents[0]);
  net::Response del_resp;
  ASSERT_TRUE(client.Call(del, &del_resp));
  // The DELETE may route to the other group (it hashes the id, not the
  // text) where that id does not exist — kOk or kInvalidArgument are
  // both valid single-group outcomes; what matters is the round-trip
  // and that exactly one more mutation was routed.
  EXPECT_EQ(router.stats().mutations, 2u);
  router.Stop();
  for (auto& b : backends) {
    b.server->Stop();
    b.driver->Shutdown();
  }
}

// ------------------------------------------------- byte-exact relay --

// A capturing fake backend: accepts router connections, records every
// raw frame byte-for-byte, answers each request with a canned kOk
// response so the router completes.
class CapturingBackend {
 public:
  CapturingBackend() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::listen(fd_, 8);
    thread_ = std::thread([this] { Serve(); });
  }

  ~CapturingBackend() {
    stop_.store(true);
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const { return port_; }

  std::vector<std::vector<std::uint8_t>> frames() {
    std::lock_guard lock(mu_);
    return frames_;
  }

 private:
  void Serve() {
    while (!stop_.load()) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;
      std::vector<std::uint8_t> buf;
      char chunk[4096];
      for (;;) {
        const ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        buf.insert(buf.end(), chunk, chunk + n);
        // Slice out complete frames: [u32 len][payload].
        while (buf.size() >= 4) {
          std::uint32_t flen = 0;
          std::memcpy(&flen, buf.data(), 4);
          if (buf.size() < flen + 4u) break;
          const std::vector<std::uint8_t> frame(buf.begin(),
                                                buf.begin() + flen + 4);
          buf.erase(buf.begin(), buf.begin() + flen + 4);
          net::Request req;
          std::size_t consumed = 0;
          // No gtest asserts off the main thread; a bad frame simply
          // goes unanswered and the test's own expectations fail.
          if (net::ParseFrame(frame, &consumed, &req) !=
              net::ParseResult::kOk) {
            break;
          }
          {
            std::lock_guard lock(mu_);
            frames_.push_back(frame);
          }
          net::Response resp;
          resp.id = req.id;
          resp.status = RequestStatus::kOk;
          resp.documents = {42};
          std::vector<std::uint8_t> out;
          net::AppendFrame(out, resp);
          (void)::send(conn, out.data(), out.size(), MSG_NOSIGNAL);
        }
      }
      ::close(conn);
    }
  }

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> frames_;
};

std::vector<std::uint8_t> ReadGolden(const std::string& name) {
  const std::string path = std::string(PROXIMITY_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing golden file " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// Satellite pin: the fully composed tenant+trace+mutation INSERT frame
// (golden request_v4_all_extensions.bin) relays through the router to
// the backend BYTE-IDENTICALLY — the router neither re-encodes nor
// rewrites mutation frames. Query frames differ in exactly one word:
// the flags u32 gains kReqFlagWantDistances.
TEST(ClusterRelayTest, ComposedMutationFrameRelaysByteIdentically) {
  CapturingBackend backend;
  cluster::RouterOptions ropts;
  ropts.workers = 1;
  ropts.hedge = false;
  cluster::Router router(
      cluster::ShardMap::Parse(MapLine(0, backend.port())), ropts);
  router.Start();

  const auto golden = ReadGolden("request_v4_all_extensions.bin");
  ASSERT_FALSE(golden.empty());

  // Drive the router with the golden bytes verbatim (a raw socket, not
  // net::Client, so nothing between the pinned bytes and the wire).
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(router.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, golden.data(), golden.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(golden.size()));
  // Read the router's response (any complete frame will do).
  std::vector<std::uint8_t> rbuf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "router closed without answering";
    rbuf.insert(rbuf.end(), chunk, chunk + n);
    net::Response resp;
    std::size_t consumed = 0;
    const auto pr = net::ParseFrame(rbuf, &consumed, &resp);
    ASSERT_NE(pr, net::ParseResult::kError);
    if (pr == net::ParseResult::kOk) {
      EXPECT_EQ(resp.status, RequestStatus::kOk);
      break;
    }
  }
  ::close(fd);

  const auto frames = backend.frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], golden)
      << "the relayed mutation frame must be byte-identical to what the "
         "client sent";
  router.Stop();
}

TEST(ClusterRelayTest, QueryLegDiffersOnlyInTheFlagsWord) {
  CapturingBackend backend;
  cluster::RouterOptions ropts;
  ropts.workers = 1;
  ropts.hedge = false;
  cluster::Router router(
      cluster::ShardMap::Parse(MapLine(0, backend.port())), ropts);
  router.Start();

  net::Request req;
  req.id = 99;
  req.deadline_us = 500000;
  req.tenant = 3;
  req.trace_id = 0xDEADBEEFull;
  req.trace_parent = 0xFEEDull;
  req.text = "query with tenant and trace attached";
  std::vector<std::uint8_t> sent;
  net::AppendFrame(sent, req);

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port()));
  ASSERT_TRUE(client.Send(req));
  net::Response resp;
  ASSERT_TRUE(client.Recv(&resp));
  ASSERT_EQ(resp.status, RequestStatus::kOk);

  const auto frames = backend.frames();
  ASSERT_EQ(frames.size(), 1u);
  const auto& relayed = frames[0];
  ASSERT_EQ(relayed.size(), sent.size())
      << "want-distances must add no bytes";
  // The expected leg: the same frame with kReqFlagWantDistances ORed
  // into the flags u32 (offset 16: len 4 + magic 4 + id 8).
  std::vector<std::uint8_t> expected = sent;
  expected[16] |= static_cast<std::uint8_t>(net::kReqFlagWantDistances);
  EXPECT_EQ(relayed, expected)
      << "query legs must differ from the client frame in exactly the "
         "flags word";
  router.Stop();
}

// ----------------------------------------------- client timeout/TryRecv --

// A listener that accepts and then stays silent — the shape of a hung
// backend, which is what recv timeouts and hedging exist for.
struct SilentServer {
  int fd = -1;
  std::uint16_t port = 0;
  SilentServer() {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port = ntohs(addr.sin_port);
    ::listen(fd, 4);
  }
  ~SilentServer() { ::close(fd); }
};

TEST(ClientTimeoutTest, TryRecvTimesOutAndKeepsTheConnection) {
  SilentServer silent;
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", silent.port));
  net::Response resp;
  // No response is coming: TryRecv must report timeout quickly and
  // leave the connection open — the hedging primitive (the primary's
  // eventual answer must still be receivable).
  EXPECT_EQ(client.TryRecv(&resp, 50), net::Client::RecvStatus::kTimeout);
  EXPECT_TRUE(client.connected());
}

TEST(ClientTimeoutTest, RecvTimeoutOptionClosesOnExpiry) {
  SilentServer silent;
  net::ClientOptions copts;
  copts.recv_timeout_ms = 50;
  net::Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", silent.port));
  net::Response resp;
  // Blocking Recv under a recv_timeout budget: expiry is a failed call
  // and the connection is closed (a half-read frame cannot resume).
  EXPECT_FALSE(client.Recv(&resp));
  EXPECT_FALSE(client.connected());
}

TEST(ClientTimeoutTest, ConnectTimeoutOptionStillConnects) {
  // The nonblocking-connect path must succeed against a live listener
  // (the timeout only bounds the dial).
  SilentServer silent;
  net::ClientOptions copts;
  copts.connect_timeout_ms = 1000;
  net::Client client(copts);
  EXPECT_TRUE(client.Connect("127.0.0.1", silent.port));
  EXPECT_TRUE(client.connected());
}

}  // namespace
}  // namespace proximity
