// Unit tests for src/cache: eviction policies, the Proximity cache
// (Algorithm 1 semantics), the exact-match baseline, and the adaptive-τ
// controller.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "cache/adaptive_tau.h"
#include "cache/eviction_policy.h"
#include "cache/exact_cache.h"
#include "cache/proximity_cache.h"
#include "common/rng.h"

namespace proximity {
namespace {

std::vector<float> Vec2(float x, float y) { return {x, y}; }

// ------------------------------------------------------------ Policies --

TEST(FifoPolicyTest, EvictsInInsertionOrder) {
  FifoPolicy fifo;
  fifo.OnInsert(3);
  fifo.OnInsert(1);
  fifo.OnInsert(2);
  EXPECT_EQ(fifo.SelectVictim(), 3u);
  EXPECT_EQ(fifo.SelectVictim(), 1u);
  EXPECT_EQ(fifo.SelectVictim(), 2u);
}

TEST(FifoPolicyTest, AccessDoesNotChangeOrder) {
  // §3.2.2: FIFO evicts the oldest "irrespective of how often or recently
  // it has been accessed".
  FifoPolicy fifo;
  fifo.OnInsert(1);
  fifo.OnInsert(2);
  fifo.OnAccess(1);
  fifo.OnAccess(1);
  EXPECT_EQ(fifo.SelectVictim(), 1u);
}

TEST(LruPolicyTest, AccessRefreshesRecency) {
  LruPolicy lru;
  lru.OnInsert(1);
  lru.OnInsert(2);
  lru.OnInsert(3);
  lru.OnAccess(1);  // 1 becomes most recent; 2 is now oldest
  EXPECT_EQ(lru.SelectVictim(), 2u);
  EXPECT_EQ(lru.SelectVictim(), 3u);
  EXPECT_EQ(lru.SelectVictim(), 1u);
}

TEST(LruPolicyTest, WithoutAccessesBehavesLikeFifo) {
  LruPolicy lru;
  lru.OnInsert(5);
  lru.OnInsert(6);
  lru.OnInsert(7);
  EXPECT_EQ(lru.SelectVictim(), 5u);
  EXPECT_EQ(lru.SelectVictim(), 6u);
}

TEST(LfuPolicyTest, EvictsLeastFrequent) {
  LfuPolicy lfu;
  lfu.OnInsert(1);
  lfu.OnInsert(2);
  lfu.OnInsert(3);
  lfu.OnAccess(1);
  lfu.OnAccess(1);
  lfu.OnAccess(3);
  EXPECT_EQ(lfu.SelectVictim(), 2u);  // frequency 0
  EXPECT_EQ(lfu.SelectVictim(), 3u);  // frequency 1
  EXPECT_EQ(lfu.SelectVictim(), 1u);  // frequency 2
}

TEST(LfuPolicyTest, TieBrokenByAge) {
  LfuPolicy lfu;
  lfu.OnInsert(9);
  lfu.OnInsert(4);
  EXPECT_EQ(lfu.SelectVictim(), 9u);  // same frequency, 9 is older
}

TEST(RandomPolicyTest, VictimIsAlwaysLive) {
  RandomPolicy random(7);
  std::set<std::size_t> live;
  for (std::size_t s = 0; s < 50; ++s) {
    random.OnInsert(s);
    live.insert(s);
  }
  for (int i = 0; i < 50; ++i) {
    const std::size_t victim = random.SelectVictim();
    EXPECT_TRUE(live.contains(victim));
    live.erase(victim);
  }
  EXPECT_TRUE(live.empty());
}

TEST(RandomPolicyTest, DeterministicForSeed) {
  RandomPolicy a(3), b(3);
  for (std::size_t s = 0; s < 20; ++s) {
    a.OnInsert(s);
    b.OnInsert(s);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.SelectVictim(), b.SelectVictim());
  }
}

TEST(ClockPolicyTest, UnreferencedEvictsInFifoOrder) {
  ClockPolicy clock;
  clock.OnInsert(1);
  clock.OnInsert(2);
  clock.OnInsert(3);
  EXPECT_EQ(clock.SelectVictim(), 1u);
  EXPECT_EQ(clock.SelectVictim(), 2u);
  EXPECT_EQ(clock.SelectVictim(), 3u);
}

TEST(ClockPolicyTest, ReferencedEntryGetsSecondChance) {
  ClockPolicy clock;
  clock.OnInsert(1);
  clock.OnInsert(2);
  clock.OnAccess(1);
  // Hand passes 1 (referenced: cleared, re-queued), evicts 2.
  EXPECT_EQ(clock.SelectVictim(), 2u);
  // The reprieve is single-use: 1 goes next.
  EXPECT_EQ(clock.SelectVictim(), 1u);
}

TEST(ClockPolicyTest, RepeatedAccessIsNotImmortal) {
  ClockPolicy clock;
  clock.OnInsert(1);
  clock.OnInsert(2);
  clock.OnAccess(1);
  clock.OnAccess(2);
  // Both referenced: the hand clears both and returns to evict slot 1.
  EXPECT_EQ(clock.SelectVictim(), 1u);
}

TEST(EvictionFactoryTest, NamesRoundTrip) {
  for (EvictionKind kind :
       {EvictionKind::kFifo, EvictionKind::kLru, EvictionKind::kLfu,
        EvictionKind::kRandom, EvictionKind::kClock}) {
    EXPECT_EQ(EvictionFromName(EvictionName(kind)), kind);
    EXPECT_EQ(MakeEvictionPolicy(kind)->kind(), kind);
  }
  EXPECT_THROW(EvictionFromName("arc"), std::invalid_argument);
}

// ------------------------------------------------------ ProximityCache --

ProximityCacheOptions SmallCache(std::size_t capacity = 3,
                                 float tolerance = 1.0f) {
  ProximityCacheOptions opts;
  opts.capacity = capacity;
  opts.tolerance = tolerance;
  return opts;
}

TEST(ProximityCacheTest, MissOnEmpty) {
  ProximityCache cache(2, SmallCache());
  const auto result = cache.Lookup(Vec2(0, 0));
  EXPECT_FALSE(result.hit);
  EXPECT_TRUE(std::isinf(result.best_distance));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ProximityCacheTest, HitWithinTolerance) {
  ProximityCache cache(2, SmallCache(3, 1.0f));
  cache.Insert(Vec2(0, 0), {10, 20});
  // Distance 0.25 <= 1.0 -> hit with the stored documents.
  const auto result = cache.Lookup(Vec2(0.5f, 0));
  ASSERT_TRUE(result.hit);
  EXPECT_FLOAT_EQ(result.best_distance, 0.25f);
  ASSERT_EQ(result.documents.size(), 2u);
  EXPECT_EQ(result.documents[0], 10);
  EXPECT_EQ(result.documents[1], 20);
}

TEST(ProximityCacheTest, MissBeyondTolerance) {
  ProximityCache cache(2, SmallCache(3, 1.0f));
  cache.Insert(Vec2(0, 0), {10});
  const auto result = cache.Lookup(Vec2(2, 0));  // distance 4 > 1
  EXPECT_FALSE(result.hit);
  EXPECT_FLOAT_EQ(result.best_distance, 4.0f);
}

TEST(ProximityCacheTest, BoundaryDistanceEqualToTauHits) {
  // Algorithm 1 line 4: "if min_dist <= tau" — inclusive.
  ProximityCache cache(2, SmallCache(3, 4.0f));
  cache.Insert(Vec2(0, 0), {1});
  const auto result = cache.Lookup(Vec2(2, 0));  // distance exactly 4
  EXPECT_TRUE(result.hit);
}

TEST(ProximityCacheTest, ZeroToleranceIsExactMatching) {
  // §3.2.3: "tau = 0 is equivalent to using a cache with exact matching."
  ProximityCache cache(2, SmallCache(3, 0.0f));
  cache.Insert(Vec2(1, 1), {5});
  EXPECT_FALSE(cache.Lookup(Vec2(1.0001f, 1)).hit);
  EXPECT_TRUE(cache.Lookup(Vec2(1, 1)).hit);
}

TEST(ProximityCacheTest, ReturnsNearestKeyNotFirstKey) {
  ProximityCache cache(2, SmallCache(3, 10.0f));
  cache.Insert(Vec2(0, 0), {1});
  cache.Insert(Vec2(5, 0), {2});
  const auto result = cache.Lookup(Vec2(4, 0));  // closer to (5,0)
  ASSERT_TRUE(result.hit);
  EXPECT_EQ(result.documents[0], 2);
}

TEST(ProximityCacheTest, FifoEvictionAtCapacity) {
  ProximityCache cache(2, SmallCache(2, 0.1f));
  cache.Insert(Vec2(0, 0), {1});
  cache.Insert(Vec2(10, 0), {2});
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert(Vec2(20, 0), {3});  // evicts (0,0)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup(Vec2(0, 0)).hit);
  EXPECT_TRUE(cache.Lookup(Vec2(10, 0)).hit);
  EXPECT_TRUE(cache.Lookup(Vec2(20, 0)).hit);
}

TEST(ProximityCacheTest, LruEvictionKeepsAccessedEntry) {
  ProximityCacheOptions opts = SmallCache(2, 0.1f);
  opts.eviction = EvictionKind::kLru;
  ProximityCache cache(2, opts);
  cache.Insert(Vec2(0, 0), {1});
  cache.Insert(Vec2(10, 0), {2});
  cache.Lookup(Vec2(0, 0));        // touch (0,0): now most recent
  cache.Insert(Vec2(20, 0), {3});  // evicts (10,0), not (0,0)
  EXPECT_TRUE(cache.Lookup(Vec2(0, 0)).hit);
  EXPECT_FALSE(cache.Lookup(Vec2(10, 0)).hit);
}

TEST(ProximityCacheTest, StatsCountEverything) {
  ProximityCache cache(2, SmallCache(2, 1.0f));
  cache.Lookup(Vec2(0, 0));        // miss (empty)
  cache.Insert(Vec2(0, 0), {1});
  cache.Lookup(Vec2(0, 0));        // hit
  cache.Lookup(Vec2(9, 9));        // miss
  const auto& stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 1.0 / 3.0);
  // keys_scanned: 0 (empty) + 1 + 1.
  EXPECT_EQ(stats.keys_scanned, 2u);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().lookups, 0u);
}

TEST(ProximityCacheTest, FetchOrRetrieveImplementsAlgorithm1) {
  ProximityCache cache(2, SmallCache(3, 1.0f));
  int db_calls = 0;
  auto retrieve = [&db_calls](std::span<const float>) {
    ++db_calls;
    return std::vector<VectorId>{42, 43};
  };
  bool hit = true;
  const auto r1 = cache.FetchOrRetrieve(Vec2(0, 0), retrieve, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(db_calls, 1);
  EXPECT_EQ(r1, (std::vector<VectorId>{42, 43}));

  const auto r2 = cache.FetchOrRetrieve(Vec2(0.1f, 0), retrieve, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(db_calls, 1);  // database bypassed
  EXPECT_EQ(r2, r1);
}

TEST(ProximityCacheTest, ClearEmptiesCache) {
  ProximityCache cache(2, SmallCache(3, 1.0f));
  cache.Insert(Vec2(0, 0), {1});
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Vec2(0, 0)).hit);
  // Reinsertion works after clear (policy state reset too).
  cache.Insert(Vec2(0, 0), {2});
  EXPECT_TRUE(cache.Lookup(Vec2(0, 0)).hit);
}

TEST(ProximityCacheTest, SetToleranceTakesEffect) {
  ProximityCache cache(2, SmallCache(3, 0.0f));
  cache.Insert(Vec2(0, 0), {1});
  EXPECT_FALSE(cache.Lookup(Vec2(1, 0)).hit);
  cache.set_tolerance(2.0f);
  EXPECT_TRUE(cache.Lookup(Vec2(1, 0)).hit);
}

TEST(ProximityCacheTest, IntrospectionAccessors) {
  ProximityCache cache(2, SmallCache(3, 1.0f));
  cache.Insert(Vec2(1, 2), {7, 8});
  EXPECT_FLOAT_EQ(cache.KeyAt(0)[0], 1.f);
  EXPECT_FLOAT_EQ(cache.KeyAt(0)[1], 2.f);
  EXPECT_EQ(cache.ValueAt(0)[1], 8);
  EXPECT_THROW(cache.KeyAt(1), std::out_of_range);
  EXPECT_THROW(cache.ValueAt(1), std::out_of_range);
}

TEST(ProximityCacheTest, ValidatesArguments) {
  EXPECT_THROW(ProximityCache(0, SmallCache()), std::invalid_argument);
  EXPECT_THROW(ProximityCache(2, SmallCache(0)), std::invalid_argument);
  ProximityCacheOptions neg = SmallCache();
  neg.tolerance = -1.0f;
  EXPECT_THROW(ProximityCache(2, neg), std::invalid_argument);
  ProximityCache cache(2, SmallCache());
  const std::vector<float> wrong = {1, 2, 3};
  EXPECT_THROW(cache.Lookup(wrong), std::invalid_argument);
  EXPECT_THROW(cache.Insert(wrong, {}), std::invalid_argument);
}

TEST(ProximityCacheTest, NegativeToleranceAllowedForInnerProduct) {
  ProximityCacheOptions opts;
  opts.capacity = 2;
  opts.metric = Metric::kInnerProduct;
  opts.tolerance = -0.5f;  // IP distances are negated similarities
  ProximityCache cache(2, opts);
  cache.Insert(Vec2(1, 0), {1});
  // dot((1,0),(1,0)) = 1 -> distance -1 <= -0.5: hit.
  EXPECT_TRUE(cache.Lookup(Vec2(1, 0)).hit);
  // dot((0,1),(1,0)) = 0 -> distance 0 > -0.5: miss.
  EXPECT_FALSE(cache.Lookup(Vec2(0, 1)).hit);
}

TEST(ProximityCacheTest, CosineMetricHits) {
  ProximityCacheOptions opts;
  opts.capacity = 2;
  opts.metric = Metric::kCosine;
  opts.tolerance = 0.01f;
  ProximityCache cache(2, opts);
  cache.Insert(Vec2(1, 0), {1});
  EXPECT_TRUE(cache.Lookup(Vec2(5, 0)).hit);   // parallel: distance 0
  EXPECT_FALSE(cache.Lookup(Vec2(0, 1)).hit);  // orthogonal: distance 1
}

TEST(ProximityCacheTest, SizeNeverExceedsCapacity) {
  ProximityCache cache(4, SmallCache(5, 0.0f));
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    std::vector<float> v(4);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 10));
    cache.Insert(v, {static_cast<VectorId>(i)});
    EXPECT_LE(cache.size(), 5u);
  }
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.stats().evictions, 95u);
}

// ------------------------------------------------------------- Max age --

TEST(ProximityCacheTtlTest, FreshEntryHitsStaleEntryMisses) {
  ProximityCacheOptions opts = SmallCache(4, 1.0f);
  opts.max_age = 3;  // expires after 3 cache operations
  ProximityCache cache(2, opts);
  cache.Insert(Vec2(0, 0), {1});  // op 1, birth 1
  EXPECT_TRUE(cache.Lookup(Vec2(0, 0)).hit);   // op 2, age 1
  EXPECT_TRUE(cache.Lookup(Vec2(0, 0)).hit);   // op 3, age 2
  EXPECT_TRUE(cache.Lookup(Vec2(0, 0)).hit);   // op 4, age 3 (boundary)
  EXPECT_FALSE(cache.Lookup(Vec2(0, 0)).hit);  // op 5, age 4 > 3: expired
  EXPECT_EQ(cache.stats().expired_skips, 1u);
}

TEST(ProximityCacheTtlTest, ReinsertionRefreshesAge) {
  ProximityCacheOptions opts = SmallCache(4, 1.0f);
  opts.max_age = 2;
  ProximityCache cache(2, opts);
  cache.Insert(Vec2(0, 0), {1});
  cache.Lookup(Vec2(9, 9));  // miss, ages the entry
  cache.Lookup(Vec2(9, 9));  // entry now at the boundary
  // The pipeline would now miss and refresh:
  EXPECT_FALSE(cache.Lookup(Vec2(0, 0)).hit);
  cache.Insert(Vec2(0, 0), {2});
  const auto result = cache.Lookup(Vec2(0, 0));
  ASSERT_TRUE(result.hit);
  EXPECT_EQ(result.documents[0], 2);
}

TEST(ProximityCacheTtlTest, ExpiredEntryDoesNotShadowLiveOne) {
  // An expired closer key must not hide a live farther key within tau.
  ProximityCacheOptions opts = SmallCache(4, 9.0f);
  opts.max_age = 4;
  ProximityCache cache(2, opts);
  cache.Insert(Vec2(0, 0), {1});   // will expire
  cache.Lookup(Vec2(50, 50));      // age it
  cache.Lookup(Vec2(50, 50));
  cache.Lookup(Vec2(50, 50));
  cache.Insert(Vec2(2, 0), {2});   // fresh, distance 4 from query below
  // Query at (0,0): expired key at distance 0, live key at distance 4.
  const auto result = cache.Lookup(Vec2(0, 0));
  ASSERT_TRUE(result.hit);
  EXPECT_EQ(result.documents[0], 2);
  EXPECT_FLOAT_EQ(result.best_distance, 4.0f);
}

TEST(ProximityCacheTtlTest, ZeroMaxAgeDisablesExpiry) {
  ProximityCache cache(2, SmallCache(4, 1.0f));  // max_age = 0 (default)
  cache.Insert(Vec2(0, 0), {1});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(cache.Lookup(Vec2(0, 0)).hit);
  }
  EXPECT_EQ(cache.stats().expired_skips, 0u);
}

TEST(ProximityCacheTtlTest, MaxAgeSurvivesSerialization) {
  ProximityCacheOptions opts = SmallCache(4, 1.0f);
  opts.max_age = 7;
  ProximityCache cache(2, opts);
  cache.Insert(Vec2(1, 1), {3});
  std::stringstream ss;
  cache.SaveTo(ss);
  ProximityCache back = ProximityCache::LoadFrom(ss);
  EXPECT_TRUE(back.Lookup(Vec2(1, 1)).hit);
  for (int i = 0; i < 10; ++i) back.Lookup(Vec2(9, 9));
  EXPECT_FALSE(back.Lookup(Vec2(1, 1)).hit);  // expiry still enforced
}

// ----------------------------------------------------------- ExactCache --

TEST(ExactCacheTest, HitsOnlyOnBitIdenticalKeys) {
  ExactCache cache(2, 10);
  cache.Insert(Vec2(1, 2), {5});
  EXPECT_NE(cache.Lookup(Vec2(1, 2)), nullptr);
  EXPECT_EQ(cache.Lookup(Vec2(1.0000001f, 2)), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().lookups, 2u);
}

TEST(ExactCacheTest, FifoEviction) {
  ExactCache cache(2, 2);
  cache.Insert(Vec2(1, 0), {1});
  cache.Insert(Vec2(2, 0), {2});
  cache.Insert(Vec2(3, 0), {3});  // evicts (1,0)
  EXPECT_EQ(cache.Lookup(Vec2(1, 0)), nullptr);
  EXPECT_NE(cache.Lookup(Vec2(2, 0)), nullptr);
  EXPECT_NE(cache.Lookup(Vec2(3, 0)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ExactCacheTest, ReinsertReplacesValueWithoutSlot) {
  ExactCache cache(2, 2);
  cache.Insert(Vec2(1, 0), {1});
  cache.Insert(Vec2(1, 0), {9});
  EXPECT_EQ(cache.size(), 1u);
  const auto* docs = cache.Lookup(Vec2(1, 0));
  ASSERT_NE(docs, nullptr);
  EXPECT_EQ((*docs)[0], 9);
}

TEST(ExactCacheTest, ClearResets) {
  ExactCache cache(2, 2);
  cache.Insert(Vec2(1, 0), {1});
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(Vec2(1, 0)), nullptr);
}

TEST(ExactCacheTest, ValidatesArguments) {
  EXPECT_THROW(ExactCache(0, 2), std::invalid_argument);
  EXPECT_THROW(ExactCache(2, 0), std::invalid_argument);
  ExactCache cache(2, 2);
  const std::vector<float> wrong = {1};
  EXPECT_THROW(cache.Lookup(wrong), std::invalid_argument);
}

// ---------------------------------------------------------- AdaptiveTau --

TEST(AdaptiveTauTest, WidensWhenHitRateLow) {
  AdaptiveTauOptions opts;
  opts.target_hit_rate = 0.9;
  opts.window = 8;
  opts.period = 8;
  opts.initial_tau = 1.0;
  AdaptiveTau controller(opts);
  for (int i = 0; i < 64; ++i) controller.Observe(false);
  EXPECT_GT(controller.tau(), 1.0);
}

TEST(AdaptiveTauTest, TightensWhenHitRateHigh) {
  AdaptiveTauOptions opts;
  opts.target_hit_rate = 0.1;
  opts.window = 8;
  opts.period = 8;
  opts.initial_tau = 1.0;
  AdaptiveTau controller(opts);
  for (int i = 0; i < 64; ++i) controller.Observe(true);
  EXPECT_LT(controller.tau(), 1.0);
}

TEST(AdaptiveTauTest, RespectsBounds) {
  AdaptiveTauOptions opts;
  opts.target_hit_rate = 0.99;
  opts.window = 4;
  opts.period = 1;
  opts.initial_tau = 1.0;
  opts.max_tau = 2.0;
  AdaptiveTau controller(opts);
  for (int i = 0; i < 1000; ++i) controller.Observe(false);
  EXPECT_LE(controller.tau(), 2.0);

  AdaptiveTauOptions down = opts;
  down.target_hit_rate = 0.01;
  down.min_tau = 0.5;
  AdaptiveTau tight(down);
  for (int i = 0; i < 1000; ++i) tight.Observe(true);
  EXPECT_GE(tight.tau(), 0.5);
}

TEST(AdaptiveTauTest, EscapesZeroTau) {
  AdaptiveTauOptions opts;
  opts.initial_tau = 0.0;
  opts.target_hit_rate = 0.5;
  opts.window = 4;
  opts.period = 1;
  AdaptiveTau controller(opts);
  for (int i = 0; i < 64; ++i) controller.Observe(false);
  EXPECT_GT(controller.tau(), 0.0);
}

TEST(AdaptiveTauTest, WindowedHitRateTracksRecentHistory) {
  AdaptiveTauOptions opts;
  opts.window = 4;
  AdaptiveTau controller(opts);
  controller.Observe(true);
  controller.Observe(true);
  controller.Observe(false);
  controller.Observe(false);
  EXPECT_DOUBLE_EQ(controller.WindowedHitRate(), 0.5);
  // Two more misses push the hits out of the window.
  controller.Observe(false);
  controller.Observe(false);
  EXPECT_DOUBLE_EQ(controller.WindowedHitRate(), 0.0);
}

TEST(AdaptiveTauTest, ValidatesOptions) {
  AdaptiveTauOptions bad;
  bad.window = 0;
  EXPECT_THROW(AdaptiveTau{bad}, std::invalid_argument);
  AdaptiveTauOptions bad2;
  bad2.step = 1.0;
  EXPECT_THROW(AdaptiveTau{bad2}, std::invalid_argument);
  AdaptiveTauOptions bad3;
  bad3.min_tau = 5;
  bad3.max_tau = 1;
  EXPECT_THROW(AdaptiveTau{bad3}, std::invalid_argument);
}

}  // namespace
}  // namespace proximity
