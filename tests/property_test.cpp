// Property-based and parameterized suites (TEST_P sweeps) checking
// invariants across randomized inputs and parameter grids:
//   - the Proximity cache against a brute-force shadow model,
//   - top-k selection against full sorts,
//   - HNSW recall across (M, ef) configurations,
//   - k-means inertia monotonicity,
//   - embedding-geometry invariants of the workload generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "cache/exact_cache.h"
#include "cache/proximity_cache.h"
#include "common/rng.h"
#include "common/stats.h"
#include "embed/hash_embedder.h"
#include "embed/perturb.h"
#include "index/hnsw_index.h"
#include "index/kmeans.h"
#include "index/recall.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

namespace proximity {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Matrix m(rows, dim);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : m.MutableRow(r)) {
      x = static_cast<float>(rng.Gaussian(0, 1));
    }
  }
  return m;
}

// ---------------------------------------------- Cache vs shadow model --

struct CacheModelParams {
  std::size_t capacity;
  float tolerance;
  EvictionKind eviction;
};

class CacheShadowModelTest
    : public ::testing::TestWithParam<CacheModelParams> {};

// A transparent re-implementation of Algorithm 1 with naive containers.
class ShadowCache {
 public:
  ShadowCache(std::size_t capacity, float tolerance)
      : capacity_(capacity), tolerance_(tolerance) {}

  std::optional<std::vector<VectorId>> Lookup(
      const std::vector<float>& q) const {
    if (entries_.empty()) return std::nullopt;
    std::size_t best = 0;
    float best_d = L2SquaredDistance(q, entries_[0].key);
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      const float d = L2SquaredDistance(q, entries_[i].key);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    if (best_d <= tolerance_) return entries_[best].value;
    return std::nullopt;
  }

  void InsertFifo(std::vector<float> key, std::vector<VectorId> value) {
    if (entries_.size() >= capacity_) {
      entries_.erase(entries_.begin());  // index 0 is the oldest
    }
    entries_.push_back({std::move(key), std::move(value)});
  }

 private:
  struct Entry {
    std::vector<float> key;
    std::vector<VectorId> value;
  };
  std::vector<Entry> entries_;
  std::size_t capacity_;
  float tolerance_;
};

TEST_P(CacheShadowModelTest, MatchesBruteForceSemantics) {
  const auto params = GetParam();
  constexpr std::size_t kDim = 8;
  ProximityCacheOptions opts;
  opts.capacity = params.capacity;
  opts.tolerance = params.tolerance;
  opts.eviction = params.eviction;
  ProximityCache cache(kDim, opts);
  ShadowCache shadow(params.capacity, params.tolerance);

  Rng rng(params.capacity * 1000 +
          static_cast<std::uint64_t>(params.tolerance * 10));
  for (int step = 0; step < 400; ++step) {
    std::vector<float> q(kDim);
    // Continuous coordinates: distances are almost surely distinct, so
    // both implementations resolve the minimum the same way.
    for (auto& x : q) x = static_cast<float>(rng.Gaussian(0, 1.2));
    const auto got = cache.Lookup(q);
    const auto expected = shadow.Lookup(q);
    ASSERT_EQ(got.hit, expected.has_value()) << "step " << step;
    if (got.hit) {
      EXPECT_TRUE(std::equal(got.documents.begin(), got.documents.end(),
                             expected->begin(), expected->end()))
          << "step " << step;
    } else {
      std::vector<VectorId> docs = {static_cast<VectorId>(step)};
      cache.Insert(q, docs);
      shadow.InsertFifo(q, docs);
    }
    EXPECT_LE(cache.size(), params.capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FifoGrid, CacheShadowModelTest,
    ::testing::Values(CacheModelParams{1, 0.5f, EvictionKind::kFifo},
                      CacheModelParams{4, 0.0f, EvictionKind::kFifo},
                      CacheModelParams{4, 2.0f, EvictionKind::kFifo},
                      CacheModelParams{16, 1.0f, EvictionKind::kFifo},
                      CacheModelParams{64, 8.0f, EvictionKind::kFifo},
                      CacheModelParams{128, 100.0f, EvictionKind::kFifo}));

// Hit correctness (distance <= tau) must hold for every policy, even
// where the shadow model's eviction order does not apply.
class CacheHitInvariantTest
    : public ::testing::TestWithParam<EvictionKind> {};

TEST_P(CacheHitInvariantTest, HitsAreWithinToleranceAndSizeBounded) {
  constexpr std::size_t kDim = 6;
  constexpr std::size_t kCapacity = 10;
  constexpr float kTau = 3.0f;
  ProximityCacheOptions opts;
  opts.capacity = kCapacity;
  opts.tolerance = kTau;
  opts.eviction = GetParam();
  ProximityCache cache(kDim, opts);

  Rng rng(7);
  for (int step = 0; step < 500; ++step) {
    std::vector<float> q(kDim);
    for (auto& x : q) x = static_cast<float>(rng.Gaussian(0, 2));
    const auto result = cache.Lookup(q);
    if (result.hit) {
      EXPECT_LE(result.best_distance, kTau);
      // The matched key must actually exist in the cache at that distance.
      bool found = false;
      for (std::size_t s = 0; s < cache.size(); ++s) {
        if (std::abs(L2SquaredDistance(q, cache.KeyAt(s)) -
                     result.best_distance) < 1e-4f) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    } else {
      // Miss implies *no* key within tolerance.
      for (std::size_t s = 0; s < cache.size(); ++s) {
        EXPECT_GT(L2SquaredDistance(q, cache.KeyAt(s)), kTau);
      }
      cache.Insert(q, {static_cast<VectorId>(step)});
    }
    EXPECT_LE(cache.size(), kCapacity);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CacheHitInvariantTest,
                         ::testing::Values(EvictionKind::kFifo,
                                           EvictionKind::kLru,
                                           EvictionKind::kLfu,
                                           EvictionKind::kRandom,
                                           EvictionKind::kClock));

// ------------------------------------- tau = 0 vs exact-cache property --

TEST(CacheEquivalenceTest, ZeroToleranceMatchesExactCacheOnHits) {
  // §3.2.3: "tau = 0 is equivalent to using a cache with exact matching."
  // Drive both caches with the same operation sequence over a small key
  // universe (so exact repeats occur) and compare hit outcomes. Both use
  // FIFO with the same capacity, so their contents stay identical.
  constexpr std::size_t kDim = 4;
  constexpr std::size_t kCapacity = 8;
  ProximityCacheOptions opts;
  opts.capacity = kCapacity;
  opts.tolerance = 0.0f;
  ProximityCache approx(kDim, opts);
  ExactCache exact(kDim, kCapacity);

  Rng rng(17);
  std::vector<std::vector<float>> universe;
  for (int i = 0; i < 24; ++i) {
    std::vector<float> v(kDim);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
    universe.push_back(std::move(v));
  }

  for (int step = 0; step < 600; ++step) {
    const auto& q = universe[rng.Below(universe.size())];
    const auto a = approx.Lookup(q);
    const auto* e = exact.Lookup(q);
    ASSERT_EQ(a.hit, e != nullptr) << "step " << step;
    if (a.hit) {
      EXPECT_TRUE(std::equal(a.documents.begin(), a.documents.end(),
                             e->begin(), e->end()));
    } else {
      const std::vector<VectorId> docs = {step};
      approx.Insert(q, docs);
      exact.Insert(q, docs);
    }
  }
  // Both saw the same traffic and must agree on aggregate hits.
  EXPECT_EQ(approx.stats().hits, exact.stats().hits);
}

// -------------------------------------------------- TopK vs full sort --

class TopKPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(TopKPropertyTest, AgreesWithFullSort) {
  const auto [k, n] = GetParam();
  Rng rng(k * 31 + n);
  std::vector<Neighbor> all;
  TopK top(k);
  for (std::size_t i = 0; i < n; ++i) {
    // Coarse distances to exercise tie-breaking.
    const float d = static_cast<float>(rng.Below(16));
    all.push_back({static_cast<VectorId>(i), d});
    top.Push(static_cast<VectorId>(i), d);
  }
  std::sort(all.begin(), all.end(), NeighborCloser{});
  if (all.size() > k) all.resize(k);
  EXPECT_EQ(top.Take(), all);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopKPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 10, 100),
                       ::testing::Values<std::size_t>(1, 10, 100, 2000)));

// --------------------------------------------------- HNSW recall sweep --

struct HnswParams {
  std::size_t M;
  std::size_t ef_search;
  double min_recall;
};

class HnswRecallTest : public ::testing::TestWithParam<HnswParams> {};

TEST_P(HnswRecallTest, RecallAboveFloor) {
  const auto params = GetParam();
  const Matrix corpus = RandomMatrix(2000, 16, 5);
  HnswIndex index(16, {.M = params.M,
                       .ef_construction = 100,
                       .ef_search = params.ef_search});
  index.AddBatch(corpus);
  double recall_sum = 0;
  constexpr int kQueries = 20;
  Rng rng(6);
  for (int i = 0; i < kQueries; ++i) {
    std::vector<float> q(16);
    for (auto& x : q) x = static_cast<float>(rng.Gaussian(0, 1));
    const auto truth = SelectTopK(Metric::kL2, q, corpus.data(),
                                  corpus.rows(), corpus.dim(), 10);
    recall_sum += RecallAtK(index.Search(q, 10), truth);
  }
  EXPECT_GE(recall_sum / kQueries, params.min_recall);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HnswRecallTest,
    ::testing::Values(HnswParams{8, 32, 0.6}, HnswParams{8, 128, 0.85},
                      HnswParams{16, 64, 0.85}, HnswParams{32, 128, 0.95}));

// ------------------------------------------------------ KMeans property --

class KMeansInertiaTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansInertiaTest, MoreClustersNeverIncreaseInertia) {
  const std::size_t k = GetParam();
  const Matrix data = RandomMatrix(400, 8, 9);
  KMeansOptions opts;
  opts.seed = 3;
  opts.max_iterations = 25;
  const auto coarse = RunKMeans(data, k, opts);
  const auto fine = RunKMeans(data, k * 4, opts);
  EXPECT_LE(fine.inertia, coarse.inertia * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Grid, KMeansInertiaTest,
                         ::testing::Values<std::size_t>(2, 4, 8, 16));

// -------------------------------------- Workload geometry invariants --

struct GeometryCase {
  const char* name;
  bool medrag;
};

class WorkloadGeometryTest : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(WorkloadGeometryTest, VariantsCloserThanClustersCloserThanStrangers) {
  const auto param = GetParam();
  WorkloadSpec spec = param.medrag ? MedragLikeSpec(0, 42)
                                   : MmluLikeSpec(0, 42);
  spec.corpus_size =
      spec.num_questions * spec.golds_per_question + 500;
  const Workload w = BuildWorkload(spec);
  HashEmbedder embedder;

  StreamingStats variant, same_cluster, cross_cluster;
  for (std::size_t q = 0; q < 30; ++q) {
    const auto base = embedder.Embed(w.questions[q].text);
    const auto var = embedder.Embed(
        MakeVariant(w.questions[q].text, q, 1, 42));
    variant.Add(L2SquaredDistance(base, var));
    for (std::size_t p = q + 1; p < 30; ++p) {
      const auto other = embedder.Embed(w.questions[p].text);
      const float d = L2SquaredDistance(base, other);
      if (w.questions[q].cluster == w.questions[p].cluster) {
        same_cluster.Add(d);
      } else {
        cross_cluster.Add(d);
      }
    }
  }
  // The ordering the τ sweep depends on.
  EXPECT_LT(variant.max(), same_cluster.min());
  EXPECT_LT(same_cluster.mean(), cross_cluster.mean());
  // Variants live below τ = 2 (MMLU τ grid) on average.
  EXPECT_LT(variant.mean(), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadGeometryTest,
                         ::testing::Values(GeometryCase{"mmlu", false},
                                           GeometryCase{"medrag", true}));

TEST(WorkloadGeometryTest, MedragClustersWiderApartThanMmlu) {
  // The property that makes τ = 5 safe for MedRAG but cross-question for
  // MMLU (§4.3.2): MedRAG same-cluster distances exceed MMLU's.
  auto mean_same_cluster = [](const WorkloadSpec& base) {
    WorkloadSpec spec = base;
    spec.corpus_size = spec.num_questions * spec.golds_per_question + 100;
    const Workload w = BuildWorkload(spec);
    HashEmbedder embedder;
    StreamingStats stats;
    // Clusters are assigned round-robin, so (q, q + num_clusters) is
    // always a same-cluster pair.
    for (std::size_t q = 0; q + spec.num_clusters < w.questions.size() &&
                            q < 20;
         ++q) {
      const std::size_t p = q + spec.num_clusters;
      EXPECT_EQ(w.questions[q].cluster, w.questions[p].cluster)
          << "round-robin assumption broken";
      stats.Add(L2SquaredDistance(embedder.Embed(w.questions[q].text),
                                  embedder.Embed(w.questions[p].text)));
    }
    return stats.mean();
  };
  const double mmlu = mean_same_cluster(MmluLikeSpec(0, 42));
  const double medrag = mean_same_cluster(MedragLikeSpec(0, 42));
  EXPECT_LT(mmlu, 5.0);    // inside the MMLU τ=5 radius
  EXPECT_GT(medrag, 5.0);  // outside the MedRAG τ=5 radius
  EXPECT_LT(medrag, 10.0);  // but inside τ=10 (the accuracy cliff)
}

}  // namespace
}  // namespace proximity
