// Unit tests for src/vecmath: kernels, matrix, ops, top-k selection.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "common/rng.h"
#include "vecmath/kernels.h"
#include "vecmath/matrix.h"
#include "vecmath/metric.h"
#include "vecmath/ops.h"
#include "vecmath/topk.h"

namespace proximity {
namespace {

std::vector<float> RandomVector(Rng& rng, std::size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
  return v;
}

// -------------------------------------------------------------- Kernels --

TEST(KernelsTest, L2SquaredKnownValues) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 6, 3};
  EXPECT_FLOAT_EQ(L2SquaredDistance(a, b), 9 + 16 + 0);
  EXPECT_FLOAT_EQ(L2SquaredDistance(a, a), 0.f);
}

TEST(KernelsTest, InnerProductKnownValues) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, -5, 6};
  EXPECT_FLOAT_EQ(InnerProduct(a, b), 4 - 10 + 18);
}

TEST(KernelsTest, SquaredNormMatchesInnerProduct) {
  Rng rng(1);
  const auto v = RandomVector(rng, 77);
  EXPECT_NEAR(SquaredNorm(v), InnerProduct(v, v), 1e-4);
}

TEST(KernelsTest, CosineOfParallelVectorsIsZero) {
  const std::vector<float> a = {1, 2, 3, 4};
  std::vector<float> b = a;
  for (auto& x : b) x *= 2.5f;
  EXPECT_NEAR(CosineDistance(a, b), 0.f, 1e-6);
}

TEST(KernelsTest, CosineOfOrthogonalVectorsIsOne) {
  const std::vector<float> a = {1, 0, 0, 0};
  const std::vector<float> b = {0, 1, 0, 0};
  EXPECT_NEAR(CosineDistance(a, b), 1.f, 1e-6);
}

TEST(KernelsTest, CosineOfOppositeVectorsIsTwo) {
  const std::vector<float> a = {1, 2};
  const std::vector<float> b = {-1, -2};
  EXPECT_NEAR(CosineDistance(a, b), 2.f, 1e-6);
}

TEST(KernelsTest, CosineWithZeroVectorIsOne) {
  const std::vector<float> a = {0, 0, 0};
  const std::vector<float> b = {1, 2, 3};
  EXPECT_FLOAT_EQ(CosineDistance(a, b), 1.f);
}

TEST(KernelsTest, UnrolledMatchesNaiveOnOddSizes) {
  Rng rng(2);
  for (std::size_t dim : {1u, 2u, 3u, 5u, 7u, 15u, 33u, 127u, 768u}) {
    const auto a = RandomVector(rng, dim);
    const auto b = RandomVector(rng, dim);
    float naive = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      naive += (a[i] - b[i]) * (a[i] - b[i]);
    }
    EXPECT_NEAR(L2SquaredDistance(a, b), naive, 1e-3 * dim)
        << "dim=" << dim;
  }
}

TEST(KernelsTest, DistanceDispatchesMetric) {
  const std::vector<float> a = {1, 0};
  const std::vector<float> b = {0, 1};
  EXPECT_FLOAT_EQ(Distance(Metric::kL2, a, b), 2.f);
  EXPECT_FLOAT_EQ(Distance(Metric::kInnerProduct, a, b), 0.f);
  EXPECT_FLOAT_EQ(Distance(Metric::kCosine, a, b), 1.f);
  // Inner product distance is negated: closer = smaller.
  EXPECT_FLOAT_EQ(Distance(Metric::kInnerProduct, a, a), -1.f);
}

TEST(KernelsTest, BatchDistanceMatchesScalar) {
  Rng rng(3);
  constexpr std::size_t kDim = 16, kCount = 9;
  const auto query = RandomVector(rng, kDim);
  std::vector<float> base;
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto v = RandomVector(rng, kDim);
    base.insert(base.end(), v.begin(), v.end());
  }
  std::vector<float> out(kCount);
  BatchDistance(Metric::kL2, query, base.data(), kCount, kDim, out.data());
  for (std::size_t i = 0; i < kCount; ++i) {
    std::span<const float> row(base.data() + i * kDim, kDim);
    EXPECT_FLOAT_EQ(out[i], L2SquaredDistance(query, row));
  }
}

TEST(MetricTest, NamesRoundTrip) {
  for (Metric m : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    EXPECT_EQ(MetricFromName(MetricName(m)), m);
  }
  EXPECT_THROW(MetricFromName("nope"), std::invalid_argument);
}

// --------------------------------------------------------------- Matrix --

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.dim(), 4u);
  m.MutableRow(1)[2] = 7.f;
  EXPECT_FLOAT_EQ(m.Row(1)[2], 7.f);
  EXPECT_FLOAT_EQ(m.Row(0)[0], 0.f);
}

TEST(MatrixTest, AppendRow) {
  Matrix m(0, 3);
  const std::vector<float> row = {1, 2, 3};
  m.AppendRow(row);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_FLOAT_EQ(m.Row(0)[1], 2.f);
}

TEST(MatrixTest, AppendRejectsWrongDim) {
  Matrix m(0, 3);
  const std::vector<float> row = {1, 2};
  EXPECT_THROW(m.AppendRow(row), std::invalid_argument);
}

TEST(MatrixTest, WrapExistingData) {
  Matrix m(std::vector<float>{1, 2, 3, 4, 5, 6}, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_FLOAT_EQ(m.Row(1)[0], 4.f);
  EXPECT_THROW(Matrix(std::vector<float>{1, 2, 3}, 2), std::invalid_argument);
  EXPECT_THROW(Matrix(std::vector<float>{1}, 0), std::invalid_argument);
}

// ------------------------------------------------------------------ Ops --

TEST(OpsTest, NormalizeL2MakesUnitNorm) {
  std::vector<float> v = {3, 4};
  NormalizeL2(v);
  EXPECT_NEAR(std::sqrt(SquaredNorm(v)), 1.f, 1e-6);
  EXPECT_NEAR(v[0], 0.6f, 1e-6);
}

TEST(OpsTest, NormalizeZeroVectorIsNoop) {
  std::vector<float> v = {0, 0, 0};
  NormalizeL2(v);
  for (float x : v) EXPECT_EQ(x, 0.f);
}

TEST(OpsTest, AxpyAccumulates) {
  const std::vector<float> x = {1, 2};
  std::vector<float> y = {10, 20};
  Axpy(2.f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.f);
  EXPECT_FLOAT_EQ(y[1], 24.f);
}

TEST(OpsTest, ScaleMultiplies) {
  std::vector<float> v = {1, -2, 3};
  Scale(v, -2.f);
  EXPECT_FLOAT_EQ(v[0], -2.f);
  EXPECT_FLOAT_EQ(v[1], 4.f);
  EXPECT_FLOAT_EQ(v[2], -6.f);
}

TEST(OpsTest, MeanOfRows) {
  const std::vector<float> a = {1, 2};
  const std::vector<float> b = {3, 6};
  std::vector<std::span<const float>> rows = {a, b};
  std::vector<float> mean(2);
  MeanOf(rows, mean);
  EXPECT_FLOAT_EQ(mean[0], 2.f);
  EXPECT_FLOAT_EQ(mean[1], 4.f);
}

// ----------------------------------------------------------------- TopK --

TEST(TopKTest, KeepsClosestK) {
  TopK top(3);
  for (VectorId id = 0; id < 10; ++id) {
    top.Push(id, static_cast<float>(10 - id));  // id 9 closest
  }
  const auto result = top.Take();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 9);
  EXPECT_EQ(result[1].id, 8);
  EXPECT_EQ(result[2].id, 7);
}

TEST(TopKTest, FewerThanKCandidates) {
  TopK top(5);
  top.Push(1, 0.5f);
  top.Push(2, 0.1f);
  const auto result = top.Take();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 2);
}

TEST(TopKTest, TieBrokenByLowerId) {
  TopK top(2);
  top.Push(5, 1.0f);
  top.Push(3, 1.0f);
  top.Push(8, 1.0f);
  const auto result = top.Take();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 3);
  EXPECT_EQ(result[1].id, 5);
}

TEST(TopKTest, WorstDistanceTracksHeap) {
  TopK top(2);
  EXPECT_TRUE(std::isinf(top.WorstDistance()));
  top.Push(1, 5.f);
  EXPECT_TRUE(std::isinf(top.WorstDistance()));
  top.Push(2, 3.f);
  EXPECT_FLOAT_EQ(top.WorstDistance(), 5.f);
  top.Push(3, 1.f);  // evicts 5
  EXPECT_FLOAT_EQ(top.WorstDistance(), 3.f);
}

TEST(TopKTest, RejectsZeroK) {
  EXPECT_THROW(TopK(0), std::invalid_argument);
}

TEST(TopKTest, SortedDoesNotClear) {
  TopK top(2);
  top.Push(1, 2.f);
  top.Push(2, 1.f);
  const auto sorted = top.Sorted();
  EXPECT_EQ(sorted.size(), 2u);
  EXPECT_EQ(top.size(), 2u);
}

TEST(TopKTest, MatchesFullSortOnRandomData) {
  Rng rng(9);
  std::vector<Neighbor> all;
  TopK top(10);
  for (VectorId id = 0; id < 500; ++id) {
    const float d = rng.NextFloat();
    all.push_back({id, d});
    top.Push(id, d);
  }
  std::sort(all.begin(), all.end(), NeighborCloser{});
  all.resize(10);
  EXPECT_EQ(top.Take(), all);
}

TEST(SelectTopKTest, FindsNearestRow) {
  // Three 2-d points; query at origin.
  const std::vector<float> base = {5, 5, 1, 1, 3, 3};
  const std::vector<float> query = {0, 0};
  const auto result =
      SelectTopK(Metric::kL2, query, base.data(), 3, 2, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1);
  EXPECT_EQ(result[1].id, 2);
}

TEST(SelectTopKTest, BaseIdOffset) {
  const std::vector<float> base = {1, 1, 0, 0};
  const std::vector<float> query = {0, 0};
  const auto result =
      SelectTopK(Metric::kL2, query, base.data(), 2, 2, 1, /*base_id=*/100);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 101);
}

}  // namespace
}  // namespace proximity
