// Tests for filtered search (predicate NNS + the filter-aware cache
// router) and the SQ8 scalar-quantized index.
#include <gtest/gtest.h>

#include "cache/filtered_router.h"
#include "common/rng.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/sq8_index.h"
#include "index/recall.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Matrix m(rows, dim);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : m.MutableRow(r)) {
      x = static_cast<float>(rng.Gaussian(0, 1));
    }
  }
  return m;
}

std::vector<float> RandomVec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
  return v;
}

// ------------------------------------------------------ Filtered search --

TEST(FilteredSearchTest, FlatExactlyMatchesPredicatedBruteForce) {
  const Matrix corpus = RandomMatrix(500, 8, 1);
  FlatIndex index(8);
  index.AddBatch(corpus);
  const auto even = [](VectorId id) { return id % 2 == 0; };
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto q = RandomVec(8, 100 + s);
    TopK expected(7);
    for (std::size_t r = 0; r < corpus.rows(); ++r) {
      if (r % 2 != 0) continue;
      expected.Push(static_cast<VectorId>(r),
                    L2SquaredDistance(q, corpus.Row(r)));
    }
    EXPECT_EQ(index.SearchFiltered(q, 7, even), expected.Take());
  }
}

TEST(FilteredSearchTest, ResultsAlwaysSatisfyPredicate) {
  const Matrix corpus = RandomMatrix(1000, 8, 2);
  HnswIndex index(8);
  index.AddBatch(corpus);
  const auto in_band = [](VectorId id) { return id >= 100 && id < 200; };
  const auto q = RandomVec(8, 101);
  const auto results = index.SearchFiltered(q, 10, in_band);
  EXPECT_EQ(results.size(), 10u);
  for (const auto& n : results) {
    EXPECT_TRUE(in_band(n.id));
  }
}

TEST(FilteredSearchTest, FewerMatchesThanKReturnsAllMatches) {
  const Matrix corpus = RandomMatrix(100, 4, 3);
  FlatIndex index(4);
  index.AddBatch(corpus);
  const auto only_three = [](VectorId id) { return id < 3; };
  const auto q = RandomVec(4, 102);
  EXPECT_EQ(index.SearchFiltered(q, 10, only_three).size(), 3u);
  // Default (over-fetch) implementation through the base class too.
  HnswIndex hnsw(4);
  hnsw.AddBatch(corpus);
  EXPECT_EQ(hnsw.SearchFiltered(q, 10, only_three).size(), 3u);
}

TEST(FilteredSearchTest, NullFilterEqualsPlainSearch) {
  const Matrix corpus = RandomMatrix(200, 4, 4);
  FlatIndex index(4);
  index.AddBatch(corpus);
  const auto q = RandomVec(4, 103);
  EXPECT_EQ(index.SearchFiltered(q, 5, nullptr), index.Search(q, 5));
}

TEST(FilteredSearchTest, HnswOverFetchRecallIsHigh) {
  const Matrix corpus = RandomMatrix(2000, 16, 5);
  HnswIndex index(16, {.ef_search = 128});
  index.AddBatch(corpus);
  FlatIndex exact(16);
  exact.AddBatch(corpus);
  const auto third = [](VectorId id) { return id % 3 == 0; };
  double recall = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto q = RandomVec(16, 200 + s);
    recall += RecallAtK(index.SearchFiltered(q, 10, third),
                        exact.SearchFiltered(q, 10, third));
  }
  EXPECT_GT(recall / 10, 0.8);
}

// --------------------------------------------------------- FilterRouter --

ProximityCacheOptions RouterOpts() {
  ProximityCacheOptions opts;
  opts.capacity = 4;
  opts.tolerance = 1.0f;
  return opts;
}

TEST(FilteredRouterTest, TagsAreIsolated) {
  FilteredCacheRouter router(2, RouterOpts());
  const std::vector<float> q = {1, 1};
  router.Insert(/*tag=*/7, q, {100});
  // Same embedding, different filter: must MISS (the guarded bug class).
  EXPECT_FALSE(router.Lookup(/*tag=*/8, q).hit);
  EXPECT_FALSE(router.Lookup(kNoFilter, q).hit);
  // Same tag: hit with the right documents.
  const auto hit = router.Lookup(7, q);
  ASSERT_TRUE(hit.hit);
  EXPECT_EQ(hit.documents[0], 100);
  EXPECT_EQ(router.tag_count(), 3u);  // 7, 8, and kNoFilter were touched
}

TEST(FilteredRouterTest, PerTagCapacity) {
  FilteredCacheRouter router(2, RouterOpts());  // capacity 4 per tag
  for (int i = 0; i < 10; ++i) {
    router.Insert(1, std::vector<float>{static_cast<float>(i * 10), 0},
                  {i});
    router.Insert(2, std::vector<float>{static_cast<float>(i * 10), 1},
                  {i});
  }
  EXPECT_EQ(router.CacheFor(1).size(), 4u);
  EXPECT_EQ(router.CacheFor(2).size(), 4u);
}

TEST(FilteredRouterTest, InvalidateDropsOneTagOnly) {
  FilteredCacheRouter router(2, RouterOpts());
  const std::vector<float> q = {0, 0};
  router.Insert(1, q, {1});
  router.Insert(2, q, {2});
  router.Invalidate(1);
  EXPECT_FALSE(router.Lookup(1, q).hit);
  EXPECT_TRUE(router.Lookup(2, q).hit);
}

TEST(FilteredRouterTest, TotalStatsAggregates) {
  FilteredCacheRouter router(2, RouterOpts());
  const std::vector<float> q = {0, 0};
  router.Insert(1, q, {1});
  router.Lookup(1, q);  // hit
  router.Lookup(2, q);  // miss (different tag)
  const auto total = router.TotalStats();
  EXPECT_EQ(total.insertions, 1u);
  EXPECT_EQ(total.hits, 1u);
  EXPECT_EQ(total.misses, 1u);
}

// ------------------------------------------------------------------ SQ8 --

TEST(Sq8Test, EncodeDecodeWithinQuantizationStep) {
  const Matrix sample = RandomMatrix(500, 16, 6);
  Sq8Index index(16);
  index.Train(sample);
  // In-range vectors (training rows) reconstruct to within half a
  // quantization step; out-of-range values clamp (tested separately).
  std::vector<std::uint8_t> code(16);
  std::vector<float> decoded(16);
  for (std::size_t r = 0; r < 10; ++r) {
    const auto v = sample.Row(r);
    index.Encode(v, code.data());
    index.Decode(code.data(), decoded);
    // Gaussian data: each dim's range is ~7 sigma over 500 samples, so
    // the step is about 7/255; allow one full step of slack.
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(decoded[j], v[j], 8.0 / 255.0);
    }
  }
}

TEST(Sq8Test, OutOfRangeValuesClampToTrainedRange) {
  const Matrix sample = RandomMatrix(500, 4, 6);
  Sq8Index index(4);
  index.Train(sample);
  const std::vector<float> huge = {100.f, -100.f, 0.f, 0.f};
  std::vector<std::uint8_t> code(4);
  std::vector<float> decoded(4);
  index.Encode(huge, code.data());
  index.Decode(code.data(), decoded);
  EXPECT_EQ(code[0], 255);  // clamped high
  EXPECT_EQ(code[1], 0);    // clamped low
  EXPECT_LT(decoded[0], 10.f);
  EXPECT_GT(decoded[1], -10.f);
}

TEST(Sq8Test, SearchApproximatesExact) {
  const Matrix corpus = RandomMatrix(2000, 16, 7);
  Sq8Index index(16);
  index.Train(corpus);
  index.AddBatch(corpus);
  FlatIndex exact(16);
  exact.AddBatch(corpus);
  double recall = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const auto q = RandomVec(16, 400 + s);
    recall += RecallAtK(index.Search(q, 10), exact.Search(q, 10));
  }
  EXPECT_GT(recall / 20, 0.9);  // SQ8 error is tiny relative to distances
}

TEST(Sq8Test, RefinementGivesExactRanking) {
  const Matrix corpus = RandomMatrix(1000, 16, 8);
  Sq8Index index(16, {.refine_factor = 4});
  index.Train(corpus);
  index.AddBatch(corpus);
  FlatIndex exact(16);
  exact.AddBatch(corpus);
  const auto q = RandomVec(16, 500);
  const auto refined = index.Search(q, 5);
  const auto truth = exact.Search(q, 5);
  // Distances must be the exact ones (re-ranked against raw vectors).
  for (std::size_t i = 0; i < refined.size(); ++i) {
    const float d = L2SquaredDistance(
        q, corpus.Row(static_cast<std::size_t>(refined[i].id)));
    EXPECT_FLOAT_EQ(refined[i].distance, d);
  }
  EXPECT_GT(RecallAtK(refined, truth), 0.79);
}

TEST(Sq8Test, TrimmedTrainingIgnoresOutliers) {
  Matrix sample = RandomMatrix(1000, 4, 9);
  // Inject absurd outliers into dim 0.
  sample.MutableRow(0)[0] = 1e6f;
  sample.MutableRow(1)[0] = -1e6f;
  Sq8Index trimmed(4, {.trim = 0.01});
  trimmed.Train(sample);
  Sq8Index untrimmed(4);
  untrimmed.Train(sample);
  // The trimmed quantizer keeps resolution for normal values.
  const std::vector<float> v = {0.5f, 0.5f, 0.5f, 0.5f};
  std::vector<std::uint8_t> code(4);
  std::vector<float> out(4);
  trimmed.Encode(v, code.data());
  trimmed.Decode(code.data(), out);
  const float err_trimmed = std::abs(out[0] - 0.5f);
  untrimmed.Encode(v, code.data());
  untrimmed.Decode(code.data(), out);
  const float err_untrimmed = std::abs(out[0] - 0.5f);
  EXPECT_LT(err_trimmed, err_untrimmed / 100);
}

TEST(Sq8Test, LifecycleErrors) {
  Sq8Index index(8);
  const std::vector<float> v(8, 0.f);
  EXPECT_THROW(index.Add(v), std::logic_error);
  EXPECT_THROW(index.Search(v, 1), std::logic_error);
  index.Train(RandomMatrix(50, 8, 10));
  EXPECT_THROW(index.Train(RandomMatrix(50, 8, 11)), std::logic_error);
  EXPECT_THROW(Sq8Index(8, {.trim = 0.6}), std::invalid_argument);
  EXPECT_THROW(Sq8Index(0), std::invalid_argument);
}

TEST(Sq8Test, MemoryFootprint) {
  Sq8Index plain(768);
  EXPECT_EQ(plain.BytesPerVector(), 768u);  // 4x smaller than float32
  Sq8Index refined(768, {.refine_factor = 2});
  EXPECT_EQ(refined.BytesPerVector(), 768u + 768u * 4);
}

}  // namespace
}  // namespace proximity
