// Tests for the extension surface: tiered (L1 exact / L2 approximate)
// cache, history-based cache warm-up, and the ASCII plot renderer.
#include <gtest/gtest.h>

#include <atomic>

#include "cache/tiered_cache.h"
#include "common/ascii_plot.h"
#include "common/rng.h"
#include "index/flat_index.h"
#include "rag/warmup.h"

namespace proximity {
namespace {

std::vector<float> Vec2(float x, float y) { return {x, y}; }

TieredCacheOptions TieredOpts(std::size_t l1, std::size_t l2_capacity,
                              float tolerance) {
  TieredCacheOptions opts;
  opts.l1_capacity = l1;
  opts.l2.capacity = l2_capacity;
  opts.l2.tolerance = tolerance;
  return opts;
}

// ---------------------------------------------------------- TieredCache --

TEST(TieredCacheTest, ExactRepeatHitsL1) {
  TieredCache cache(2, TieredOpts(4, 8, 1.0f));
  cache.Insert(Vec2(1, 1), {7});
  const auto result = cache.Lookup(Vec2(1, 1));
  EXPECT_EQ(result.source, TieredCache::Source::kL1);
  ASSERT_EQ(result.documents.size(), 1u);
  EXPECT_EQ(result.documents[0], 7);
}

TEST(TieredCacheTest, SimilarQueryHitsL2) {
  TieredCache cache(2, TieredOpts(4, 8, 1.0f));
  cache.Insert(Vec2(1, 1), {7});
  const auto result = cache.Lookup(Vec2(1.5f, 1));  // distance 0.25
  EXPECT_EQ(result.source, TieredCache::Source::kL2);
  EXPECT_EQ(result.documents[0], 7);
}

TEST(TieredCacheTest, L2HitIsPromotedToL1) {
  TieredCache cache(2, TieredOpts(4, 8, 1.0f));
  cache.Insert(Vec2(1, 1), {7});
  EXPECT_EQ(cache.Lookup(Vec2(1.5f, 1)).source, TieredCache::Source::kL2);
  // Identical repeat of the *similar* query: now L1.
  EXPECT_EQ(cache.Lookup(Vec2(1.5f, 1)).source, TieredCache::Source::kL1);
  EXPECT_EQ(cache.stats().l1_hits, 1u);
  EXPECT_EQ(cache.stats().l2_hits, 1u);
}

TEST(TieredCacheTest, MissFallsThroughBothLevels) {
  TieredCache cache(2, TieredOpts(4, 8, 1.0f));
  cache.Insert(Vec2(0, 0), {1});
  const auto result = cache.Lookup(Vec2(50, 50));
  EXPECT_EQ(result.source, TieredCache::Source::kMiss);
  EXPECT_TRUE(result.documents.empty());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TieredCacheTest, FetchOrRetrieveOnlyQueriesDatabaseOnMiss) {
  TieredCache cache(2, TieredOpts(4, 8, 1.0f));
  std::atomic<int> calls{0};
  auto retrieve = [&](std::span<const float>) {
    ++calls;
    return std::vector<VectorId>{3};
  };
  TieredCache::Source source;
  cache.FetchOrRetrieve(Vec2(2, 2), retrieve, &source);
  EXPECT_EQ(source, TieredCache::Source::kMiss);
  cache.FetchOrRetrieve(Vec2(2, 2), retrieve, &source);
  EXPECT_EQ(source, TieredCache::Source::kL1);
  cache.FetchOrRetrieve(Vec2(2.5f, 2), retrieve, &source);
  EXPECT_EQ(source, TieredCache::Source::kL2);
  EXPECT_EQ(calls.load(), 1);
}

TEST(TieredCacheTest, HitRateCombinesLevels) {
  TieredCache cache(2, TieredOpts(4, 8, 1.0f));
  cache.Insert(Vec2(0, 0), {1});
  cache.Lookup(Vec2(0, 0));      // L1
  cache.Lookup(Vec2(0.5f, 0));   // L2
  cache.Lookup(Vec2(40, 40));    // miss
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 2.0 / 3.0);
}

TEST(TieredCacheTest, ClearResetsBothLevels) {
  TieredCache cache(2, TieredOpts(4, 8, 1.0f));
  cache.Insert(Vec2(0, 0), {1});
  cache.Clear();
  EXPECT_EQ(cache.Lookup(Vec2(0, 0)).source, TieredCache::Source::kMiss);
}

// --------------------------------------------------------------- Warmup --

TEST(WarmupTest, SeedsCacheAndCoversHistory) {
  // Historical queries in three tight clusters.
  Rng rng(5);
  Matrix history(0, 4);
  const float centers[3][4] = {{0, 0, 0, 0}, {10, 0, 0, 0}, {0, 10, 0, 0}};
  for (int i = 0; i < 90; ++i) {
    const auto& c = centers[i % 3];
    std::vector<float> q(4);
    for (int j = 0; j < 4; ++j) {
      q[j] = c[j] + static_cast<float>(rng.Gaussian(0, 0.1));
    }
    history.AppendRow(q);
  }

  ProximityCacheOptions copts;
  copts.capacity = 16;
  copts.tolerance = 1.0f;
  ProximityCache cache(4, copts);

  std::atomic<int> retrievals{0};
  WarmupOptions wopts;
  wopts.budget = 3;
  const auto report = WarmCacheFromHistory(
      cache, history,
      [&](std::span<const float>) {
        ++retrievals;
        return std::vector<VectorId>{static_cast<VectorId>(retrievals)};
      },
      wopts);

  EXPECT_EQ(report.entries_seeded, 3u);
  EXPECT_EQ(report.retrievals_performed, 3u);
  EXPECT_EQ(retrievals.load(), 3);
  EXPECT_GT(report.estimated_coverage, 0.95);
  // Cold queries near the historical clusters hit immediately.
  EXPECT_TRUE(cache.Lookup(std::vector<float>{0.1f, 0, 0, 0}).hit);
  EXPECT_TRUE(cache.Lookup(std::vector<float>{10, 0.1f, 0, 0}).hit);
  // Unrelated queries still miss.
  EXPECT_FALSE(cache.Lookup(std::vector<float>{5, 5, 5, 5}).hit);
}

TEST(WarmupTest, BudgetClampedToCapacity) {
  Matrix history(0, 2);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    history.AppendRow(std::vector<float>{
        static_cast<float>(rng.Gaussian(0, 5)),
        static_cast<float>(rng.Gaussian(0, 5))});
  }
  ProximityCacheOptions copts;
  copts.capacity = 4;
  ProximityCache cache(2, copts);
  WarmupOptions wopts;
  wopts.budget = 100;
  const auto report = WarmCacheFromHistory(
      cache, history,
      [](std::span<const float>) { return std::vector<VectorId>{1}; },
      wopts);
  EXPECT_LE(report.entries_seeded, 4u);
  EXPECT_LE(cache.size(), 4u);
}

TEST(WarmupTest, EmptyHistoryIsNoop) {
  Matrix history(0, 2);
  ProximityCache cache(2, {});
  const auto report = WarmCacheFromHistory(
      cache, history,
      [](std::span<const float>) { return std::vector<VectorId>{}; });
  EXPECT_EQ(report.entries_seeded, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(WarmupTest, RejectsDimensionMismatch) {
  Matrix history(3, 8);
  ProximityCache cache(4, {});
  EXPECT_THROW(
      WarmCacheFromHistory(
          cache, history,
          [](std::span<const float>) { return std::vector<VectorId>{}; }),
      std::invalid_argument);
}

// ------------------------------------------------------------ AsciiPlot --

TEST(AsciiPlotTest, RendersSeriesGlyphsAndLegend) {
  PlotSeries s1{.label = "alpha", .points = {{0, 0}, {1, 1}, {2, 4}}};
  PlotSeries s2{.label = "beta", .points = {{0, 4}, {1, 2}, {2, 0}}};
  const std::string out = RenderAsciiPlot({s1, s2});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(AsciiPlotTest, EmptyDataHandled) {
  EXPECT_EQ(RenderAsciiPlot({}), "(no data)\n");
  PlotSeries empty{.label = "x", .points = {}};
  EXPECT_EQ(RenderAsciiPlot({empty}), "(no data)\n");
}

TEST(AsciiPlotTest, TitleAndAxisLabelsShown) {
  PlotSeries s{.label = "s", .points = {{0, 1}, {5, 2}}};
  PlotOptions opts;
  opts.title = "my chart";
  opts.x_label = "tau";
  const std::string out = RenderAsciiPlot({s}, opts);
  EXPECT_EQ(out.find("my chart"), 0u);
  EXPECT_NE(out.find("tau"), std::string::npos);
}

TEST(AsciiPlotTest, YRangeLabelsReflectData) {
  PlotSeries s{.label = "s", .points = {{0, 0.25}, {1, 0.75}}};
  const std::string out = RenderAsciiPlot({s});
  EXPECT_NE(out.find("0.750"), std::string::npos);
  EXPECT_NE(out.find("0.250"), std::string::npos);
}

TEST(AsciiPlotTest, SinglePointDoesNotCrash) {
  PlotSeries s{.label = "dot", .points = {{1, 1}}};
  const std::string out = RenderAsciiPlot({s});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, LogXHandlesZero) {
  PlotSeries s{.label = "s", .points = {{0, 1}, {0.5, 2}, {10, 3}}};
  PlotOptions opts;
  opts.log_x = true;
  EXPECT_NO_THROW(RenderAsciiPlot({s}, opts));
}

}  // namespace
}  // namespace proximity
