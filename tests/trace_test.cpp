// End-to-end request tracing (src/obs/trace.{h,cpp}, DESIGN.md §12):
// op taxonomy, context propagation through Span and the BatchingDriver,
// seqlock trace rings under concurrent read/write (the TSan workout),
// tail-based sampling keep/drop rules, and the trace_event exporter.
//
// The no-op sections compile and run under PROXIMITY_OBS_ENABLED=0:
// ids stay 0, contexts never activate, collectors keep nothing.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "index/sharded_index.h"
#include "obs/span.h"
#include "rag/batching_driver.h"

namespace proximity::obs {
namespace {

TEST(TraceOpTest, NamesCoverTheWholeTaxonomy) {
  // Stage ops delegate to StageName; pseudo-stages have their own names.
  EXPECT_STREQ(TraceOpName(TraceOp::kEmbed), "embed");
  EXPECT_STREQ(TraceOpName(TraceOp::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(TraceOpName(TraceOp::kInsert), "insert");
  EXPECT_STREQ(TraceOpName(TraceOp::kRequest), "request");
  EXPECT_STREQ(TraceOpName(TraceOp::kQueue), "queue");
  EXPECT_STREQ(TraceOpName(TraceOp::kClientCall), "client_call");
  for (std::size_t i = 0; i < kNumTraceOps; ++i) {
    EXPECT_NE(TraceOpName(static_cast<TraceOp>(i)), nullptr);
    EXPECT_GT(std::string(TraceOpName(static_cast<TraceOp>(i))).size(),
              0u);
  }
  // The stage prefix of the taxonomy stays value-identical to Stage.
  EXPECT_EQ(TraceOpFromStage(Stage::kEmbed), TraceOp::kEmbed);
  EXPECT_EQ(TraceOpFromStage(Stage::kInsert), TraceOp::kInsert);
}

TEST(TraceContextTest, InactiveByDefaultAndScopedRestores) {
  EXPECT_FALSE(TraceContext{}.active());
  const TraceContext before = CurrentTraceContext();
  {
    const ScopedTraceContext scope(TraceContext{42, 7});
#if PROXIMITY_OBS_ENABLED
    EXPECT_EQ(CurrentTraceContext().trace_id, 42u);
    EXPECT_EQ(CurrentTraceContext().span_id, 7u);
#endif
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, before.trace_id);
  EXPECT_EQ(CurrentTraceContext().span_id, before.span_id);
}

#if PROXIMITY_OBS_ENABLED

TEST(TraceIdTest, TraceIdsAreNonZeroAndDistinct) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = NewTraceId();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceIdTest, SpanIdsAreDistinctAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::uint64_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        per_thread[t].push_back(NewSpanId());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (const auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TraceEmitTest, SpanJoinsActiveTraceWithParentChain) {
  const std::uint64_t trace_id = NewTraceId();
  const std::uint64_t root = NewSpanId();
  {
    const ScopedTraceContext scope(TraceContext{trace_id, root});
    const Span outer(Stage::kCacheLookup);
    {
      const Span inner(Stage::kCacheScan);
      (void)inner;
    }
    (void)outer;
  }
  const auto spans = CollectTraceSpans(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start: outer opened first.
  EXPECT_EQ(spans[0].op, TraceOp::kCacheLookup);
  EXPECT_EQ(spans[1].op, TraceOp::kCacheScan);
  EXPECT_EQ(spans[0].parent_id, root);
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].start_ns + spans[0].duration_ns,
            spans[1].start_ns + spans[1].duration_ns);
}

TEST(TraceEmitTest, SpanWithoutContextEmitsNothing) {
  // No active trace: the Span only feeds the stage histogram/ring.
  const std::uint64_t probe = NewTraceId();
  {
    const Span s(Stage::kEvict);
    (void)s;
  }
  EXPECT_TRUE(CollectTraceSpans(probe).empty());
}

TEST(TraceEmitTest, EmitChildSpanInactiveParentIsNoOp) {
  EXPECT_EQ(EmitChildSpan(TraceContext{}, TraceOp::kQueue, 10, 5), 0u);
}

TEST(TraceEmitTest, EmitChildSpanAttributesSharedTiming) {
  const TraceContext parent{NewTraceId(), NewSpanId()};
  const std::uint64_t child =
      EmitChildSpan(parent, TraceOp::kEmbed, 100, 50);
  ASSERT_NE(child, 0u);
  const auto spans = CollectTraceSpans(parent.trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].span_id, child);
  EXPECT_EQ(spans[0].parent_id, parent.span_id);
  EXPECT_EQ(spans[0].op, TraceOp::kEmbed);
  EXPECT_EQ(spans[0].start_ns, 100);
  EXPECT_EQ(spans[0].duration_ns, 50);
}

// The TSan workout: writers hammer their per-thread rings (overwriting
// them many times over) while readers continuously collect. A torn read
// would surface as a record whose fields disagree with the encoding
// writers use; unbounded memory would surface as more spans for one
// trace than a ring can hold.
TEST(TraceRingTest, ConcurrentCollectSeesNoTornSpans) {
  // A fixed trace id all writers emit under (readers filter on it); no
  // NewTraceId() can ever collide with it because those end in bit 0.
  constexpr std::uint64_t kRingTraceId = 0x7717CEF100000000ull;
  constexpr int kWriters = 3;
  constexpr int kSpansEach =
      static_cast<int>(kTraceRingCapacity) * 3;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  // Writers tag every field with the same per-record nonce, so readers
  // can verify a record is internally consistent.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kSpansEach; ++i) {
        const std::uint64_t nonce =
            (static_cast<std::uint64_t>(w + 1) << 32) |
            static_cast<std::uint64_t>(i + 1);
        TraceSpanRecord r;
        r.trace_id = kRingTraceId;
        r.span_id = nonce;
        r.parent_id = nonce;
        r.start_ns = static_cast<Nanos>(nonce);
        r.duration_ns = static_cast<Nanos>(nonce);
        EmitTraceSpan(r);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& s : CollectTraceSpans(kRingTraceId)) {
        if (s.span_id != s.parent_id ||
            static_cast<Nanos>(s.span_id) != s.start_ns ||
            s.start_ns != s.duration_ns) {
          torn.fetch_add(1);
        }
      }
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0);
  // Bounded memory: each writer overwrote its ring repeatedly; at most
  // one ring's worth of records per writer thread can survive.
  EXPECT_LE(CollectTraceSpans(kRingTraceId).size(),
            static_cast<std::size_t>(kWriters) * kTraceRingCapacity);
}

TEST(TraceCollectorTest, NonOkAlwaysKeptOkOnlyWhenSlow) {
  TraceCollectorOptions opts;
  opts.keep = 16;
  opts.bootstrap_keep = 2;
  opts.recompute_every = 4;
  TraceCollector collector(opts);

  // Bootstrap: the first OK completions are kept unconditionally.
  EXPECT_TRUE(collector.Complete({NewTraceId(), 0}, RequestStatus::kOk,
                                 1000));
  EXPECT_TRUE(collector.Complete({NewTraceId(), 0}, RequestStatus::kOk,
                                 1000));

  // Feed enough fast completions to arm the threshold.
  for (int i = 0; i < 32; ++i) {
    collector.Complete({NewTraceId(), 0}, RequestStatus::kOk, 1000);
  }
  ASSERT_LT(collector.slow_threshold_ns(),
            std::numeric_limits<Nanos>::max());

  // A fast OK completion is dropped; a very slow one is kept.
  EXPECT_FALSE(
      collector.Complete({NewTraceId(), 0}, RequestStatus::kOk, 1));
  EXPECT_TRUE(collector.Complete({NewTraceId(), 0}, RequestStatus::kOk,
                                 1000000000));

  // Shed / expired / error outcomes are always kept, however fast.
  EXPECT_TRUE(collector.Complete(
      {NewTraceId(), 0}, RequestStatus::kResourceExhausted, 1));
  EXPECT_TRUE(collector.Complete(
      {NewTraceId(), 0}, RequestStatus::kDeadlineExceeded, 1));
  EXPECT_TRUE(collector.Complete({NewTraceId(), 0},
                                 RequestStatus::kUnavailable, 1));
  EXPECT_TRUE(
      collector.Complete({NewTraceId(), 0}, RequestStatus::kInternal, 1));

  // Inactive contexts are never sampled.
  EXPECT_FALSE(
      collector.Complete(TraceContext{}, RequestStatus::kInternal, 1));
}

TEST(TraceCollectorTest, KeepIsBoundedNewestFirstAndFindRefreshes) {
  TraceCollectorOptions opts;
  opts.keep = 3;
  opts.bootstrap_keep = 0;
  TraceCollector collector(opts);
  std::vector<std::uint64_t> kept_ids;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t id = NewTraceId();
    kept_ids.push_back(id);
    EXPECT_TRUE(
        collector.Complete({id, 0}, RequestStatus::kInternal, 100 + i));
  }
  const auto sampled = collector.Sampled();
  ASSERT_EQ(sampled.size(), 3u);  // bounded by keep
  EXPECT_EQ(sampled[0].trace_id, kept_ids[4]);  // newest first
  EXPECT_EQ(sampled[2].trace_id, kept_ids[2]);
  EXPECT_FALSE(collector.Find(kept_ids[0]).has_value());  // fell off

  // Find() re-merges spans emitted after the completion (the client-side
  // call span lands only once the response has been parsed).
  const std::uint64_t late = kept_ids[4];
  EmitTraceSpan({late, NewSpanId(), 0, TraceOp::kClientCall, 0, 5, 9});
  const auto found = collector.Find(late);
  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->spans.size(), 1u);
  EXPECT_EQ(found->spans[0].op, TraceOp::kClientCall);

  collector.Reset();
  EXPECT_TRUE(collector.Sampled().empty());
}

TEST(TraceDriverTest, SubmitTextAsyncPropagatesContextThroughStages) {
  HashEmbedder embedder;
  std::vector<std::string> corpus;
  for (int i = 0; i < 64; ++i) {
    corpus.push_back("passage about topic " + std::to_string(i));
  }
  const auto index =
      BuildShardedIndex(IndexSpec{.kind = "flat"},
                        embedder.EmbedBatch(corpus), {});
  ConcurrentProximityCache cache(embedder.dim(),
                                 {.capacity = 16, .tolerance = 0.5f});
  BatchingDriver driver(*index, cache, &embedder, {});

  const TraceContext trace{NewTraceId(), NewSpanId()};
  SubmitOptions opts;
  opts.trace = trace;
  std::atomic<bool> done{false};
  driver.SubmitTextAsync("what is topic 7", opts, [&](BatchResult r) {
    EXPECT_EQ(r.status, RequestStatus::kOk);
    done.store(true, std::memory_order_release);
  });
  driver.Flush();
  driver.Shutdown();
  ASSERT_TRUE(done.load());

  // The driver attributed queue wait, embed, cache probe and search to
  // the submitted trace, all parented under it.
  const auto spans = CollectTraceSpans(trace.trace_id);
  std::set<TraceOp> ops;
  for (const auto& s : spans) {
    ops.insert(s.op);
    EXPECT_EQ(s.trace_id, trace.trace_id);
  }
  EXPECT_TRUE(ops.count(TraceOp::kQueue));
  EXPECT_TRUE(ops.count(TraceOp::kEmbed));
  EXPECT_TRUE(ops.count(TraceOp::kCacheLookup));
  EXPECT_TRUE(ops.count(TraceOp::kIndexSearch));
}

TEST(TraceExportTest, TraceEventJsonShape) {
  SampledTrace trace;
  trace.trace_id = 0xABCDu;
  trace.status = RequestStatus::kOk;
  trace.duration_ns = 1500000;
  trace.spans.push_back(
      {0xABCDu, 1, 0, TraceOp::kRequest, 1, 0, 1500000});
  trace.spans.push_back(
      {0xABCDu, 2, 1, TraceOp::kIndexSearch, 2, 250000, 1000000});
  const std::string json = ToTraceEventJson(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"index_search\""), std::string::npos);
  // Timestamps/durations are microseconds: 1.5ms request = 1500us.
  EXPECT_NE(json.find("1500.000"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  const std::string list = ToTraceListJson({trace});
  EXPECT_NE(list.find("\"traces\""), std::string::npos);
  EXPECT_NE(list.find("\"OK\""), std::string::npos);
  EXPECT_NE(list.find("\"spans\":2"), std::string::npos);
  EXPECT_EQ(ToTraceListJson({}), "{\"traces\":[]}");
}

#else  // PROXIMITY_OBS_ENABLED == 0

TEST(TraceOffTest, EverythingIsAnInertNoOp) {
  EXPECT_EQ(NewTraceId(), 0u);
  EXPECT_EQ(NewSpanId(), 0u);
  EXPECT_FALSE(CurrentTraceContext().active());
  EXPECT_EQ(EmitChildSpan({1, 2}, TraceOp::kEmbed, 0, 1), 0u);
  EXPECT_TRUE(CollectTraceSpans(1).empty());
  TraceCollector collector;
  EXPECT_FALSE(collector.Complete({1, 2}, RequestStatus::kInternal, 1));
  EXPECT_TRUE(collector.Sampled().empty());
}

#endif  // PROXIMITY_OBS_ENABLED

}  // namespace
}  // namespace proximity::obs
