// Unit tests for src/workload: pseudo-word synthesis, corpus generation,
// benchmark specs, and query-stream construction.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/benchmark_spec.h"
#include "workload/corpus.h"
#include "workload/query_stream.h"
#include "workload/synth_text.h"
#include "workload/trace.h"

#include <sstream>

namespace proximity {
namespace {

WorkloadSpec TinySpec() {
  WorkloadSpec spec;
  spec.num_questions = 10;
  spec.num_clusters = 3;
  spec.golds_per_question = 2;
  spec.corpus_size = 100;
  spec.seed = 42;
  return spec;
}

// ------------------------------------------------------------ SynthText --

TEST(SynthTextTest, SyllableWordsAreAlphabetic) {
  for (std::uint64_t n : {0ull, 1ull, 99ull, 100ull, 12345ull}) {
    const std::string w = SyllableWord(n);
    EXPECT_GE(w.size(), 4u);  // at least 2 syllables
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    }
  }
}

TEST(SynthTextTest, SyllableWordsInjective) {
  std::set<std::string> seen;
  for (std::uint64_t n = 0; n < 5000; ++n) {
    EXPECT_TRUE(seen.insert(SyllableWord(n)).second) << n;
  }
}

TEST(SynthTextTest, CategoriesNeverCollide) {
  std::set<std::string> all;
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(all.insert(GlobalWord(i)).second);
    EXPECT_TRUE(all.insert(SubjectWord(1, i)).second);
    EXPECT_TRUE(all.insert(ClusterWord(1, 2, i)).second);
    EXPECT_TRUE(all.insert(EntityWord(1, 7, i % 16)).second || i >= 16);
  }
}

TEST(SynthTextTest, EntityWordsUniquePerQuestion) {
  std::set<std::string> seen;
  for (std::size_t q = 0; q < 200; ++q) {
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_TRUE(seen.insert(EntityWord(1, q, i)).second)
          << "q=" << q << " i=" << i;
    }
  }
}

// --------------------------------------------------------------- Corpus --

TEST(CorpusTest, SizesMatchSpec) {
  const Workload w = BuildWorkload(TinySpec());
  EXPECT_EQ(w.questions.size(), 10u);
  EXPECT_EQ(w.passages.size(), 100u);
  EXPECT_EQ(w.passage_cluster.size(), 100u);
  EXPECT_EQ(w.gold_for.size(), 100u);
}

TEST(CorpusTest, GoldMappingIsConsistent) {
  const Workload w = BuildWorkload(TinySpec());
  for (std::size_t q = 0; q < w.questions.size(); ++q) {
    EXPECT_EQ(w.questions[q].gold_ids.size(), 2u);
    for (VectorId id : w.questions[q].gold_ids) {
      ASSERT_GE(id, 0);
      ASSERT_LT(static_cast<std::size_t>(id), w.passages.size());
      EXPECT_EQ(w.gold_for[static_cast<std::size_t>(id)],
                static_cast<std::int32_t>(q));
      EXPECT_EQ(w.passage_cluster[static_cast<std::size_t>(id)],
                static_cast<std::int32_t>(w.questions[q].cluster));
    }
  }
}

TEST(CorpusTest, GoldCountMatchesTotal) {
  const Workload w = BuildWorkload(TinySpec());
  std::size_t golds = 0;
  for (auto owner : w.gold_for) {
    if (owner >= 0) ++golds;
  }
  EXPECT_EQ(golds, 10u * 2u);
}

TEST(CorpusTest, QuestionsSpreadOverClusters) {
  const Workload w = BuildWorkload(TinySpec());
  std::set<std::size_t> clusters;
  for (const auto& q : w.questions) clusters.insert(q.cluster);
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(CorpusTest, GoldPassagesContainEntityWords) {
  const WorkloadSpec spec = TinySpec();
  const Workload w = BuildWorkload(spec);
  for (std::size_t q = 0; q < w.questions.size(); ++q) {
    const std::string entity = EntityWord(spec.domain, q, 0);
    for (VectorId id : w.questions[q].gold_ids) {
      EXPECT_NE(w.passages[static_cast<std::size_t>(id)].find(entity),
                std::string::npos)
          << "gold passage missing entity of question " << q;
    }
    EXPECT_NE(w.questions[q].text.find(entity), std::string::npos);
  }
}

TEST(CorpusTest, DeterministicForSeed) {
  const Workload a = BuildWorkload(TinySpec());
  const Workload b = BuildWorkload(TinySpec());
  EXPECT_EQ(a.passages, b.passages);
  for (std::size_t q = 0; q < a.questions.size(); ++q) {
    EXPECT_EQ(a.questions[q].text, b.questions[q].text);
  }
}

TEST(CorpusTest, DifferentSeedsChangePassages) {
  WorkloadSpec other = TinySpec();
  other.seed = 43;
  const Workload a = BuildWorkload(TinySpec());
  const Workload b = BuildWorkload(other);
  EXPECT_NE(a.passages, b.passages);
}

TEST(CorpusTest, SameClusterQuestionsShareClusterWords) {
  const WorkloadSpec spec = TinySpec();
  const Workload w = BuildWorkload(spec);
  // Questions 0 and 3 share cluster 0 (round-robin assignment).
  EXPECT_EQ(w.questions[0].cluster, w.questions[3].cluster);
  const std::string cluster_word = ClusterWord(spec.domain, 0, 0);
  EXPECT_NE(w.questions[0].text.find(cluster_word), std::string::npos);
  EXPECT_NE(w.questions[3].text.find(cluster_word), std::string::npos);
}

TEST(CorpusTest, ValidatesSpec) {
  WorkloadSpec bad = TinySpec();
  bad.corpus_size = 5;  // smaller than 10*2 golds
  EXPECT_THROW(BuildWorkload(bad), std::invalid_argument);
  WorkloadSpec zero = TinySpec();
  zero.num_questions = 0;
  EXPECT_THROW(BuildWorkload(zero), std::invalid_argument);
  WorkloadSpec noclusters = TinySpec();
  noclusters.num_clusters = 0;
  EXPECT_THROW(BuildWorkload(noclusters), std::invalid_argument);
}

// -------------------------------------------------------------- Specs --

TEST(BenchmarkSpecTest, MmluMatchesPaperSetup) {
  const WorkloadSpec spec = MmluLikeSpec(30000, 42);
  EXPECT_EQ(spec.num_questions, 131u);  // econometrics subset (§4.2)
  EXPECT_EQ(spec.corpus_size, 30000u);
  EXPECT_EQ(spec.name, "mmlu_econometrics");
}

TEST(BenchmarkSpecTest, MedragMatchesPaperSetup) {
  const WorkloadSpec spec = MedragLikeSpec(20000, 42);
  EXPECT_EQ(spec.num_questions, 200u);  // PubMedQA subset (§4.2)
  EXPECT_EQ(spec.name, "medrag_pubmedqa");
  // MedRAG questions are entity-heavier than MMLU's (diverse questions).
  EXPECT_GT(spec.question_entity_tokens,
            MmluLikeSpec(1000, 42).question_entity_tokens);
}

// --------------------------------------------------------- QueryStream --

TEST(QueryStreamTest, ShuffledCoversEveryVariantOnce) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions opts;
  opts.variants_per_question = 4;
  opts.seed = 1;
  const auto stream = BuildQueryStream(w, opts);
  EXPECT_EQ(stream.size(), 40u);  // 10 questions x 4 variants
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& e : stream) {
    EXPECT_TRUE(seen.insert({e.question, e.variant}).second);
  }
}

TEST(QueryStreamTest, ShuffleChangesOrderAcrossSeeds) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const auto sa = BuildQueryStream(w, a);
  const auto sb = BuildQueryStream(w, b);
  bool differs = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].question != sb[i].question || sa[i].variant != sb[i].variant) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(QueryStreamTest, GroupedKeepsVariantsTogether) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions opts;
  opts.order = StreamOrder::kGrouped;
  const auto stream = BuildQueryStream(w, opts);
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    if (stream[i].question == stream[i + 1].question) {
      EXPECT_EQ(stream[i].variant + 1, stream[i + 1].variant);
    }
  }
}

TEST(QueryStreamTest, VariantZeroIsQuestionText) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions opts;
  opts.order = StreamOrder::kGrouped;
  const auto stream = BuildQueryStream(w, opts);
  for (const auto& e : stream) {
    if (e.variant == 0) {
      EXPECT_EQ(e.text, w.questions[e.question].text);
    } else {
      EXPECT_NE(e.text, w.questions[e.question].text);
      EXPECT_NE(e.text.find(w.questions[e.question].text),
                std::string::npos);
    }
  }
}

TEST(QueryStreamTest, ZipfStreamHasRequestedLength) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions opts;
  opts.order = StreamOrder::kZipf;
  opts.zipf_length = 333;
  const auto stream = BuildQueryStream(w, opts);
  EXPECT_EQ(stream.size(), 333u);
}

TEST(QueryStreamTest, ZipfSkewsPopularity) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions opts;
  opts.order = StreamOrder::kZipf;
  opts.zipf_length = 5000;
  opts.zipf_exponent = 1.2;
  const auto stream = BuildQueryStream(w, opts);
  std::map<std::size_t, std::size_t> counts;
  for (const auto& e : stream) ++counts[e.question];
  std::vector<std::size_t> sorted;
  for (const auto& [_, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  // The most popular question dominates the least popular by a wide
  // margin under a 1.2-exponent Zipf.
  EXPECT_GT(sorted.front(), sorted.back() * 3);
}

// ---------------------------------------------------------------- Trace --

TEST(TraceTest, RoundTripPreservesStream) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions opts;
  opts.seed = 3;
  const auto stream = BuildQueryStream(w, opts);

  std::stringstream ss;
  WriteTrace(ss, stream);
  const auto replayed = ReadTrace(ss, w.questions.size());
  ASSERT_EQ(replayed.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(replayed[i].question, stream[i].question);
    EXPECT_EQ(replayed[i].variant, stream[i].variant);
    EXPECT_EQ(replayed[i].text, stream[i].text);
  }
}

TEST(TraceTest, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n0\t1\tsome question text\n# tail\n");
  const auto stream = ReadTrace(ss);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].question, 0u);
  EXPECT_EQ(stream[0].variant, 1u);
  EXPECT_EQ(stream[0].text, "some question text");
}

TEST(TraceTest, RejectsMalformedLines) {
  std::stringstream missing_tab("0 1 text without tabs\n");
  EXPECT_THROW(ReadTrace(missing_tab), std::runtime_error);
  std::stringstream bad_id("x\t1\ttext\n");
  EXPECT_THROW(ReadTrace(bad_id), std::runtime_error);
}

TEST(TraceTest, ValidatesQuestionRange) {
  std::stringstream ss("99\t0\ttext\n");
  EXPECT_THROW(ReadTrace(ss, /*max_question=*/10), std::runtime_error);
  std::stringstream ok("9\t0\ttext\n");
  EXPECT_EQ(ReadTrace(ok, 10).size(), 1u);
}

TEST(TraceTest, RejectsTabsInQueryText) {
  std::vector<StreamEntry> stream(1);
  stream[0].text = "has\ttab";
  std::stringstream ss;
  EXPECT_THROW(WriteTrace(ss, stream), std::invalid_argument);
}

TEST(TraceTest, FileRoundTrip) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions opts;
  const auto stream = BuildQueryStream(w, opts);
  const std::string path = ::testing::TempDir() + "/proximity_trace.tsv";
  SaveTraceToFile(stream, path);
  const auto replayed = LoadTraceFromFile(path, w.questions.size());
  EXPECT_EQ(replayed.size(), stream.size());
  EXPECT_THROW(LoadTraceFromFile("/no/such/file.tsv"), std::runtime_error);
}

TEST(QueryStreamTest, RejectsZeroVariants) {
  const Workload w = BuildWorkload(TinySpec());
  QueryStreamOptions opts;
  opts.variants_per_question = 0;
  EXPECT_THROW(BuildQueryStream(w, opts), std::invalid_argument);
}

}  // namespace
}  // namespace proximity
