// Tests for the reproduction-verdict module: synthetic sweep grids that
// match or violate the paper's anchors.
#include <gtest/gtest.h>

#include "rag/verdict.h"

namespace proximity {
namespace {

SweepCell Cell(std::int64_t c, double tau, double acc, double hit,
               double lat_ms) {
  SweepCell cell;
  cell.capacity = c;
  cell.tolerance = tau;
  cell.mean.accuracy = acc;
  cell.mean.hit_rate = hit;
  cell.mean.mean_latency_ms = lat_ms;
  return cell;
}

/// A grid that matches the paper's MMLU anchors.
std::vector<SweepCell> GoodMmluGrid() {
  return {
      Cell(10, 0, 0.502, 0.00, 0.70),   Cell(10, 2, 0.502, 0.05, 0.67),
      Cell(10, 5, 0.49, 0.33, 0.45),    Cell(10, 10, 0.475, 0.99, 0.01),
      Cell(300, 0, 0.502, 0.00, 0.70),  Cell(300, 2, 0.501, 0.62, 0.28),
      Cell(300, 5, 0.485, 0.90, 0.10),  Cell(300, 10, 0.475, 0.99, 0.01),
  };
}

std::vector<SweepCell> GoodMedragGrid() {
  return {
      Cell(200, 0, 0.88, 0.00, 1.1),  Cell(200, 5, 0.88, 0.73, 0.3),
      Cell(200, 10, 0.40, 0.93, 0.04),
      Cell(300, 0, 0.88, 0.00, 1.1),  Cell(300, 5, 0.88, 0.75, 0.25),
      Cell(300, 10, 0.38, 0.96, 0.03),
  };
}

ClaimStatus StatusOf(const std::vector<ClaimCheck>& claims,
                     std::string_view id) {
  for (const auto& claim : claims) {
    if (claim.id == id) return claim.status;
  }
  ADD_FAILURE() << "claim not found: " << id;
  return ClaimStatus::kDeviation;
}

TEST(VerdictTest, GoodMmluGridReproducesEverything) {
  const auto claims = CheckMmluClaims(GoodMmluGrid());
  for (const auto& claim : claims) {
    EXPECT_EQ(claim.status, ClaimStatus::kReproduced)
        << claim.id << ": " << claim.measured;
  }
}

TEST(VerdictTest, GoodMedragGridReproducesEverything) {
  const auto claims = CheckMedragClaims(GoodMedragGrid());
  for (const auto& claim : claims) {
    EXPECT_EQ(claim.status, ClaimStatus::kReproduced)
        << claim.id << ": " << claim.measured;
  }
}

TEST(VerdictTest, FlatHitRateFailsCapacityClaim) {
  auto grid = GoodMmluGrid();
  for (auto& cell : grid) {
    if (cell.tolerance == 2.0) cell.mean.hit_rate = 0.10;  // no growth
  }
  EXPECT_EQ(StatusOf(CheckMmluClaims(grid), "mmlu-hit-capacity"),
            ClaimStatus::kDeviation);
}

TEST(VerdictTest, HitsAtTauZeroAreADeviation) {
  auto grid = GoodMmluGrid();
  for (auto& cell : grid) {
    if (cell.tolerance == 0.0) cell.mean.hit_rate = 0.05;  // impossible
  }
  EXPECT_EQ(StatusOf(CheckMmluClaims(grid), "mmlu-hit-tau0"),
            ClaimStatus::kDeviation);
}

TEST(VerdictTest, MissingAccuracyCliffDetected) {
  auto grid = GoodMedragGrid();
  for (auto& cell : grid) {
    if (cell.tolerance == 10.0) cell.mean.accuracy = 0.88;  // no cliff
  }
  EXPECT_EQ(StatusOf(CheckMedragClaims(grid), "medrag-acc-cliff"),
            ClaimStatus::kDeviation);
}

TEST(VerdictTest, NoLatencyWinIsADeviation) {
  auto grid = GoodMmluGrid();
  for (auto& cell : grid) cell.mean.mean_latency_ms = 1.0;  // flat latency
  EXPECT_EQ(StatusOf(CheckMmluClaims(grid), "mmlu-latency-reduction"),
            ClaimStatus::kDeviation);
}

TEST(VerdictTest, AccuracyCollapseExcludedFromReductionClaim) {
  // The only fast cell loses 10pp accuracy: the guard must ignore it.
  std::vector<SweepCell> grid = {
      Cell(10, 0, 0.50, 0.0, 1.0),
      Cell(10, 10, 0.40, 0.99, 0.01),
  };
  EXPECT_EQ(StatusOf(CheckMmluClaims(grid), "mmlu-latency-reduction"),
            ClaimStatus::kDeviation);
}

TEST(VerdictTest, EmptyGridReportsMissing) {
  const auto claims = CheckMmluClaims({});
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].status, ClaimStatus::kDeviation);
}

TEST(VerdictTest, PartialBandClassification) {
  auto grid = GoodMedragGrid();
  for (auto& cell : grid) {
    if (cell.tolerance == 10.0) cell.mean.accuracy = 0.48;  // shallow cliff
  }
  EXPECT_EQ(StatusOf(CheckMedragClaims(grid), "medrag-acc-cliff"),
            ClaimStatus::kPartial);
}

TEST(VerdictTest, RenderContainsStatusAndValues) {
  const auto claims = CheckMmluClaims(GoodMmluGrid());
  const std::string text = RenderClaims(claims);
  EXPECT_NE(text.find("[REPRODUCED]"), std::string::npos);
  EXPECT_NE(text.find("paper: ~50.2%"), std::string::npos);
  EXPECT_NE(text.find("measured:"), std::string::npos);
}

}  // namespace
}  // namespace proximity
