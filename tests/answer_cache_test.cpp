// Answer-level semantic cache and grounded reuse routing (DESIGN.md
// §15): AnswerCache arena mechanics (τ-lookup, FIFO eviction, the
// upsert deviation, staleness stamping), ReuseRouter threshold math,
// the pipeline's serve/patch/regenerate paths with overlap-draft
// accounting (drafts == commits + discards), and the BatchingDriver's
// answer tier — hit short-circuit, deleted-source-doc forced
// regeneration, cross-tenant isolation, and the extended conservation
// equation:
//   hits + answer_hits + retrieved + coalesced + shed + expired
//       + quota_shed + mutations == submitted
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "cache/answer_cache.h"
#include "cache/reuse_router.h"
#include "embed/hash_embedder.h"
#include "index/flat_index.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "rag/batching_driver.h"
#include "rag/pipeline.h"
#include "rag/retriever.h"
#include "tenant/tenant_registry.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

namespace proximity {
namespace {

std::vector<float> Key(float x, std::size_t dim = 4) {
  return std::vector<float>(dim, x);
}

CachedAnswer Answer(double relevance, bool correct,
                    std::vector<VectorId> docs = {1, 2, 3}) {
  CachedAnswer a;
  a.source_docs = std::move(docs);
  a.source_distances = {0.1f, 0.2f, 0.3f};
  a.relevance = relevance;
  a.correct = correct;
  return a;
}

// ---------------------------------------------------------- AnswerCache --

TEST(AnswerCacheTest, LookupHitsWithinTauAndMissesBeyond) {
  AnswerCacheOptions opts;
  opts.capacity = 4;
  opts.tolerance = 0.5f;
  AnswerCache cache(4, opts);

  EXPECT_FALSE(cache.Lookup(Key(0.0f)).hit);  // empty cache
  cache.Insert(Key(0.0f), Answer(0.9, true));
  EXPECT_EQ(cache.size(), 1u);

  const auto hit = cache.Lookup(Key(0.1f));  // L2 distance 0.2 < τ
  ASSERT_TRUE(hit.hit);
  EXPECT_FALSE(hit.stale);
  ASSERT_NE(hit.answer, nullptr);
  EXPECT_DOUBLE_EQ(hit.answer->relevance, 0.9);
  EXPECT_TRUE(hit.answer->correct);
  EXPECT_EQ(hit.answer->source_docs, (std::vector<VectorId>{1, 2, 3}));

  EXPECT_FALSE(cache.Lookup(Key(5.0f)).hit);  // far beyond τ

  const AnswerCacheStats& s = cache.stats();
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 1u);
}

TEST(AnswerCacheTest, FifoEvictsOldestOnceFull) {
  AnswerCacheOptions opts;
  opts.capacity = 2;
  opts.tolerance = 0.1f;
  AnswerCache cache(4, opts);

  cache.Insert(Key(0.0f), Answer(0.1, false, {1}));
  cache.Insert(Key(10.0f), Answer(0.2, false, {2}));
  cache.Insert(Key(20.0f), Answer(0.3, false, {3}));  // evicts Key(0)

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup(Key(0.0f)).hit);
  EXPECT_TRUE(cache.Lookup(Key(10.0f)).hit);
  EXPECT_TRUE(cache.Lookup(Key(20.0f)).hit);
}

TEST(AnswerCacheTest, InsertUpsertsTauCloseEntryInPlace) {
  AnswerCacheOptions opts;
  opts.capacity = 4;
  opts.tolerance = 0.5f;
  AnswerCache cache(4, opts);

  cache.Insert(Key(0.0f), Answer(0.1, false, {7}));
  cache.Insert(Key(0.05f), Answer(0.8, true, {8, 9}));  // within τ

  EXPECT_EQ(cache.size(), 1u);  // refreshed, not appended
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.stats().refreshes, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  const auto hit = cache.Lookup(Key(0.05f));
  ASSERT_TRUE(hit.hit);
  EXPECT_TRUE(hit.answer->correct);
  EXPECT_EQ(hit.answer->source_docs, (std::vector<VectorId>{8, 9}));
}

TEST(AnswerCacheTest, GenerationStampMarksOlderEntriesStale) {
  AnswerCache cache(4, {.capacity = 4, .tolerance = 0.5f});
  cache.Insert(Key(0.0f), Answer(0.5, true));
  EXPECT_FALSE(cache.Lookup(Key(0.0f)).stale);

  cache.set_generation(3);  // the corpus mutated underneath the entry
  const auto stale = cache.Lookup(Key(0.0f));
  ASSERT_TRUE(stale.hit);
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(cache.stats().stale_hits, 1u);

  // A refresh re-stamps the entry under the current generation.
  cache.Insert(Key(0.0f), Answer(0.6, true));
  EXPECT_EQ(cache.stats().refreshes, 1u);
  const auto fresh = cache.Lookup(Key(0.0f));
  ASSERT_TRUE(fresh.hit);
  EXPECT_FALSE(fresh.stale);
}

// ---------------------------------------------------------- ReuseRouter --

TEST(ReuseRouterTest, RoutesByOverlapAndDriftThresholds) {
  ReuseRouter router;  // serve >= 0.6, patch >= 0.3, drift <= 0.5
  const std::vector<VectorId> cached = {1, 2, 3};
  const std::vector<float> dists = {1.0f, 1.0f, 1.0f};

  // Identical evidence: serve.
  auto v = router.Route(false, cached, dists, cached, dists);
  EXPECT_EQ(v.decision, ReuseDecision::kServe);
  EXPECT_DOUBLE_EQ(v.overlap, 1.0);
  EXPECT_DOUBLE_EQ(v.drift, 0.0);

  // One of three ids survives (overlap 1/3): patch.
  v = router.Route(false, cached, dists, std::vector<VectorId>{3, 4, 5},
                   dists);
  EXPECT_EQ(v.decision, ReuseDecision::kPatch);
  EXPECT_NEAR(v.overlap, 1.0 / 3.0, 1e-9);

  // Disjoint evidence: regenerate.
  v = router.Route(false, cached, dists, std::vector<VectorId>{7, 8, 9},
                   dists);
  EXPECT_EQ(v.decision, ReuseDecision::kRegenerate);
  EXPECT_DOUBLE_EQ(v.overlap, 0.0);

  // Full id overlap but the distance profile doubled (drift 1.0 > 0.5):
  // the serve downgrades to patch.
  v = router.Route(false, cached, dists, cached,
                   std::vector<float>{2.0f, 2.0f, 2.0f});
  EXPECT_EQ(v.decision, ReuseDecision::kPatch);
  EXPECT_NEAR(v.drift, 1.0, 1e-9);

  const ReuseRouter::Stats& s = router.stats();
  EXPECT_EQ(s.routed, 4u);
  EXPECT_EQ(s.served, 1u);
  EXPECT_EQ(s.patched, 2u);
  EXPECT_EQ(s.regenerated, 1u);
  EXPECT_EQ(s.stale_forced, 0u);
}

TEST(ReuseRouterTest, StaleStampForcesRegenerateAtFullOverlap) {
  ReuseRouter router;
  const std::vector<VectorId> docs = {1, 2, 3};
  const std::vector<float> dists = {1.0f, 1.0f, 1.0f};
  const auto v = router.Route(true, docs, dists, docs, dists);
  EXPECT_EQ(v.decision, ReuseDecision::kRegenerate);
  EXPECT_TRUE(v.stale_forced);
  EXPECT_EQ(router.stats().stale_forced, 1u);
}

TEST(ReuseRouterTest, RejectsInvertedThresholds) {
  ReuseRouterOptions opts;
  opts.serve_overlap = 0.3;
  opts.patch_overlap = 0.6;  // patch > serve is a contradiction
  EXPECT_THROW(ReuseRouter{opts}, std::invalid_argument);
}

// ------------------------------------------------- pipeline answer path --

struct ReuseFixture {
  ReuseFixture() {
    WorkloadSpec spec = MmluLikeSpec(800, 42);
    spec.num_questions = 20;
    spec.num_clusters = 4;
    workload = BuildWorkload(spec);
    index = std::make_unique<FlatIndex>(embedder.dim());
    index->AddBatch(embedder.EmbedBatch(workload.passages));

    QueryStreamOptions sopts;
    sopts.seed = 1;
    stream = BuildQueryStream(workload, sopts);
    std::vector<std::string> texts;
    for (const auto& e : stream) texts.push_back(e.text);
    stream_embeddings = embedder.EmbedBatch(texts);
  }

  HashEmbedder embedder;
  Workload workload;
  std::unique_ptr<FlatIndex> index;
  std::vector<StreamEntry> stream;
  Matrix stream_embeddings;
};

TEST(PipelineAnswerReuseTest, RepeatQueryServesCachedVerdictFaster) {
  ReuseFixture fx;
  Retriever retriever(fx.index.get(), nullptr, nullptr, {.top_k = 5});
  RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  AnswerCache acache(fx.embedder.dim(), {.capacity = 64, .tolerance = 0.5f});
  ReuseRouter router;
  AnswerReuseOptions ropts;
  ropts.generation_cost_ns = 1'000'000'000;  // dwarfs any real scan time
  ropts.draft_fraction = 0.0;                // the draft is free
  pipeline.EnableAnswerReuse(&acache, &router, ropts);

  const auto first = pipeline.ProcessQuery(fx.stream[0],
                                           fx.stream_embeddings.Row(0), 0);
  EXPECT_FALSE(first.answer_hit);
  EXPECT_GE(first.ttft_ns, ropts.generation_cost_ns);

  // The identical embedding τ-hits; identical evidence serves.
  const auto second = pipeline.ProcessQuery(fx.stream[0],
                                            fx.stream_embeddings.Row(0), 1);
  EXPECT_TRUE(second.answer_hit);
  EXPECT_EQ(second.correct, first.correct);
  EXPECT_DOUBLE_EQ(second.judgment.relevance, first.judgment.relevance);
  EXPECT_LT(second.ttft_ns, first.ttft_ns);

  const AnswerReuseStats& s = pipeline.answer_stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.answer_hits, 1u);
  EXPECT_EQ(s.served, 1u);
  EXPECT_EQ(s.regenerated, 0u);
  EXPECT_EQ(s.drafts, 1u);
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.discards, 0u);
}

TEST(PipelineAnswerReuseTest, RegenerateDiscardsTheOverlapDraft) {
  ReuseFixture fx;
  Retriever retriever(fx.index.get(), nullptr, nullptr, {.top_k = 5});
  RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  AnswerCache acache(fx.embedder.dim(), {.capacity = 64, .tolerance = 0.5f});
  // Unreachable thresholds (overlap is at most 1.0): every hit routes
  // to regenerate, so every started draft must be discarded.
  ReuseRouterOptions unreachable;
  unreachable.serve_overlap = 1.5;
  unreachable.patch_overlap = 1.5;
  ReuseRouter router(unreachable);
  pipeline.EnableAnswerReuse(&acache, &router, {});

  const auto first = pipeline.ProcessQuery(fx.stream[0],
                                           fx.stream_embeddings.Row(0), 0);
  const auto second = pipeline.ProcessQuery(fx.stream[0],
                                            fx.stream_embeddings.Row(0), 1);
  EXPECT_FALSE(second.answer_hit);
  // The regenerated answer recomputes the full path: same verdict as
  // the first run of the identical query.
  EXPECT_EQ(second.correct, first.correct);

  const AnswerReuseStats& s = pipeline.answer_stats();
  EXPECT_EQ(s.answer_hits, 0u);
  EXPECT_EQ(s.regenerated, 1u);
  EXPECT_EQ(s.drafts, 1u);
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.discards, 1u);
  EXPECT_EQ(s.drafts, s.commits + s.discards);
}

TEST(PipelineAnswerReuseTest, ValidatesTheCacheRouterPair) {
  ReuseFixture fx;
  Retriever retriever(fx.index.get(), nullptr, nullptr, {.top_k = 5});
  RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  AnswerCache acache(fx.embedder.dim(), {});
  ReuseRouter router;

  EXPECT_THROW(pipeline.EnableAnswerReuse(&acache, nullptr),
               std::invalid_argument);
  EXPECT_THROW(pipeline.EnableAnswerReuse(nullptr, &router),
               std::invalid_argument);

  AnswerCache wrong_dim(fx.embedder.dim() / 2, {});
  EXPECT_THROW(pipeline.EnableAnswerReuse(&wrong_dim, &router),
               std::invalid_argument);

  AnswerReuseOptions bad;
  bad.draft_fraction = 1.5;
  EXPECT_THROW(pipeline.EnableAnswerReuse(&acache, &router, bad),
               std::invalid_argument);
}

// --------------------------------------------------- driver answer tier --

constexpr std::size_t kDim = 8;

FlatIndex MakeIndex() {
  FlatIndex index(kDim);
  for (std::size_t r = 0; r < 100; ++r) {
    std::vector<float> row(kDim, 0.0f);
    row[r % kDim] = 1.0f + static_cast<float>(r) * 0.01f;
    index.Add(row);
  }
  return index;
}

BatchingDriverOptions ParkedFlusher() {
  BatchingDriverOptions opts;
  opts.max_batch = 1000;
  opts.max_wait_us = 60ull * 1000000ull;
  opts.top_k = 3;
  opts.answer_reuse = true;
  return opts;
}

std::future<BatchResult> SubmitFor(BatchingDriver& driver,
                                   std::vector<float> embedding,
                                   TenantId tenant = kDefaultTenant) {
  auto promise = std::make_shared<std::promise<BatchResult>>();
  auto future = promise->get_future();
  SubmitOptions opts;
  opts.tenant = tenant;
  driver.SubmitAsync(std::move(embedding), opts,
                     [promise](BatchResult r) {
                       promise->set_value(std::move(r));
                     });
  return future;
}

void ExpectConserved(const BatchingDriverStats& s) {
  EXPECT_EQ(s.hits + s.answer_hits + s.retrieved + s.coalesced + s.shed +
                s.expired + s.quota_shed + s.mutations,
            s.submitted);
  EXPECT_EQ(s.completed, s.submitted - s.shed - s.quota_shed);
}

TenantRegistryOptions AnswerRegistryOptions() {
  TenantRegistryOptions topts;
  topts.cache_defaults.capacity = 16;
  topts.cache_defaults.tolerance = 0.05f;
  topts.answer_defaults.capacity = 8;
  topts.answer_defaults.tolerance = 0.05f;
  return topts;
}

TEST(DriverAnswerReuseTest, RepeatQueryIsAnswerHitAndConserved) {
  FlatIndex index = MakeIndex();
  TenantRegistry registry(kDim, AnswerRegistryOptions());
  BatchingDriver driver(index, registry, nullptr, ParkedFlusher());

  const std::vector<float> q(kDim, 0.5f);
  auto f1 = SubmitFor(driver, q);
  driver.Flush();
  const BatchResult r1 = f1.get();
  ASSERT_EQ(r1.status, RequestStatus::kOk);
  EXPECT_FALSE(r1.answer_hit);  // cold: a real retrieval seeds the tier

  auto f2 = SubmitFor(driver, q);
  driver.Flush();
  const BatchResult r2 = f2.get();
  ASSERT_EQ(r2.status, RequestStatus::kOk);
  EXPECT_TRUE(r2.answer_hit);
  EXPECT_FALSE(r2.cache_hit);  // short-circuits before the proximity tier
  EXPECT_EQ(r2.documents, r1.documents);
  EXPECT_EQ(r2.distances, r1.distances);  // cached evidence, not id-only

  driver.Shutdown();
  const BatchingDriverStats s = driver.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.retrieved, 1u);
  EXPECT_EQ(s.answer_hits, 1u);
  EXPECT_EQ(s.hits, 0u);
  ExpectConserved(s);

  const auto tstats = driver.tenant_stats();
  ASSERT_TRUE(tstats.count(kDefaultTenant));
  EXPECT_EQ(tstats.at(kDefaultTenant).answer_hits, 1u);
}

TEST(DriverAnswerReuseTest, DeletedSourceDocForcesFreshRetrieval) {
  HashEmbedder embedder;
  std::vector<std::string> corpus;
  for (int d = 0; d < 64; ++d) {
    corpus.push_back("document number " + std::to_string(d) +
                     " about topic " + std::to_string(d % 8));
  }
  IndexSpec spec;
  spec.kind = "mutable";
  const auto index = BuildIndex(spec, embedder.EmbedBatch(corpus));

  TenantRegistryOptions topts;
  topts.cache_defaults.capacity = 16;
  topts.cache_defaults.tolerance = 0.05f;
  // Revalidate: a stale proximity hit degrades to a miss, so the
  // post-mutation query re-retrieves instead of serving stale ids.
  topts.cache_defaults.staleness = StalenessPolicy::kRevalidate;
  topts.answer_defaults.capacity = 8;
  topts.answer_defaults.tolerance = 0.05f;
  TenantRegistry registry(embedder.dim(), topts);
  BatchingDriver driver(*index, registry, &embedder, ParkedFlusher());
  driver.EnableMutation(*index);

  const std::vector<float> q = embedder.Embed("document number 7");
  auto f1 = SubmitFor(driver, q);
  driver.Flush();
  const BatchResult r1 = f1.get();
  ASSERT_EQ(r1.status, RequestStatus::kOk);
  ASSERT_FALSE(r1.documents.empty());
  const VectorId victim = r1.documents[0];

  // Delete the answer's top source doc: the cached entry's evidence now
  // names a dead vector.
  std::promise<BatchResult> deleted;
  driver.SubmitMutationAsync(MutationOp::kDelete, "", victim, {},
                             [&](BatchResult r) {
                               deleted.set_value(std::move(r));
                             });
  driver.Flush();
  ASSERT_EQ(deleted.get_future().get().status, RequestStatus::kOk);

  // Same query again: the answer entry is stale (generation stamp), so
  // it must NOT be served; the fresh retrieval cannot contain the
  // deleted id.
  auto f2 = SubmitFor(driver, q);
  driver.Flush();
  const BatchResult r2 = f2.get();
  ASSERT_EQ(r2.status, RequestStatus::kOk);
  EXPECT_FALSE(r2.answer_hit);
  for (const VectorId id : r2.documents) EXPECT_NE(id, victim);

  driver.Shutdown();
  const BatchingDriverStats s = driver.stats();
  EXPECT_EQ(s.answer_hits, 0u);
  EXPECT_EQ(s.mutations, 1u);
  ExpectConserved(s);
}

TEST(DriverAnswerReuseTest, AnswerHitsNeverCrossTenants) {
  FlatIndex index = MakeIndex();
  TenantRegistry registry(kDim, AnswerRegistryOptions());
  TenantSpec alpha;
  alpha.id = 1;
  alpha.name = "alpha";
  registry.Register(alpha);
  TenantSpec beta;
  beta.id = 2;
  beta.name = "beta";
  registry.Register(beta);
  BatchingDriver driver(index, registry, nullptr, ParkedFlusher());

  const std::vector<float> q(kDim, 0.5f);
  auto f1 = SubmitFor(driver, q, 1);
  driver.Flush();
  ASSERT_EQ(f1.get().status, RequestStatus::kOk);

  // Tenant 2 asks the exact question tenant 1 just seeded: its own
  // answer cache is cold, so it must pay its own retrieval.
  auto f2 = SubmitFor(driver, q, 2);
  driver.Flush();
  const BatchResult other = f2.get();
  ASSERT_EQ(other.status, RequestStatus::kOk);
  EXPECT_FALSE(other.answer_hit);
  EXPECT_FALSE(other.cache_hit);

  // Tenant 1 repeating it is a private answer hit.
  auto f3 = SubmitFor(driver, q, 1);
  driver.Flush();
  EXPECT_TRUE(f3.get().answer_hit);

  driver.Shutdown();
  const auto tstats = driver.tenant_stats();
  EXPECT_EQ(tstats.at(1).answer_hits, 1u);
  EXPECT_EQ(tstats.at(2).answer_hits, 0u);
  ExpectConserved(driver.stats());
}

// ------------------------------------------- ConcurrentAnswerCache race --

TEST(ConcurrentAnswerCacheTest, ParallelLookupInsertAndStamping) {
  AnswerCacheOptions opts;
  opts.capacity = 16;
  opts.tolerance = 0.25f;
  ConcurrentAnswerCache cache(4, opts);

  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIters; ++i) {
        const float x = static_cast<float>((t * kIters + i) % 32);
        cache.Insert(Key(x), Answer(0.5, true, {static_cast<VectorId>(t)}));
        if (auto hit = cache.Lookup(Key(x))) {
          // Copied out: safe to read while other threads insert.
          EXPECT_FALSE(hit->answer.source_docs.empty());
        }
        if (i % 64 == 0) {
          cache.set_generation(static_cast<std::uint64_t>(i));
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_LE(cache.size(), opts.capacity);
  const AnswerCacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, static_cast<std::uint64_t>(kThreads * kIters));
}

}  // namespace
}  // namespace proximity
