// Live-corpus mutation suite (DESIGN.md §13): the mutable graph index,
// slot reuse, consolidation under concurrent queries, sharded routing,
// the generation counters, and the cache-staleness policies as seen
// through the public API. Runs under TSan (label `tsan`): the
// consolidate-vs-search test is the intended workout.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "cache/proximity_cache.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "index/index_io.h"
#include "index/mutable_index.h"
#include "index/sharded_index.h"
#include "rag/batching_driver.h"
#include "tenant/tenant_registry.h"

namespace proximity {
namespace {

Matrix RandomRows(std::size_t n, std::size_t dim, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  Matrix m(0, dim);
  m.Reserve(n);
  std::vector<float> row(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = dist(rng);
    m.AppendRow(row);
  }
  return m;
}

MutableGraphOptions SmallGraph() {
  MutableGraphOptions opts;
  opts.max_degree = 16;
  opts.build_beam = 32;
  opts.search_beam = 48;
  return opts;
}

TEST(MutableIndex, InsertThenSearchFindsSelf) {
  const std::size_t dim = 16;
  const Matrix rows = RandomRows(200, dim, 1);
  MutableGraphIndex index(dim, SmallGraph());
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    EXPECT_EQ(index.Insert(rows.Row(i)), static_cast<VectorId>(i));
  }
  EXPECT_EQ(index.size(), 200u);
  // Every vector's own nearest neighbor is itself.
  std::size_t self_hits = 0;
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    const auto result = index.Search(rows.Row(i), 1);
    ASSERT_FALSE(result.empty());
    if (result[0].id == static_cast<VectorId>(i)) ++self_hits;
  }
  // The graph is approximate but self-search is the easy case.
  EXPECT_GE(self_hits, 195u);
}

TEST(MutableIndex, DeleteExcludesTombstonesFromSearch) {
  const std::size_t dim = 12;
  const Matrix rows = RandomRows(300, dim, 2);
  MutableGraphIndex index(dim, SmallGraph());
  for (std::size_t i = 0; i < rows.rows(); ++i) index.Insert(rows.Row(i));

  std::set<VectorId> deleted;
  for (VectorId id = 0; id < 300; id += 3) {
    EXPECT_TRUE(index.Delete(id));
    deleted.insert(id);
  }
  EXPECT_EQ(index.size(), 200u);
  EXPECT_EQ(index.tombstone_count(), 100u);
  // Double-delete and out-of-range ids are refused, not fatal.
  EXPECT_FALSE(index.Delete(0));
  EXPECT_FALSE(index.Delete(-1));
  EXPECT_FALSE(index.Delete(100000));

  // No search, at any k, may return a tombstoned id — even though the
  // tombstones are still traversed internally for routing.
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    for (const auto& n : index.Search(rows.Row(i), 10)) {
      EXPECT_EQ(deleted.count(n.id), 0u) << "tombstone " << n.id
                                         << " leaked into results";
    }
  }
}

TEST(MutableIndex, ConsolidateReclaimsAndSlotsAreReused) {
  const std::size_t dim = 8;
  const Matrix rows = RandomRows(120, dim, 3);
  MutableGraphIndex index(dim, SmallGraph());
  for (std::size_t i = 0; i < rows.rows(); ++i) index.Insert(rows.Row(i));

  for (VectorId id = 10; id < 20; ++id) EXPECT_TRUE(index.Delete(id));
  EXPECT_EQ(index.Consolidate(), 10u);
  EXPECT_EQ(index.tombstone_count(), 0u);
  EXPECT_EQ(index.free_count(), 10u);
  const std::size_t slots_before = index.slot_count();

  // Re-inserts fill the reclaimed slots lowest-first, without growing
  // the arena; fresh inserts after that grow it again.
  const Matrix fresh = RandomRows(12, dim, 4);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(index.Insert(fresh.Row(i)),
              static_cast<VectorId>(10 + i));
  }
  EXPECT_EQ(index.slot_count(), slots_before);
  EXPECT_EQ(index.free_count(), 0u);
  EXPECT_EQ(index.Insert(fresh.Row(10)),
            static_cast<VectorId>(slots_before));

  // A reused slot serves its NEW vector.
  const auto result = index.Search(fresh.Row(0), 1);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result[0].id, 10);
}

TEST(MutableIndex, SerdeRoundTripPreservesSlotStateAfterChurn) {
  const std::size_t dim = 10;
  const Matrix rows = RandomRows(150, dim, 5);
  MutableGraphIndex index(dim, SmallGraph());
  for (std::size_t i = 0; i < rows.rows(); ++i) index.Insert(rows.Row(i));
  for (VectorId id = 0; id < 150; id += 5) ASSERT_TRUE(index.Delete(id));
  index.Consolidate();
  const Matrix fresh = RandomRows(7, dim, 6);
  for (std::size_t i = 0; i < fresh.rows(); ++i) index.Insert(fresh.Row(i));
  for (VectorId id = 77; id < 80; ++id) ASSERT_TRUE(index.Delete(id));

  std::stringstream buf;
  index.SaveTo(buf);
  // Through the magic-dispatching loader, like any other index file.
  const auto loaded = LoadIndex(buf);
  ASSERT_NE(loaded, nullptr);
  auto* mut = dynamic_cast<MutableGraphIndex*>(loaded.get());
  ASSERT_NE(mut, nullptr);

  EXPECT_EQ(mut->size(), index.size());
  EXPECT_EQ(mut->slot_count(), index.slot_count());
  EXPECT_EQ(mut->tombstone_count(), index.tombstone_count());
  EXPECT_EQ(mut->free_count(), index.free_count());
  EXPECT_EQ(mut->generation(), index.generation());
  for (std::size_t i = 0; i < 150; ++i) {
    const auto a = index.Search(rows.Row(i), 5);
    const auto b = mut->Search(rows.Row(i), 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id);
    }
  }
  // The loaded copy keeps mutating: slot reuse continues where the
  // original would (same free list, same ordering).
  const Matrix more = RandomRows(2, dim, 7);
  EXPECT_EQ(mut->Insert(more.Row(0)), index.Insert(more.Row(0)));
}

TEST(MutableIndex, ConsolidateUnderConcurrentQueriesNeverServesDeleted) {
  const std::size_t dim = 12;
  const std::size_t n = 600;
  const Matrix rows = RandomRows(n, dim, 8);
  MutableGraphOptions opts = SmallGraph();
  opts.consolidate_chunk = 16;  // many lock releases mid-consolidation
  MutableGraphIndex index(dim, opts);
  for (std::size_t i = 0; i < n; ++i) index.Insert(rows.Row(i));

  // Every odd id dies; queries race the chunked consolidation.
  std::set<VectorId> doomed;
  for (VectorId id = 1; id < static_cast<VectorId>(n); id += 2) {
    ASSERT_TRUE(index.Delete(id));
    doomed.insert(id);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> leaks{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const auto result = index.Search(rows.Row(i % n), 10);
        for (const auto& nb : result) {
          if (doomed.count(nb.id) != 0) {
            leaks.fetch_add(1, std::memory_order_relaxed);
          }
        }
        i += 7;
      }
    });
  }
  EXPECT_EQ(index.Consolidate(), n / 2);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(leaks.load(), 0u);
  EXPECT_EQ(index.tombstone_count(), 0u);
  EXPECT_EQ(index.size(), n / 2);
}

TEST(MutableIndex, GenerationIsMonotonePerMutation) {
  const std::size_t dim = 8;
  MutableGraphIndex index(dim, SmallGraph());
  EXPECT_EQ(index.generation(), 0u);
  const Matrix rows = RandomRows(20, dim, 9);
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    index.Insert(rows.Row(i));
    EXPECT_GT(index.generation(), last);
    last = index.generation();
  }
  ASSERT_TRUE(index.Delete(3));
  EXPECT_GT(index.generation(), last);
  last = index.generation();
  EXPECT_EQ(index.Consolidate(), 1u);
  EXPECT_GT(index.generation(), last);
  last = index.generation();
  // A failed delete is not a mutation; the counter must not move.
  EXPECT_FALSE(index.Delete(3));
  EXPECT_EQ(index.generation(), last);
  // A no-op consolidation reclaims nothing and must not move it either.
  EXPECT_EQ(index.Consolidate(), 0u);
  EXPECT_EQ(index.generation(), last);
}

TEST(MutableIndex, FactoryBuildsAndRecallTracksVamana) {
  const std::size_t dim = 24;
  const std::size_t n = 800;
  const Matrix rows = RandomRows(n, dim, 10);
  IndexSpec spec;
  spec.kind = "mutable";
  const auto index = BuildIndex(spec, rows);
  EXPECT_TRUE(index->SupportsMutation());
  EXPECT_EQ(index->size(), n);

  IndexSpec flat;
  flat.kind = "flat";
  const auto oracle = BuildIndex(flat, rows);
  const Matrix queries = RandomRows(50, dim, 11);
  std::size_t overlap = 0, total = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto got = index->Search(queries.Row(q), 10);
    const auto want = oracle->Search(queries.Row(q), 10);
    std::set<VectorId> gold;
    for (const auto& nb : want) gold.insert(nb.id);
    for (const auto& nb : got) overlap += gold.count(nb.id);
    total += want.size();
  }
  EXPECT_GE(static_cast<double>(overlap) / static_cast<double>(total),
            0.9);
  // Build-once indexes refuse Delete with a useful error instead.
  EXPECT_THROW((void)oracle->Delete(0), std::logic_error);
  EXPECT_FALSE(oracle->SupportsMutation());
}

TEST(ShardedMutation, RoutesByGlobalIdAndKeepsGenerationsMonotone) {
  const std::size_t dim = 16;
  const std::size_t n = 400;
  const Matrix rows = RandomRows(n, dim, 12);
  IndexSpec spec;
  spec.kind = "mutable";
  ShardedIndexOptions sopts;
  sopts.num_shards = 4;
  const auto index = BuildShardedIndex(spec, rows, sopts);
  ASSERT_TRUE(index->SupportsMutation());
  EXPECT_EQ(index->size(), n);

  std::vector<std::uint64_t> gens(index->num_shards());
  for (std::size_t s = 0; s < index->num_shards(); ++s) {
    gens[s] = index->shard_generation(s);
  }

  // Delete a spread of global ids; search never returns them again.
  std::set<VectorId> deleted;
  for (VectorId id = 0; id < static_cast<VectorId>(n); id += 4) {
    ASSERT_TRUE(index->Delete(id)) << id;
    deleted.insert(id);
  }
  EXPECT_FALSE(index->Delete(0));  // already gone
  EXPECT_EQ(index->size(), n - n / 4);
  for (std::size_t q = 0; q < 40; ++q) {
    for (const auto& nb : index->Search(rows.Row(q * 7 % n), 10)) {
      EXPECT_EQ(deleted.count(nb.id), 0u);
    }
  }
  // Per-shard generations only ever moved forward.
  std::uint64_t moved = 0;
  for (std::size_t s = 0; s < index->num_shards(); ++s) {
    EXPECT_GE(index->shard_generation(s), gens[s]);
    moved += index->shard_generation(s) - gens[s];
  }
  EXPECT_EQ(moved, n / 4);  // one bump per delete, summed across shards

  // Inserts land on the smallest shard and get stable global ids;
  // after consolidation, reclaimed global ids are reused in place.
  const Matrix fresh = RandomRows(8, dim, 13);
  const VectorId grown = index->Insert(fresh.Row(0));
  EXPECT_GE(grown, static_cast<VectorId>(n));  // no free slots yet
  index->Consolidate();
  const VectorId reused = index->Insert(fresh.Row(1));
  EXPECT_LT(reused, static_cast<VectorId>(n));  // a reclaimed global id
  EXPECT_TRUE(deleted.count(reused) != 0);
  const auto found = index->Search(fresh.Row(1), 1);
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found[0].id, reused);
}

// The three staleness policies, observed purely through the public
// cache API: fill at generation 0, bump, and watch what a hit does.
TEST(StalenessPolicy, ServeStaleServesAndCounts) {
  ProximityCacheOptions opts;
  opts.capacity = 8;
  opts.tolerance = 0.5f;
  opts.staleness = StalenessPolicy::kServeStale;
  ProximityCache cache(4, opts);
  const std::vector<float> q{1.0f, 0.0f, 0.0f, 0.0f};
  cache.Insert(q, {1, 2, 3});
  cache.set_generation(7);
  const auto hit = cache.Lookup(q);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(cache.stats().stale_hits, 1u);
  EXPECT_EQ(cache.stats().stale_evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(StalenessPolicy, RevalidateMissesAndEvictsTheEntry) {
  ProximityCacheOptions opts;
  opts.capacity = 8;
  opts.tolerance = 0.5f;
  opts.staleness = StalenessPolicy::kRevalidate;
  ProximityCache cache(4, opts);
  const std::vector<float> q{1.0f, 0.0f, 0.0f, 0.0f};
  cache.Insert(q, {1, 2, 3});
  cache.set_generation(7);
  EXPECT_FALSE(cache.Lookup(q).hit);
  EXPECT_EQ(cache.stats().stale_hits, 1u);
  EXPECT_EQ(cache.stats().stale_evictions, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // The refill is stamped with the NEW generation and serves again.
  cache.Insert(q, {4, 5, 6});
  const auto hit = cache.Lookup(q);
  ASSERT_TRUE(hit.hit);
  EXPECT_EQ(hit.documents[0], 4);
  EXPECT_EQ(cache.stats().stale_hits, 1u);
}

TEST(StalenessPolicy, InvalidateRegionEvictsTheWholeNeighborhood) {
  ProximityCacheOptions opts;
  opts.capacity = 8;
  opts.tolerance = 1.0f;
  opts.staleness = StalenessPolicy::kInvalidateRegion;
  ProximityCache cache(4, opts);
  // Two entries within τ of the probe, one far away.
  const std::vector<float> near_a{1.0f, 0.0f, 0.0f, 0.0f};
  const std::vector<float> near_b{1.2f, 0.0f, 0.0f, 0.0f};
  const std::vector<float> far_q{9.0f, 9.0f, 9.0f, 9.0f};
  const std::vector<float> probe{1.1f, 0.0f, 0.0f, 0.0f};
  cache.Insert(near_a, {1});
  cache.Insert(near_b, {2});
  cache.Insert(far_q, {3});
  cache.set_generation(3);
  EXPECT_FALSE(cache.Lookup(probe).hit);
  EXPECT_EQ(cache.stats().stale_evictions, 2u);
  // Region eviction is scoped: the far entry is outside τ of the probe
  // and survives, even though it is just as stale.
  EXPECT_EQ(cache.size(), 1u);
  // A probe AT the far entry is its own stale hit and purges it too —
  // the policy evicts rather than serves on every stale touch.
  EXPECT_FALSE(cache.Lookup(far_q).hit);
  EXPECT_EQ(cache.stats().stale_hits, 2u);
  EXPECT_EQ(cache.size(), 0u);
  // A post-mutation refill at the current generation serves normally.
  cache.Insert(far_q, {4});
  EXPECT_TRUE(cache.Lookup(far_q).hit);
  EXPECT_EQ(cache.stats().stale_hits, 2u);
}

TEST(StalenessPolicy, CacheSerdeCarriesPolicyGenerationAndStamps) {
  ProximityCacheOptions opts;
  opts.capacity = 8;
  opts.tolerance = 0.5f;
  opts.staleness = StalenessPolicy::kRevalidate;
  ProximityCache cache(4, opts);
  const std::vector<float> old_q{1.0f, 0.0f, 0.0f, 0.0f};
  const std::vector<float> new_q{0.0f, 1.0f, 0.0f, 0.0f};
  cache.Insert(old_q, {1});
  cache.set_generation(5);
  cache.Insert(new_q, {2});  // stamped gen 5

  std::stringstream buf;
  cache.SaveTo(buf);
  ProximityCache loaded = ProximityCache::LoadFrom(buf);
  EXPECT_EQ(loaded.staleness(), StalenessPolicy::kRevalidate);
  EXPECT_EQ(loaded.generation(), 5u);
  // The gen-5 entry is fresh, the gen-0 entry stale: only the former
  // survives a revalidate-policy lookup.
  EXPECT_TRUE(loaded.Lookup(new_q).hit);
  EXPECT_FALSE(loaded.Lookup(old_q).hit);
}

// End-to-end: mutations through the driver bump the generation, the
// pull-at-probe stamp reaches the tenant cache, and the conservation
// invariant extends to the `mutations` outcome.
TEST(DriverMutation, InsertDeleteRoundTripAndConservation) {
  const std::size_t dim = HashEmbedder().dim();
  HashEmbedder embedder;
  std::vector<std::string> corpus;
  for (int i = 0; i < 64; ++i) {
    corpus.push_back("seed document number " + std::to_string(i));
  }
  IndexSpec spec;
  spec.kind = "mutable";
  const auto index = BuildIndex(spec, embedder.EmbedBatch(corpus));

  ProximityCacheOptions copts;
  copts.capacity = 32;
  copts.tolerance = 0.05f;
  copts.staleness = StalenessPolicy::kRevalidate;
  ConcurrentProximityCache cache(dim, copts);
  BatchingDriverOptions dopts;
  dopts.max_batch = 8;
  BatchingDriver driver(*index, cache, &embedder, dopts);
  driver.EnableMutation(*index);
  ASSERT_TRUE(driver.mutation_enabled());

  // Warm the cache with a query, then mutate: the next probe must see
  // the bumped generation and revalidate instead of serving stale.
  (void)driver.SubmitText("what is document forty two").get();
  driver.Flush();

  std::promise<BatchResult> inserted;
  driver.SubmitMutationAsync(
      MutationOp::kInsert, "a brand new live document", kInvalidVector, {},
      [&](BatchResult r) { inserted.set_value(std::move(r)); });
  const BatchResult ins = inserted.get_future().get();
  EXPECT_EQ(ins.status, RequestStatus::kOk);
  ASSERT_EQ(ins.documents.size(), 1u);
  const VectorId new_id = ins.documents[0];
  EXPECT_EQ(new_id, 64);

  // The cache saw the new generation via pull-at-probe.
  (void)driver.SubmitText("what is document forty two").get();
  driver.Flush();
  EXPECT_EQ(cache.generation(), index->generation());
  EXPECT_GE(cache.inner_stats().stale_hits, 1u);

  std::promise<BatchResult> deleted;
  driver.SubmitMutationAsync(
      MutationOp::kDelete, "", new_id, {},
      [&](BatchResult r) { deleted.set_value(std::move(r)); });
  EXPECT_EQ(deleted.get_future().get().status, RequestStatus::kOk);

  // Deleting an id that never existed is INVALID_ARGUMENT, and still
  // counts as a (processed) mutation in the conservation equation.
  std::promise<BatchResult> bogus;
  driver.SubmitMutationAsync(
      MutationOp::kDelete, "", 99999, {},
      [&](BatchResult r) { bogus.set_value(std::move(r)); });
  EXPECT_EQ(bogus.get_future().get().status,
            RequestStatus::kInvalidArgument);

  // Malformed mutations are refused inline.
  std::promise<BatchResult> empty_insert;
  driver.SubmitMutationAsync(
      MutationOp::kInsert, "", kInvalidVector, {},
      [&](BatchResult r) { empty_insert.set_value(std::move(r)); });
  EXPECT_EQ(empty_insert.get_future().get().status,
            RequestStatus::kInvalidArgument);

  driver.Shutdown();
  const BatchingDriverStats s = driver.stats();
  EXPECT_EQ(s.mutations, 3u);
  EXPECT_EQ(s.hits + s.retrieved + s.coalesced + s.shed + s.expired +
                s.quota_shed + s.mutations,
            s.submitted);
}

TEST(DriverMutation, EnableMutationRejectsForeignAndBuildOnceIndexes) {
  const std::size_t dim = 8;
  const Matrix rows = RandomRows(32, dim, 14);
  IndexSpec flat;
  flat.kind = "flat";
  const auto frozen = BuildIndex(flat, rows);
  IndexSpec mut;
  mut.kind = "mutable";
  const auto other = BuildIndex(mut, rows);

  ProximityCacheOptions copts;
  copts.capacity = 8;
  ConcurrentProximityCache cache(dim, copts);
  BatchingDriver driver(*frozen, cache, nullptr, {});
  EXPECT_THROW(driver.EnableMutation(*frozen), std::invalid_argument);
  EXPECT_THROW(driver.EnableMutation(*other), std::invalid_argument);
  EXPECT_FALSE(driver.mutation_enabled());
  driver.Shutdown();
}

// Concurrent churn through the sharded index: inserts, deletes and
// queries race; afterwards the id space is consistent. TSan's main
// course for this suite.
TEST(ShardedMutation, ConcurrentChurnKeepsInvariants) {
  const std::size_t dim = 12;
  const std::size_t n = 300;
  const Matrix rows = RandomRows(n, dim, 15);
  IndexSpec spec;
  spec.kind = "mutable";
  ShardedIndexOptions sopts;
  sopts.num_shards = 3;
  const auto index = BuildShardedIndex(spec, rows, sopts);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> inserted{0}, deleted{0};
  std::thread writer([&] {
    const Matrix extra = RandomRows(200, dim, 16);
    for (std::size_t i = 0; i < extra.rows(); ++i) {
      const VectorId id = index->Insert(extra.Row(i));
      inserted.fetch_add(1, std::memory_order_relaxed);
      if (i % 2 == 0 && index->Delete(id)) {
        deleted.fetch_add(1, std::memory_order_relaxed);
      }
      if (i % 64 == 63) index->Consolidate();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const auto result = index->Search(rows.Row(i % n), 5);
        EXPECT_LE(result.size(), 5u);
        i += 11;
      }
    });
  }
  writer.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(index->size(), n + inserted.load() - deleted.load());
  // Generation moved once per applied mutation (consolidations may add
  // more); it is at least the mutation count.
  EXPECT_GE(index->generation(), inserted.load() + deleted.load());
}

}  // namespace
}  // namespace proximity
