// Unit tests for src/common: rng, stats, csv, config, thread pool, clocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "common/config.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace proximity {
namespace {

// ------------------------------------------------------------------ Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.Below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(11);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Gaussian(3.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  StreamingStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(3);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  // Children differ from each other and from the parent stream.
  EXPECT_NE(child.Next64(), child2.Next64());
}

TEST(RngTest, SplitMix64KnownValue) {
  // splitmix64(0) from the reference implementation.
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafULL);
}

TEST(ZipfSamplerTest, SkewsTowardLowRanks) {
  Rng rng(21);
  ZipfSampler zipf(100, 1.0);
  std::array<int, 100> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  Rng rng(22);
  ZipfSampler zipf(10, 0.0);
  std::array<int, 10> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

// ---------------------------------------------------------------- Stats --

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(StreamingStatsTest, KnownSequence) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, MergeEqualsSequential) {
  StreamingStats a, b, all;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(0, 1);
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(LatencyHistogramTest, MeanAndCount) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(2000);
  h.Record(3000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 2000.0);
  EXPECT_EQ(h.MaxNanos(), 3000);
}

TEST(LatencyHistogramTest, QuantilesAreOrdered) {
  LatencyHistogram h;
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<Nanos>(rng.Below(1000000) + 1));
  }
  const double p10 = h.QuantileNanos(0.1);
  const double p50 = h.QuantileNanos(0.5);
  const double p99 = h.QuantileNanos(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  // Uniform distribution: p50 should be near 500k within bucket error.
  EXPECT_NEAR(p50, 500000, 50000);
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.Record(100);
  b.Record(200);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.MaxNanos(), 300);
}

TEST(LatencyHistogramTest, SummaryMentionsCount) {
  LatencyHistogram h;
  h.Record(5000);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(LatencyHistogramTest, EmptyHistogramEdges) {
  LatencyHistogram h;
  EXPECT_EQ(h.MinNanos(), 0);
  EXPECT_EQ(h.MaxNanos(), 0);
  EXPECT_DOUBLE_EQ(h.QuantileNanos(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.QuantileNanos(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.QuantileNanos(1.0), 0.0);
}

TEST(LatencyHistogramTest, QuantileExtremesAreExactMinMax) {
  LatencyHistogram h;
  h.Record(123);
  h.Record(456789);
  h.Record(7);
  EXPECT_EQ(h.MinNanos(), 7);
  EXPECT_EQ(h.MaxNanos(), 456789);
  // q <= 0 is the exact minimum, q >= 1 the exact maximum — not bucket
  // midpoints.
  EXPECT_DOUBLE_EQ(h.QuantileNanos(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.QuantileNanos(-0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.QuantileNanos(1.0), 456789.0);
  EXPECT_DOUBLE_EQ(h.QuantileNanos(1.5), 456789.0);
}

TEST(LatencyHistogramTest, InteriorQuantilesClampToObservedRange) {
  LatencyHistogram h;
  // A single sample: every quantile must report exactly that sample even
  // though its bucket midpoint differs from the raw value.
  h.Record(999);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.QuantileNanos(q), 999.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeTracksMinAcrossHistograms) {
  LatencyHistogram a, b, empty;
  a.Record(5000);
  b.Record(40);
  a.Merge(b);
  EXPECT_EQ(a.MinNanos(), 40);
  a.Merge(empty);  // merging an empty histogram must not disturb min/max
  EXPECT_EQ(a.MinNanos(), 40);
  EXPECT_EQ(a.MaxNanos(), 5000);
  empty.Merge(a);
  EXPECT_EQ(empty.MinNanos(), 40);
}

TEST(LatencyHistogramTest, MergeBucketsMatchesDirectRecords) {
  // Externally-maintained buckets (the obs shard path) fold in exactly.
  std::uint64_t counts[LatencyHistogram::kNumBuckets] = {};
  const Nanos samples[] = {12, 3400, 560000, 78000000};
  double sum = 0.0;
  for (Nanos s : samples) {
    counts[LatencyHistogram::BucketIndex(s)] += 1;
    sum += static_cast<double>(s);
  }
  LatencyHistogram merged;
  merged.Record(999);  // pre-existing content
  merged.MergeBuckets(counts, LatencyHistogram::kNumBuckets, sum, 12,
                      78000000);

  LatencyHistogram direct;
  direct.Record(999);
  for (Nanos s : samples) direct.Record(s);

  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.MinNanos(), direct.MinNanos());
  EXPECT_EQ(merged.MaxNanos(), direct.MaxNanos());
  EXPECT_DOUBLE_EQ(merged.MeanNanos(), direct.MeanNanos());
  EXPECT_DOUBLE_EQ(merged.QuantileNanos(0.5), direct.QuantileNanos(0.5));

  // An all-zero external set is a no-op.
  std::uint64_t zeros[LatencyHistogram::kNumBuckets] = {};
  LatencyHistogram before = merged;
  merged.MergeBuckets(zeros, LatencyHistogram::kNumBuckets, 0.0, 0, 0);
  EXPECT_EQ(merged.count(), before.count());
  EXPECT_EQ(merged.MinNanos(), before.MinNanos());
}

TEST(FormatNanosTest, AdaptiveUnits) {
  EXPECT_EQ(FormatNanos(500), "500ns");
  EXPECT_EQ(FormatNanos(1500), "1.50us");
  EXPECT_EQ(FormatNanos(2500000), "2.50ms");
  EXPECT_EQ(FormatNanos(3.2e9), "3.20s");
}

// ------------------------------------------------------------------ CSV --

TEST(CsvTest, HeaderAndRows) {
  CsvTable t({"a", "b"});
  t.AddRow({std::int64_t{1}, 2.5});
  t.AddRow({std::string("x"), std::int64_t{3}});
  EXPECT_EQ(t.ToString(), "a,b\n1,2.5\nx,3\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvTable t({"v"});
  t.AddRow({std::string("hello, world")});
  t.AddRow({std::string("say \"hi\"")});
  EXPECT_EQ(t.ToString(), "v\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, RejectsWrongWidth) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({std::int64_t{1}}), std::invalid_argument);
}

TEST(CsvTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvTable({}), std::invalid_argument);
}

// --------------------------------------------------------------- Config --

TEST(ConfigTest, ParsesArgs) {
  const char* argv[] = {"prog", "alpha=1", "beta=2.5", "name=test", "pos"};
  Config cfg = Config::FromArgs(5, argv);
  EXPECT_EQ(cfg.GetInt("alpha", 0), 1);
  EXPECT_DOUBLE_EQ(cfg.GetDouble("beta", 0), 2.5);
  EXPECT_EQ(cfg.GetString("name", ""), "test");
  ASSERT_EQ(cfg.positional().size(), 1u);
  EXPECT_EQ(cfg.positional()[0], "pos");
}

TEST(ConfigTest, FallbacksWhenMissing) {
  Config cfg;
  EXPECT_EQ(cfg.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.GetDouble("missing", 1.5), 1.5);
  EXPECT_TRUE(cfg.GetBool("missing", true));
}

TEST(ConfigTest, ParsesBools) {
  Config cfg;
  cfg.Set("t1", "true");
  cfg.Set("t2", "1");
  cfg.Set("t3", "ON");
  cfg.Set("f1", "false");
  cfg.Set("f2", "off");
  EXPECT_TRUE(cfg.GetBool("t1", false));
  EXPECT_TRUE(cfg.GetBool("t2", false));
  EXPECT_TRUE(cfg.GetBool("t3", false));
  EXPECT_FALSE(cfg.GetBool("f1", true));
  EXPECT_FALSE(cfg.GetBool("f2", true));
  cfg.Set("bad", "maybe");
  EXPECT_THROW(cfg.GetBool("bad", true), std::invalid_argument);
}

TEST(ConfigTest, ParsesLists) {
  Config cfg;
  cfg.Set("taus", "0,0.5,1,2,5,10");
  cfg.Set("caps", "10, 50, 100");
  const auto taus = cfg.GetDoubleList("taus", {});
  ASSERT_EQ(taus.size(), 6u);
  EXPECT_DOUBLE_EQ(taus[1], 0.5);
  const auto caps = cfg.GetIntList("caps", {});
  ASSERT_EQ(caps.size(), 3u);
  EXPECT_EQ(caps[2], 100);
}

TEST(ConfigTest, FromStringSkipsComments) {
  Config cfg = Config::FromString("a=1\n# comment\n  b = 2 \n\n");
  EXPECT_EQ(cfg.GetInt("a", 0), 1);
  EXPECT_EQ(cfg.GetInt("b", 0), 2);
}

TEST(ConfigTest, RejectsEmptyKey) {
  Config cfg;
  EXPECT_THROW(cfg.Set("", "v"), std::invalid_argument);
}

// ---------------------------------------------------------- ThreadPool --

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, 1000, [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](std::size_t i) {
                                  if (i == 50) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto f = pool.Submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

// Nested ParallelFor must not deadlock even when the inner fan-out
// exceeds the pool width: blocked callers help drain the queue
// (TryRunOne), so a 1-thread pool still completes the full grid. The
// ShardedIndex scatter path relies on this (shard legs that themselves
// call ParallelFor inside FlatIndex).
TEST(ThreadPoolTest, NestedParallelForCompletes) {
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(width);
    constexpr std::size_t kOuter = 8;
    constexpr std::size_t kInner = 64;
    std::vector<std::atomic<int>> touched(kOuter * kInner);
    pool.ParallelFor(0, kOuter, [&](std::size_t o) {
      pool.ParallelFor(0, kInner, [&](std::size_t i) {
        ++touched[o * kInner + i];
      });
    });
    for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(0, 4,
                       [&](std::size_t o) {
                         pool.ParallelFor(0, 16, [&](std::size_t i) {
                           if (o == 2 && i == 7) {
                             throw std::runtime_error("inner boom");
                           }
                         });
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ChunkedCoversRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(257);
  pool.ParallelForChunked(0, 257, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

// --------------------------------------------------------------- Clocks --

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(w.ElapsedNanos(), 5 * 1000 * 1000);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.Advance(100);
  clock.Advance(250);
  EXPECT_EQ(clock.Now(), 350);
  clock.Reset();
  EXPECT_EQ(clock.Now(), 0);
}

TEST(VirtualClockTest, ThreadSafeAdvance) {
  VirtualClock clock;
  ThreadPool pool(4);
  pool.ParallelFor(0, 1000, [&](std::size_t) { clock.Advance(1); });
  EXPECT_EQ(clock.Now(), 1000);
}

// ---------------------------------------------------------------- Types --

TEST(NeighborTest, CloserOrdersByDistanceThenId) {
  NeighborCloser closer;
  EXPECT_TRUE(closer({1, 1.0f}, {2, 2.0f}));
  EXPECT_FALSE(closer({2, 2.0f}, {1, 1.0f}));
  EXPECT_TRUE(closer({1, 1.0f}, {2, 1.0f}));  // tie -> lower id first
  EXPECT_FALSE(closer({2, 1.0f}, {1, 1.0f}));
}

}  // namespace
}  // namespace proximity
