// Parity tests for the runtime-dispatched SIMD kernel layer (vecmath/
// kernels.h). Every compiled-in level must agree with a double-precision
// scalar reference within a small relative tolerance, and the fused batch /
// gather kernels must be bit-identical to the single-pair kernels of the
// same level — that contract is what lets the indexes and the cache route
// their scans through the batch path without changing any top-k result.
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/flat_index.h"
#include "vecmath/kernels.h"
#include "vecmath/matrix.h"

namespace proximity {
namespace {

constexpr double kRelTol = 1e-4;

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels;
  for (const SimdLevel lvl : {SimdLevel::kPortable, SimdLevel::kNeon,
                              SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (SimdLevelSupported(lvl)) levels.push_back(lvl);
  }
  return levels;
}

std::vector<float> RandomVec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
  return v;
}

// Double-precision references; the float kernels may differ only by
// summation order.
double RefL2(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s;
}

double RefIp(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return s;
}

double RefCos(const std::vector<float>& a, const std::vector<float>& b) {
  const double dot = RefIp(a, b);
  const double denom = std::sqrt(RefIp(a, a)) * std::sqrt(RefIp(b, b));
  if (denom <= 0) return 1.0;
  return 1.0 - dot / denom;
}

void ExpectNear(double expected, float actual, double scale) {
  EXPECT_NEAR(expected, static_cast<double>(actual),
              kRelTol * std::max(1.0, std::abs(scale)));
}

// Saves + restores the active dispatch level around each test, so a failing
// assertion can't leak a pinned level into later tests.
class SimdKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = ActiveSimdLevel(); }
  void TearDown() override { SetActiveSimdLevel(saved_); }

 private:
  SimdLevel saved_ = SimdLevel::kPortable;
};

TEST_F(SimdKernelsTest, PortableIsAlwaysSupported) {
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kPortable));
  EXPECT_FALSE(SimdLevelName(ActiveSimdLevel()).empty());
}

TEST_F(SimdKernelsTest, SetActiveRejectsUnsupportedLevels) {
  for (const SimdLevel lvl : {SimdLevel::kNeon, SimdLevel::kAvx2,
                              SimdLevel::kAvx512}) {
    if (SimdLevelSupported(lvl)) continue;
    const SimdLevel before = ActiveSimdLevel();
    EXPECT_FALSE(SetActiveSimdLevel(lvl));
    EXPECT_EQ(before, ActiveSimdLevel());
  }
}

// Every level, every dim in 1..768 (all tail shapes included), all three
// metrics against the double reference.
TEST_F(SimdKernelsTest, AllLevelsMatchScalarReferenceAcrossDims) {
  for (const SimdLevel lvl : SupportedLevels()) {
    ASSERT_TRUE(SetActiveSimdLevel(lvl));
    for (std::size_t dim = 1; dim <= 768;
         dim = dim < 40 ? dim + 1 : dim + 29) {
      SCOPED_TRACE(testing::Message() << "level=" << SimdLevelName(lvl)
                                      << " dim=" << dim);
      const auto a = RandomVec(dim, 1000 + dim);
      const auto b = RandomVec(dim, 2000 + dim);
      ExpectNear(RefL2(a, b), L2SquaredDistance(a, b), RefL2(a, b));
      ExpectNear(RefIp(a, b), InnerProduct(a, b), RefIp(a, a));
      ExpectNear(RefCos(a, b), CosineDistance(a, b), 1.0);
      ExpectNear(RefIp(a, a), SquaredNorm(a), RefIp(a, a));
    }
  }
}

TEST_F(SimdKernelsTest, ZeroVectorsAreExactAtEveryLevel) {
  for (const SimdLevel lvl : SupportedLevels()) {
    ASSERT_TRUE(SetActiveSimdLevel(lvl));
    for (const std::size_t dim : {1u, 7u, 16u, 33u, 768u}) {
      const std::vector<float> zero(dim, 0.f);
      const auto v = RandomVec(dim, 77);
      EXPECT_EQ(0.f, L2SquaredDistance(zero, zero));
      EXPECT_EQ(0.f, InnerProduct(zero, v));
      EXPECT_EQ(0.f, SquaredNorm(zero));
      // Cosine with a zero vector is defined as 1 (maximally distant).
      EXPECT_EQ(1.f, CosineDistance(zero, v));
      EXPECT_EQ(1.f, CosineDistance(v, zero));
      // Self-distance must be exactly zero: the cache's tau=0 self-hit
      // semantics depend on it.
      EXPECT_EQ(0.f, L2SquaredDistance(v, v));
    }
  }
}

// The KernelTable contract: batch results are bit-identical to the
// single-pair kernels of the same level, odd tails included.
TEST_F(SimdKernelsTest, BatchIsBitIdenticalToSinglePairAtEveryLevel) {
  for (const SimdLevel lvl : SupportedLevels()) {
    ASSERT_TRUE(SetActiveSimdLevel(lvl));
    for (const std::size_t dim : {1u, 5u, 16u, 31u, 64u, 100u, 768u}) {
      constexpr std::size_t kRows = 13;  // exercises group remainders
      Rng rng(31 + dim);
      std::vector<float> base(kRows * dim);
      for (auto& x : base) x = static_cast<float>(rng.Gaussian(0, 1));
      const auto query = RandomVec(dim, 55 + dim);
      std::vector<float> out(kRows);
      for (const Metric metric :
           {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
        BatchDistance(metric, query, base.data(), kRows, dim, out.data());
        for (std::size_t r = 0; r < kRows; ++r) {
          const std::span<const float> row(base.data() + r * dim, dim);
          EXPECT_FLOAT_EQ(Distance(metric, query, row), out[r])
              << "level=" << SimdLevelName(lvl) << " metric="
              << MetricName(metric) << " dim=" << dim << " row=" << r;
        }
      }
    }
  }
}

TEST_F(SimdKernelsTest, GatherIsBitIdenticalToSinglePairAtEveryLevel) {
  constexpr std::size_t kDim = 48, kRows = 64;
  Rng rng(91);
  std::vector<float> base(kRows * kDim);
  for (auto& x : base) x = static_cast<float>(rng.Gaussian(0, 1));
  const auto query = RandomVec(kDim, 92);
  const std::vector<std::uint32_t> ids = {63, 0, 17, 17, 41, 2, 59};
  std::vector<float> out(ids.size());
  for (const SimdLevel lvl : SupportedLevels()) {
    ASSERT_TRUE(SetActiveSimdLevel(lvl));
    for (const Metric metric :
         {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
      GatherDistance(metric, query, base.data(), kDim, ids.data(), ids.size(),
                     out.data());
      for (std::size_t j = 0; j < ids.size(); ++j) {
        const std::span<const float> row(base.data() + ids[j] * kDim, kDim);
        EXPECT_FLOAT_EQ(Distance(metric, query, row), out[j])
            << "level=" << SimdLevelName(lvl) << " metric="
            << MetricName(metric) << " j=" << j;
      }
    }
  }
}

TEST_F(SimdKernelsTest, NormAssistedBatchMatchesPlainBatch) {
  constexpr std::size_t kDim = 96, kRows = 21;
  Rng rng(123);
  Matrix m(0, kDim);
  m.EnableNormCache();
  std::vector<float> row(kDim);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (auto& x : row) x = static_cast<float>(rng.Gaussian(0, 1));
    m.AppendRow(row);
  }
  const auto query = RandomVec(kDim, 124);
  std::vector<float> plain(kRows), assisted(kRows);
  for (const SimdLevel lvl : SupportedLevels()) {
    ASSERT_TRUE(SetActiveSimdLevel(lvl));
    // Cosine with stored norms is bit-identical to the plain path (the
    // norms come from the same sqnorm kernel).
    BatchDistance(Metric::kCosine, query, m.data(), kRows, kDim,
                  plain.data());
    BatchDistanceWithNorms(Metric::kCosine, query, m.data(), m.RowNorms(),
                           kRows, kDim, assisted.data());
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_FLOAT_EQ(plain[r], assisted[r]) << "cosine row " << r;
    }
    // The L2 decomposition ||q-b||^2 = ||q||^2 + ||b||^2 - 2<q,b> is only
    // approximately equal to the direct kernel.
    BatchDistance(Metric::kL2, query, m.data(), kRows, kDim, plain.data());
    BatchDistanceWithNorms(Metric::kL2, query, m.data(), m.RowNorms(), kRows,
                           kDim, assisted.data());
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_NEAR(plain[r], assisted[r],
                  kRelTol * std::max(1.f, plain[r]))
          << "l2 row " << r;
      EXPECT_GE(assisted[r], 0.f);  // decomposition is clamped at zero
    }
    // Null norms fall back to the plain batch path exactly.
    BatchDistanceWithNorms(Metric::kL2, query, m.data(), nullptr, kRows,
                           kDim, assisted.data());
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_FLOAT_EQ(plain[r], assisted[r]) << "null-norms row " << r;
    }
  }
}

TEST_F(SimdKernelsTest, MatrixNormCacheTracksMutations) {
  Matrix m(0, 4);
  EXPECT_EQ(nullptr, m.RowNorms());
  m.AppendRow(std::vector<float>{1, 2, 3, 4});
  m.EnableNormCache();
  ASSERT_NE(nullptr, m.RowNorms());
  EXPECT_FLOAT_EQ(SquaredNorm(m.Row(0)), m.RowNorms()[0]);

  m.AppendRow(std::vector<float>{0, 0, 2, 0});
  ASSERT_NE(nullptr, m.RowNorms());
  EXPECT_FLOAT_EQ(4.f, m.RowNorms()[1]);

  m.SetRow(0, std::vector<float>{5, 0, 0, 0});
  EXPECT_FLOAT_EQ(25.f, m.RowNorms()[0]);

  // Handing out mutable access invalidates the cache conservatively.
  m.MutableRow(1);
  EXPECT_EQ(nullptr, m.RowNorms());
  m.EnableNormCache();
  ASSERT_NE(nullptr, m.RowNorms());
  EXPECT_FLOAT_EQ(4.f, m.RowNorms()[1]);
}

// Top-k results must be identical at every level and with every routing
// (serial batch, filtered gather) — the "fused batch path never changes
// search results" guarantee the indexes rely on.
TEST_F(SimdKernelsTest, FlatIndexTopKIdenticalAcrossLevelsAndRoutings) {
  constexpr std::size_t kDim = 33, kCount = 500, kK = 10;
  for (const Metric metric :
       {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    FlatIndexOptions opts;
    opts.metric = metric;
    FlatIndex index(kDim, opts);
    Rng rng(7);
    std::vector<float> v(kDim);
    for (std::size_t i = 0; i < kCount; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
      index.Add(v);
    }
    const auto query = RandomVec(kDim, 8);

    ASSERT_TRUE(SetActiveSimdLevel(SimdLevel::kPortable));
    const auto expected = index.Search(query, kK);
    ASSERT_EQ(kK, expected.size());
    const auto expected_filtered = index.SearchFiltered(
        query, kK, [](VectorId id) { return id % 2 == 0; });

    for (const SimdLevel lvl : SupportedLevels()) {
      ASSERT_TRUE(SetActiveSimdLevel(lvl));
      const auto got = index.Search(query, kK);
      ASSERT_EQ(expected.size(), got.size()) << SimdLevelName(lvl);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].id, got[i].id)
            << "level=" << SimdLevelName(lvl) << " metric="
            << MetricName(metric) << " rank=" << i;
      }
      const auto got_filtered = index.SearchFiltered(
          query, kK, [](VectorId id) { return id % 2 == 0; });
      ASSERT_EQ(expected_filtered.size(), got_filtered.size());
      for (std::size_t i = 0; i < expected_filtered.size(); ++i) {
        EXPECT_EQ(expected_filtered[i].id, got_filtered[i].id);
        EXPECT_EQ(0u, got_filtered[i].id % 2);
      }
    }
  }
}

}  // namespace
}  // namespace proximity
