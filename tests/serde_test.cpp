// Tests for the binary persistence layer: primitive round-trips, index
// and cache snapshots, and corruption detection.
#include <gtest/gtest.h>

#include <sstream>

#include "cache/proximity_cache.h"
#include "common/rng.h"
#include "common/serde.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/index_io.h"
#include "index/ivf_flat_index.h"
#include "index/ivfpq_index.h"
#include "index/pq.h"

namespace proximity {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Matrix m(rows, dim);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : m.MutableRow(r)) {
      x = static_cast<float>(rng.Gaussian(0, 1));
    }
  }
  return m;
}

std::vector<float> RandomVec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
  return v;
}

// ----------------------------------------------------------- Primitives --

TEST(SerdeTest, PrimitiveRoundTrip) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.WriteU32(0xdeadbeef);
    w.WriteU64(1ULL << 62);
    w.WriteI64(-42);
    w.WriteF32(3.25f);
    w.WriteF64(-1e100);
    w.WriteString("hello");
    w.WriteFloats(std::vector<float>{1, 2, 3});
    w.WriteI64s(std::vector<std::int64_t>{-1, 0, 7});
    w.WriteU8s(std::vector<std::uint8_t>{9, 8});
    w.WriteU32s(std::vector<std::uint32_t>{5});
    w.Finish();
  }
  BinaryReader r(ss);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeef);
  EXPECT_EQ(r.ReadU64(), 1ULL << 62);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_FLOAT_EQ(r.ReadF32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.ReadF64(), -1e100);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadFloats(), (std::vector<float>{1, 2, 3}));
  EXPECT_EQ(r.ReadI64s(), (std::vector<std::int64_t>{-1, 0, 7}));
  EXPECT_EQ(r.ReadU8s(), (std::vector<std::uint8_t>{9, 8}));
  EXPECT_EQ(r.ReadU32s(), (std::vector<std::uint32_t>{5}));
  EXPECT_NO_THROW(r.VerifyChecksum());
}

TEST(SerdeTest, ChecksumDetectsCorruption) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.WriteString("important payload");
    w.Finish();
  }
  std::string buf = ss.str();
  buf[10] ^= 0x01;  // flip one payload bit
  std::stringstream corrupted(buf);
  BinaryReader r(corrupted);
  (void)r.ReadString();
  EXPECT_THROW(r.VerifyChecksum(), std::runtime_error);
}

TEST(SerdeTest, TruncationDetected) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.WriteFloats(std::vector<float>(100, 1.f));
    w.Finish();
  }
  std::stringstream truncated(ss.str().substr(0, 50));
  BinaryReader r(truncated);
  EXPECT_THROW((void)r.ReadFloats(), std::runtime_error);
}

TEST(SerdeTest, HeaderValidation) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    WriteHeader(w, 0x1234, 3);
    w.Finish();
  }
  {
    std::stringstream copy(ss.str());
    BinaryReader r(copy);
    EXPECT_EQ(ReadHeader(r, 0x1234, 5), 3u);
  }
  {
    std::stringstream copy(ss.str());
    BinaryReader r(copy);
    EXPECT_THROW(ReadHeader(r, 0x9999, 5), std::runtime_error);
  }
  {
    std::stringstream copy(ss.str());
    BinaryReader r(copy);
    EXPECT_THROW(ReadHeader(r, 0x1234, 2), std::runtime_error);  // too new
  }
}

TEST(SerdeTest, MatrixRoundTrip) {
  const Matrix m = RandomMatrix(17, 5, 1);
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    WriteMatrix(w, m);
    w.Finish();
  }
  BinaryReader r(ss);
  const Matrix back = ReadMatrix(r);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.dim(), m.dim());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.dim(); ++j) {
      EXPECT_FLOAT_EQ(back.Row(i)[j], m.Row(i)[j]);
    }
  }
}

// ---------------------------------------------------------- Index round --

TEST(IndexIoTest, FlatRoundTripPreservesSearch) {
  FlatIndex index(16, {.metric = Metric::kCosine});
  index.AddBatch(RandomMatrix(200, 16, 2));
  std::stringstream ss;
  index.SaveTo(ss);
  const FlatIndex back = FlatIndex::LoadFrom(ss);
  EXPECT_EQ(back.size(), index.size());
  EXPECT_EQ(back.metric(), Metric::kCosine);
  const auto q = RandomVec(16, 100);
  EXPECT_EQ(back.Search(q, 10), index.Search(q, 10));
}

TEST(IndexIoTest, HnswRoundTripPreservesGraphAndSearch) {
  HnswIndex index(8, {.M = 8, .ef_construction = 64, .seed = 3});
  index.AddBatch(RandomMatrix(500, 8, 3));
  std::stringstream ss;
  index.SaveTo(ss);
  const auto back = HnswIndex::LoadFrom(ss);
  EXPECT_EQ(back->size(), index.size());
  EXPECT_EQ(back->max_level(), index.max_level());
  for (VectorId id = 0; id < 500; id += 37) {
    EXPECT_EQ(back->NodeLevel(id), index.NodeLevel(id));
    EXPECT_EQ(back->Links(id, 0), index.Links(id, 0));
  }
  const auto q = RandomVec(8, 101);
  EXPECT_EQ(back->Search(q, 10), index.Search(q, 10));
}

TEST(IndexIoTest, HnswInsertsResumeIdenticallyAfterLoad) {
  // The saved RNG state must make post-load inserts identical to an
  // uninterrupted build.
  const Matrix first = RandomMatrix(200, 8, 4);
  const Matrix second = RandomMatrix(50, 8, 5);

  HnswIndex continuous(8, {.seed = 7});
  continuous.AddBatch(first);
  std::stringstream ss;
  continuous.SaveTo(ss);
  continuous.AddBatch(second);

  const auto resumed = HnswIndex::LoadFrom(ss);
  resumed->AddBatch(second);

  const auto q = RandomVec(8, 102);
  EXPECT_EQ(resumed->Search(q, 10), continuous.Search(q, 10));
}

TEST(IndexIoTest, IvfFlatRoundTrip) {
  const Matrix corpus = RandomMatrix(600, 8, 6);
  IvfFlatIndex index(8, {.nlist = 8, .nprobe = 3, .seed = 11});
  index.Train(corpus);
  index.AddBatch(corpus);
  std::stringstream ss;
  index.SaveTo(ss);
  const IvfFlatIndex back = IvfFlatIndex::LoadFrom(ss);
  EXPECT_EQ(back.size(), index.size());
  EXPECT_EQ(back.nprobe(), 3u);
  const auto q = RandomVec(8, 103);
  EXPECT_EQ(back.Search(q, 10), index.Search(q, 10));
}

TEST(IndexIoTest, PqRoundTrip) {
  ProductQuantizer pq(16, {.m = 4, .ksub = 32});
  pq.Train(RandomMatrix(500, 16, 7));
  std::stringstream ss;
  pq.SaveTo(ss);
  const ProductQuantizer back = ProductQuantizer::LoadFrom(ss);
  const auto v = RandomVec(16, 104);
  std::vector<std::uint8_t> code_a(pq.code_size()), code_b(pq.code_size());
  pq.Encode(v, code_a.data());
  back.Encode(v, code_b.data());
  EXPECT_EQ(code_a, code_b);
}

TEST(IndexIoTest, IvfPqRoundTrip) {
  const Matrix corpus = RandomMatrix(800, 16, 8);
  IvfPqIndex index(16, {.nlist = 8, .nprobe = 8, .pq = {.m = 4, .ksub = 32}});
  index.Train(corpus);
  index.AddBatch(corpus);
  std::stringstream ss;
  index.SaveTo(ss);
  const IvfPqIndex back = IvfPqIndex::LoadFrom(ss);
  EXPECT_EQ(back.size(), index.size());
  const auto q = RandomVec(16, 105);
  EXPECT_EQ(back.Search(q, 10), index.Search(q, 10));
}

TEST(IndexIoTest, IvfPqRefinedRoundTrip) {
  const Matrix corpus = RandomMatrix(400, 16, 12);
  IvfPqIndex index(16, {.nlist = 4, .nprobe = 4,
                        .pq = {.m = 4, .ksub = 16}, .refine_factor = 4});
  index.Train(corpus);
  index.AddBatch(corpus);
  std::stringstream ss;
  index.SaveTo(ss);
  const IvfPqIndex back = IvfPqIndex::LoadFrom(ss);
  const auto q = RandomVec(16, 107);
  EXPECT_EQ(back.Search(q, 5), index.Search(q, 5));
}

TEST(IndexIoTest, LoadIndexDispatchesByMagic) {
  const Matrix corpus = RandomMatrix(100, 8, 9);
  FlatIndex flat(8);
  flat.AddBatch(corpus);
  HnswIndex hnsw(8);
  hnsw.AddBatch(corpus);

  for (const VectorIndex* index :
       std::initializer_list<const VectorIndex*>{&flat, &hnsw}) {
    std::stringstream ss;
    index->SaveTo(ss);
    const auto back = LoadIndex(ss);
    EXPECT_EQ(back->size(), 100u);
    const auto q = RandomVec(8, 106);
    EXPECT_EQ(back->Search(q, 5), index->Search(q, 5));
  }
}

TEST(IndexIoTest, LoadIndexRejectsGarbage) {
  std::stringstream ss("this is not an index file at all");
  EXPECT_THROW(LoadIndex(ss), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW(LoadIndex(empty), std::runtime_error);
}

TEST(IndexIoTest, FileRoundTrip) {
  FlatIndex index(4);
  index.AddBatch(RandomMatrix(20, 4, 10));
  const std::string path = ::testing::TempDir() + "/proximity_flat.bin";
  SaveIndexToFile(index, path);
  const auto back = LoadIndexFromFile(path);
  EXPECT_EQ(back->size(), 20u);
  EXPECT_THROW(LoadIndexFromFile("/nonexistent/dir/x.bin"),
               std::runtime_error);
}

TEST(IndexIoTest, UntrainedIndexRefusesToSave) {
  IvfFlatIndex index(8);
  std::stringstream ss;
  EXPECT_THROW(index.SaveTo(ss), std::logic_error);
}

// ---------------------------------------------------------- Cache round --

TEST(CacheIoTest, RoundTripPreservesEntriesAndOptions) {
  ProximityCacheOptions opts;
  opts.capacity = 8;
  opts.tolerance = 2.5f;
  opts.metric = Metric::kCosine;
  opts.eviction = EvictionKind::kLru;
  ProximityCache cache(4, opts);
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    std::vector<float> key(4);
    for (auto& x : key) x = static_cast<float>(rng.Gaussian(0, 1));
    cache.Insert(key, {i, i + 100});
  }

  std::stringstream ss;
  cache.SaveTo(ss);
  ProximityCache back = ProximityCache::LoadFrom(ss);
  EXPECT_EQ(back.size(), 5u);
  EXPECT_EQ(back.capacity(), 8u);
  EXPECT_FLOAT_EQ(back.tolerance(), 2.5f);
  EXPECT_EQ(back.metric(), Metric::kCosine);
  EXPECT_EQ(back.eviction(), EvictionKind::kLru);
  EXPECT_EQ(back.stats().insertions, 0u);  // reconstruction is not usage
  for (std::size_t slot = 0; slot < 5; ++slot) {
    EXPECT_EQ(back.ValueAt(slot)[0], cache.ValueAt(slot)[0]);
    EXPECT_FLOAT_EQ(back.KeyAt(slot)[0], cache.KeyAt(slot)[0]);
  }
  // A lookup that hit before still hits after.
  const auto key0 = std::vector<float>(cache.KeyAt(0).begin(),
                                       cache.KeyAt(0).end());
  EXPECT_TRUE(back.Lookup(key0).hit);
}

TEST(CacheIoTest, CorruptSnapshotRejected) {
  ProximityCache cache(4, {});
  cache.Insert(std::vector<float>{1, 2, 3, 4}, {1});
  std::stringstream ss;
  cache.SaveTo(ss);
  std::string buf = ss.str();
  buf[buf.size() / 2] ^= 0xff;
  std::stringstream corrupted(buf);
  EXPECT_THROW(ProximityCache::LoadFrom(corrupted), std::runtime_error);
}

}  // namespace
}  // namespace proximity
