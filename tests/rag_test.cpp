// Integration tests for src/rag: retriever semantics, the end-to-end
// pipeline, and the Figure-3 sweep runner on a miniature workload.
#include <gtest/gtest.h>

#include <memory>

#include "common/log.h"
#include "common/rng.h"
#include "index/flat_index.h"
#include "index/slow_storage_index.h"
#include "llm/answer_model.h"
#include "rag/experiment.h"
#include "rag/pipeline.h"
#include "rag/retriever.h"
#include "workload/benchmark_spec.h"

namespace proximity {
namespace {

class QuietLogs : public ::testing::Environment {
 public:
  void SetUp() override { SetLogLevel(LogLevel::kWarn); }
};
const auto* const kQuietLogs =
    ::testing::AddGlobalTestEnvironment(new QuietLogs);

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Matrix m(rows, dim);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : m.MutableRow(r)) {
      x = static_cast<float>(rng.Gaussian(0, 1));
    }
  }
  return m;
}

// ------------------------------------------------------------ Retriever --

TEST(RetrieverTest, WithoutCacheAlwaysQueriesIndex) {
  FlatIndex index(4);
  index.AddBatch(RandomMatrix(100, 4, 1));
  Retriever retriever(&index, nullptr, nullptr, {.top_k = 5});
  const std::vector<float> q = {0, 0, 0, 0};
  const auto r1 = retriever.Retrieve(q);
  const auto r2 = retriever.Retrieve(q);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(r1.documents, r2.documents);
  EXPECT_EQ(r1.documents.size(), 5u);
  EXPECT_EQ(retriever.stats().queries, 2u);
  EXPECT_EQ(retriever.stats().cache_hits, 0u);
}

TEST(RetrieverTest, CacheHitBypassesIndexAndIsFaster) {
  FlatIndex index(4);
  index.AddBatch(RandomMatrix(20000, 4, 2));
  ProximityCacheOptions copts;
  copts.capacity = 10;
  copts.tolerance = 0.01f;
  ProximityCache cache(4, copts);
  Retriever retriever(&index, &cache, nullptr, {.top_k = 5});
  const std::vector<float> q = {0.5f, 0.5f, 0.5f, 0.5f};
  const auto miss = retriever.Retrieve(q);
  const auto hit = retriever.Retrieve(q);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(miss.documents, hit.documents);
  EXPECT_EQ(retriever.stats().HitRate(), 0.5);
}

TEST(RetrieverTest, RejectsMetricMismatch) {
  FlatIndex index(4, {.metric = Metric::kCosine});
  ProximityCacheOptions copts;
  copts.metric = Metric::kL2;
  ProximityCache cache(4, copts);
  EXPECT_THROW(Retriever(&index, &cache, nullptr, {}),
               std::invalid_argument);
}

TEST(RetrieverTest, RejectsDimensionMismatch) {
  FlatIndex index(4);
  ProximityCache cache(8, {});
  EXPECT_THROW(Retriever(&index, &cache, nullptr, {}),
               std::invalid_argument);
}

TEST(RetrieverTest, RejectsNullIndexAndZeroK) {
  EXPECT_THROW(Retriever(nullptr, nullptr, nullptr, {}),
               std::invalid_argument);
  FlatIndex index(4);
  EXPECT_THROW(Retriever(&index, nullptr, nullptr, {.top_k = 0}),
               std::invalid_argument);
}

TEST(RetrieverTest, VirtualClockDelayCountsTowardLatency) {
  VirtualClock clock;
  auto inner = std::make_unique<FlatIndex>(4);
  inner->AddBatch(RandomMatrix(50, 4, 3));
  SlowStorageIndex slow(std::move(inner), {.fixed_ns = 50'000'000}, &clock);
  Retriever retriever(&slow, nullptr, &clock, {.top_k = 5});
  const std::vector<float> q = {0, 0, 0, 0};
  const auto outcome = retriever.Retrieve(q);
  EXPECT_GE(outcome.latency_ns, 50'000'000);
}

// --------------------------------------------------------- RagPipeline --

struct PipelineFixture {
  PipelineFixture() {
    WorkloadSpec spec = MmluLikeSpec(800, 42);
    spec.num_questions = 20;
    spec.num_clusters = 4;
    workload = BuildWorkload(spec);
    corpus_embeddings = embedder.EmbedBatch(workload.passages);
    index = std::make_unique<FlatIndex>(embedder.dim());
    index->AddBatch(corpus_embeddings);

    QueryStreamOptions sopts;
    sopts.seed = 1;
    stream = BuildQueryStream(workload, sopts);
    std::vector<std::string> texts;
    for (const auto& e : stream) texts.push_back(e.text);
    stream_embeddings = embedder.EmbedBatch(texts);
  }

  HashEmbedder embedder;
  Workload workload;
  Matrix corpus_embeddings;
  std::unique_ptr<FlatIndex> index;
  std::vector<StreamEntry> stream;
  Matrix stream_embeddings;
};

TEST(RagPipelineTest, ExactRetrievalIsFullyRelevant) {
  PipelineFixture fx;
  Retriever retriever(fx.index.get(), nullptr, nullptr, {.top_k = 10});
  RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  const RunMetrics m = pipeline.RunStream(fx.stream, fx.stream_embeddings);
  EXPECT_EQ(m.queries, fx.stream.size());
  EXPECT_DOUBLE_EQ(m.hit_rate, 0.0);
  EXPECT_GT(m.mean_relevance, 0.95);
  // Accuracy near the MMLU RAG anchor.
  EXPECT_NEAR(m.accuracy, 0.502, 0.05);
}

TEST(RagPipelineTest, LooseCacheProducesHitsAndFasterRetrieval) {
  PipelineFixture fx;
  ProximityCacheOptions copts;
  copts.capacity = 100;
  copts.tolerance = 2.0f;
  ProximityCache cache(fx.embedder.dim(), copts);
  Retriever retriever(fx.index.get(), &cache, nullptr, {.top_k = 10});
  RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  const RunMetrics m = pipeline.RunStream(fx.stream, fx.stream_embeddings);
  EXPECT_GT(m.hit_rate, 0.4);   // variants hit at tau = 2
  EXPECT_GT(m.mean_relevance, 0.9);  // variant hits serve the right docs
}

TEST(RagPipelineTest, DeterministicAcrossRuns) {
  PipelineFixture fx;
  auto run = [&] {
    ProximityCacheOptions copts;
    copts.capacity = 50;
    copts.tolerance = 2.0f;
    ProximityCache cache(fx.embedder.dim(), copts);
    Retriever retriever(fx.index.get(), &cache, nullptr, {.top_k = 10});
    RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                         AnswerModel(MmluAnswerParams()), 1);
    return pipeline.RunStream(fx.stream, fx.stream_embeddings);
  };
  const RunMetrics a = run();
  const RunMetrics b = run();
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.hit_rate, b.hit_rate);
}

TEST(RagPipelineTest, ProcessQueryTextMatchesPrecomputed) {
  PipelineFixture fx;
  Retriever retriever(fx.index.get(), nullptr, nullptr, {.top_k = 10});
  RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  const auto a = pipeline.ProcessQuery(fx.stream[0],
                                       fx.stream_embeddings.Row(0), 0);
  const auto b = pipeline.ProcessQueryText(fx.stream[0], 0);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.judgment.relevance, b.judgment.relevance);
}

TEST(RagPipelineTest, ValidatesInput) {
  PipelineFixture fx;
  Retriever retriever(fx.index.get(), nullptr, nullptr, {.top_k = 10});
  EXPECT_THROW(RagPipeline(nullptr, &fx.embedder, &retriever,
                           AnswerModel(MmluAnswerParams()), 1),
               std::invalid_argument);
  RagPipeline pipeline(&fx.workload, &fx.embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), 1);
  StreamEntry bad;
  bad.question = 9999;
  const std::vector<float> q(fx.embedder.dim(), 0.f);
  EXPECT_THROW(pipeline.ProcessQuery(bad, q, 0), std::out_of_range);
  const Matrix wrong(3, fx.embedder.dim());
  EXPECT_THROW(pipeline.RunStream(fx.stream, wrong), std::invalid_argument);
}

// ---------------------------------------------------------- SweepRunner --

SweepConfig TinySweep() {
  SweepConfig cfg;
  cfg.workload_spec = MmluLikeSpec(600, 42);
  cfg.workload_spec.num_questions = 15;
  cfg.workload_spec.num_clusters = 3;
  cfg.index_spec.kind = "flat";
  cfg.answer_params = MmluAnswerParams();
  cfg.capacities = {5, 40};
  cfg.tolerances = {0, 2, 10};
  cfg.num_seeds = 2;
  return cfg;
}

TEST(SweepRunnerTest, GridShapeAndMonotoneHitRate) {
  SweepRunner runner(TinySweep());
  const auto cells = runner.Run();
  ASSERT_EQ(cells.size(), 6u);  // 2 capacities x 3 tolerances

  for (const auto& cell : cells) {
    if (cell.tolerance == 0.0) {
      EXPECT_DOUBLE_EQ(cell.mean.hit_rate, 0.0);  // tau=0: no hits (§4.3.2)
    }
    EXPECT_GE(cell.mean.accuracy, 0.0);
    EXPECT_LE(cell.mean.accuracy, 1.0);
  }
  // Hit rate grows with tau at fixed capacity.
  auto find_cell = [&](std::int64_t c, double tau) {
    for (const auto& cell : cells) {
      if (cell.capacity == c && cell.tolerance == tau) return cell;
    }
    throw std::logic_error("cell not found");
  };
  EXPECT_LT(find_cell(40, 0).mean.hit_rate, find_cell(40, 2).mean.hit_rate);
  EXPECT_LE(find_cell(40, 2).mean.hit_rate, find_cell(40, 10).mean.hit_rate);
  // Hit rate grows with capacity at fixed tau (§4.3.2).
  EXPECT_LE(find_cell(5, 2).mean.hit_rate, find_cell(40, 2).mean.hit_rate);
}

TEST(SweepRunnerTest, CsvHasOneRowPerCell) {
  SweepRunner runner(TinySweep());
  const auto cells = runner.Run();
  const CsvTable table = SweepRunner::ToCsv(cells);
  EXPECT_EQ(table.rows(), cells.size());
  const std::string csv = table.ToString();
  EXPECT_NE(csv.find("accuracy"), std::string::npos);
  EXPECT_NE(csv.find("hit_rate"), std::string::npos);
}

TEST(SweepRunnerTest, LatencySummaryHasOneRowPerCapacity) {
  SweepRunner runner(TinySweep());
  const auto cells = runner.Run();
  // Unconstrained accuracy: every capacity has a qualifying tau > 0 cell.
  const CsvTable summary =
      SweepRunner::LatencyReductionSummary(cells, /*max_accuracy_drop=*/1.0);
  EXPECT_EQ(summary.rows(), 2u);
}

TEST(SweepRunnerTest, LatencySummaryRespectsAccuracyGuard) {
  // Synthetic cells: the fast tau = 10 cell loses too much accuracy, so
  // the guarded summary must pick tau = 2.
  std::vector<SweepCell> cells(3);
  cells[0].capacity = 10;
  cells[0].tolerance = 0;
  cells[0].mean.accuracy = 0.50;
  cells[0].mean.mean_latency_ms = 1.0;
  cells[1].capacity = 10;
  cells[1].tolerance = 2;
  cells[1].mean.accuracy = 0.495;
  cells[1].mean.mean_latency_ms = 0.5;
  cells[2].capacity = 10;
  cells[2].tolerance = 10;
  cells[2].mean.accuracy = 0.40;  // accuracy collapse
  cells[2].mean.mean_latency_ms = 0.01;
  const CsvTable summary =
      SweepRunner::LatencyReductionSummary(cells, /*max_accuracy_drop=*/0.01);
  ASSERT_EQ(summary.rows(), 1u);
  const std::string csv = summary.ToString();
  // best_tolerance column must be 2 (the guarded choice), not 10.
  EXPECT_NE(csv.find(",0.5,2,50,"), std::string::npos) << csv;
}

TEST(SweepRunnerTest, RunOneRejectsUnknownSeed) {
  SweepRunner runner(TinySweep());
  EXPECT_THROW(runner.RunOne(5, 1.0, /*seed=*/99), std::out_of_range);
}

TEST(SweepRunnerTest, EvictionOverrideChangesBehaviourUnderZipf) {
  SweepConfig cfg = TinySweep();
  cfg.stream_order = StreamOrder::kZipf;
  cfg.zipf_length = 600;
  cfg.zipf_exponent = 1.2;
  SweepRunner runner(cfg);
  const RunMetrics fifo = runner.RunOne(5, 2.0, 1, EvictionKind::kFifo);
  const RunMetrics lru = runner.RunOne(5, 2.0, 1, EvictionKind::kLru);
  // Under skewed popularity with a tiny cache, LRU should do at least as
  // well as FIFO (it protects the popular head).
  EXPECT_GE(lru.hit_rate + 0.02, fifo.hit_rate);
}

TEST(SweepRunnerTest, StorageModelInflatesLatency) {
  SweepConfig slow_cfg = TinySweep();
  slow_cfg.storage = StorageModel{.fixed_ns = 5'000'000};  // 5ms per miss
  SweepRunner slow(slow_cfg);
  const RunMetrics m = slow.RunOne(5, 0.0, 1);
  EXPECT_GE(m.mean_latency_ms, 5.0);
}

TEST(SweepRunnerTest, AdaptiveRunApproachesTarget) {
  SweepConfig cfg = TinySweep();
  SweepRunner runner(cfg);
  AdaptiveTauOptions opts;
  opts.target_hit_rate = 0.5;
  opts.initial_tau = 0.1;
  opts.max_tau = 30.0;
  opts.window = 8;
  opts.period = 2;
  opts.step = 1.5;  // aggressive steps: the stream is only 60 queries long
  const auto result = runner.RunAdaptive(40, opts, 1);
  // The controller must have widened tau from 0.1 and produced hits.
  EXPECT_GT(result.final_tau, 0.1);
  EXPECT_GT(result.metrics.hit_rate, 0.1);
  EXPECT_GT(result.adjustments, 0u);
}

TEST(SweepRunnerTest, ValidatesConfig) {
  SweepConfig cfg = TinySweep();
  cfg.capacities = {};
  EXPECT_THROW(SweepRunner{cfg}, std::invalid_argument);
  SweepConfig cfg2 = TinySweep();
  cfg2.num_seeds = 0;
  EXPECT_THROW(SweepRunner{cfg2}, std::invalid_argument);
}

}  // namespace
}  // namespace proximity
