// Telemetry-layer suite (`ctest -L obs`): shard merge exactness, span
// nesting, exporter goldens, and the PROXIMITY_OBS=OFF no-op contract.
// The suite is built in both obs modes by tools/check.sh; the OFF-only
// sections are compiled in under PROXIMITY_OBS_ENABLED=0.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "obs/stage.h"

namespace proximity::obs {
namespace {

TEST(MetricsRegistryTest, CounterMergesShardsExactly) {
  MetricsRegistry registry;
  const MetricId hits = registry.Counter("hits");
  const MetricId misses = registry.Counter("misses");
  ASSERT_NE(hits, kInvalidMetric);

  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.Add(hits);
        if ((i & 3) == 0) registry.Add(misses, 2);
      }
    });
  }
  for (auto& t : pool) t.join();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("hits"), kThreads * kPerThread);
  EXPECT_EQ(snap.CounterValue("misses"), kThreads * (kPerThread / 4) * 2);
  EXPECT_EQ(snap.CounterValue("never-registered"), 0u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  const MetricId a = registry.Counter("same");
  const MetricId b = registry.Counter("same");
  EXPECT_EQ(a, b);
  registry.Add(a);
  registry.Add(b);
  EXPECT_EQ(registry.Snapshot().CounterValue("same"), 2u);
}

TEST(MetricsRegistryTest, HistogramShardMergeMatchesSerialReference) {
  MetricsRegistry registry;
  const MetricId lat = registry.Histogram("lat");
  ASSERT_NE(lat, kInvalidMetric);

  // Deterministic per-thread sample streams spanning several decades.
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 4000;
  auto sample = [](std::size_t t, std::size_t i) -> Nanos {
    std::uint64_t x = t * 2654435761ull + i * 1315423911ull + 17;
    x ^= x >> 13;
    return static_cast<Nanos>(x % 50'000'000ull);  // up to 50 ms
  };

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        registry.Record(lat, sample(t, i));
      }
    });
  }
  for (auto& t : pool) t.join();

  LatencyHistogram reference;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      reference.Record(sample(t, i));
    }
  }

  const MetricsSnapshot snap = registry.Snapshot();
  const LatencyHistogram* merged = snap.FindHistogram("lat");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), reference.count());
  EXPECT_EQ(merged->MinNanos(), reference.MinNanos());
  EXPECT_EQ(merged->MaxNanos(), reference.MaxNanos());
  EXPECT_DOUBLE_EQ(merged->MeanNanos(), reference.MeanNanos());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged->QuantileNanos(q), reference.QuantileNanos(q))
        << "q=" << q;
  }
}

TEST(MetricsRegistryTest, GaugesAreLastWriteAndAdd) {
  MetricsRegistry registry;
  const MetricId g = registry.Gauge("tau");
  registry.GaugeSet(g, 2.5);
  registry.GaugeAdd(g, 0.5);
  EXPECT_DOUBLE_EQ(registry.Snapshot().GaugeValue("tau"), 3.0);
  EXPECT_DOUBLE_EQ(registry.Snapshot().GaugeValue("nope"), 0.0);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry registry;
  const MetricId c = registry.Counter("c");
  const MetricId g = registry.Gauge("g");
  const MetricId h = registry.Histogram("h");
  registry.Add(c, 7);
  registry.GaugeSet(g, 1.5);
  registry.Record(h, 1000);
  ASSERT_FALSE(registry.Snapshot().Empty());

  registry.Reset();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.Empty());
  ASSERT_EQ(snap.counters.size(), 1u);  // names survive a Reset
  EXPECT_EQ(snap.counters[0].name, "c");
  EXPECT_EQ(snap.CounterValue("c"), 0u);
  const LatencyHistogram* hist = snap.FindHistogram("h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 0u);

  // The shard stays usable after Reset.
  registry.Add(c, 3);
  EXPECT_EQ(registry.Snapshot().CounterValue("c"), 3u);
}

TEST(MetricsRegistryTest, OverflowingRegistrationIsSafeNoop) {
  MetricsRegistry registry;
  MetricId last = kInvalidMetric;
  for (std::size_t i = 0; i <= MetricsRegistry::kMaxCounters; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    last = registry.Counter(name);
  }
  EXPECT_EQ(last, kInvalidMetric);
  registry.Add(last);        // must not crash or corrupt
  registry.Record(kInvalidMetric, 100);
  registry.GaugeSet(kInvalidMetric, 1.0);
  EXPECT_EQ(registry.Snapshot().counters.size(),
            MetricsRegistry::kMaxCounters);
}

TEST(MetricsRegistryTest, RecordStageFeedsPreRegisteredHistogram) {
  MetricsRegistry registry;
  registry.RecordStage(Stage::kCacheScan, 1500);
  registry.RecordStage(Stage::kCacheScan, 2500);
  const MetricsSnapshot snap = registry.Snapshot();
  const LatencyHistogram* h = snap.FindHistogram("stage.cache_scan_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->MinNanos(), 1500);
  EXPECT_EQ(h->MaxNanos(), 2500);
}

TEST(StageTest, NamesCoverAllStages) {
  for (std::size_t s = 0; s < kNumStages; ++s) {
    EXPECT_STRNE(StageName(static_cast<Stage>(s)), "");
  }
  EXPECT_STREQ(StageName(Stage::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(StageName(Stage::kIndexSearch), "index_search");
}

TEST(ExportTest, PrometheusNameSanitizes) {
  EXPECT_EQ(PrometheusName("cache.hits"), "proximity_cache_hits");
  EXPECT_EQ(PrometheusName("stage.embed_ns"), "proximity_stage_embed_ns");
  EXPECT_EQ(PrometheusName("a-b c"), "proximity_a_b_c");
}

TEST(ExportTest, PrometheusGolden) {
  MetricsSnapshot snap;
  snap.counters.push_back({"cache.hits", 42});
  snap.gauges.push_back({"cache.occupancy", 7.0});
  LatencyHistogram h;
  h.Record(1000);
  h.Record(1000);
  snap.histograms.push_back({"stage.embed_ns", h});

  const std::string text = ToPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE proximity_cache_hits counter\n"
                      "proximity_cache_hits 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE proximity_cache_occupancy gauge\n"
                      "proximity_cache_occupancy 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE proximity_stage_embed_ns summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("proximity_stage_embed_ns_count 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("proximity_stage_embed_ns_sum 2000\n"),
            std::string::npos);
  EXPECT_NE(text.find("proximity_stage_embed_ns{quantile=\"0.5\"}"),
            std::string::npos);
}

TEST(ExportTest, JsonGolden) {
  MetricsSnapshot snap;
  snap.counters.push_back({"cache.hits", 42});
  LatencyHistogram h;
  h.Record(500);
  snap.histograms.push_back({"lat", h});

  const std::string json = ToJson(snap);
  EXPECT_NE(json.find("\"cache.hits\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"lat\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"min_ns\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\": 500"), std::string::npos);
}

TEST(RunReportTest, StageBreakdownListsActiveStagesAndHitMissSplit) {
  MetricsRegistry registry;
  registry.RecordStage(Stage::kIndexSearch, 200000);
  registry.Record(registry.Histogram("retrieve.hit_ns"), 5000);
  registry.Record(registry.Histogram("retrieve.miss_ns"), 250000);

  const MetricsSnapshot snap = registry.Snapshot();
  const std::vector<StageRow> rows = StageBreakdown(snap);
  ASSERT_EQ(rows.size(), 3u);  // empty stage histograms are skipped
  EXPECT_EQ(rows[0].name, "index_search");
  EXPECT_EQ(rows[1].name, "retrieve.hit");
  EXPECT_EQ(rows[2].name, "retrieve.miss");
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_GT(rows[2].mean_ns, rows[1].mean_ns);  // miss slower than hit

  const std::string table = RenderStageTable(snap);
  EXPECT_NE(table.find("index_search"), std::string::npos);
  EXPECT_NE(table.find("retrieve.miss"), std::string::npos);

  RunReport report;
  report.command = "test";
  report.queries = 1;
  report.tau_trajectory = {0.5, 1.0};
  report.snapshot = snap;
  const std::string json = RunReportToJson(report);
  EXPECT_NE(json.find("\"command\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"tau_trajectory\": [0.5, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"index_search\""), std::string::npos);
}

TEST(RunReportTest, EmptySnapshotRendersNothing) {
  MetricsSnapshot empty;
  EXPECT_TRUE(RenderStageTable(empty).empty());
  EXPECT_TRUE(RenderStagePlot(empty).empty());
  EXPECT_TRUE(StageBreakdown(empty).empty());
}

#if PROXIMITY_OBS_ENABLED

TEST(SpanTest, NestedSpansRecordInnerFirstWithDepth) {
  ClearThreadSpans();
  {
    const Span outer(Stage::kCacheLookup);
    {
      const Span inner(Stage::kCacheScan);
      (void)inner;
    }
    (void)outer;
  }
  const std::vector<SpanEvent> events = ThreadRecentSpans();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first.
  EXPECT_EQ(events[0].stage, Stage::kCacheScan);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].stage, Stage::kCacheLookup);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
}

TEST(SpanTest, RingIsBoundedAndKeepsNewest) {
  ClearThreadSpans();
  for (std::size_t i = 0; i < kSpanRingCapacity + 10; ++i) {
    const Span s(Stage::kEmbed);
    (void)s;
  }
  EXPECT_EQ(ThreadRecentSpans().size(), kSpanRingCapacity);
  ClearThreadSpans();
  EXPECT_TRUE(ThreadRecentSpans().empty());
}

TEST(SpanTest, SpanFeedsDefaultRegistryStageHistogram) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const std::uint64_t before =
      reg.Snapshot().FindHistogram("stage.evict_ns")->count();
  {
    const Span s(Stage::kEvict);
    (void)s;
  }
  EXPECT_EQ(reg.Snapshot().FindHistogram("stage.evict_ns")->count(),
            before + 1);
}

TEST(HandlesTest, HandlesRecordIntoDefaultRegistry) {
  const CounterHandle counter("obs_test.unique_counter");
  const GaugeHandle gauge("obs_test.unique_gauge");
  const HistogramHandle hist("obs_test.unique_hist");
  counter.Inc(5);
  gauge.Set(2.0);
  hist.Record(1234);

  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  EXPECT_GE(snap.CounterValue("obs_test.unique_counter"), 5u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("obs_test.unique_gauge"), 2.0);
  const LatencyHistogram* h = snap.FindHistogram("obs_test.unique_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->count(), 1u);
}

#else  // PROXIMITY_OBS_ENABLED == 0

TEST(ObsOffTest, SpansAndHandlesAreNoops) {
  // Everything below must compile and do nothing.
  const Span s(Stage::kCacheScan);
  (void)s;
  const CounterHandle counter("off.counter");
  const HistogramHandle hist("off.hist");
  counter.Inc();
  hist.Record(1000);
  EXPECT_TRUE(ThreadRecentSpans().empty());
  // Handles never registered anything: the default registry still carries
  // only the pre-registered (all-empty) stage histograms.
  EXPECT_TRUE(MetricsRegistry::Default().Snapshot().Empty());
}

#endif  // PROXIMITY_OBS_ENABLED

}  // namespace
}  // namespace proximity::obs
