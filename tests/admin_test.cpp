// Live introspection plane (src/net/admin.{h,cpp}, DESIGN.md §12):
// endpoint routing via Handle() (socketless), the drain-FSM-aware
// /healthz against a real net::Server, /tracez over a populated
// collector, and one real-socket GET through the epoll loop.
//
// The admin plane compiles unconditionally; only the /metrics and
// /tracez payload contents depend on PROXIMITY_OBS_ENABLED.
#include "net/admin.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "cache/concurrent_cache.h"
#include "embed/hash_embedder.h"
#include "index/flat_index.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/trace.h"
#include "rag/batching_driver.h"

namespace proximity {
namespace {

TEST(AdminRoutingTest, HealthzFollowsTheHook) {
  net::AdminHooks hooks;
  net::HealthState state = net::HealthState::kServing;
  hooks.health = [&] { return state; };
  const net::AdminServer admin(std::move(hooks));

  auto resp = admin.Handle("/healthz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "serving\n");

  state = net::HealthState::kDraining;
  resp = admin.Handle("/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(resp.body, "draining\n");

  state = net::HealthState::kUnavailable;
  resp = admin.Handle("/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(resp.body, "unavailable\n");
}

TEST(AdminRoutingTest, HealthzWithoutHookDefaultsToServing) {
  const net::AdminServer admin;
  EXPECT_EQ(admin.Handle("/healthz").status, 200);
}

TEST(AdminRoutingTest, MetricsServesPrometheusExposition) {
  const net::AdminServer admin;
  const auto resp = admin.Handle("/metrics");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("text/plain"), std::string::npos);
#if PROXIMITY_OBS_ENABLED
  // The registry carries the trace/admin families this suite touches.
  EXPECT_NE(resp.body.find("proximity_admin_requests"),
            std::string::npos);
  EXPECT_NE(resp.body.find("# TYPE"), std::string::npos);
#endif
}

TEST(AdminRoutingTest, StatuszAppendsTheOwnerHook) {
  net::AdminHooks hooks;
  hooks.health = [] { return net::HealthState::kServing; };
  hooks.statusz = [] { return std::string("tenant 0: everything fine\n"); };
  const net::AdminServer admin(std::move(hooks));
  const auto resp = admin.Handle("/statusz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("health: serving"), std::string::npos);
  EXPECT_NE(resp.body.find("tenant 0: everything fine"),
            std::string::npos);
}

TEST(AdminRoutingTest, IndexListsEndpointsAndUnknownIs404) {
  const net::AdminServer admin;
  const auto index = admin.Handle("/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_NE(index.body.find("/tracez"), std::string::npos);
  EXPECT_EQ(admin.Handle("/nope").status, 404);
  EXPECT_EQ(admin.Handle("/metricsz").status, 404);
}

TEST(AdminRoutingTest, TracezListsAndResolvesSampledTraces) {
  const net::AdminServer admin;
  const auto list = admin.Handle("/tracez");
  EXPECT_EQ(list.status, 200);
  EXPECT_EQ(list.content_type, "application/json");
  EXPECT_NE(list.body.find("\"traces\""), std::string::npos);

  // An id that can never be sampled -> 404.
  EXPECT_EQ(admin.Handle("/tracez?id=2").status, 404);

#if PROXIMITY_OBS_ENABLED
  // Seed the default collector with an always-kept (error) trace and
  // resolve it through the query path, hex id as /tracez renders it.
  const obs::TraceContext ctx{obs::NewTraceId(), obs::NewSpanId()};
  obs::EmitTraceSpan({ctx.trace_id, obs::NewSpanId(), ctx.span_id,
                      obs::TraceOp::kRequest, 0, 1, 2});
  ASSERT_TRUE(obs::TraceCollector::Default().Complete(
      ctx, RequestStatus::kInternal, 12345));
  char id_hex[32];
  std::snprintf(id_hex, sizeof(id_hex), "%016llx",
                static_cast<unsigned long long>(ctx.trace_id));
  const auto one = admin.Handle(std::string("/tracez?id=") + id_hex);
  EXPECT_EQ(one.status, 200);
  EXPECT_NE(one.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(one.body.find("\"request\""), std::string::npos);
#endif
}

// /healthz against the real drain FSM: serving -> draining -> stopped.
TEST(AdminHealthTest, TracksServerDrainTransitions) {
  HashEmbedderOptions eopts;
  eopts.dim = 32;
  HashEmbedder embedder(eopts);
  FlatIndex index(embedder.dim());
  const Matrix corpus = embedder.EmbedBatch(
      {"draining servers answer unavailable", "epoll loops poll"});
  for (std::size_t r = 0; r < corpus.rows(); ++r) index.Add(corpus.Row(r));
  ConcurrentProximityCache cache(embedder.dim(), {});
  BatchingDriverOptions dopts;
  // Park queued work so the drain stays observable for a moment.
  dopts.max_batch = 1000;
  dopts.max_wait_us = 100000;
  BatchingDriver driver(index, cache, &embedder, dopts);
  net::ServerOptions nopts;
  nopts.drain_timeout_ms = 2000;
  net::Server server(driver, nopts);
  server.Start();

  net::AdminHooks hooks;
  hooks.health = [&server] {
    switch (server.health()) {
      case net::ServerHealth::kServing: return net::HealthState::kServing;
      case net::ServerHealth::kDraining:
        return net::HealthState::kDraining;
      case net::ServerHealth::kStopped: break;
    }
    return net::HealthState::kUnavailable;
  };
  const net::AdminServer admin(std::move(hooks));

  EXPECT_EQ(admin.Handle("/healthz").body, "serving\n");

  // Hold one request in the parked queue so the drain has work to wait
  // for, then ask for the drain and observe the FSM through /healthz.
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  net::Request held;
  held.id = 1;
  held.text = "held in queue";
  ASSERT_TRUE(client.Send(held));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.RequestDrain();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto draining = admin.Handle("/healthz");
  EXPECT_EQ(draining.status, 503);
  EXPECT_EQ(draining.body, "draining\n");

  server.Join();
  driver.Shutdown();
  const auto stopped = admin.Handle("/healthz");
  EXPECT_EQ(stopped.status, 503);
  EXPECT_EQ(stopped.body, "unavailable\n");
}

// One real GET through the socket/epoll path, plus the 405 contract.
TEST(AdminSocketTest, ServesGetOverASocketAndRejectsPost) {
  net::AdminServer admin;
  admin.Start();
  ASSERT_NE(admin.port(), 0);

  const auto fetch = [&](const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(admin.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;  // Connection: close ends the response
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  };

  const std::string ok =
      fetch("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);
  EXPECT_NE(ok.find("serving"), std::string::npos);

  const std::string post =
      fetch("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  admin.Stop();
}

TEST(AdminSocketTest, StartTwiceThrowsAndStopIsIdempotent) {
  net::AdminServer admin;
  admin.Start();
  EXPECT_THROW(admin.Start(), std::logic_error);
  admin.Stop();
  admin.Stop();
}

}  // namespace
}  // namespace proximity
