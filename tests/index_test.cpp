// Unit tests for src/index: flat, k-means, IVF, HNSW, PQ, IVF-PQ,
// slow-storage wrapper, recall utilities, and the factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/index_factory.h"
#include "index/ivf_flat_index.h"
#include "index/ivfpq_index.h"
#include "index/kmeans.h"
#include "index/pq.h"
#include "index/recall.h"
#include "index/slow_storage_index.h"
#include "index/vamana_index.h"

namespace proximity {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed,
                    double stddev = 1.0) {
  Matrix m(rows, dim);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& x : m.MutableRow(r)) {
      x = static_cast<float>(rng.Gaussian(0, stddev));
    }
  }
  return m;
}

std::vector<float> RandomVec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian(0, 1));
  return v;
}

// Brute-force ground truth.
std::vector<Neighbor> BruteForce(const Matrix& corpus,
                                 std::span<const float> query, std::size_t k,
                                 Metric metric = Metric::kL2) {
  return SelectTopK(metric, query, corpus.data(), corpus.rows(),
                    corpus.dim(), k);
}

// ----------------------------------------------------------------- Flat --

TEST(FlatIndexTest, ExactMatchesBruteForce) {
  const Matrix corpus = RandomMatrix(500, 16, 1);
  FlatIndex index(16);
  index.AddBatch(corpus);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto q = RandomVec(16, 100 + s);
    EXPECT_EQ(index.Search(q, 7), BruteForce(corpus, q, 7));
  }
}

TEST(FlatIndexTest, ParallelScanMatchesSerial) {
  const Matrix corpus = RandomMatrix(3000, 8, 2);
  FlatIndex serial(8, {.parallel_threshold = 0});
  FlatIndex parallel(8, {.parallel_threshold = 100});
  serial.AddBatch(corpus);
  parallel.AddBatch(corpus);
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto q = RandomVec(8, 200 + s);
    EXPECT_EQ(serial.Search(q, 10), parallel.Search(q, 10));
  }
}

TEST(FlatIndexTest, AddAssignsSequentialIds) {
  FlatIndex index(4);
  const std::vector<float> v = {1, 2, 3, 4};
  EXPECT_EQ(index.Add(v), 0);
  EXPECT_EQ(index.Add(v), 1);
  EXPECT_EQ(index.size(), 2u);
}

TEST(FlatIndexTest, RejectsWrongDimension) {
  FlatIndex index(4);
  const std::vector<float> bad = {1, 2};
  EXPECT_THROW(index.Add(bad), std::invalid_argument);
  EXPECT_THROW(index.Search(bad, 1), std::invalid_argument);
}

TEST(FlatIndexTest, EmptyIndexReturnsNothing) {
  FlatIndex index(4);
  const std::vector<float> q = {1, 2, 3, 4};
  EXPECT_TRUE(index.Search(q, 5).empty());
  EXPECT_TRUE(index.Search(q, 0).empty());
}

TEST(FlatIndexTest, KLargerThanSizeReturnsAll) {
  FlatIndex index(2);
  index.Add(std::vector<float>{0, 0});
  index.Add(std::vector<float>{1, 1});
  const std::vector<float> q = {0, 0};
  EXPECT_EQ(index.Search(q, 10).size(), 2u);
}

TEST(FlatIndexTest, InnerProductMetricPrefersLargerDot) {
  FlatIndex index(2, {.metric = Metric::kInnerProduct});
  index.Add(std::vector<float>{1, 0});   // id 0, dot 1
  index.Add(std::vector<float>{10, 0});  // id 1, dot 10
  const std::vector<float> q = {1, 0};
  const auto result = index.Search(q, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 1);
}

TEST(FlatIndexTest, DescribeMentionsKind) {
  FlatIndex index(4);
  EXPECT_NE(index.Describe().find("flat"), std::string::npos);
}

// --------------------------------------------------------------- KMeans --

TEST(KMeansTest, SeparatesObviousClusters) {
  // Two well-separated blobs.
  Matrix data(0, 2);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    data.AppendRow(std::vector<float>{
        static_cast<float>(rng.Gaussian(0, 0.1)),
        static_cast<float>(rng.Gaussian(0, 0.1))});
    data.AppendRow(std::vector<float>{
        static_cast<float>(10 + rng.Gaussian(0, 0.1)),
        static_cast<float>(10 + rng.Gaussian(0, 0.1))});
  }
  const auto result = RunKMeans(data, 2);
  ASSERT_EQ(result.centroids.rows(), 2u);
  // One centroid near (0,0), the other near (10,10).
  const float c0 = result.centroids.Row(0)[0];
  const float c1 = result.centroids.Row(1)[0];
  EXPECT_NEAR(std::min(c0, c1), 0.f, 0.5f);
  EXPECT_NEAR(std::max(c0, c1), 10.f, 0.5f);
  // Inertia is small for this easy case.
  EXPECT_LT(result.inertia / data.rows(), 0.1);
}

TEST(KMeansTest, DeterministicForSameSeed) {
  const Matrix data = RandomMatrix(200, 8, 4);
  KMeansOptions opts;
  opts.seed = 77;
  opts.parallel = false;
  const auto a = RunKMeans(data, 8, opts);
  const auto b = RunKMeans(data, 8, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, AssignmentMatchesNearestCentroid) {
  const Matrix data = RandomMatrix(100, 4, 5);
  const auto result = RunKMeans(data, 5);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(result.assignment[i],
              NearestCentroid(result.centroids, data.Row(i)));
  }
}

TEST(KMeansTest, DegenerateKGreaterThanN) {
  const Matrix data = RandomMatrix(5, 4, 6);
  const auto result = RunKMeans(data, 10);
  EXPECT_EQ(result.centroids.rows(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.assignment[i], i);
  }
}

TEST(KMeansTest, RejectsBadInput) {
  Matrix empty(0, 4);
  EXPECT_THROW(RunKMeans(empty, 2), std::invalid_argument);
  const Matrix data = RandomMatrix(10, 4, 7);
  EXPECT_THROW(RunKMeans(data, 0), std::invalid_argument);
}

TEST(KMeansTest, AllCentroidsLive) {
  // Duplicated points could starve clusters; re-seeding must keep all k.
  Matrix data(0, 2);
  for (int i = 0; i < 100; ++i) {
    data.AppendRow(std::vector<float>{1.f, 1.f});
  }
  data.AppendRow(std::vector<float>{5.f, 5.f});
  const auto result = RunKMeans(data, 3);
  EXPECT_EQ(result.centroids.rows(), 3u);
}

// ------------------------------------------------------------------ IVF --

TEST(IvfFlatTest, TrainThenSearchFindsNeighbors) {
  const Matrix corpus = RandomMatrix(2000, 16, 8);
  IvfFlatIndex index(16, {.nlist = 16, .nprobe = 16});  // full probe: exact
  index.Train(corpus);
  index.AddBatch(corpus);
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto q = RandomVec(16, 300 + s);
    EXPECT_EQ(index.Search(q, 5), BruteForce(corpus, q, 5));
  }
}

TEST(IvfFlatTest, PartialProbeHasReasonableRecall) {
  const Matrix corpus = RandomMatrix(5000, 16, 9);
  IvfFlatIndex index(16, {.nlist = 32, .nprobe = 8});
  index.Train(corpus);
  index.AddBatch(corpus);
  double recall_sum = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const auto q = RandomVec(16, 400 + s);
    recall_sum += RecallAtK(index.Search(q, 10), BruteForce(corpus, q, 10));
  }
  EXPECT_GT(recall_sum / 20, 0.5);
}

TEST(IvfFlatTest, MoreProbesImproveRecall) {
  const Matrix corpus = RandomMatrix(5000, 16, 10);
  IvfFlatIndex index(16, {.nlist = 64, .nprobe = 1});
  index.Train(corpus);
  index.AddBatch(corpus);
  auto recall_with_probe = [&](std::size_t nprobe) {
    index.set_nprobe(nprobe);
    double sum = 0;
    for (std::uint64_t s = 0; s < 20; ++s) {
      const auto q = RandomVec(16, 500 + s);
      sum += RecallAtK(index.Search(q, 10), BruteForce(corpus, q, 10));
    }
    return sum / 20;
  };
  const double r1 = recall_with_probe(1);
  const double r64 = recall_with_probe(64);
  EXPECT_LT(r1, r64);
  EXPECT_NEAR(r64, 1.0, 1e-9);  // all lists probed = exact
}

TEST(IvfFlatTest, LifecycleErrors) {
  IvfFlatIndex index(8);
  const std::vector<float> v(8, 0.f);
  EXPECT_THROW(index.Add(v), std::logic_error);
  EXPECT_THROW(index.Search(v, 1), std::logic_error);
  index.Train(RandomMatrix(100, 8, 11));
  EXPECT_THROW(index.Train(RandomMatrix(100, 8, 12)), std::logic_error);
  EXPECT_THROW(IvfFlatIndex(8, {.nlist = 0}), std::invalid_argument);
}

TEST(IvfFlatTest, EveryVectorLandsInExactlyOneList) {
  const Matrix corpus = RandomMatrix(500, 8, 13);
  IvfFlatIndex index(8, {.nlist = 10});
  index.Train(corpus);
  index.AddBatch(corpus);
  std::size_t total = 0;
  for (std::size_t l = 0; l < index.nlist(); ++l) {
    total += index.ListSize(l);
  }
  EXPECT_EQ(total, corpus.rows());
}

// ----------------------------------------------------------------- HNSW --

TEST(HnswTest, ExactOnTinySets) {
  const Matrix corpus = RandomMatrix(50, 8, 14);
  HnswIndex index(8, {.M = 8, .ef_construction = 64, .ef_search = 50});
  index.AddBatch(corpus);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto q = RandomVec(8, 600 + s);
    // With ef >= n the search is exhaustive on a connected graph.
    EXPECT_EQ(index.Search(q, 5), BruteForce(corpus, q, 5));
  }
}

TEST(HnswTest, HighRecallAtModerateEf) {
  const Matrix corpus = RandomMatrix(3000, 32, 15);
  HnswIndex index(32, {.M = 16, .ef_construction = 128, .ef_search = 64});
  index.AddBatch(corpus);
  double recall_sum = 0;
  for (std::uint64_t s = 0; s < 30; ++s) {
    const auto q = RandomVec(32, 700 + s);
    recall_sum += RecallAtK(index.Search(q, 10), BruteForce(corpus, q, 10));
  }
  EXPECT_GT(recall_sum / 30, 0.9);
}

TEST(HnswTest, EfSearchImprovesRecall) {
  const Matrix corpus = RandomMatrix(3000, 32, 16);
  HnswIndex index(32, {.M = 8, .ef_construction = 64, .ef_search = 4});
  index.AddBatch(corpus);
  auto recall_at = [&](std::size_t ef) {
    index.set_ef_search(ef);
    double sum = 0;
    for (std::uint64_t s = 0; s < 20; ++s) {
      const auto q = RandomVec(32, 800 + s);
      sum += RecallAtK(index.Search(q, 10), BruteForce(corpus, q, 10));
    }
    return sum / 20;
  };
  EXPECT_LT(recall_at(4), recall_at(128));
}

TEST(HnswTest, LevelsFollowGeometricDecay) {
  const Matrix corpus = RandomMatrix(2000, 4, 17);
  HnswIndex index(4, {.M = 16});
  index.AddBatch(corpus);
  std::size_t level0 = 0, level1plus = 0;
  for (VectorId id = 0; id < 2000; ++id) {
    if (index.NodeLevel(id) == 0) {
      ++level0;
    } else {
      ++level1plus;
    }
  }
  // With mult = 1/ln(16), P(level >= 1) = 1/16: expect ~125 of 2000.
  EXPECT_GT(level0, 1700u);
  EXPECT_GT(level1plus, 30u);
  EXPECT_LT(level1plus, 400u);
}

TEST(HnswTest, LinkListsRespectDegreeBounds) {
  const Matrix corpus = RandomMatrix(1000, 8, 18);
  HnswOptions opts;
  opts.M = 8;
  HnswIndex index(8, opts);
  index.AddBatch(corpus);
  for (VectorId id = 0; id < 1000; ++id) {
    for (int level = 0; level <= index.NodeLevel(id); ++level) {
      const auto& links = index.Links(id, level);
      const std::size_t bound = level == 0 ? opts.M * 2 : opts.M;
      EXPECT_LE(links.size(), bound);
      // No self-links, no duplicates.
      std::set<std::uint32_t> unique(links.begin(), links.end());
      EXPECT_EQ(unique.size(), links.size());
      EXPECT_FALSE(unique.contains(static_cast<std::uint32_t>(id)));
    }
  }
}

TEST(HnswTest, DeterministicForSameSeed) {
  const Matrix corpus = RandomMatrix(500, 8, 19);
  HnswIndex a(8, {.seed = 5});
  HnswIndex b(8, {.seed = 5});
  a.AddBatch(corpus);
  b.AddBatch(corpus);
  const auto q = RandomVec(8, 900);
  EXPECT_EQ(a.Search(q, 10), b.Search(q, 10));
}

TEST(HnswTest, SingleElement) {
  HnswIndex index(4);
  index.Add(std::vector<float>{1, 2, 3, 4});
  const std::vector<float> q = {0, 0, 0, 0};
  const auto result = index.Search(q, 3);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0);
}

TEST(HnswTest, RejectsTinyM) {
  EXPECT_THROW(HnswIndex(4, {.M = 1}), std::invalid_argument);
}

TEST(HnswTest, ConcurrentSearchesAreSafe) {
  const Matrix corpus = RandomMatrix(1000, 16, 20);
  HnswIndex index(16);
  index.AddBatch(corpus);
  ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  const auto q = RandomVec(16, 1000);
  const auto expected = index.Search(q, 10);
  pool.ParallelFor(0, 100, [&](std::size_t) {
    if (index.Search(q, 10) != expected) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// ------------------------------------------------------------------- PQ --

TEST(PqTest, EncodeDecodeRoundTripApproximates) {
  const Matrix sample = RandomMatrix(2000, 32, 21);
  ProductQuantizer pq(32, {.m = 8, .ksub = 64});
  pq.Train(sample);
  StreamingStats err;
  for (std::uint64_t s = 0; s < 50; ++s) {
    const auto v = RandomVec(32, 1100 + s);
    err.Add(pq.ReconstructionError(v));
  }
  // Mean reconstruction error well below the vector norm (~32).
  EXPECT_LT(err.mean(), 32.0 * 0.8);
}

TEST(PqTest, AdcApproximatesTrueDistance) {
  const Matrix sample = RandomMatrix(2000, 32, 22);
  ProductQuantizer pq(32, {.m = 16, .ksub = 256});
  pq.Train(sample);
  Rng rng(23);
  const auto query = RandomVec(32, 1200);
  const auto table = pq.ComputeDistanceTable(query);
  StreamingStats rel_err;
  for (std::uint64_t s = 0; s < 100; ++s) {
    const auto v = RandomVec(32, 1300 + s);
    std::vector<std::uint8_t> code(pq.code_size());
    pq.Encode(v, code.data());
    const float adc = pq.AdcDistance(table, code.data());
    const float true_dist = L2SquaredDistance(query, v);
    rel_err.Add(std::abs(adc - true_dist) / true_dist);
  }
  EXPECT_LT(rel_err.mean(), 0.35);
}

TEST(PqTest, MoreSubquantizersReduceError) {
  const Matrix sample = RandomMatrix(2000, 32, 24);
  ProductQuantizer coarse(32, {.m = 4, .ksub = 16});
  ProductQuantizer fine(32, {.m = 16, .ksub = 16});
  coarse.Train(sample);
  fine.Train(sample);
  StreamingStats err_coarse, err_fine;
  for (std::uint64_t s = 0; s < 50; ++s) {
    const auto v = RandomVec(32, 1400 + s);
    err_coarse.Add(coarse.ReconstructionError(v));
    err_fine.Add(fine.ReconstructionError(v));
  }
  EXPECT_LT(err_fine.mean(), err_coarse.mean());
}

TEST(PqTest, ValidatesParameters) {
  EXPECT_THROW(ProductQuantizer(32, {.m = 5}), std::invalid_argument);
  EXPECT_THROW(ProductQuantizer(32, {.m = 8, .ksub = 1000}),
               std::invalid_argument);
  ProductQuantizer pq(32, {.m = 8});
  const auto v = RandomVec(32, 1);
  std::vector<std::uint8_t> code(8);
  EXPECT_THROW(pq.Encode(v, code.data()), std::logic_error);
}

TEST(IvfPqTest, RecallReasonableOnClusteredData) {
  // Clustered corpus (PQ is poor on isotropic noise, fine on structure).
  Rng rng(25);
  Matrix corpus(0, 32);
  Matrix centers = RandomMatrix(16, 32, 26, 3.0);
  for (int i = 0; i < 4000; ++i) {
    const auto c = centers.Row(rng.Below(16));
    std::vector<float> v(32);
    for (std::size_t j = 0; j < 32; ++j) {
      v[j] = c[j] + static_cast<float>(rng.Gaussian(0, 0.3));
    }
    corpus.AppendRow(v);
  }
  IvfPqIndex index(32, {.nlist = 16, .nprobe = 16, .pq = {.m = 16}});
  index.Train(corpus);
  index.AddBatch(corpus);
  double recall_sum = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    std::vector<float> q(32);
    const auto c = centers.Row(s % 16);
    for (std::size_t j = 0; j < 32; ++j) {
      q[j] = c[j] + static_cast<float>(rng.Gaussian(0, 0.3));
    }
    recall_sum += RecallAtK(index.Search(q, 10), BruteForce(corpus, q, 10));
  }
  EXPECT_GT(recall_sum / 20, 0.5);
  EXPECT_EQ(index.BytesPerVector(), 16u);
}

TEST(IvfPqTest, RefinementImprovesRecall) {
  // Isotropic noise: hard for coarse PQ, so re-ranking has room to help.
  const Matrix corpus = RandomMatrix(3000, 32, 30);
  IvfPqOptions base_opts{.nlist = 16, .nprobe = 16, .pq = {.m = 8,
                                                           .ksub = 32}};
  IvfPqIndex plain(32, base_opts);
  plain.Train(corpus);
  plain.AddBatch(corpus);

  IvfPqOptions refined_opts = base_opts;
  refined_opts.refine_factor = 32;
  IvfPqIndex refined(32, refined_opts);
  refined.Train(corpus);
  refined.AddBatch(corpus);

  double recall_plain = 0, recall_refined = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const auto q = RandomVec(32, 1700 + s);
    const auto truth = BruteForce(corpus, q, 10);
    recall_plain += RecallAtK(plain.Search(q, 10), truth);
    recall_refined += RecallAtK(refined.Search(q, 10), truth);
  }
  EXPECT_GT(recall_refined, recall_plain + 0.1 * 20);
  EXPECT_GT(recall_refined / 20, 0.75);
}

TEST(IvfPqTest, RefinedSearchReportsExactDistances) {
  const Matrix corpus = RandomMatrix(500, 16, 31);
  IvfPqIndex index(16, {.nlist = 4, .nprobe = 4,
                        .pq = {.m = 4, .ksub = 16}, .refine_factor = 4});
  index.Train(corpus);
  index.AddBatch(corpus);
  const auto q = RandomVec(16, 1800);
  for (const auto& n : index.Search(q, 5)) {
    const float exact = L2SquaredDistance(
        q, corpus.Row(static_cast<std::size_t>(n.id)));
    EXPECT_FLOAT_EQ(n.distance, exact);
  }
}

TEST(IvfPqTest, RejectsNonL2Metric) {
  EXPECT_THROW(IvfPqIndex(32, {.metric = Metric::kCosine}),
               std::invalid_argument);
}

// --------------------------------------------------------------- Vamana --

TEST(VamanaTest, ExactOnTinySets) {
  const Matrix corpus = RandomMatrix(40, 8, 51);
  VamanaIndex index(8, {.max_degree = 16, .build_beam = 40,
                        .search_beam = 40});
  index.AddBatch(corpus);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto q = RandomVec(8, 2000 + s);
    EXPECT_EQ(index.Search(q, 5), BruteForce(corpus, q, 5));
  }
}

TEST(VamanaTest, HighRecallAtModerateBeam) {
  const Matrix corpus = RandomMatrix(3000, 32, 52);
  VamanaIndex index(32, {.max_degree = 32, .build_beam = 64,
                         .search_beam = 64});
  index.AddBatch(corpus);
  double recall_sum = 0;
  for (std::uint64_t s = 0; s < 30; ++s) {
    const auto q = RandomVec(32, 2100 + s);
    recall_sum += RecallAtK(index.Search(q, 10), BruteForce(corpus, q, 10));
  }
  EXPECT_GT(recall_sum / 30, 0.85);
}

TEST(VamanaTest, BeamWidthImprovesRecall) {
  const Matrix corpus = RandomMatrix(3000, 32, 53);
  VamanaIndex index(32, {.max_degree = 16, .build_beam = 32,
                         .search_beam = 8});
  index.AddBatch(corpus);
  auto recall_at = [&](std::size_t beam) {
    index.set_search_beam(beam);
    double sum = 0;
    for (std::uint64_t s = 0; s < 20; ++s) {
      const auto q = RandomVec(32, 2200 + s);
      sum += RecallAtK(index.Search(q, 10), BruteForce(corpus, q, 10));
    }
    return sum / 20;
  };
  EXPECT_LT(recall_at(8), recall_at(128));
}

TEST(VamanaTest, DegreeBoundHolds) {
  const Matrix corpus = RandomMatrix(800, 8, 54);
  VamanaOptions opts;
  opts.max_degree = 12;
  VamanaIndex index(8, opts);
  index.AddBatch(corpus);
  for (VectorId id = 0; id < 800; ++id) {
    const auto& out = index.OutNeighbors(id);
    EXPECT_LE(out.size(), opts.max_degree);
    // No self-loops or duplicates.
    std::set<std::uint32_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size());
    EXPECT_FALSE(unique.contains(static_cast<std::uint32_t>(id)));
  }
}

TEST(VamanaTest, ClusteredCorpusStillNavigable) {
  // Regression guard: tight, far-apart clusters strand a purely
  // incremental build inside the medoid's cluster (recall ~ 1/#clusters).
  // The bulk build's random init + two-pass refinement must route across
  // clusters.
  Rng rng(56);
  constexpr std::size_t kClusters = 16;
  Matrix centers = RandomMatrix(kClusters, 32, 57);
  for (std::size_t c = 0; c < kClusters; ++c) {
    for (auto& x : centers.MutableRow(c)) x *= 5.f;  // spread clusters out
  }
  Matrix corpus(0, 32);
  for (int i = 0; i < 2000; ++i) {
    const auto center = centers.Row(rng.Below(kClusters));
    std::vector<float> v(32);
    for (std::size_t j = 0; j < 32; ++j) {
      v[j] = center[j] + static_cast<float>(rng.Gaussian(0, 0.3));
    }
    corpus.AppendRow(v);
  }
  VamanaIndex index(32, {.max_degree = 32, .build_beam = 64,
                         .search_beam = 64});
  index.AddBatch(corpus);
  double recall_sum = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const auto center = centers.Row(s % kClusters);
    std::vector<float> q(32);
    Rng qrng(3000 + s);
    for (std::size_t j = 0; j < 32; ++j) {
      q[j] = center[j] + static_cast<float>(qrng.Gaussian(0, 0.3));
    }
    recall_sum += RecallAtK(index.Search(q, 10), BruteForce(corpus, q, 10));
  }
  EXPECT_GT(recall_sum / 20, 0.8);
}

TEST(VamanaTest, IncrementalAddAfterBuildStaysSearchable) {
  const Matrix first = RandomMatrix(300, 8, 58);
  const Matrix extra = RandomMatrix(50, 8, 59);
  VamanaIndex index(8, {.max_degree = 16});
  index.AddBatch(first);
  index.Build();
  index.AddBatch(extra);  // fresh-insert path
  Matrix all(0, 8);
  for (std::size_t r = 0; r < first.rows(); ++r) all.AppendRow(first.Row(r));
  for (std::size_t r = 0; r < extra.rows(); ++r) all.AppendRow(extra.Row(r));
  double recall_sum = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto q = RandomVec(8, 2300 + s);
    recall_sum += RecallAtK(index.Search(q, 10), BruteForce(all, q, 10));
  }
  EXPECT_GT(recall_sum / 10, 0.8);
}

TEST(VamanaTest, GraphIsReachableFromMedoid) {
  const Matrix corpus = RandomMatrix(500, 8, 55);
  VamanaIndex index(8, {.max_degree = 16});
  index.AddBatch(corpus);
  index.Build();  // medoid is only meaningful on a built graph
  // BFS from the medoid must reach (almost) every node; α-pruning with
  // reverse edges keeps the graph navigable.
  std::vector<bool> seen(500, false);
  std::vector<std::uint32_t> frontier = {
      static_cast<std::uint32_t>(index.medoid())};
  seen[static_cast<std::size_t>(index.medoid())] = true;
  std::size_t reached = 1;
  auto visit = [&](std::uint32_t nb) {
    if (!seen[nb]) {
      seen[nb] = true;
      ++reached;
      frontier.push_back(nb);
    }
  };
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.back();
    frontier.pop_back();
    for (std::uint32_t nb : index.OutNeighbors(cur)) visit(nb);
    for (std::uint32_t nb : index.LongLinks(cur)) visit(nb);
  }
  EXPECT_GT(reached, 495u);
}

TEST(VamanaTest, ValidatesOptions) {
  EXPECT_THROW(VamanaIndex(8, {.max_degree = 1}), std::invalid_argument);
  EXPECT_THROW(VamanaIndex(8, {.alpha = 0.5f}), std::invalid_argument);
}

TEST(VamanaTest, SingleElementAndEmpty) {
  VamanaIndex index(4);
  const std::vector<float> q = {0, 0, 0, 0};
  EXPECT_TRUE(index.Search(q, 3).empty());
  index.Add(std::vector<float>{1, 2, 3, 4});
  const auto result = index.Search(q, 3);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0);
}

// --------------------------------------------------------- SlowStorage --

TEST(SlowStorageTest, ChargesVirtualLatency) {
  VirtualClock clock;
  auto inner = std::make_unique<FlatIndex>(4);
  inner->Add(std::vector<float>{1, 2, 3, 4});
  inner->Add(std::vector<float>{5, 6, 7, 8});
  SlowStorageIndex slow(std::move(inner),
                        {.fixed_ns = 1000, .per_result_ns = 10}, &clock);
  const std::vector<float> q = {0, 0, 0, 0};
  const auto results = slow.Search(q, 2);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(clock.Now(), 1000 + 2 * 10);
  slow.Search(q, 1);
  EXPECT_EQ(clock.Now(), 1020 + 1000 + 10);
}

TEST(SlowStorageTest, DelegatesSearchResults) {
  VirtualClock clock;
  auto inner = std::make_unique<FlatIndex>(4);
  const Matrix corpus = RandomMatrix(100, 4, 27);
  inner->AddBatch(corpus);
  const FlatIndex* raw = inner.get();
  SlowStorageIndex slow(std::move(inner), {.fixed_ns = 5}, &clock);
  const auto q = RandomVec(4, 1500);
  EXPECT_EQ(slow.Search(q, 5), raw->Search(q, 5));
  EXPECT_EQ(slow.size(), 100u);
  EXPECT_EQ(slow.dim(), 4u);
}

TEST(SlowStorageTest, RejectsNulls) {
  VirtualClock clock;
  EXPECT_THROW(SlowStorageIndex(nullptr, {}, &clock), std::invalid_argument);
  auto inner = std::make_unique<FlatIndex>(4);
  EXPECT_THROW(SlowStorageIndex(std::move(inner), {}, nullptr),
               std::invalid_argument);
}

// --------------------------------------------------------------- Recall --

TEST(RecallTest, FullOverlapIsOne) {
  const std::vector<Neighbor> a = {{1, 0.1f}, {2, 0.2f}};
  EXPECT_DOUBLE_EQ(RecallAtK(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardOverlap(a, a), 1.0);
}

TEST(RecallTest, PartialOverlap) {
  const std::vector<Neighbor> approx = {{1, 0.1f}, {3, 0.3f}};
  const std::vector<Neighbor> truth = {{1, 0.1f}, {2, 0.2f}};
  EXPECT_DOUBLE_EQ(RecallAtK(approx, truth), 0.5);
  EXPECT_DOUBLE_EQ(JaccardOverlap(approx, truth), 1.0 / 3.0);
}

TEST(RecallTest, EmptyTruthIsPerfect) {
  const std::vector<Neighbor> approx = {{1, 0.1f}};
  EXPECT_DOUBLE_EQ(RecallAtK(approx, {}), 1.0);
}

TEST(RecallTest, MeanRecallValidatesLengths) {
  std::vector<std::vector<Neighbor>> a(2), b(3);
  EXPECT_THROW(MeanRecallAtK(a, b), std::invalid_argument);
}

// -------------------------------------------------------------- Factory --

TEST(IndexFactoryTest, BuildsAllKinds) {
  const Matrix corpus = RandomMatrix(300, 16, 28);
  for (const char* kind : {"flat", "hnsw", "ivf_flat", "ivf_pq"}) {
    IndexSpec spec;
    spec.kind = kind;
    spec.ivf_nlist = 8;
    spec.pq_m = 4;
    auto index = BuildIndex(spec, corpus);
    EXPECT_EQ(index->size(), 300u) << kind;
    const auto q = RandomVec(16, 1600);
    EXPECT_EQ(index->Search(q, 5).size(), 5u) << kind;
  }
}

TEST(IndexFactoryTest, RejectsUnknownKind) {
  const Matrix corpus = RandomMatrix(10, 4, 29);
  IndexSpec spec;
  spec.kind = "annoy";
  EXPECT_THROW(BuildIndex(spec, corpus), std::invalid_argument);
}

}  // namespace
}  // namespace proximity
