# Empty compiler generated dependencies file for verdict_test.
# This may be replaced when dependencies are built.
