file(REMOVE_RECURSE
  "CMakeFiles/verdict_test.dir/verdict_test.cpp.o"
  "CMakeFiles/verdict_test.dir/verdict_test.cpp.o.d"
  "verdict_test"
  "verdict_test.pdb"
  "verdict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verdict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
