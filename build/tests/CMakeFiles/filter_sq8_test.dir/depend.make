# Empty dependencies file for filter_sq8_test.
# This may be replaced when dependencies are built.
