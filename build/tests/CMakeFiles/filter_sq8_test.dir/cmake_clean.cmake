file(REMOVE_RECURSE
  "CMakeFiles/filter_sq8_test.dir/filter_sq8_test.cpp.o"
  "CMakeFiles/filter_sq8_test.dir/filter_sq8_test.cpp.o.d"
  "filter_sq8_test"
  "filter_sq8_test.pdb"
  "filter_sq8_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_sq8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
