# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/vecmath_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/rag_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/filter_sq8_test[1]_include.cmake")
include("/root/repo/build/tests/verdict_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_test[1]_include.cmake")
