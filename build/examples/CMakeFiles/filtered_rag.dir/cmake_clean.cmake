file(REMOVE_RECURSE
  "CMakeFiles/filtered_rag.dir/filtered_rag.cpp.o"
  "CMakeFiles/filtered_rag.dir/filtered_rag.cpp.o.d"
  "filtered_rag"
  "filtered_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filtered_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
