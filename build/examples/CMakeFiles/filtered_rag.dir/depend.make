# Empty dependencies file for filtered_rag.
# This may be replaced when dependencies are built.
