# Empty dependencies file for medrag_rag.
# This may be replaced when dependencies are built.
