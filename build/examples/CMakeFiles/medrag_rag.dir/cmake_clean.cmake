file(REMOVE_RECURSE
  "CMakeFiles/medrag_rag.dir/medrag_rag.cpp.o"
  "CMakeFiles/medrag_rag.dir/medrag_rag.cpp.o.d"
  "medrag_rag"
  "medrag_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medrag_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
