# Empty dependencies file for concurrent_service.
# This may be replaced when dependencies are built.
