file(REMOVE_RECURSE
  "CMakeFiles/concurrent_service.dir/concurrent_service.cpp.o"
  "CMakeFiles/concurrent_service.dir/concurrent_service.cpp.o.d"
  "concurrent_service"
  "concurrent_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
