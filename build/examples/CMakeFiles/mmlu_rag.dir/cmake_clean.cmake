file(REMOVE_RECURSE
  "CMakeFiles/mmlu_rag.dir/mmlu_rag.cpp.o"
  "CMakeFiles/mmlu_rag.dir/mmlu_rag.cpp.o.d"
  "mmlu_rag"
  "mmlu_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmlu_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
