# Empty dependencies file for mmlu_rag.
# This may be replaced when dependencies are built.
