# Empty dependencies file for proximity_index.
# This may be replaced when dependencies are built.
