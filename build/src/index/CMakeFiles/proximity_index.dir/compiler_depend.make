# Empty compiler generated dependencies file for proximity_index.
# This may be replaced when dependencies are built.
