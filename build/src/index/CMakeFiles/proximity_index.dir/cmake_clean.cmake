file(REMOVE_RECURSE
  "CMakeFiles/proximity_index.dir/flat_index.cpp.o"
  "CMakeFiles/proximity_index.dir/flat_index.cpp.o.d"
  "CMakeFiles/proximity_index.dir/hnsw_index.cpp.o"
  "CMakeFiles/proximity_index.dir/hnsw_index.cpp.o.d"
  "CMakeFiles/proximity_index.dir/index_factory.cpp.o"
  "CMakeFiles/proximity_index.dir/index_factory.cpp.o.d"
  "CMakeFiles/proximity_index.dir/index_io.cpp.o"
  "CMakeFiles/proximity_index.dir/index_io.cpp.o.d"
  "CMakeFiles/proximity_index.dir/ivf_flat_index.cpp.o"
  "CMakeFiles/proximity_index.dir/ivf_flat_index.cpp.o.d"
  "CMakeFiles/proximity_index.dir/ivfpq_index.cpp.o"
  "CMakeFiles/proximity_index.dir/ivfpq_index.cpp.o.d"
  "CMakeFiles/proximity_index.dir/kmeans.cpp.o"
  "CMakeFiles/proximity_index.dir/kmeans.cpp.o.d"
  "CMakeFiles/proximity_index.dir/pq.cpp.o"
  "CMakeFiles/proximity_index.dir/pq.cpp.o.d"
  "CMakeFiles/proximity_index.dir/recall.cpp.o"
  "CMakeFiles/proximity_index.dir/recall.cpp.o.d"
  "CMakeFiles/proximity_index.dir/slow_storage_index.cpp.o"
  "CMakeFiles/proximity_index.dir/slow_storage_index.cpp.o.d"
  "CMakeFiles/proximity_index.dir/sq8_index.cpp.o"
  "CMakeFiles/proximity_index.dir/sq8_index.cpp.o.d"
  "CMakeFiles/proximity_index.dir/vamana_index.cpp.o"
  "CMakeFiles/proximity_index.dir/vamana_index.cpp.o.d"
  "CMakeFiles/proximity_index.dir/vector_index.cpp.o"
  "CMakeFiles/proximity_index.dir/vector_index.cpp.o.d"
  "libproximity_index.a"
  "libproximity_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
