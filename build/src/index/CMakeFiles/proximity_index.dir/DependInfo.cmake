
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/flat_index.cpp" "src/index/CMakeFiles/proximity_index.dir/flat_index.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/flat_index.cpp.o.d"
  "/root/repo/src/index/hnsw_index.cpp" "src/index/CMakeFiles/proximity_index.dir/hnsw_index.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/hnsw_index.cpp.o.d"
  "/root/repo/src/index/index_factory.cpp" "src/index/CMakeFiles/proximity_index.dir/index_factory.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/index_factory.cpp.o.d"
  "/root/repo/src/index/index_io.cpp" "src/index/CMakeFiles/proximity_index.dir/index_io.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/index_io.cpp.o.d"
  "/root/repo/src/index/ivf_flat_index.cpp" "src/index/CMakeFiles/proximity_index.dir/ivf_flat_index.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/ivf_flat_index.cpp.o.d"
  "/root/repo/src/index/ivfpq_index.cpp" "src/index/CMakeFiles/proximity_index.dir/ivfpq_index.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/ivfpq_index.cpp.o.d"
  "/root/repo/src/index/kmeans.cpp" "src/index/CMakeFiles/proximity_index.dir/kmeans.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/kmeans.cpp.o.d"
  "/root/repo/src/index/pq.cpp" "src/index/CMakeFiles/proximity_index.dir/pq.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/pq.cpp.o.d"
  "/root/repo/src/index/recall.cpp" "src/index/CMakeFiles/proximity_index.dir/recall.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/recall.cpp.o.d"
  "/root/repo/src/index/slow_storage_index.cpp" "src/index/CMakeFiles/proximity_index.dir/slow_storage_index.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/slow_storage_index.cpp.o.d"
  "/root/repo/src/index/sq8_index.cpp" "src/index/CMakeFiles/proximity_index.dir/sq8_index.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/sq8_index.cpp.o.d"
  "/root/repo/src/index/vamana_index.cpp" "src/index/CMakeFiles/proximity_index.dir/vamana_index.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/vamana_index.cpp.o.d"
  "/root/repo/src/index/vector_index.cpp" "src/index/CMakeFiles/proximity_index.dir/vector_index.cpp.o" "gcc" "src/index/CMakeFiles/proximity_index.dir/vector_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vecmath/CMakeFiles/proximity_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proximity_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
