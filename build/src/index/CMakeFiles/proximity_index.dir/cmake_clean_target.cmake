file(REMOVE_RECURSE
  "libproximity_index.a"
)
