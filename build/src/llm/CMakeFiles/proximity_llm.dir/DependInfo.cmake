
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/answer_model.cpp" "src/llm/CMakeFiles/proximity_llm.dir/answer_model.cpp.o" "gcc" "src/llm/CMakeFiles/proximity_llm.dir/answer_model.cpp.o.d"
  "/root/repo/src/llm/prompt.cpp" "src/llm/CMakeFiles/proximity_llm.dir/prompt.cpp.o" "gcc" "src/llm/CMakeFiles/proximity_llm.dir/prompt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/proximity_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proximity_common.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/proximity_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/proximity_vecmath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
