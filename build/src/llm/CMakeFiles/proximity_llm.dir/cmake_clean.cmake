file(REMOVE_RECURSE
  "CMakeFiles/proximity_llm.dir/answer_model.cpp.o"
  "CMakeFiles/proximity_llm.dir/answer_model.cpp.o.d"
  "CMakeFiles/proximity_llm.dir/prompt.cpp.o"
  "CMakeFiles/proximity_llm.dir/prompt.cpp.o.d"
  "libproximity_llm.a"
  "libproximity_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
