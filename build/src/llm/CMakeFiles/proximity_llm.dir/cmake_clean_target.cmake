file(REMOVE_RECURSE
  "libproximity_llm.a"
)
