# Empty dependencies file for proximity_llm.
# This may be replaced when dependencies are built.
