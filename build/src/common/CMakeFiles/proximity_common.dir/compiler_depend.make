# Empty compiler generated dependencies file for proximity_common.
# This may be replaced when dependencies are built.
