file(REMOVE_RECURSE
  "libproximity_common.a"
)
