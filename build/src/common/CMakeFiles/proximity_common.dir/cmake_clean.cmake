file(REMOVE_RECURSE
  "CMakeFiles/proximity_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/proximity_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/proximity_common.dir/config.cpp.o"
  "CMakeFiles/proximity_common.dir/config.cpp.o.d"
  "CMakeFiles/proximity_common.dir/csv.cpp.o"
  "CMakeFiles/proximity_common.dir/csv.cpp.o.d"
  "CMakeFiles/proximity_common.dir/log.cpp.o"
  "CMakeFiles/proximity_common.dir/log.cpp.o.d"
  "CMakeFiles/proximity_common.dir/rng.cpp.o"
  "CMakeFiles/proximity_common.dir/rng.cpp.o.d"
  "CMakeFiles/proximity_common.dir/serde.cpp.o"
  "CMakeFiles/proximity_common.dir/serde.cpp.o.d"
  "CMakeFiles/proximity_common.dir/stats.cpp.o"
  "CMakeFiles/proximity_common.dir/stats.cpp.o.d"
  "CMakeFiles/proximity_common.dir/thread_pool.cpp.o"
  "CMakeFiles/proximity_common.dir/thread_pool.cpp.o.d"
  "libproximity_common.a"
  "libproximity_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
