file(REMOVE_RECURSE
  "libproximity_rag.a"
)
