file(REMOVE_RECURSE
  "CMakeFiles/proximity_rag.dir/concurrent_driver.cpp.o"
  "CMakeFiles/proximity_rag.dir/concurrent_driver.cpp.o.d"
  "CMakeFiles/proximity_rag.dir/experiment.cpp.o"
  "CMakeFiles/proximity_rag.dir/experiment.cpp.o.d"
  "CMakeFiles/proximity_rag.dir/pipeline.cpp.o"
  "CMakeFiles/proximity_rag.dir/pipeline.cpp.o.d"
  "CMakeFiles/proximity_rag.dir/retriever.cpp.o"
  "CMakeFiles/proximity_rag.dir/retriever.cpp.o.d"
  "CMakeFiles/proximity_rag.dir/verdict.cpp.o"
  "CMakeFiles/proximity_rag.dir/verdict.cpp.o.d"
  "CMakeFiles/proximity_rag.dir/warmup.cpp.o"
  "CMakeFiles/proximity_rag.dir/warmup.cpp.o.d"
  "libproximity_rag.a"
  "libproximity_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
