# Empty compiler generated dependencies file for proximity_rag.
# This may be replaced when dependencies are built.
