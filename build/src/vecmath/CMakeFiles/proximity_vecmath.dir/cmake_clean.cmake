file(REMOVE_RECURSE
  "CMakeFiles/proximity_vecmath.dir/kernels.cpp.o"
  "CMakeFiles/proximity_vecmath.dir/kernels.cpp.o.d"
  "CMakeFiles/proximity_vecmath.dir/ops.cpp.o"
  "CMakeFiles/proximity_vecmath.dir/ops.cpp.o.d"
  "CMakeFiles/proximity_vecmath.dir/topk.cpp.o"
  "CMakeFiles/proximity_vecmath.dir/topk.cpp.o.d"
  "libproximity_vecmath.a"
  "libproximity_vecmath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_vecmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
