file(REMOVE_RECURSE
  "libproximity_vecmath.a"
)
