# Empty dependencies file for proximity_vecmath.
# This may be replaced when dependencies are built.
