file(REMOVE_RECURSE
  "libproximity_embed.a"
)
