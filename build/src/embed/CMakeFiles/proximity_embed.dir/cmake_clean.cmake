file(REMOVE_RECURSE
  "CMakeFiles/proximity_embed.dir/hash_embedder.cpp.o"
  "CMakeFiles/proximity_embed.dir/hash_embedder.cpp.o.d"
  "CMakeFiles/proximity_embed.dir/perturb.cpp.o"
  "CMakeFiles/proximity_embed.dir/perturb.cpp.o.d"
  "CMakeFiles/proximity_embed.dir/tokenizer.cpp.o"
  "CMakeFiles/proximity_embed.dir/tokenizer.cpp.o.d"
  "libproximity_embed.a"
  "libproximity_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
