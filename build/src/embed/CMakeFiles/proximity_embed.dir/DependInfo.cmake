
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/hash_embedder.cpp" "src/embed/CMakeFiles/proximity_embed.dir/hash_embedder.cpp.o" "gcc" "src/embed/CMakeFiles/proximity_embed.dir/hash_embedder.cpp.o.d"
  "/root/repo/src/embed/perturb.cpp" "src/embed/CMakeFiles/proximity_embed.dir/perturb.cpp.o" "gcc" "src/embed/CMakeFiles/proximity_embed.dir/perturb.cpp.o.d"
  "/root/repo/src/embed/tokenizer.cpp" "src/embed/CMakeFiles/proximity_embed.dir/tokenizer.cpp.o" "gcc" "src/embed/CMakeFiles/proximity_embed.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vecmath/CMakeFiles/proximity_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proximity_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
