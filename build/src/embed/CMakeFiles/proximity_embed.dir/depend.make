# Empty dependencies file for proximity_embed.
# This may be replaced when dependencies are built.
