
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/adaptive_tau.cpp" "src/cache/CMakeFiles/proximity_cache.dir/adaptive_tau.cpp.o" "gcc" "src/cache/CMakeFiles/proximity_cache.dir/adaptive_tau.cpp.o.d"
  "/root/repo/src/cache/concurrent_cache.cpp" "src/cache/CMakeFiles/proximity_cache.dir/concurrent_cache.cpp.o" "gcc" "src/cache/CMakeFiles/proximity_cache.dir/concurrent_cache.cpp.o.d"
  "/root/repo/src/cache/eviction_policy.cpp" "src/cache/CMakeFiles/proximity_cache.dir/eviction_policy.cpp.o" "gcc" "src/cache/CMakeFiles/proximity_cache.dir/eviction_policy.cpp.o.d"
  "/root/repo/src/cache/exact_cache.cpp" "src/cache/CMakeFiles/proximity_cache.dir/exact_cache.cpp.o" "gcc" "src/cache/CMakeFiles/proximity_cache.dir/exact_cache.cpp.o.d"
  "/root/repo/src/cache/filtered_router.cpp" "src/cache/CMakeFiles/proximity_cache.dir/filtered_router.cpp.o" "gcc" "src/cache/CMakeFiles/proximity_cache.dir/filtered_router.cpp.o.d"
  "/root/repo/src/cache/proximity_cache.cpp" "src/cache/CMakeFiles/proximity_cache.dir/proximity_cache.cpp.o" "gcc" "src/cache/CMakeFiles/proximity_cache.dir/proximity_cache.cpp.o.d"
  "/root/repo/src/cache/tiered_cache.cpp" "src/cache/CMakeFiles/proximity_cache.dir/tiered_cache.cpp.o" "gcc" "src/cache/CMakeFiles/proximity_cache.dir/tiered_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vecmath/CMakeFiles/proximity_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proximity_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
