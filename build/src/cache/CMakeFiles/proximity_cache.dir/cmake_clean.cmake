file(REMOVE_RECURSE
  "CMakeFiles/proximity_cache.dir/adaptive_tau.cpp.o"
  "CMakeFiles/proximity_cache.dir/adaptive_tau.cpp.o.d"
  "CMakeFiles/proximity_cache.dir/concurrent_cache.cpp.o"
  "CMakeFiles/proximity_cache.dir/concurrent_cache.cpp.o.d"
  "CMakeFiles/proximity_cache.dir/eviction_policy.cpp.o"
  "CMakeFiles/proximity_cache.dir/eviction_policy.cpp.o.d"
  "CMakeFiles/proximity_cache.dir/exact_cache.cpp.o"
  "CMakeFiles/proximity_cache.dir/exact_cache.cpp.o.d"
  "CMakeFiles/proximity_cache.dir/filtered_router.cpp.o"
  "CMakeFiles/proximity_cache.dir/filtered_router.cpp.o.d"
  "CMakeFiles/proximity_cache.dir/proximity_cache.cpp.o"
  "CMakeFiles/proximity_cache.dir/proximity_cache.cpp.o.d"
  "CMakeFiles/proximity_cache.dir/tiered_cache.cpp.o"
  "CMakeFiles/proximity_cache.dir/tiered_cache.cpp.o.d"
  "libproximity_cache.a"
  "libproximity_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
