# Empty compiler generated dependencies file for proximity_cache.
# This may be replaced when dependencies are built.
