file(REMOVE_RECURSE
  "libproximity_cache.a"
)
