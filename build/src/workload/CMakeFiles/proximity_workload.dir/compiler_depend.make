# Empty compiler generated dependencies file for proximity_workload.
# This may be replaced when dependencies are built.
