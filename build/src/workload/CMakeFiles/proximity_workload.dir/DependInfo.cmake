
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmark_spec.cpp" "src/workload/CMakeFiles/proximity_workload.dir/benchmark_spec.cpp.o" "gcc" "src/workload/CMakeFiles/proximity_workload.dir/benchmark_spec.cpp.o.d"
  "/root/repo/src/workload/corpus.cpp" "src/workload/CMakeFiles/proximity_workload.dir/corpus.cpp.o" "gcc" "src/workload/CMakeFiles/proximity_workload.dir/corpus.cpp.o.d"
  "/root/repo/src/workload/query_stream.cpp" "src/workload/CMakeFiles/proximity_workload.dir/query_stream.cpp.o" "gcc" "src/workload/CMakeFiles/proximity_workload.dir/query_stream.cpp.o.d"
  "/root/repo/src/workload/synth_text.cpp" "src/workload/CMakeFiles/proximity_workload.dir/synth_text.cpp.o" "gcc" "src/workload/CMakeFiles/proximity_workload.dir/synth_text.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/proximity_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/proximity_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/embed/CMakeFiles/proximity_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/proximity_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proximity_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
