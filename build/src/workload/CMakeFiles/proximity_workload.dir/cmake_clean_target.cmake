file(REMOVE_RECURSE
  "libproximity_workload.a"
)
