file(REMOVE_RECURSE
  "CMakeFiles/proximity_workload.dir/benchmark_spec.cpp.o"
  "CMakeFiles/proximity_workload.dir/benchmark_spec.cpp.o.d"
  "CMakeFiles/proximity_workload.dir/corpus.cpp.o"
  "CMakeFiles/proximity_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/proximity_workload.dir/query_stream.cpp.o"
  "CMakeFiles/proximity_workload.dir/query_stream.cpp.o.d"
  "CMakeFiles/proximity_workload.dir/synth_text.cpp.o"
  "CMakeFiles/proximity_workload.dir/synth_text.cpp.o.d"
  "CMakeFiles/proximity_workload.dir/trace.cpp.o"
  "CMakeFiles/proximity_workload.dir/trace.cpp.o.d"
  "libproximity_workload.a"
  "libproximity_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
