file(REMOVE_RECURSE
  "CMakeFiles/proximity_cli.dir/proximity_cli.cpp.o"
  "CMakeFiles/proximity_cli.dir/proximity_cli.cpp.o.d"
  "proximity_cli"
  "proximity_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
