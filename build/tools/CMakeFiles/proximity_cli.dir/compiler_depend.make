# Empty compiler generated dependencies file for proximity_cli.
# This may be replaced when dependencies are built.
