# Empty compiler generated dependencies file for cache_scan.
# This may be replaced when dependencies are built.
