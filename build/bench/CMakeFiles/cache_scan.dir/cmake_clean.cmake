file(REMOVE_RECURSE
  "CMakeFiles/cache_scan.dir/cache_scan.cpp.o"
  "CMakeFiles/cache_scan.dir/cache_scan.cpp.o.d"
  "cache_scan"
  "cache_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
