# Empty dependencies file for eviction_ablation.
# This may be replaced when dependencies are built.
