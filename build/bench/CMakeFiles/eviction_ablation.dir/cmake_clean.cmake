file(REMOVE_RECURSE
  "CMakeFiles/eviction_ablation.dir/eviction_ablation.cpp.o"
  "CMakeFiles/eviction_ablation.dir/eviction_ablation.cpp.o.d"
  "eviction_ablation"
  "eviction_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eviction_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
