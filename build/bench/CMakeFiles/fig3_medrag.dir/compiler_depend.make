# Empty compiler generated dependencies file for fig3_medrag.
# This may be replaced when dependencies are built.
