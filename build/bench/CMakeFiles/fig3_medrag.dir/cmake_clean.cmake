file(REMOVE_RECURSE
  "CMakeFiles/fig3_medrag.dir/fig3_medrag.cpp.o"
  "CMakeFiles/fig3_medrag.dir/fig3_medrag.cpp.o.d"
  "fig3_medrag"
  "fig3_medrag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_medrag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
