# Empty dependencies file for concurrency_scaling.
# This may be replaced when dependencies are built.
