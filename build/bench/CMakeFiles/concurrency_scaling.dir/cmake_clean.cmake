file(REMOVE_RECURSE
  "CMakeFiles/concurrency_scaling.dir/concurrency_scaling.cpp.o"
  "CMakeFiles/concurrency_scaling.dir/concurrency_scaling.cpp.o.d"
  "concurrency_scaling"
  "concurrency_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
