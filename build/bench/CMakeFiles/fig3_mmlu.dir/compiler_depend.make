# Empty compiler generated dependencies file for fig3_mmlu.
# This may be replaced when dependencies are built.
