file(REMOVE_RECURSE
  "CMakeFiles/fig3_mmlu.dir/fig3_mmlu.cpp.o"
  "CMakeFiles/fig3_mmlu.dir/fig3_mmlu.cpp.o.d"
  "fig3_mmlu"
  "fig3_mmlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mmlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
