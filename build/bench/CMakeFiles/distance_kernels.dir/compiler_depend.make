# Empty compiler generated dependencies file for distance_kernels.
# This may be replaced when dependencies are built.
