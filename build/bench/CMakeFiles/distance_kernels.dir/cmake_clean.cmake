file(REMOVE_RECURSE
  "CMakeFiles/distance_kernels.dir/distance_kernels.cpp.o"
  "CMakeFiles/distance_kernels.dir/distance_kernels.cpp.o.d"
  "distance_kernels"
  "distance_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
