file(REMOVE_RECURSE
  "CMakeFiles/warmup_effect.dir/warmup_effect.cpp.o"
  "CMakeFiles/warmup_effect.dir/warmup_effect.cpp.o.d"
  "warmup_effect"
  "warmup_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warmup_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
