# Empty dependencies file for warmup_effect.
# This may be replaced when dependencies are built.
