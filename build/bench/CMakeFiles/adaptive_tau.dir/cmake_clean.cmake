file(REMOVE_RECURSE
  "CMakeFiles/adaptive_tau.dir/adaptive_tau.cpp.o"
  "CMakeFiles/adaptive_tau.dir/adaptive_tau.cpp.o.d"
  "adaptive_tau"
  "adaptive_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
