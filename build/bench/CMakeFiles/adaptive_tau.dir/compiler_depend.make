# Empty compiler generated dependencies file for adaptive_tau.
# This may be replaced when dependencies are built.
