# Empty dependencies file for index_compare.
# This may be replaced when dependencies are built.
