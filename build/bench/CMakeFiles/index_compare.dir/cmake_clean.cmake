file(REMOVE_RECURSE
  "CMakeFiles/index_compare.dir/index_compare.cpp.o"
  "CMakeFiles/index_compare.dir/index_compare.cpp.o.d"
  "index_compare"
  "index_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
