# Empty compiler generated dependencies file for staleness_sim.
# This may be replaced when dependencies are built.
