file(REMOVE_RECURSE
  "CMakeFiles/staleness_sim.dir/staleness_sim.cpp.o"
  "CMakeFiles/staleness_sim.dir/staleness_sim.cpp.o.d"
  "staleness_sim"
  "staleness_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleness_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
