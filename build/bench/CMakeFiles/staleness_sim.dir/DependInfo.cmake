
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/staleness_sim.cpp" "bench/CMakeFiles/staleness_sim.dir/staleness_sim.cpp.o" "gcc" "bench/CMakeFiles/staleness_sim.dir/staleness_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rag/CMakeFiles/proximity_rag.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/proximity_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/proximity_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/proximity_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/proximity_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/proximity_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/proximity_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proximity_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
