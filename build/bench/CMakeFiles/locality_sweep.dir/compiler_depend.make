# Empty compiler generated dependencies file for locality_sweep.
# This may be replaced when dependencies are built.
