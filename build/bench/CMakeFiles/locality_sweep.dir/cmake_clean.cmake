file(REMOVE_RECURSE
  "CMakeFiles/locality_sweep.dir/locality_sweep.cpp.o"
  "CMakeFiles/locality_sweep.dir/locality_sweep.cpp.o.d"
  "locality_sweep"
  "locality_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
