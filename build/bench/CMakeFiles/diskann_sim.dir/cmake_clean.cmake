file(REMOVE_RECURSE
  "CMakeFiles/diskann_sim.dir/diskann_sim.cpp.o"
  "CMakeFiles/diskann_sim.dir/diskann_sim.cpp.o.d"
  "diskann_sim"
  "diskann_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diskann_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
