# Empty compiler generated dependencies file for diskann_sim.
# This may be replaced when dependencies are built.
