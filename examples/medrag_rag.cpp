// End-to-end MedRAG-like pipeline: the flat-index (expensive-retrieval)
// regime where Proximity's speedup is largest, plus a demonstration of the
// tau-too-large failure mode (the 37%-accuracy cliff of §4.3.1).
//
// Usage: medrag_rag [corpus=8000] [capacity=200] [seed=1]
#include <cstdio>

#include "common/config.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  const auto corpus_size =
      static_cast<std::size_t>(cfg.GetInt("corpus", 8000));
  const auto capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 200));
  const auto seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 1));

  const Workload workload = BuildWorkload(MedragLikeSpec(corpus_size, 42));
  HashEmbedder embedder;
  LogInfo("embedding {} passages", workload.passages.size());
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  IndexSpec spec;
  spec.kind = "flat";  // the paper serves PubMed with FAISS-FLAT
  auto index = BuildIndex(spec, corpus_embeddings);

  QueryStreamOptions sopts;
  sopts.seed = seed;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix stream_embeddings = embedder.EmbedBatch(texts);

  std::printf("MedRAG-like pipeline: %zu queries over %zu passages\n",
              stream.size(), workload.passages.size());
  std::printf("%-10s %-10s %-10s %-12s %s\n", "tau", "accuracy", "hit_rate",
              "latency_ms", "note");

  for (double tau : {0.0, 2.0, 5.0, 10.0}) {
    ProximityCacheOptions copts;
    copts.capacity = capacity;
    copts.tolerance = static_cast<float>(tau);
    copts.metric = index->metric();
    ProximityCache cache(embedder.dim(), copts);
    Retriever retriever(index.get(), &cache, nullptr, {.top_k = 10});
    RagPipeline pipeline(&workload, &embedder, &retriever,
                         AnswerModel(MedragAnswerParams()), seed);
    const RunMetrics m = pipeline.RunStream(stream, stream_embeddings);

    const char* note = "";
    if (tau == 0.0) note = "exact matching: no hits, full-price retrieval";
    if (tau == 5.0) note = "sweet spot: variant hits, accuracy held";
    if (tau == 10.0) note = "too loose: misleading context, accuracy cliff";
    std::printf("%-10.1f %-10.3f %-10.3f %-12.3f %s\n", tau, m.accuracy,
                m.hit_rate, m.mean_latency_ms, note);
  }
  return 0;
}
