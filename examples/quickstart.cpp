// Quickstart: put a Proximity cache in front of a vector index.
//
// Builds a small flat index over random document embeddings, wraps it with
// the approximate cache, and shows the miss -> hit transition for two
// nearby queries (the q1/q2 scenario of Figure 2 in the paper).
#include <cstdio>

#include "cache/proximity_cache.h"
#include "common/rng.h"
#include "index/flat_index.h"
#include "rag/retriever.h"

int main() {
  using namespace proximity;
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kDocs = 10000;

  // 1. A vector database: exact flat index over random document embeddings.
  FlatIndex index(kDim, {.metric = Metric::kL2});
  Rng rng(42);
  Matrix docs(kDocs, kDim);
  for (std::size_t r = 0; r < kDocs; ++r) {
    for (auto& x : docs.MutableRow(r)) {
      x = static_cast<float>(rng.Gaussian(0, 1));
    }
  }
  index.AddBatch(docs);

  // 2. The Proximity cache: capacity c = 100 entries, tolerance tau = 1.0,
  //    same metric as the database (required).
  ProximityCacheOptions opts;
  opts.capacity = 100;
  opts.tolerance = 1.0f;
  opts.metric = index.metric();
  ProximityCache cache(kDim, opts);

  // 3. The retriever wires them together (Figure 2).
  Retriever retriever(&index, &cache, /*clock=*/nullptr, {.top_k = 5});

  // Query q1: a fresh embedding -> cache miss, database lookup.
  std::vector<float> q1(kDim);
  for (auto& x : q1) x = static_cast<float>(rng.Gaussian(0, 1));
  auto r1 = retriever.Retrieve(q1);
  std::printf("q1: cache_hit=%d  docs=[", r1.cache_hit);
  for (std::size_t i = 0; i < r1.documents.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(r1.documents[i]));
  }
  std::printf("]  latency=%.1fus\n",
              static_cast<double>(r1.latency_ns) / 1e3);

  // Query q2: a small perturbation of q1 (a rephrased question) -> its
  // distance to the cached q1 is below tau, so the cache serves q1's
  // documents without touching the database.
  std::vector<float> q2 = q1;
  for (auto& x : q2) x += static_cast<float>(rng.Gaussian(0, 0.02));
  auto r2 = retriever.Retrieve(q2);
  std::printf("q2: cache_hit=%d  docs=[", r2.cache_hit);
  for (std::size_t i = 0; i < r2.documents.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(r2.documents[i]));
  }
  std::printf("]  latency=%.1fus\n",
              static_cast<double>(r2.latency_ns) / 1e3);

  // Query q3: unrelated -> miss again.
  std::vector<float> q3(kDim);
  for (auto& x : q3) x = static_cast<float>(rng.Gaussian(0, 1));
  auto r3 = retriever.Retrieve(q3);
  std::printf("q3: cache_hit=%d  latency=%.1fus\n", r3.cache_hit,
              static_cast<double>(r3.latency_ns) / 1e3);

  const auto& stats = cache.stats();
  std::printf("\ncache stats: lookups=%llu hits=%llu hit_rate=%.2f\n",
              static_cast<unsigned long long>(stats.lookups),
              static_cast<unsigned long long>(stats.hits), stats.HitRate());
  return 0;
}
