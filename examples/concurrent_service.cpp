// Concurrent RAG service simulation: many "users" share one Proximity
// cache; similar in-flight retrievals coalesce onto a single database
// query (cache-stampede protection generalized to similarity matching).
//
// Usage: concurrent_service [corpus=4000] [threads=8] [tau=2]
#include <cstdio>

#include "cache/concurrent_cache.h"
#include "common/config.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "rag/concurrent_driver.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  const auto corpus_size =
      static_cast<std::size_t>(cfg.GetInt("corpus", 4000));
  const auto threads = static_cast<std::size_t>(cfg.GetInt("threads", 8));
  const float tau = static_cast<float>(cfg.GetDouble("tau", 2.0));

  const Workload workload = BuildWorkload(MmluLikeSpec(corpus_size, 42));
  HashEmbedder embedder;
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  IndexSpec spec;
  spec.kind = "hnsw";
  spec.hnsw_ef_construction = 100;
  auto index = BuildIndex(spec, corpus_embeddings);

  // Zipf-popular traffic: the conversational-agent pattern the paper's
  // locality argument rests on (§1, citing [10]).
  QueryStreamOptions sopts;
  sopts.order = StreamOrder::kZipf;
  sopts.zipf_length = 2000;
  sopts.seed = 1;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix embeddings = embedder.EmbedBatch(texts);

  std::printf("%zu queries, %zu worker threads, tau=%.1f\n", stream.size(),
              threads, static_cast<double>(tau));

  ProximityCacheOptions copts;
  copts.capacity = 200;
  copts.tolerance = tau;
  ConcurrentProximityCache cache(embedder.dim(), copts);

  const auto result = RunStreamConcurrent(
      workload, *index, cache, AnswerModel(MmluAnswerParams()), 1, stream,
      embeddings, threads);

  const auto& stats = result.cache_stats;
  std::printf("\naccuracy        %.3f\n", result.metrics.accuracy);
  std::printf("hit rate        %.3f\n", result.metrics.hit_rate);
  std::printf("mean latency    %.3f ms\n", result.metrics.mean_latency_ms);
  std::printf("db retrievals   %llu (of %llu lookups)\n",
              static_cast<unsigned long long>(stats.retrievals),
              static_cast<unsigned long long>(stats.lookups));
  std::printf("coalesced       %llu (similar queries that piggybacked on an "
              "in-flight retrieval)\n",
              static_cast<unsigned long long>(stats.coalesced));
  return 0;
}
