// Filtered retrieval with a filter-aware cache.
//
// Scenario: the corpus is partitioned into "collections" (think: year,
// department, tenant). Queries carry a collection filter; retrieval must
// only return documents from that collection, and — the subtle part —
// cached results must never leak across filters. FilteredCacheRouter
// keeps one Proximity cache per filter tag.
//
// Usage: filtered_rag [corpus=5000] [collections=4] [tau=2]
#include <cstdio>

#include "cache/filtered_router.h"
#include "common/config.h"
#include "common/rng.h"
#include "embed/hash_embedder.h"
#include "index/flat_index.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  const auto corpus_size =
      static_cast<std::size_t>(cfg.GetInt("corpus", 5000));
  const auto collections =
      static_cast<std::size_t>(cfg.GetInt("collections", 4));
  const float tau = static_cast<float>(cfg.GetDouble("tau", 2.0));

  const Workload workload = BuildWorkload(MmluLikeSpec(corpus_size, 42));
  HashEmbedder embedder;
  FlatIndex index(embedder.dim());
  index.AddBatch(embedder.EmbedBatch(workload.passages));

  // Assign each passage to a collection (hash of its id).
  auto collection_of = [collections](VectorId id) {
    return static_cast<std::size_t>(SplitMix64(
               static_cast<std::uint64_t>(id) ^ 0xc0111ec7)) %
           collections;
  };

  ProximityCacheOptions copts;
  copts.capacity = 100;
  copts.tolerance = tau;
  FilteredCacheRouter router(embedder.dim(), copts);

  QueryStreamOptions sopts;
  sopts.seed = 1;
  const auto stream = BuildQueryStream(workload, sopts);

  std::size_t db_queries = 0, violations = 0;
  Rng rng(7);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto embedding = embedder.Embed(stream[i].text);
    // Each query targets a (pseudo-random but deterministic) collection.
    const FilterTag tag = 1 + rng.Below(collections);
    const std::size_t wanted = static_cast<std::size_t>(tag - 1);

    std::vector<VectorId> documents;
    const auto cached = router.Lookup(tag, embedding);
    if (cached.hit) {
      documents.assign(cached.documents.begin(), cached.documents.end());
    } else {
      ++db_queries;
      const auto results = index.SearchFiltered(
          embedding, 10,
          [&](VectorId id) { return collection_of(id) == wanted; });
      for (const auto& n : results) documents.push_back(n.id);
      router.Insert(tag, embedding, documents);
    }
    // Invariant: every served document belongs to the requested
    // collection — across cache hits and misses alike.
    for (VectorId id : documents) {
      if (collection_of(id) != wanted) ++violations;
    }
  }

  const auto total = router.TotalStats();
  std::printf("queries          %zu\n", stream.size());
  std::printf("database queries %zu\n", db_queries);
  std::printf("cache hit rate   %.3f\n", total.HitRate());
  std::printf("filter tags      %zu (one cache each)\n", router.tag_count());
  std::printf("filter violations %zu  <-- must be zero\n", violations);
  return violations == 0 ? 0 : 1;
}
