// End-to-end MMLU-like RAG pipeline with the cache on and off.
//
// Walks the full Figure-1 workflow on the synthetic MMLU workload: build
// corpus -> embed -> index (HNSW) -> stream of question variants ->
// retrieve (with/without Proximity) -> prompt -> simulated LLM answer.
// Prints the paper's three metrics side by side.
//
// Usage: mmlu_rag [corpus=10000] [capacity=200] [tau=2] [seed=1]
#include <cstdio>

#include "common/config.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "llm/prompt.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  const auto corpus_size =
      static_cast<std::size_t>(cfg.GetInt("corpus", 10000));
  const auto capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 200));
  const float tau = static_cast<float>(cfg.GetDouble("tau", 2.0));
  const auto seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 1));

  // Steps 1-2 of Figure 1: chunk + embed the corpus, fill the database.
  const Workload workload = BuildWorkload(MmluLikeSpec(corpus_size, 42));
  HashEmbedder embedder;
  LogInfo("embedding {} passages", workload.passages.size());
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  IndexSpec spec;
  spec.kind = "hnsw";
  spec.hnsw_ef_construction = 100;
  auto index = BuildIndex(spec, corpus_embeddings);

  // Steps 3-4: the shuffled question-variant stream.
  QueryStreamOptions sopts;
  sopts.seed = seed;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix stream_embeddings = embedder.EmbedBatch(texts);

  auto run = [&](ProximityCache* cache, const char* label) {
    Retriever retriever(index.get(), cache, nullptr, {.top_k = 10});
    RagPipeline pipeline(&workload, &embedder, &retriever,
                         AnswerModel(MmluAnswerParams()), seed);
    const RunMetrics m = pipeline.RunStream(stream, stream_embeddings);
    std::printf("%-12s accuracy=%.3f hit_rate=%.3f latency=%.3fms\n", label,
                m.accuracy, m.hit_rate, m.mean_latency_ms);
    return m;
  };

  std::printf("MMLU-like pipeline: %zu queries over %zu passages\n",
              stream.size(), workload.passages.size());
  const RunMetrics base = run(nullptr, "no cache:");

  ProximityCacheOptions copts;
  copts.capacity = capacity;
  copts.tolerance = tau;
  copts.metric = index->metric();
  ProximityCache cache(embedder.dim(), copts);
  const RunMetrics cached = run(&cache, "proximity:");

  if (base.mean_latency_ms > 0) {
    std::printf("\nretrieval latency reduction: %.1f%% (tau=%.1f, c=%zu)\n",
                (1.0 - cached.mean_latency_ms / base.mean_latency_ms) * 100.0,
                static_cast<double>(tau), capacity);
  }

  // Show one augmented prompt, end to end (steps 6-7 of Figure 1).
  const auto& entry = stream.front();
  Retriever retriever(index.get(), &cache, nullptr, {.top_k = 3});
  const auto outcome = retriever.Retrieve(stream_embeddings.Row(0));
  const std::string prompt =
      BuildPrompt(entry.text, outcome.documents, workload.passages);
  std::printf("\n--- sample augmented prompt (truncated) ---\n%.400s...\n",
              prompt.c_str());
  return 0;
}
