// Adaptive-tolerance demo (the paper's §3.2.3 future-work idea).
//
// Runs the MMLU-like stream while a proportional controller steers tau
// toward a target hit rate, printing the tau trajectory — no workload
// knowledge (distance scale, variant structure) is given to the
// controller.
//
// Usage: adaptive_cache [corpus=6000] [capacity=200] [target=0.6] [seed=1]
#include <cstdio>

#include "cache/adaptive_tau.h"
#include "common/config.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/index_factory.h"
#include "llm/answer_model.h"
#include "rag/pipeline.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  const auto corpus_size =
      static_cast<std::size_t>(cfg.GetInt("corpus", 6000));
  const auto capacity = static_cast<std::size_t>(cfg.GetInt("capacity", 200));
  const double target = cfg.GetDouble("target", 0.6);
  const auto seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 1));

  const Workload workload = BuildWorkload(MmluLikeSpec(corpus_size, 42));
  HashEmbedder embedder;
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  IndexSpec spec;
  spec.kind = "hnsw";
  spec.hnsw_ef_construction = 100;
  auto index = BuildIndex(spec, corpus_embeddings);

  QueryStreamOptions sopts;
  sopts.seed = seed;
  const auto stream = BuildQueryStream(workload, sopts);
  std::vector<std::string> texts;
  for (const auto& e : stream) texts.push_back(e.text);
  const Matrix stream_embeddings = embedder.EmbedBatch(texts);

  ProximityCacheOptions copts;
  copts.capacity = capacity;
  copts.tolerance = 0.5f;
  copts.metric = index->metric();
  ProximityCache cache(embedder.dim(), copts);
  Retriever retriever(index.get(), &cache, nullptr, {.top_k = 10});
  RagPipeline pipeline(&workload, &embedder, &retriever,
                       AnswerModel(MmluAnswerParams()), seed);

  AdaptiveTauOptions aopts;
  aopts.target_hit_rate = target;
  aopts.initial_tau = 0.5;
  aopts.max_tau = 20.0;
  aopts.window = 64;
  aopts.period = 8;
  AdaptiveTau controller(aopts);

  std::printf("adaptive cache: target hit rate %.2f, %zu queries\n", target,
              stream.size());
  std::printf("%-8s %-8s %-10s\n", "query", "tau", "hit_rate(win)");

  std::size_t hits = 0, correct = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    cache.set_tolerance(static_cast<float>(controller.tau()));
    const QueryResult r = pipeline.ProcessQuery(stream[i],
                                                stream_embeddings.Row(i), i);
    controller.Observe(r.cache_hit);
    hits += r.cache_hit;
    correct += r.correct;
    if (i % 64 == 0) {
      std::printf("%-8zu %-8.2f %-10.3f\n", i, controller.tau(),
                  controller.WindowedHitRate());
    }
  }
  std::printf("\nfinal: tau=%.2f overall_hit_rate=%.3f accuracy=%.3f "
              "adjustments=%llu\n",
              controller.tau(),
              static_cast<double>(hits) / static_cast<double>(stream.size()),
              static_cast<double>(correct) /
                  static_cast<double>(stream.size()),
              static_cast<unsigned long long>(controller.adjustments()));
  return 0;
}
