// Persistence: build once, snapshot to disk, reload, keep serving.
//
// Demonstrates the binary persistence layer: the HNSW index and the
// Proximity cache are saved after a warm-up stream and reloaded into a
// fresh process state; the reloaded cache keeps its hit coverage.
//
// Usage: persistence [corpus=4000] [dir=/tmp]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cache/proximity_cache.h"
#include "common/config.h"
#include "common/log.h"
#include "embed/hash_embedder.h"
#include "index/hnsw_index.h"
#include "index/index_io.h"
#include "rag/retriever.h"
#include "workload/benchmark_spec.h"
#include "workload/query_stream.h"

int main(int argc, char** argv) {
  using namespace proximity;
  const Config cfg = Config::FromArgs(argc, argv);
  const auto corpus_size =
      static_cast<std::size_t>(cfg.GetInt("corpus", 4000));
  const std::filesystem::path dir = cfg.GetString("dir", "/tmp");
  const auto index_path = (dir / "proximity_index.bin").string();
  const auto cache_path = (dir / "proximity_cache.bin").string();

  // Build and warm up.
  const Workload workload = BuildWorkload(MmluLikeSpec(corpus_size, 42));
  HashEmbedder embedder;
  const Matrix corpus_embeddings = embedder.EmbedBatch(workload.passages);
  HnswIndex index(embedder.dim(), {.ef_construction = 100});
  LogInfo("building HNSW over {} passages", corpus_embeddings.rows());
  index.AddBatch(corpus_embeddings);

  ProximityCacheOptions copts;
  copts.capacity = 200;
  copts.tolerance = 2.0f;
  ProximityCache cache(embedder.dim(), copts);

  QueryStreamOptions sopts;
  sopts.seed = 1;
  const auto stream = BuildQueryStream(workload, sopts);
  {
    Retriever retriever(&index, &cache, nullptr, {.top_k = 10});
    for (std::size_t i = 0; i < stream.size() / 2; ++i) {
      retriever.Retrieve(embedder.Embed(stream[i].text));
    }
    std::printf("warm-up: %zu queries, hit rate %.3f\n", stream.size() / 2,
                retriever.stats().HitRate());
  }

  // Snapshot both artifacts.
  SaveIndexToFile(index, index_path);
  {
    std::ofstream os(cache_path, std::ios::binary | std::ios::trunc);
    cache.SaveTo(os);
  }
  std::printf("saved index -> %s (%ju bytes)\n", index_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(index_path)));
  std::printf("saved cache -> %s (%ju bytes)\n", cache_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(cache_path)));

  // Reload into fresh objects and serve the second half of the stream.
  auto reloaded_index = LoadIndexFromFile(index_path);
  std::ifstream is(cache_path, std::ios::binary);
  ProximityCache reloaded_cache = ProximityCache::LoadFrom(is);
  std::printf("reloaded: %s, cache entries %zu\n",
              reloaded_index->Describe().c_str(), reloaded_cache.size());

  Retriever retriever(reloaded_index.get(), &reloaded_cache, nullptr,
                      {.top_k = 10});
  for (std::size_t i = stream.size() / 2; i < stream.size(); ++i) {
    retriever.Retrieve(embedder.Embed(stream[i].text));
  }
  std::printf("post-reload: %zu queries, hit rate %.3f "
              "(warm cache carried over)\n",
              stream.size() - stream.size() / 2,
              retriever.stats().HitRate());
  return 0;
}
