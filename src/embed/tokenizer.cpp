#include "embed/tokenizer.h"

namespace proximity {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    const auto uc = static_cast<unsigned char>(ch);
    if ((uc >= 'a' && uc <= 'z') || (uc >= '0' && uc <= '9')) {
      current += static_cast<char>(uc);
    } else if (uc >= 'A' && uc <= 'Z') {
      current += static_cast<char>(uc - 'A' + 'a');
    } else {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace proximity
