#include "embed/hash_embedder.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "embed/tokenizer.h"
#include "vecmath/ops.h"

namespace proximity {

namespace {

// FNV-1a over the token bytes, then splitmix finalization.
std::uint64_t HashToken(std::string_view token, std::uint64_t salt) noexcept {
  std::uint64_t h = 1469598103934665603ULL ^ salt;
  for (char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return SplitMix64(h);
}

}  // namespace

HashEmbedder::HashEmbedder(HashEmbedderOptions options) : options_(options) {
  if (options_.dim == 0) {
    throw std::invalid_argument("HashEmbedder: dim must be > 0");
  }
  if (options_.scale <= 0.f) {
    throw std::invalid_argument("HashEmbedder: scale must be > 0");
  }
}

void HashEmbedder::Accumulate(std::string_view token_a,
                              std::string_view token_b, float weight,
                              std::span<float> acc) const {
  std::uint64_t h = HashToken(token_a, options_.salt);
  if (!token_b.empty()) {
    h = SplitMix64(h ^ HashToken(token_b, options_.salt ^ 0xb161ULL));
  }
  const std::size_t idx = h % options_.dim;
  const float sign = (h >> 63) ? 1.f : -1.f;
  acc[idx] += sign * weight;
}

void HashEmbedder::EmbedInto(std::string_view text,
                             std::span<float> out) const {
  if (out.size() != options_.dim) {
    throw std::invalid_argument("HashEmbedder::EmbedInto: bad output size");
  }
  for (auto& x : out) x = 0.f;
  const std::vector<std::string> tokens = Tokenize(text);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    Accumulate(tokens[i], {}, 1.f, out);
    if (i + 1 < tokens.size()) {
      Accumulate(tokens[i], tokens[i + 1], options_.bigram_weight, out);
    }
  }
  NormalizeL2(out);
  Scale(out, options_.scale);
}

std::vector<float> HashEmbedder::Embed(std::string_view text) const {
  std::vector<float> out(options_.dim, 0.f);
  EmbedInto(text, out);
  return out;
}

Matrix HashEmbedder::EmbedBatch(const std::vector<std::string>& texts) const {
  Matrix result(texts.size(), options_.dim);
  // Take the mutable pointer once, on this thread: MutableRow from the
  // workers would hit the norm-cache drop concurrently.
  float* out = result.data();
  const std::size_t dim = options_.dim;
  ThreadPool::Shared().ParallelForChunked(
      0, texts.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          EmbedInto(texts[i], {out + i * dim, dim});
        }
      });
  return result;
}

}  // namespace proximity
