// Textual query perturbation — the paper's variant protocol.
//
// §4.2: "To simulate similarity, we generate four variants of each
// question by adding some small textual prefix to them." This module
// provides that prefix generator: a pool of short conversational fillers
// ("please tell me", "quick question", ...) chosen deterministically per
// (question, variant) pair.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace proximity {

/// Number of distinct prefixes available.
std::size_t PrefixPoolSize() noexcept;

/// Returns prefix `i % PrefixPoolSize()`.
std::string_view PrefixAt(std::size_t i) noexcept;

/// Builds variant `variant` of `question`. Variant 0 is the question
/// verbatim; variants >= 1 prepend a filler prefix selected by a hash of
/// (seed, question_id, variant), so reruns are reproducible.
std::string MakeVariant(std::string_view question, std::size_t question_id,
                        std::size_t variant, std::uint64_t seed);

/// Convenience: all `count` variants of a question (index 0 = verbatim).
std::vector<std::string> MakeVariants(std::string_view question,
                                      std::size_t question_id,
                                      std::size_t count, std::uint64_t seed);

}  // namespace proximity
