// Word tokenizer for the hashing embedder.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace proximity {

/// Splits text into lowercase alphanumeric tokens. "What is GDP?" ->
/// ["what", "is", "gdp"]. Deterministic, locale-independent (ASCII rules;
/// non-ASCII bytes are treated as separators).
std::vector<std::string> Tokenize(std::string_view text);

/// Joins tokens with single spaces (inverse of Tokenize up to case and
/// punctuation; used to build synthetic passages).
std::string JoinTokens(const std::vector<std::string>& tokens);

}  // namespace proximity
