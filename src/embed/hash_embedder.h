// Feature-hashing text embedder — the deterministic stand-in for the
// 768-dimensional DPR-style encoder used by the paper (§4.2).
//
// Each unigram and bigram is hashed to a (dimension, sign) pair and
// accumulated into a bag-of-features vector, which is then L2-normalized
// and scaled to a configurable norm. The embedder preserves the geometric
// property Proximity relies on: texts differing by a small prefix land
// close together, texts on the same topic land at moderate distance
// (shared vocabulary), and unrelated texts land far apart.
//
// The `scale` option maps cosine dissimilarity into the squared-L2 range
// the paper sweeps τ over: with unit-cosine geometry, the squared distance
// between two embeddings of norm s is d² = 2·s²·(1 − cos). The default
// s = √8 puts completely unrelated texts at d² ≈ 16 and near-duplicates
// below 1, matching the paper's τ ∈ {0, 0.5, 1, 2, 5, 10} operating range.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "vecmath/matrix.h"

namespace proximity {

struct HashEmbedderOptions {
  std::size_t dim = 768;
  /// Final L2 norm of every embedding.
  float scale = 2.828427f;  // sqrt(8)
  /// Relative weight of bigram features vs unigram features.
  float bigram_weight = 0.6f;
  /// Hash salt; two embedders with different salts produce incompatible
  /// spaces (used by tests to verify the space is salt-dependent).
  std::uint64_t salt = 0x9d5fULL;
};

class HashEmbedder {
 public:
  explicit HashEmbedder(HashEmbedderOptions options = {});

  std::size_t dim() const noexcept { return options_.dim; }
  float scale() const noexcept { return options_.scale; }

  /// Embeds `text` into a dim()-dimensional vector of norm `scale`.
  /// Empty/whitespace-only text maps to the zero vector.
  std::vector<float> Embed(std::string_view text) const;

  /// Embeds into caller-provided storage (avoids the allocation).
  void EmbedInto(std::string_view text, std::span<float> out) const;

  /// Embeds a batch of texts into a row-major matrix, in parallel.
  Matrix EmbedBatch(const std::vector<std::string>& texts) const;

 private:
  void Accumulate(std::string_view token_a, std::string_view token_b,
                  float weight, std::span<float> acc) const;

  HashEmbedderOptions options_;
};

}  // namespace proximity
