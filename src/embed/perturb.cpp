#include "embed/perturb.h"

#include <array>

#include "common/rng.h"

namespace proximity {

namespace {
// Short conversational fillers; small relative to a ~25-token question so
// the variant lands near the original in embedding space.
constexpr std::array<std::string_view, 16> kPrefixes = {
    "please tell me",
    "quick question",
    "i was wondering",
    "could you explain",
    "help me understand",
    "just curious",
    "one more thing",
    "let me ask",
    "tell me please",
    "i need to know",
    "a question for you",
    "here is my question",
    "answer this for me",
    "riddle me this",
    "so basically",
    "real quick",
};
}  // namespace

std::size_t PrefixPoolSize() noexcept { return kPrefixes.size(); }

std::string_view PrefixAt(std::size_t i) noexcept {
  return kPrefixes[i % kPrefixes.size()];
}

std::string MakeVariant(std::string_view question, std::size_t question_id,
                        std::size_t variant, std::uint64_t seed) {
  if (variant == 0) return std::string(question);
  // Distinct variants of the same question must get distinct prefixes, so
  // offset a hashed base index by the variant number.
  const std::uint64_t base =
      SplitMix64(seed ^ SplitMix64(question_id * 0x9e37ULL));
  const std::size_t idx =
      static_cast<std::size_t>(base + variant) % kPrefixes.size();
  std::string out(kPrefixes[idx]);
  out += ' ';
  out += question;
  return out;
}

std::vector<std::string> MakeVariants(std::string_view question,
                                      std::size_t question_id,
                                      std::size_t count, std::uint64_t seed) {
  std::vector<std::string> variants;
  variants.reserve(count);
  for (std::size_t v = 0; v < count; ++v) {
    variants.push_back(MakeVariant(question, question_id, v, seed));
  }
  return variants;
}

}  // namespace proximity
