#include "workload/corpus.h"

#include <array>
#include <cassert>
#include <stdexcept>

#include "common/rng.h"
#include "workload/synth_text.h"

namespace proximity {

namespace {

// Question scaffolding shared by every question of every domain; together
// with the global vocabulary this is the "floor" similarity between any
// two questions.
constexpr std::array<std::string_view, 12> kTemplateWords = {
    "which", "of",     "the",    "following", "statements", "about",
    "is",    "correct", "given",  "that",      "why",        "how"};

void AppendWord(std::string& text, std::string_view word) {
  if (!text.empty()) text += ' ';
  text += word;
}

std::string MakeQuestionText(const WorkloadSpec& spec, std::size_t qid,
                             std::size_t cluster) {
  // The non-entity part is deterministic per scope — every question of the
  // domain shares the same template+subject word sequence, and every
  // question of a cluster additionally shares the cluster sequence. Shared
  // *sequences* (not just shared vocabulary) are what give same-cluster
  // questions both common unigrams and common bigrams, placing them at the
  // moderate embedding distance the τ sweep needs to discriminate.
  std::string text;
  for (std::size_t i = 0; i < spec.question_template_tokens; ++i) {
    AppendWord(text, kTemplateWords[i % kTemplateWords.size()]);
  }
  for (std::size_t i = 0; i < spec.question_subject_tokens; ++i) {
    AppendWord(text, SubjectWord(spec.domain, i));
  }
  for (std::size_t i = 0; i < spec.question_cluster_tokens; ++i) {
    AppendWord(text, ClusterWord(spec.domain, cluster, i));
  }
  // Entity words are enumerated, not sampled: each question uses exactly
  // its own entities 0..n-1, and its gold passages repeat the same set.
  for (std::size_t i = 0; i < spec.question_entity_tokens; ++i) {
    AppendWord(text, EntityWord(spec.domain, qid, i));
  }
  return text;
}

std::string MakeGoldPassage(const WorkloadSpec& spec, std::size_t qid,
                            std::size_t cluster, Rng& rng) {
  std::string text;
  std::size_t budget = spec.passage_tokens;
  // Repeat the question's entities so the passage dominates retrieval.
  for (std::size_t rep = 0; rep < spec.gold_entity_repeats; ++rep) {
    for (std::size_t i = 0; i < spec.question_entity_tokens && budget > 0;
         ++i, --budget) {
      AppendWord(text, EntityWord(spec.domain, qid, i));
    }
  }
  // Fill with cluster, subject, and global words.
  while (budget > 0) {
    const std::uint64_t pick = rng.Below(10);
    if (pick < 3) {
      AppendWord(text, ClusterWord(spec.domain, cluster,
                                   rng.Below(spec.cluster_vocab)));
    } else if (pick < 6) {
      AppendWord(text,
                 SubjectWord(spec.domain, rng.Below(spec.subject_vocab)));
    } else {
      AppendWord(text, GlobalWord(rng.Below(spec.global_vocab)));
    }
    --budget;
  }
  return text;
}

std::string MakeTopicalDistractor(const WorkloadSpec& spec,
                                  std::size_t cluster, Rng& rng) {
  std::string text;
  for (std::size_t i = 0; i < spec.passage_tokens; ++i) {
    const std::uint64_t pick = rng.Below(10);
    if (pick < 4) {
      AppendWord(text, ClusterWord(spec.domain, cluster,
                                   rng.Below(spec.cluster_vocab)));
    } else if (pick < 7) {
      AppendWord(text,
                 SubjectWord(spec.domain, rng.Below(spec.subject_vocab)));
    } else {
      AppendWord(text, GlobalWord(rng.Below(spec.global_vocab)));
    }
  }
  return text;
}

std::string MakeBackgroundPassage(const WorkloadSpec& spec, Rng& rng) {
  // Background passages simulate the mass of the corpus that has nothing
  // to do with the benchmark subject (e.g. the rest of Wikipedia). They
  // borrow vocabulary from synthetic "foreign" domains.
  std::string text;
  const std::size_t foreign_domain =
      90 + static_cast<std::size_t>(rng.Below(10));
  const std::size_t foreign_cluster =
      static_cast<std::size_t>(rng.Below(50));
  for (std::size_t i = 0; i < spec.passage_tokens; ++i) {
    const std::uint64_t pick = rng.Below(10);
    if (pick < 3) {
      AppendWord(text, ClusterWord(foreign_domain, foreign_cluster,
                                   rng.Below(spec.cluster_vocab)));
    } else if (pick < 5) {
      AppendWord(text,
                 SubjectWord(foreign_domain, rng.Below(spec.subject_vocab)));
    } else {
      AppendWord(text, GlobalWord(rng.Below(spec.global_vocab)));
    }
  }
  return text;
}

}  // namespace

Workload BuildWorkload(const WorkloadSpec& spec) {
  if (spec.num_questions == 0) {
    throw std::invalid_argument("BuildWorkload: num_questions must be > 0");
  }
  if (spec.num_clusters == 0) {
    throw std::invalid_argument("BuildWorkload: num_clusters must be > 0");
  }
  const std::size_t gold_total =
      spec.num_questions * spec.golds_per_question;
  if (spec.corpus_size < gold_total) {
    throw std::invalid_argument(
        "BuildWorkload: corpus_size smaller than total gold passages");
  }

  Rng rng(spec.seed);
  Rng passage_rng = rng.Fork(2);

  Workload w;
  w.spec = spec;
  w.passages.reserve(spec.corpus_size);
  w.passage_cluster.reserve(spec.corpus_size);
  w.gold_for.reserve(spec.corpus_size);
  w.questions.reserve(spec.num_questions);

  // Questions, round-robin over clusters.
  for (std::size_t q = 0; q < spec.num_questions; ++q) {
    Question question;
    question.cluster = q % spec.num_clusters;
    question.text = MakeQuestionText(spec, q, question.cluster);
    w.questions.push_back(std::move(question));
  }

  // Gold passages.
  for (std::size_t q = 0; q < spec.num_questions; ++q) {
    auto& question = w.questions[q];
    for (std::size_t g = 0; g < spec.golds_per_question; ++g) {
      const VectorId id = static_cast<VectorId>(w.passages.size());
      w.passages.push_back(
          MakeGoldPassage(spec, q, question.cluster, passage_rng));
      w.passage_cluster.push_back(static_cast<std::int32_t>(question.cluster));
      w.gold_for.push_back(static_cast<std::int32_t>(q));
      question.gold_ids.push_back(id);
    }
  }

  // Distractors: topical within the question clusters, plus unrelated
  // background filling the rest of the corpus.
  const std::size_t remaining = spec.corpus_size - w.passages.size();
  const auto topical = static_cast<std::size_t>(
      static_cast<double>(remaining) * spec.topical_fraction);
  for (std::size_t i = 0; i < topical; ++i) {
    const std::size_t cluster = i % spec.num_clusters;
    w.passages.push_back(MakeTopicalDistractor(spec, cluster, passage_rng));
    w.passage_cluster.push_back(static_cast<std::int32_t>(cluster));
    w.gold_for.push_back(-1);
  }
  while (w.passages.size() < spec.corpus_size) {
    w.passages.push_back(MakeBackgroundPassage(spec, passage_rng));
    w.passage_cluster.push_back(-1);
    w.gold_for.push_back(-1);
  }

  return w;
}

}  // namespace proximity
