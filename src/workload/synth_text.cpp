#include "workload/synth_text.h"

#include <array>

#include "common/rng.h"

namespace proximity {

namespace {
constexpr std::array<char, 20> kConsonants = {
    'b', 'c', 'd', 'f', 'g', 'h', 'j', 'k', 'l', 'm',
    'n', 'p', 'q', 'r', 's', 't', 'v', 'w', 'x', 'z'};
constexpr std::array<char, 5> kVowels = {'a', 'e', 'i', 'o', 'u'};
constexpr std::uint64_t kSyllableBase = 100;  // 20 consonants x 5 vowels
}  // namespace

std::string SyllableWord(std::uint64_t n, std::size_t min_syllables) {
  std::string out;
  std::size_t count = 0;
  do {
    const std::uint64_t digit = n % kSyllableBase;
    n /= kSyllableBase;
    out += kConsonants[digit / kVowels.size()];
    out += kVowels[digit % kVowels.size()];
    ++count;
  } while (n > 0 || count < min_syllables);
  return out;
}

std::string GlobalWord(std::size_t i) {
  return "ga" + SyllableWord(SplitMix64(0x6100 + i) % 1000000 * 1000 + i);
}

std::string SubjectWord(std::size_t domain, std::size_t i) {
  return "su" + SyllableWord(domain, 1) + SyllableWord(i);
}

std::string ClusterWord(std::size_t domain, std::size_t cluster,
                        std::size_t i) {
  return "ke" + SyllableWord(domain, 1) + SyllableWord(cluster, 1) +
         SyllableWord(i);
}

std::string EntityWord(std::size_t domain, std::size_t question,
                       std::size_t i) {
  return "en" + SyllableWord(domain, 1) + SyllableWord(question) +
         SyllableWord(i, 1);
}

}  // namespace proximity
