// The two evaluation workloads of the paper, pre-parameterized.
//
// §4.2: MMLU econometrics (131 questions, WIKI_DPR corpus, FAISS-HNSW) and
// MedRAG/PubMedQA (200 questions, PubMed corpus, FAISS-FLAT). Corpus sizes
// are scaled down from 21M/23.9M to harness scale; `corpus_size` can be
// overridden from the command line of every bench.
#pragma once

#include <cstdint>

#include "workload/corpus.h"

namespace proximity {

/// MMLU-econometrics-like: one tight subject; questions cluster closely, so
/// moderate tolerances already produce cross-question cache hits, and the
/// RAG accuracy uplift over the no-RAG baseline is small (48% -> ~50.2%).
WorkloadSpec MmluLikeSpec(std::size_t corpus_size = 50000,
                          std::uint64_t seed = 42);

/// PubMedQA-like: diverse medical questions; clusters are farther apart
/// (high entity content), the RAG uplift is large (57% -> 88%), and
/// misleading context is actively harmful (37% at τ = 10).
WorkloadSpec MedragLikeSpec(std::size_t corpus_size = 20000,
                            std::uint64_t seed = 42);

}  // namespace proximity
