// Query-trace persistence: save and replay evaluation streams.
//
// A trace is a plain tab-separated text file, one query per line:
//   <question_id> \t <variant> \t <query text>
// with '#' comment lines. Traces make experiments portable — the exact
// stream a result was produced with can be checked in, diffed, and
// replayed against a modified cache.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/query_stream.h"

namespace proximity {

void WriteTrace(std::ostream& os, const std::vector<StreamEntry>& stream);

/// Parses a trace. Throws std::runtime_error on malformed lines.
/// If `max_question` is non-zero, question ids >= max_question are
/// rejected (use workload.questions.size() to validate a replay target).
std::vector<StreamEntry> ReadTrace(std::istream& is,
                                   std::size_t max_question = 0);

void SaveTraceToFile(const std::vector<StreamEntry>& stream,
                     const std::string& path);
std::vector<StreamEntry> LoadTraceFromFile(const std::string& path,
                                           std::size_t max_question = 0);

}  // namespace proximity
