// Synthetic RAG workload: clustered corpus + questions with gold passages.
//
// Stand-in for WIKI_DPR (21M Wikipedia passages) / PubMed (23.9M snippets)
// and the MMLU-econometrics / PubMedQA question subsets of the paper
// (§4.2). The generator reproduces the two properties the evaluation
// depends on:
//
//  1. Embedding geometry. Question text is composed from four vocabulary
//     scopes — template+global (shared by everything), subject (shared by
//     the whole benchmark domain), cluster (shared within a concept
//     cluster), entity (unique per question). The mixing ratios control
//     the distances between prefix-variants, same-cluster questions and
//     unrelated questions, i.e. where the paper's τ sweep bites.
//
//  2. Retrieval ground truth. Each question owns `golds_per_question` gold
//     passages that repeat its entity words; exact NNS pulls them to the
//     top. Every other passage is a topical or background distractor. The
//     answer model scores LLM context quality by how many golds the served
//     (possibly cached) indices contain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace proximity {

struct WorkloadSpec {
  /// Tag used in logs and as the vocabulary domain id.
  std::size_t domain = 0;
  std::string name = "workload";

  std::size_t num_questions = 131;
  /// Concept clusters the questions are spread over.
  std::size_t num_clusters = 12;
  std::size_t golds_per_question = 4;

  /// Total corpus size (gold passages included). The remainder is filled
  /// with same-cluster distractors and unrelated background passages.
  std::size_t corpus_size = 20000;
  /// Fraction of non-gold passages drawn from the question clusters (the
  /// rest is unrelated background).
  double topical_fraction = 0.3;

  // --- question text composition (token counts per scope) ---
  std::size_t question_template_tokens = 6;
  std::size_t question_subject_tokens = 6;
  std::size_t question_cluster_tokens = 3;
  std::size_t question_entity_tokens = 5;

  // --- passage text composition ---
  std::size_t passage_tokens = 45;
  /// How many times each entity word is repeated inside a gold passage.
  std::size_t gold_entity_repeats = 3;

  // --- vocabulary sizes ---
  std::size_t global_vocab = 600;
  std::size_t subject_vocab = 40;
  std::size_t cluster_vocab = 30;

  std::uint64_t seed = 42;
};

struct Question {
  std::string text;
  std::size_t cluster = 0;
  /// Corpus ids of this question's gold passages.
  std::vector<VectorId> gold_ids;
};

struct Workload {
  WorkloadSpec spec;
  /// Passage texts; index in this vector == VectorId in the index.
  std::vector<std::string> passages;
  /// Cluster of each passage; -1 for unrelated background.
  std::vector<std::int32_t> passage_cluster;
  /// Question the passage is gold for; -1 for distractors.
  std::vector<std::int32_t> gold_for;
  std::vector<Question> questions;
};

/// Builds the full workload deterministically from spec.seed.
Workload BuildWorkload(const WorkloadSpec& spec);

}  // namespace proximity
