// Query-stream construction: variants, shuffling, and locality patterns.
//
// §4.2: "we generate four variants of each question by adding some small
// textual prefix to them and we randomize the order of the resulting 524
// questions for MMLU and 800 for MedRAG." kShuffled reproduces that
// protocol; the other orders are extensions used by the ablation benches
// to vary temporal locality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/corpus.h"

namespace proximity {

enum class StreamOrder {
  /// The paper's protocol: global random shuffle of all variants.
  kShuffled,
  /// All variants of a question arrive back to back (maximal temporal
  /// locality; upper bound for the cache).
  kGrouped,
  /// Question popularity is Zipf-distributed and variants are sampled
  /// with replacement (conversational-agent-style traffic, cf. [10]).
  kZipf,
};

struct QueryStreamOptions {
  std::size_t variants_per_question = 4;  // the paper's 4 variants
  StreamOrder order = StreamOrder::kShuffled;
  /// Stream length for kZipf (ignored otherwise: length is
  /// questions x variants).
  std::size_t zipf_length = 1000;
  double zipf_exponent = 1.0;
  std::uint64_t seed = 42;
};

struct StreamEntry {
  std::size_t question = 0;  // index into Workload::questions
  std::size_t variant = 0;   // 0 = verbatim question
  std::string text;          // the perturbed query text
};

/// Builds the evaluation stream for `workload` under the given options.
std::vector<StreamEntry> BuildQueryStream(const Workload& workload,
                                          const QueryStreamOptions& options);

}  // namespace proximity
