#include "workload/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace proximity {

void WriteTrace(std::ostream& os, const std::vector<StreamEntry>& stream) {
  os << "# proximity query trace v1: question_id\tvariant\ttext\n";
  for (const auto& entry : stream) {
    if (entry.text.find('\t') != std::string::npos ||
        entry.text.find('\n') != std::string::npos) {
      throw std::invalid_argument(
          "WriteTrace: query text contains tab/newline");
    }
    os << entry.question << '\t' << entry.variant << '\t' << entry.text
       << '\n';
  }
  if (!os) throw std::runtime_error("WriteTrace: stream write failed");
}

std::vector<StreamEntry> ReadTrace(std::istream& is,
                                   std::size_t max_question) {
  std::vector<StreamEntry> stream;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto tab1 = line.find('\t');
    const auto tab2 =
        tab1 == std::string::npos ? std::string::npos
                                  : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      throw std::runtime_error("ReadTrace: malformed line " +
                               std::to_string(line_no));
    }
    StreamEntry entry;
    try {
      entry.question = std::stoull(line.substr(0, tab1));
      entry.variant = std::stoull(line.substr(tab1 + 1, tab2 - tab1 - 1));
    } catch (const std::exception&) {
      throw std::runtime_error("ReadTrace: bad ids on line " +
                               std::to_string(line_no));
    }
    entry.text = line.substr(tab2 + 1);
    if (max_question != 0 && entry.question >= max_question) {
      throw std::runtime_error("ReadTrace: question id out of range on line " +
                               std::to_string(line_no));
    }
    stream.push_back(std::move(entry));
  }
  return stream;
}

void SaveTraceToFile(const std::vector<StreamEntry>& stream,
                     const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("SaveTraceToFile: cannot open " + path);
  WriteTrace(os, stream);
}

std::vector<StreamEntry> LoadTraceFromFile(const std::string& path,
                                           std::size_t max_question) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("LoadTraceFromFile: cannot open " + path);
  return ReadTrace(is, max_question);
}

}  // namespace proximity
