// Deterministic pseudo-word synthesis for the synthetic corpora.
//
// The corpus generator composes passages and questions from four word
// categories with different sharing scopes; the categories control how
// close questions land in embedding space (see corpus.h). Words are
// pronounceable syllable strings, purely alphabetic so the tokenizer keeps
// each one intact, and globally unique across categories via a leading
// category tag.
#pragma once

#include <cstdint>
#include <string>

namespace proximity {

/// Pronounceable encoding of `n` as consonant-vowel syllables ("zu", "ka",
/// ...), at least `min_syllables` long.
std::string SyllableWord(std::uint64_t n, std::size_t min_syllables = 2);

/// Background vocabulary shared by every passage and question.
std::string GlobalWord(std::size_t i);

/// Vocabulary shared by all questions/passages of one benchmark domain
/// (e.g. econometrics as a whole).
std::string SubjectWord(std::size_t domain, std::size_t i);

/// Vocabulary shared within one concept cluster of a domain.
std::string ClusterWord(std::size_t domain, std::size_t cluster,
                        std::size_t i);

/// Vocabulary unique to one question (its "entities"); gold passages embed
/// these words, which is what makes them retrievable.
std::string EntityWord(std::size_t domain, std::size_t question,
                       std::size_t i);

}  // namespace proximity
