#include "workload/query_stream.h"

#include <stdexcept>

#include "common/rng.h"
#include "embed/perturb.h"

namespace proximity {

std::vector<StreamEntry> BuildQueryStream(const Workload& workload,
                                          const QueryStreamOptions& options) {
  if (options.variants_per_question == 0) {
    throw std::invalid_argument(
        "BuildQueryStream: variants_per_question must be > 0");
  }
  Rng rng(options.seed);
  std::vector<StreamEntry> stream;

  auto make_entry = [&](std::size_t q, std::size_t v) {
    return StreamEntry{
        .question = q,
        .variant = v,
        .text = MakeVariant(workload.questions[q].text, q, v, options.seed),
    };
  };

  switch (options.order) {
    case StreamOrder::kShuffled:
    case StreamOrder::kGrouped: {
      stream.reserve(workload.questions.size() *
                     options.variants_per_question);
      for (std::size_t q = 0; q < workload.questions.size(); ++q) {
        for (std::size_t v = 0; v < options.variants_per_question; ++v) {
          stream.push_back(make_entry(q, v));
        }
      }
      if (options.order == StreamOrder::kShuffled) {
        rng.Shuffle(stream);
      }
      break;
    }
    case StreamOrder::kZipf: {
      ZipfSampler sampler(workload.questions.size(), options.zipf_exponent);
      // Shuffle question identities so low ranks are not always the first
      // generated questions.
      std::vector<std::size_t> identity(workload.questions.size());
      for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
      rng.Shuffle(identity);
      stream.reserve(options.zipf_length);
      for (std::size_t i = 0; i < options.zipf_length; ++i) {
        const std::size_t q = identity[sampler.Sample(rng)];
        const std::size_t v = static_cast<std::size_t>(
            rng.Below(options.variants_per_question));
        stream.push_back(make_entry(q, v));
      }
      break;
    }
  }
  return stream;
}

}  // namespace proximity
