#include "workload/benchmark_spec.h"

namespace proximity {

WorkloadSpec MmluLikeSpec(std::size_t corpus_size, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.domain = 1;
  spec.name = "mmlu_econometrics";
  spec.num_questions = 131;  // the econometrics subset size (§4.2)
  spec.num_clusters = 12;
  spec.golds_per_question = 4;
  spec.corpus_size = corpus_size;
  spec.topical_fraction = 0.3;

  // Tight subject: questions share many subject/cluster tokens, so
  // same-cluster questions sit at moderate distance (τ = 5 reaches them)
  // and even cross-cluster econometrics questions fall inside τ = 10.
  spec.question_template_tokens = 6;
  spec.question_subject_tokens = 6;
  spec.question_cluster_tokens = 3;
  spec.question_entity_tokens = 5;

  spec.seed = seed;
  return spec;
}

WorkloadSpec MedragLikeSpec(std::size_t corpus_size, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.domain = 2;
  spec.name = "medrag_pubmedqa";
  spec.num_questions = 200;  // 200 PubMedQA queries (§4.2)
  spec.num_clusters = 25;
  spec.golds_per_question = 4;
  spec.corpus_size = corpus_size;
  spec.topical_fraction = 0.3;

  // Diverse questions: entity-heavy text pushes same-cluster questions
  // beyond τ = 5 (variants still hit) while τ = 10 starts accepting
  // cross-question matches, reproducing the MedRAG accuracy cliff.
  spec.question_template_tokens = 4;
  spec.question_subject_tokens = 2;
  spec.question_cluster_tokens = 4;
  spec.question_entity_tokens = 10;

  spec.seed = seed;
  return spec;
}

}  // namespace proximity
