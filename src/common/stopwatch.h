// Wall-clock stopwatch and a virtual clock for simulated latencies.
//
// Retrieval latency in the paper (§4.2, metric iii) is the time to obtain
// the relevant chunks, covering both cache lookups and database queries.
// Real work in this repository is timed with Stopwatch; deterministic
// *simulated* delays (e.g. the DiskANN-style storage model) are accounted on
// a VirtualClock so experiment output does not depend on host jitter.
#pragma once

#include <atomic>
#include <chrono>

#include "common/types.h"

namespace proximity {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void Restart() noexcept { start_ = Clock::now(); }

  Nanos ElapsedNanos() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const noexcept {
    return static_cast<double>(ElapsedNanos()) / kNanosPerMilli;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates simulated time. Thread-safe.
///
/// Components that model slow media (disk-resident indexes, network hops)
/// charge their deterministic delay here instead of sleeping, which keeps
/// benchmarks fast and their output exactly reproducible.
class VirtualClock {
 public:
  void Advance(Nanos delta) noexcept {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }

  Nanos Now() const noexcept { return now_.load(std::memory_order_relaxed); }

  void Reset() noexcept { now_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<Nanos> now_{0};
};

}  // namespace proximity
