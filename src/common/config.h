// key=value configuration parsing for bench/example binaries.
//
// All harness binaries accept overrides as "key=value" command-line
// arguments (e.g. `fig3_mmlu corpus=100000 seeds=3`), so sweeps can be
// re-run at different scales without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace proximity {

class Config {
 public:
  Config() = default;

  /// Parses argv[1..] entries of the form key=value. Arguments that do not
  /// contain '=' are collected as positional arguments. Throws
  /// std::invalid_argument on an empty key.
  static Config FromArgs(int argc, const char* const* argv);

  /// Parses newline-separated key=value text ('#' starts a comment).
  static Config FromString(const std::string& text);

  void Set(std::string key, std::string value);
  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Parses a comma-separated list of doubles, e.g. "0,0.5,1,2,5,10".
  std::vector<double> GetDoubleList(const std::string& key,
                                    std::vector<double> fallback) const;
  std::vector<std::int64_t> GetIntList(
      const std::string& key, std::vector<std::int64_t> fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// All keys in sorted order (for echoing the effective config).
  std::vector<std::string> Keys() const;

 private:
  std::optional<std::string> Find(const std::string& key) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace proximity
