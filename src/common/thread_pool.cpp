#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

namespace proximity {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::TryRunOne() {
  std::packaged_task<void()> task;
  {
    std::lock_guard lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();  // packaged_task captures exceptions into the future
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForChunked(begin, end,
                     [&fn](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) fn(i);
                     });
}

void ThreadPool::ParallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, size() + 1);
  if (parts <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;

  std::vector<std::future<void>> futures;
  futures.reserve(parts - 1);
  std::size_t lo = begin + chunk;  // first chunk runs on the calling thread
  for (std::size_t p = 1; p < parts && lo < end; ++p) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(Submit([&fn, lo, hi] { fn(lo, hi); }));
    lo = hi;
  }
  fn(begin, std::min(end, begin + chunk));

  std::exception_ptr first_error;
  for (auto& f : futures) {
    // Help-while-waiting: a chunk that is still queued can only be stuck
    // behind other queued work, so run that work here instead of blocking.
    // Once the queue is empty the chunk is either running or done, and a
    // plain wait cannot deadlock.
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!TryRunOne()) f.wait();
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

namespace {
std::atomic<std::size_t> g_shared_size{0};
std::atomic<bool> g_shared_built{false};
}  // namespace

ThreadPool& ThreadPool::Shared() {
  g_shared_built.store(true);
  static ThreadPool pool(g_shared_size.load());
  return pool;
}

bool ThreadPool::SetSharedSize(std::size_t threads) {
  if (g_shared_built.load()) return false;
  g_shared_size.store(threads);
  return true;
}

}  // namespace proximity
