// Terminal line charts for the benchmark harness.
//
// Each bench can render its CSV series as a quick ASCII chart (enable
// with plot=true), so the Figure-3 shapes are visible without leaving the
// terminal: one glyph per series, a left axis with min/max labels, and a
// legend.
#pragma once

#include <string>
#include <vector>

namespace proximity {

struct PlotSeries {
  std::string label;
  /// (x, y) points; x values may be irregular, the chart interpolates
  /// column positions linearly in x.
  std::vector<std::pair<double, double>> points;
};

struct PlotOptions {
  std::size_t width = 60;   // plot columns (excluding the axis gutter)
  std::size_t height = 16;  // plot rows
  std::string title;
  std::string x_label;
  std::string y_label;
  /// Force the y range; when min == max the range is derived from data.
  double y_min = 0.0;
  double y_max = 0.0;
  /// Use a log10 x axis (the tau sweeps are roughly geometric).
  bool log_x = false;
};

/// Renders the series into a multi-line string ending in '\n'.
/// Series get glyphs '*', 'o', '+', 'x', '#', '@' in order (cycled).
std::string RenderAsciiPlot(const std::vector<PlotSeries>& series,
                            const PlotOptions& options = {});

}  // namespace proximity
