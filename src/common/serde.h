// Versioned, checksummed binary serialization primitives.
//
// Format contract used by every persistent artifact in the repo (indexes,
// cache snapshots):
//   [magic u32] [version u32] [payload ...] [checksum u64]
// The checksum is FNV-1a over every payload byte, computed incrementally
// by the writer and verified by the reader, so truncated or corrupted
// files fail loudly instead of deserializing garbage.
//
// All integers are little-endian (the only supported build targets are
// little-endian; a static_assert enforces it).
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "vecmath/matrix.h"

namespace proximity {

static_assert(std::endian::native == std::endian::little,
              "serde assumes a little-endian target");

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void WriteU32(std::uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(std::uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(std::int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s);
  void WriteFloats(std::span<const float> v);
  void WriteU8s(std::span<const std::uint8_t> v);
  void WriteI64s(std::span<const std::int64_t> v);
  void WriteU32s(std::span<const std::uint32_t> v);
  void WriteU64s(std::span<const std::uint64_t> v);

  /// Emits the running checksum trailer. Call exactly once, last.
  void Finish();

  std::uint64_t checksum() const noexcept { return checksum_; }

 private:
  void WriteRaw(const void* data, std::size_t size);

  std::ostream& os_;
  std::uint64_t checksum_ = 1469598103934665603ULL;  // FNV offset basis
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  std::uint32_t ReadU32();
  std::uint64_t ReadU64();
  std::int64_t ReadI64();
  float ReadF32();
  double ReadF64();

  std::string ReadString(std::size_t max_size = 1 << 20);
  std::vector<float> ReadFloats(std::size_t max_count = 1u << 30);
  std::vector<std::uint8_t> ReadU8s(std::size_t max_count = 1u << 30);
  std::vector<std::int64_t> ReadI64s(std::size_t max_count = 1u << 28);
  std::vector<std::uint32_t> ReadU32s(std::size_t max_count = 1u << 28);
  std::vector<std::uint64_t> ReadU64s(std::size_t max_count = 1u << 27);

  /// Reads the trailer and throws std::runtime_error if the stream's
  /// checksum does not match the bytes read so far.
  void VerifyChecksum();

 private:
  void ReadRaw(void* data, std::size_t size);

  std::istream& is_;
  std::uint64_t checksum_ = 1469598103934665603ULL;
};

/// Writes "[magic][version]".
void WriteHeader(BinaryWriter& w, std::uint32_t magic, std::uint32_t version);

/// Reads and validates the header; returns the stored version. Throws
/// std::runtime_error on a magic mismatch or version > max_version.
std::uint32_t ReadHeader(BinaryReader& r, std::uint32_t expected_magic,
                         std::uint32_t max_version);

void WriteMatrix(BinaryWriter& w, const Matrix& m);
Matrix ReadMatrix(BinaryReader& r);

}  // namespace proximity
