// Fixed-size thread pool with a ParallelFor helper.
//
// Used for index construction (k-means, HNSW inserts are serial by design,
// but flat scans and corpus embedding parallelize well). The pool is
// deliberately simple: one global queue, condition-variable wakeups.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace proximity {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future observes its completion and
  /// propagates exceptions.
  std::future<void> Submit(std::function<void()> task);

  /// Pops and runs one queued task on the calling thread. Returns false
  /// when the queue is empty. This is the help-while-waiting primitive
  /// that makes nested ParallelFor calls deadlock-free: a blocked caller
  /// drains the queue instead of occupying a worker slot idle (the
  /// sharded index fans per-shard searches onto the pool while a large
  /// flat shard may fan its scan onto the same pool underneath).
  bool TryRunOne();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool plus the calling thread. Blocks until all iterations
  /// complete; while blocked the caller helps drain the queue (see
  /// TryRunOne), so ParallelFor may be called from inside pool tasks.
  /// Rethrows the first exception raised by any chunk.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// Like ParallelFor but hands each worker a [chunk_begin, chunk_end)
  /// range, which avoids per-iteration indirection in tight loops.
  void ParallelForChunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Shared process-wide pool sized to the host.
  static ThreadPool& Shared();

  /// Overrides the size the shared pool is built with (0 = host width).
  /// Must run before the first Shared() call; returns false (and changes
  /// nothing) once the pool exists. Benches use this to emulate wider
  /// hosts (`shard_scaling --threads N`) on small machines.
  static bool SetSharedSize(std::size_t threads);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace proximity
