#include "common/serde.h"

#include <stdexcept>

namespace proximity {

namespace {
inline std::uint64_t FnvStep(std::uint64_t h, const unsigned char* data,
                             std::size_t size) noexcept {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

void BinaryWriter::WriteRaw(const void* data, std::size_t size) {
  os_.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  if (!os_) throw std::runtime_error("BinaryWriter: stream write failed");
  checksum_ =
      FnvStep(checksum_, static_cast<const unsigned char*>(data), size);
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteFloats(std::span<const float> v) {
  WriteU64(v.size());
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteU8s(std::span<const std::uint8_t> v) {
  WriteU64(v.size());
  if (!v.empty()) WriteRaw(v.data(), v.size());
}

void BinaryWriter::WriteI64s(std::span<const std::int64_t> v) {
  WriteU64(v.size());
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(std::int64_t));
}

void BinaryWriter::WriteU32s(std::span<const std::uint32_t> v) {
  WriteU64(v.size());
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(std::uint32_t));
}

void BinaryWriter::WriteU64s(std::span<const std::uint64_t> v) {
  WriteU64(v.size());
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(std::uint64_t));
}

void BinaryWriter::Finish() {
  // The trailer itself is excluded from the checksum.
  const std::uint64_t sum = checksum_;
  os_.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
  if (!os_) throw std::runtime_error("BinaryWriter: trailer write failed");
  os_.flush();
}

void BinaryReader::ReadRaw(void* data, std::size_t size) {
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(is_.gcount()) != size) {
    throw std::runtime_error("BinaryReader: unexpected end of stream");
  }
  checksum_ = FnvStep(checksum_, static_cast<unsigned char*>(data), size);
}

std::uint32_t BinaryReader::ReadU32() {
  std::uint32_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::uint64_t BinaryReader::ReadU64() {
  std::uint64_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::int64_t BinaryReader::ReadI64() {
  std::int64_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadF64() {
  double v;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString(std::size_t max_size) {
  const std::uint64_t size = ReadU64();
  if (size > max_size) {
    throw std::runtime_error("BinaryReader: string too large");
  }
  std::string s(size, '\0');
  if (size > 0) ReadRaw(s.data(), size);
  return s;
}

std::vector<float> BinaryReader::ReadFloats(std::size_t max_count) {
  const std::uint64_t count = ReadU64();
  if (count > max_count) {
    throw std::runtime_error("BinaryReader: float array too large");
  }
  std::vector<float> v(count);
  if (count > 0) ReadRaw(v.data(), count * sizeof(float));
  return v;
}

std::vector<std::uint8_t> BinaryReader::ReadU8s(std::size_t max_count) {
  const std::uint64_t count = ReadU64();
  if (count > max_count) {
    throw std::runtime_error("BinaryReader: byte array too large");
  }
  std::vector<std::uint8_t> v(count);
  if (count > 0) ReadRaw(v.data(), count);
  return v;
}

std::vector<std::int64_t> BinaryReader::ReadI64s(std::size_t max_count) {
  const std::uint64_t count = ReadU64();
  if (count > max_count) {
    throw std::runtime_error("BinaryReader: i64 array too large");
  }
  std::vector<std::int64_t> v(count);
  if (count > 0) ReadRaw(v.data(), count * sizeof(std::int64_t));
  return v;
}

std::vector<std::uint32_t> BinaryReader::ReadU32s(std::size_t max_count) {
  const std::uint64_t count = ReadU64();
  if (count > max_count) {
    throw std::runtime_error("BinaryReader: u32 array too large");
  }
  std::vector<std::uint32_t> v(count);
  if (count > 0) ReadRaw(v.data(), count * sizeof(std::uint32_t));
  return v;
}

std::vector<std::uint64_t> BinaryReader::ReadU64s(std::size_t max_count) {
  const std::uint64_t count = ReadU64();
  if (count > max_count) {
    throw std::runtime_error("BinaryReader: u64 array too large");
  }
  std::vector<std::uint64_t> v(count);
  if (count > 0) ReadRaw(v.data(), count * sizeof(std::uint64_t));
  return v;
}

void BinaryReader::VerifyChecksum() {
  const std::uint64_t expected = checksum_;  // before consuming the trailer
  std::uint64_t stored;
  is_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(is_.gcount()) != sizeof(stored)) {
    throw std::runtime_error("BinaryReader: missing checksum trailer");
  }
  if (stored != expected) {
    throw std::runtime_error("BinaryReader: checksum mismatch (corrupt file)");
  }
}

void WriteHeader(BinaryWriter& w, std::uint32_t magic,
                 std::uint32_t version) {
  w.WriteU32(magic);
  w.WriteU32(version);
}

std::uint32_t ReadHeader(BinaryReader& r, std::uint32_t expected_magic,
                         std::uint32_t max_version) {
  const std::uint32_t magic = r.ReadU32();
  if (magic != expected_magic) {
    throw std::runtime_error("serde: magic mismatch (wrong file type)");
  }
  const std::uint32_t version = r.ReadU32();
  if (version == 0 || version > max_version) {
    throw std::runtime_error("serde: unsupported format version " +
                             std::to_string(version));
  }
  return version;
}

void WriteMatrix(BinaryWriter& w, const Matrix& m) {
  w.WriteU64(m.dim());
  w.WriteU64(m.rows());
  w.WriteFloats({m.data(), m.rows() * m.dim()});
}

Matrix ReadMatrix(BinaryReader& r) {
  const std::uint64_t dim = r.ReadU64();
  const std::uint64_t rows = r.ReadU64();
  if (dim == 0) throw std::runtime_error("ReadMatrix: zero dimension");
  auto data = r.ReadFloats();
  if (data.size() != rows * dim) {
    throw std::runtime_error("ReadMatrix: size mismatch");
  }
  return Matrix(std::move(data), dim);
}

}  // namespace proximity
