#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace proximity {

namespace {
std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

Config Config::FromArgs(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(arg);
    } else {
      cfg.Set(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
  return cfg;
}

Config Config::FromString(const std::string& text) {
  Config cfg;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(line);
    } else {
      cfg.Set(Trim(line.substr(0, eq)), Trim(line.substr(eq + 1)));
    }
  }
  return cfg;
}

void Config::Set(std::string key, std::string value) {
  if (key.empty()) {
    throw std::invalid_argument("Config: empty key");
  }
  values_[std::move(key)] = std::move(value);
}

bool Config::Has(const std::string& key) const {
  return values_.contains(key);
}

std::optional<std::string> Config::Find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  return Find(key).value_or(fallback);
}

std::int64_t Config::GetInt(const std::string& key,
                            std::int64_t fallback) const {
  auto v = Find(key);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto v = Find(key);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto v = Find(key);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::invalid_argument("Config: bad bool for key '" + key + "': " + *v);
}

std::vector<double> Config::GetDoubleList(const std::string& key,
                                          std::vector<double> fallback) const {
  auto v = Find(key);
  if (!v) return fallback;
  std::vector<double> out;
  std::istringstream iss(*v);
  std::string item;
  while (std::getline(iss, item, ',')) {
    item = Trim(item);
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

std::vector<std::int64_t> Config::GetIntList(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  auto v = Find(key);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::istringstream iss(*v);
  std::string item;
  while (std::getline(iss, item, ',')) {
    item = Trim(item);
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out;
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, _] : values_) keys.push_back(k);
  return keys;
}

}  // namespace proximity
