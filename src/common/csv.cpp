#include "common/csv.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace proximity {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("CsvTable: header must not be empty");
  }
}

void CsvTable::AddRow(std::vector<Cell> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("CsvTable: row width " +
                                std::to_string(cells.size()) +
                                " != header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void CsvTable::WriteCell(std::ostream& os, const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) {
    const bool needs_quote =
        s->find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      os << *s;
      return;
    }
    os << '"';
    for (char ch : *s) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  } else if (const auto* d = std::get_if<double>(&c)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", *d);
    os << buf;
  } else {
    os << std::get<std::int64_t>(c);
  }
}

void CsvTable::Write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      WriteCell(os, row[i]);
    }
    os << '\n';
  }
}

std::string CsvTable::ToString() const {
  std::ostringstream oss;
  Write(oss);
  return oss.str();
}

}  // namespace proximity
