// Tiny CSV table builder used by the benchmark harness.
//
// Every bench binary emits one or more CSV blocks whose columns mirror the
// axes of the paper figure it regenerates, so results can be plotted
// directly.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace proximity {

class CsvTable {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit CsvTable(std::vector<std::string> header);

  /// Appends a row; the number of cells must match the header width.
  void AddRow(std::vector<Cell> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return header_.size(); }

  /// Writes "header\nrow\nrow..." with RFC-4180 quoting of string cells.
  void Write(std::ostream& os) const;

  /// Returns the serialized table as a string.
  std::string ToString() const;

 private:
  static void WriteCell(std::ostream& os, const Cell& c);

  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace proximity
