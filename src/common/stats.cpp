#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace proximity {

void StreamingStats::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

std::size_t LatencyHistogram::BucketIndex(Nanos ns) noexcept {
  if (ns < 1) ns = 1;
  const double b = std::log10(static_cast<double>(ns)) * kBucketsPerDecade;
  auto idx = static_cast<std::size_t>(b);
  return std::min(idx, kNumBuckets - 1);
}

double LatencyHistogram::BucketLow(std::size_t b) const noexcept {
  return std::pow(10.0, static_cast<double>(b) / kBucketsPerDecade);
}

void LatencyHistogram::Record(Nanos ns) noexcept {
  ++buckets_[BucketIndex(ns)];
  min_ = total_ ? std::min(min_, ns) : ns;
  ++total_;
  sum_ += static_cast<double>(ns);
  max_ = std::max(max_, ns);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) noexcept {
  if (other.total_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = total_ ? std::min(min_, other.min_) : other.min_;
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::MergeBuckets(const std::uint64_t* counts, std::size_t n,
                                    double sum_ns, Nanos min_ns,
                                    Nanos max_ns) noexcept {
  n = std::min(n, buckets_.size());
  std::uint64_t added = 0;
  for (std::size_t i = 0; i < n; ++i) {
    buckets_[i] += counts[i];
    added += counts[i];
  }
  if (added == 0) return;
  min_ = total_ ? std::min(min_, min_ns) : min_ns;
  total_ += added;
  sum_ += sum_ns;
  max_ = std::max(max_, max_ns);
}

double LatencyHistogram::MeanNanos() const noexcept {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double LatencyHistogram::QuantileNanos(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(MinNanos());
  if (q >= 1.0) return static_cast<double>(max_);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) {
      // Midpoint of the bucket in log space, clamped so the bucket-low
      // approximation can never undershoot the true min (or overshoot max).
      const double mid = std::sqrt(BucketLow(b) * BucketLow(b + 1));
      return std::clamp(mid, static_cast<double>(MinNanos()),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string FormatNanos(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

std::string LatencyHistogram::Summary() const {
  std::string out = "n=" + std::to_string(total_);
  out += " mean=" + FormatNanos(MeanNanos());
  out += " p50=" + FormatNanos(QuantileNanos(0.5));
  out += " p90=" + FormatNanos(QuantileNanos(0.9));
  out += " p99=" + FormatNanos(QuantileNanos(0.99));
  out += " max=" + FormatNanos(static_cast<double>(max_));
  return out;
}

}  // namespace proximity
