// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository draws from one of these
// generators with an explicit seed, so that all experiments are exactly
// reproducible (the paper runs 5 seeds per configuration, §4.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace proximity {

/// Mixes a 64-bit value into a well-distributed 64-bit value (splitmix64
/// finalizer). Used both for seeding and as a cheap stateless hash.
std::uint64_t SplitMix64(std::uint64_t x) noexcept;

/// xoshiro256** — fast, high-quality 64-bit PRNG.
///
/// Satisfies std::uniform_random_bit_generator so it can be used with
/// standard <random> distributions, although the member helpers below are
/// preferred (they are deterministic across standard library versions).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return Next64(); }

  std::uint64_t Next64() noexcept;

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's method.
  std::uint64_t Below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform float in [0, 1).
  float NextFloat() noexcept;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept;

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double NextGaussian() noexcept;

  /// Gaussian with the given mean and stddev.
  double Gaussian(double mean, double stddev) noexcept;

  /// True with probability p.
  bool Bernoulli(double p) noexcept;

  /// Geometric-like Zipf(s) sample over {0, .., n-1} by inverse-CDF on a
  /// precomputed table is provided by ZipfSampler below; this helper samples
  /// an exponentially distributed double with the given rate.
  double Exponential(double rate) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; stream `label` values give
  /// statistically independent streams from one parent seed.
  Rng Fork(std::uint64_t label) noexcept;

 private:
  std::uint64_t s_[4];
};

/// Samples from a Zipf distribution over {0, .., n-1} with exponent s,
/// via a precomputed inverse CDF (O(log n) per sample).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t Sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace proximity
