#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace proximity {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void LogMessage(LogLevel level, std::string_view message) {
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += LevelName(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace proximity
