#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace proximity {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

double MapX(double x, bool log_x) {
  if (!log_x) return x;
  // Shift so that zero (tau = 0) still renders on a log-ish axis.
  return std::log10(std::max(x, 0.0) + 0.1);
}

std::string FormatTick(double v) {
  char buf[32];
  if (std::abs(v) >= 1000 || (std::abs(v) < 0.01 && v != 0)) {
    std::snprintf(buf, sizeof(buf), "%9.2e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%9.3f", v);
  }
  return buf;
}
}  // namespace

std::string RenderAsciiPlot(const std::vector<PlotSeries>& series,
                            const PlotOptions& options) {
  const std::size_t width = std::max<std::size_t>(options.width, 10);
  const std::size_t height = std::max<std::size_t>(options.height, 4);

  // Data ranges.
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = options.y_min;
  double y_max = options.y_max;
  const bool auto_y = options.y_min == options.y_max;
  if (auto_y) {
    y_min = std::numeric_limits<double>::infinity();
    y_max = -y_min;
  }
  bool any = false;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double mx = MapX(x, options.log_x);
      x_min = std::min(x_min, mx);
      x_max = std::max(x_max, mx);
      if (auto_y) {
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
      }
      any = true;
    }
  }
  if (!any) return "(no data)\n";
  if (x_max == x_min) x_max = x_min + 1;
  if (y_max == y_min) y_max = y_min + 1;

  std::vector<std::string> grid(height, std::string(width, ' '));
  auto plot_point = [&](double x, double y, char glyph) {
    const double fx = (MapX(x, options.log_x) - x_min) / (x_max - x_min);
    const double fy = (y - y_min) / (y_max - y_min);
    const auto col = static_cast<std::size_t>(
        std::lround(fx * static_cast<double>(width - 1)));
    const auto row_from_bottom = static_cast<std::size_t>(
        std::lround(std::clamp(fy, 0.0, 1.0) *
                    static_cast<double>(height - 1)));
    grid[height - 1 - row_from_bottom][col] = glyph;
  };

  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % std::size(kGlyphs)];
    for (const auto& [x, y] : series[s].points) plot_point(x, y, glyph);
  }

  std::string out;
  if (!options.title.empty()) {
    out += options.title;
    out += '\n';
  }
  for (std::size_t row = 0; row < height; ++row) {
    if (row == 0) {
      out += FormatTick(y_max);
    } else if (row == height - 1) {
      out += FormatTick(y_min);
    } else {
      out += std::string(9, ' ');
    }
    out += " |";
    out += grid[row];
    out += '\n';
  }
  out += std::string(9, ' ') + " +" + std::string(width, '-') + '\n';
  if (!options.x_label.empty()) {
    out += std::string(11, ' ') + options.x_label + '\n';
  }
  // Legend.
  for (std::size_t s = 0; s < series.size(); ++s) {
    out += "  ";
    out += kGlyphs[s % std::size(kGlyphs)];
    out += " = " + series[s].label + '\n';
  }
  return out;
}

}  // namespace proximity
