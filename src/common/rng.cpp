#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace proximity {

std::uint64_t SplitMix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four state words with successive splitmix64 outputs; this is
  // the initialization recommended by the xoshiro authors.
  std::uint64_t x = seed;
  for (auto& w : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    w = z ^ (z >> 31);
  }
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::Next64() noexcept {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() noexcept {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() noexcept {
  return static_cast<float>(Next64() >> 40) * 0x1.0p-24f;
}

double Rng::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() noexcept {
  // Box–Muller without the cached second value, so forked/copied generators
  // never diverge through hidden state.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double stddev) noexcept {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) noexcept { return NextDouble() < p; }

double Rng::Exponential(double rate) noexcept {
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / rate;
}

Rng Rng::Fork(std::uint64_t label) noexcept {
  return Rng(SplitMix64(s_[0] ^ SplitMix64(label ^ 0xa5a5a5a5a5a5a5a5ULL)));
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::Sample(Rng& rng) const noexcept {
  const double u = rng.NextDouble();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace proximity
