// Streaming statistics and fixed-layout latency histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace proximity {

/// Numerically stable streaming mean/variance/min/max (Welford).
class StreamingStats {
 public:
  void Add(double x) noexcept;
  void Merge(const StreamingStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Log-bucketed latency histogram over nanosecond samples.
///
/// Buckets are geometric with ~4.6% relative width (64 buckets per decade),
/// covering 1ns .. ~1000s, which is enough resolution for the percentile
/// summaries printed by the benches.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(Nanos ns) noexcept;
  void Merge(const LatencyHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  double MeanNanos() const noexcept;
  /// q in [0, 1]; returns an approximate quantile in nanoseconds.
  double QuantileNanos(double q) const noexcept;
  Nanos MaxNanos() const noexcept { return max_; }

  /// "p50=… p99=… max=…" one-line summary in adaptive units.
  std::string Summary() const;

 private:
  std::size_t BucketOf(Nanos ns) const noexcept;
  double BucketLow(std::size_t b) const noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  Nanos max_ = 0;
};

/// Formats a nanosecond value with an adaptive unit (ns/us/ms/s).
std::string FormatNanos(double ns);

}  // namespace proximity
