// Streaming statistics and fixed-layout latency histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace proximity {

/// Numerically stable streaming mean/variance/min/max (Welford).
class StreamingStats {
 public:
  void Add(double x) noexcept;
  void Merge(const StreamingStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Log-bucketed latency histogram over nanosecond samples.
///
/// Buckets are geometric with ~4.6% relative width (64 buckets per decade),
/// covering 1ns .. ~1000s, which is enough resolution for the percentile
/// summaries printed by the benches.
class LatencyHistogram {
 public:
  /// Bucket layout, shared with the obs metric shards (obs/metrics_registry)
  /// so their raw per-thread bucket arrays merge losslessly via
  /// MergeBuckets().
  static constexpr std::size_t kBucketsPerDecade = 64;
  static constexpr std::size_t kDecades = 12;  // 1ns .. 10^12 ns
  static constexpr std::size_t kNumBuckets = kBucketsPerDecade * kDecades;

  /// Bucket index a sample falls into (samples < 1ns clamp to bucket 0).
  static std::size_t BucketIndex(Nanos ns) noexcept;

  LatencyHistogram();

  void Record(Nanos ns) noexcept;
  void Merge(const LatencyHistogram& other) noexcept;

  /// Folds in raw bucket counts recorded externally with BucketIndex()
  /// (the obs shard-merge path). `counts` must hold `n <= kNumBuckets`
  /// entries; `sum_ns`/`min_ns`/`max_ns` describe the same sample set.
  /// No-op when the external set is empty (count sum of zero).
  void MergeBuckets(const std::uint64_t* counts, std::size_t n, double sum_ns,
                    Nanos min_ns, Nanos max_ns) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  double MeanNanos() const noexcept;
  /// q in [0, 1]; returns an approximate quantile in nanoseconds.
  ///
  /// Edge behavior: an empty histogram returns 0 for every q; q <= 0
  /// returns the exact minimum (MinNanos) and q >= 1 the exact maximum
  /// (MaxNanos). Interior quantiles are log-space bucket midpoints clamped
  /// to [MinNanos, MaxNanos], so no quantile can undershoot the smallest
  /// recorded sample or overshoot the largest.
  double QuantileNanos(double q) const noexcept;
  Nanos MaxNanos() const noexcept { return max_; }
  /// Exact smallest recorded sample (0 when empty), mirroring MaxNanos().
  Nanos MinNanos() const noexcept { return total_ ? min_ : 0; }

  /// "p50=… p99=… max=…" one-line summary in adaptive units.
  std::string Summary() const;

 private:
  double BucketLow(std::size_t b) const noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  Nanos min_ = 0;  // meaningful only when total_ > 0
  Nanos max_ = 0;
};

/// Formats a nanosecond value with an adaptive unit (ns/us/ms/s).
std::string FormatNanos(double ns);

}  // namespace proximity
