// Minimal leveled logger.
//
// Libraries in this repo log sparingly (index build progress, experiment
// phase transitions). The logger writes to stderr so CSV output on stdout
// stays machine-parseable.
//
// Formatting uses a small "{}" placeholder mini-language (subset of
// std::format, which GCC 12 does not ship): "{}" formats the next argument
// with operator<<; "{:.Nf}" formats a floating-point argument with N
// digits of precision.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace proximity {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// Writes "[LEVEL] message\n" to stderr. Thread-safe (single write call).
void LogMessage(LogLevel level, std::string_view message);

namespace detail {

inline void FormatRest(std::ostringstream& os, std::string_view fmt) {
  os << fmt;
}

template <typename Arg, typename... Rest>
void FormatRest(std::ostringstream& os, std::string_view fmt, Arg&& arg,
                Rest&&... rest) {
  const auto open = fmt.find('{');
  if (open == std::string_view::npos) {
    os << fmt;
    return;  // surplus arguments are ignored
  }
  const auto close = fmt.find('}', open);
  if (close == std::string_view::npos) {
    os << fmt;
    return;
  }
  os << fmt.substr(0, open);
  const std::string_view spec = fmt.substr(open + 1, close - open - 1);
  if (spec.size() >= 4 && spec[0] == ':' && spec[1] == '.' &&
      spec.back() == 'f') {
    const int precision = std::stoi(std::string(spec.substr(2,
                                                            spec.size() - 3)));
    const auto saved = os.precision();
    const auto flags = os.flags();
    os.setf(std::ios::fixed, std::ios::floatfield);
    os.precision(precision);
    os << arg;
    os.flags(flags);
    os.precision(saved);
  } else {
    os << arg;
  }
  FormatRest(os, fmt.substr(close + 1), std::forward<Rest>(rest)...);
}

template <typename... Args>
std::string Format(std::string_view fmt, Args&&... args) {
  std::ostringstream os;
  FormatRest(os, fmt, std::forward<Args>(args)...);
  return os.str();
}

}  // namespace detail

template <typename... Args>
void LogDebug(std::string_view fmt, Args&&... args) {
  if (GetLogLevel() <= LogLevel::kDebug) {
    LogMessage(LogLevel::kDebug,
               detail::Format(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void LogInfo(std::string_view fmt, Args&&... args) {
  if (GetLogLevel() <= LogLevel::kInfo) {
    LogMessage(LogLevel::kInfo,
               detail::Format(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void LogWarn(std::string_view fmt, Args&&... args) {
  if (GetLogLevel() <= LogLevel::kWarn) {
    LogMessage(LogLevel::kWarn,
               detail::Format(fmt, std::forward<Args>(args)...));
  }
}

template <typename... Args>
void LogError(std::string_view fmt, Args&&... args) {
  if (GetLogLevel() <= LogLevel::kError) {
    LogMessage(LogLevel::kError,
               detail::Format(fmt, std::forward<Args>(args)...));
  }
}

}  // namespace proximity
