// Basic shared types for the Proximity reproduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace proximity {

/// Identifier of a vector stored in an index (position in the corpus).
using VectorId = std::int64_t;

/// Sentinel for "no vector".
inline constexpr VectorId kInvalidVector = -1;

/// Monotonically increasing query sequence number.
using QuerySeq = std::uint64_t;

/// Identifier of a serving tenant (user/app stream sharing the server).
/// Carried on the wire as a u32, so the type is fixed-width.
using TenantId = std::uint32_t;

/// Tenant assumed when a request does not name one (v1 protocol frames,
/// single-tenant deployments).
inline constexpr TenantId kDefaultTenant = 0;

/// Duration in nanoseconds; all latency accounting in the repo uses this unit.
using Nanos = std::int64_t;

inline constexpr double kNanosPerMilli = 1e6;
inline constexpr double kNanosPerMicro = 1e3;

/// Terminal status of a served request. Shared by the batching driver
/// (which decides the outcome) and the net layer (which carries it on
/// the wire), so the codes never need translating between the two.
enum class RequestStatus : std::uint8_t {
  kOk = 0,
  /// The request's deadline passed before (or while) it was served.
  kDeadlineExceeded = 1,
  /// Shed at admission: the bounded queue was full.
  kResourceExhausted = 2,
  /// The serving component is shutting down / draining.
  kUnavailable = 3,
  /// Malformed request (bad frame, empty query, oversized payload).
  kInvalidArgument = 4,
  /// The pipeline threw while serving the request.
  kInternal = 5,
};

constexpr const char* RequestStatusName(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::kOk: return "OK";
    case RequestStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case RequestStatus::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case RequestStatus::kUnavailable: return "UNAVAILABLE";
    case RequestStatus::kInvalidArgument: return "INVALID_ARGUMENT";
    case RequestStatus::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A (vector id, distance) pair returned from nearest-neighbor searches.
struct Neighbor {
  VectorId id = kInvalidVector;
  float distance = std::numeric_limits<float>::infinity();

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Orders neighbors by ascending distance, ties broken by id for determinism.
struct NeighborCloser {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

}  // namespace proximity
