// Basic shared types for the Proximity reproduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace proximity {

/// Identifier of a vector stored in an index (position in the corpus).
using VectorId = std::int64_t;

/// Sentinel for "no vector".
inline constexpr VectorId kInvalidVector = -1;

/// Monotonically increasing query sequence number.
using QuerySeq = std::uint64_t;

/// Duration in nanoseconds; all latency accounting in the repo uses this unit.
using Nanos = std::int64_t;

inline constexpr double kNanosPerMilli = 1e6;
inline constexpr double kNanosPerMicro = 1e3;

/// A (vector id, distance) pair returned from nearest-neighbor searches.
struct Neighbor {
  VectorId id = kInvalidVector;
  float distance = std::numeric_limits<float>::infinity();

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Orders neighbors by ascending distance, ties broken by id for determinism.
struct NeighborCloser {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

}  // namespace proximity
