// First-class multi-tenancy over the shared index (DESIGN.md §10).
//
// Grounded Cache Routing (PAPERS.md) makes the case that *whose* cached
// answer you reuse is a correctness decision: an approximate hit served
// across tenants is an isolation leak, not a win. The registry therefore
// gives every tenant its own ProximityCache (own capacity, own τ, own
// optional AdaptiveTau controller) over the ONE shared vector index, so
// tenants share the corpus and the compute but never each other's cached
// answers.
//
// The registry is also the admission authority: each tenant carries a
// token-bucket QPS quota and an inflight cap, consulted by the
// BatchingDriver *before* any embedding or search work is spent on the
// request (over-quota submissions complete with RESOURCE_EXHAUSTED and
// count as `quota_shed` in the conservation invariant).
//
// Telemetry: the first `max_obs_tenants` registered tenants get their
// own `tenant.<label>.*` counter family in the metrics registry; later
// tenants fold into a shared `tenant.other.*` family so a burst of
// tenant registrations cannot exhaust the fixed-capacity registry
// (cardinality capping).
//
// Lock ordering: the BatchingDriver calls into the registry while
// holding its queue mutex; the registry never calls back into the
// driver, so driver-mutex → registry-mutex is the only order.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/adaptive_tau.h"
#include "cache/answer_cache.h"
#include "cache/concurrent_cache.h"
#include "common/types.h"

namespace proximity {

/// Deterministic token bucket: time is passed in by the caller, so unit
/// tests can replay exact schedules and TSan never sees a clock read
/// under a lock.
class TokenBucket {
 public:
  /// `rate` tokens/second refill, `burst` bucket depth. The bucket
  /// starts full at the first TryAcquire.
  TokenBucket(double rate, double burst);

  /// Consumes `cost` tokens if available at `now`; false = over rate.
  bool TryAcquire(std::chrono::steady_clock::time_point now,
                  double cost = 1.0);

  double tokens() const noexcept { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  bool primed_ = false;
  std::chrono::steady_clock::time_point last_{};
};

/// Admission quota of one tenant. Zero means unlimited in both fields.
struct TenantQuota {
  /// Sustained queries/second (token refill rate); 0 = unlimited.
  double qps = 0.0;
  /// Bucket depth (burst allowance); 0 = max(qps, 1).
  double burst = 0.0;
  /// Admitted-but-uncompleted cap; 0 = unlimited.
  std::size_t max_inflight = 0;
};

struct TenantSpec {
  TenantId id = kDefaultTenant;
  /// Label used in `tenant.<label>.*` metric names; "<id>" when empty.
  std::string name;
  TenantQuota quota;
  /// Cache entries for this tenant; 0 = registry default capacity.
  std::size_t cache_capacity = 0;
  /// Initial τ; negative = registry default tolerance.
  double tolerance = -1.0;
  /// Answer-cache entries; 0 = registry answer_defaults capacity.
  std::size_t answer_capacity = 0;
  /// Answer-cache τ; negative = registry answer_defaults tolerance.
  double answer_tau = -1.0;
  /// Weighted deficit-round-robin share in the batching flush (> 0).
  double weight = 1.0;
  /// Steer this tenant's τ with an AdaptiveTau controller.
  bool adaptive_tau = false;
  AdaptiveTauOptions adaptive;
};

/// What to do with a request naming a tenant never registered.
enum class UnknownTenantPolicy {
  /// Create the tenant on first sight with default spec (open server).
  kAutoRegister,
  /// Serve it as the default tenant (closed tenant roster; documented
  /// in docs/OPERATIONS.md — unknown tenants share tenant 0's cache).
  kMapToDefault,
};

struct TenantRegistryOptions {
  /// Capacity/τ/metric template for tenants that do not override them.
  ProximityCacheOptions cache_defaults;
  /// Template for the per-tenant answer caches (DESIGN.md §15). The
  /// caches always exist; whether the driver probes them is its own
  /// `answer_reuse` option.
  AnswerCacheOptions answer_defaults;
  UnknownTenantPolicy unknown_policy = UnknownTenantPolicy::kAutoRegister;
  /// Tenants beyond this count share the `tenant.other.*` metric family.
  std::size_t max_obs_tenants = 8;
};

/// Outcome of one admission check.
enum class Admission {
  kAdmitted,
  /// Token bucket empty: sustained rate above the tenant's QPS quota.
  kOverRate,
  /// Tenant already has max_inflight admitted-but-uncompleted requests.
  kOverInflight,
};

/// Read-only snapshot of one tenant for introspection (/statusz).
struct TenantInfo {
  TenantId id = kDefaultTenant;
  std::string name;
  TenantQuota quota;
  double weight = 1.0;
  float tolerance = 0.0f;
  std::size_t cache_entries = 0;
  std::size_t answer_entries = 0;
  std::size_t inflight = 0;
  ConcurrentCacheStats cache;
  AnswerCacheStats answer;
};

/// Per-tenant serve-outcome deltas, mirrored into `tenant.<label>.*`.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t hits = 0;
  /// Served from this tenant's answer cache (no search ran).
  std::uint64_t answer_hits = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t quota_shed = 0;
  /// Live-corpus INSERT/DELETE requests applied for this tenant.
  std::uint64_t mutations = 0;
};

class TenantRegistry {
 public:
  /// `dim` is the embedding dimensionality of the shared index; every
  /// per-tenant cache is built over it. The default tenant always
  /// exists (created here with the default spec).
  explicit TenantRegistry(std::size_t dim,
                          TenantRegistryOptions options = {});

  /// Out of line: State is an incomplete type here.
  ~TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Creates (or re-configures, if not yet used) the tenant. Idempotent
  /// per id; returns the id. Throws on weight <= 0.
  TenantId Register(const TenantSpec& spec);

  std::size_t tenant_count() const;
  std::vector<TenantId> ids() const;
  bool Has(TenantId id) const;

  /// Maps a wire tenant id onto a registered one per `unknown_policy`.
  TenantId Resolve(TenantId id);

  /// Consumes quota for one submission. kAdmitted increments the
  /// tenant's inflight count; the caller must pair it with OnDone once
  /// the request completes (any status).
  Admission Admit(TenantId id);
  void OnDone(TenantId id);

  /// The tenant's private approximate cache (stable reference: tenants
  /// are never destroyed while the registry lives).
  ConcurrentProximityCache& CacheFor(TenantId id);

  /// The tenant's private answer cache (same stability guarantee).
  ConcurrentAnswerCache& AnswerCacheFor(TenantId id);

  double WeightFor(TenantId id) const;

  /// Feeds the tenant's AdaptiveTau controller (no-op unless the spec
  /// enabled it) and applies the new τ to the tenant's cache.
  void ObserveLookup(TenantId id, bool hit);

  /// Adds serve-outcome deltas to the tenant's `tenant.<label>.*`
  /// counters and refreshes its cache-occupancy gauge.
  void Record(TenantId id, const TenantCounters& delta);

  /// Snapshot of every tenant (quota, weight, τ, cache stats,
  /// inflight), ordered by id — the /statusz data source.
  std::vector<TenantInfo> Infos() const;

  std::size_t dim() const noexcept { return dim_; }
  const TenantRegistryOptions& options() const noexcept {
    return options_;
  }

 private:
  struct State;

  /// Caller must hold mu_. Throws std::out_of_range for unknown ids —
  /// callers are expected to Resolve first.
  State& StateFor(TenantId id);
  const State& StateFor(TenantId id) const;
  std::unique_ptr<State> MakeState(const TenantSpec& spec);

  std::size_t dim_;
  TenantRegistryOptions options_;
  mutable std::mutex mu_;
  std::map<TenantId, std::unique_ptr<State>> tenants_;
};

/// Parses a tenant roster: one tenant per line of space-separated
/// key=value pairs (`id=` required; `name= qps= burst= max_inflight=
/// capacity= tau= answer_capacity= answer_tau= weight= adaptive=
/// target_hit_rate=` optional; '#' starts a comment). Throws
/// std::invalid_argument on malformed input.
std::vector<TenantSpec> ParseTenantSpecs(const std::string& text);

/// LoadTenantSpecs(path) = ParseTenantSpecs(file contents); throws
/// std::runtime_error when the file cannot be read.
std::vector<TenantSpec> LoadTenantSpecs(const std::string& path);

}  // namespace proximity
