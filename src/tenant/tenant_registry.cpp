#include "tenant/tenant_registry.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics_registry.h"

namespace proximity {

namespace {
// Registry-level gauge; per-tenant families are built per State below.
const obs::GaugeHandle kObsRegistered("tenant.registered");
}  // namespace

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst) {}

bool TokenBucket::TryAcquire(std::chrono::steady_clock::time_point now,
                             double cost) {
  if (!primed_) {
    primed_ = true;
    last_ = now;
  }
  const double elapsed_s =
      std::chrono::duration<double>(now - last_).count();
  if (elapsed_s > 0) {
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_ = now;
  }
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

namespace {

/// The per-tenant `tenant.<label>.*` metric family. Beyond the
/// cardinality cap every tenant shares one family labeled "other".
struct ObsFamily {
  explicit ObsFamily(const std::string& label)
      : submitted("tenant." + label + ".submitted"),
        hits("tenant." + label + ".hits"),
        answer_hits("tenant." + label + ".answer_hits"),
        retrieved("tenant." + label + ".retrieved"),
        coalesced("tenant." + label + ".coalesced"),
        shed("tenant." + label + ".shed"),
        expired("tenant." + label + ".expired"),
        quota_shed("tenant." + label + ".quota_shed"),
        mutations("tenant." + label + ".mutations"),
        occupancy("tenant." + label + ".cache_occupancy"),
        acache_occupancy("tenant." + label + ".acache_occupancy") {}

  obs::CounterHandle submitted, hits, answer_hits, retrieved, coalesced,
      shed, expired, quota_shed, mutations;
  obs::GaugeHandle occupancy, acache_occupancy;
};

}  // namespace

struct TenantRegistry::State {
  State(std::size_t dim, const TenantSpec& s,
        const ProximityCacheOptions& cache_opts,
        const AnswerCacheOptions& answer_opts, std::string obs_label)
      : spec(s),
        cache(dim, cache_opts),
        answer_cache(dim, answer_opts),
        obs(std::move(obs_label)),
        bucket(s.quota.qps,
               s.quota.burst > 0 ? s.quota.burst
                                 : std::max(s.quota.qps, 1.0)) {
    if (s.adaptive_tau) adaptive.emplace(s.adaptive);
  }

  TenantSpec spec;
  ConcurrentProximityCache cache;
  ConcurrentAnswerCache answer_cache;
  ObsFamily obs;
  TokenBucket bucket;
  std::optional<AdaptiveTau> adaptive;
  std::size_t inflight = 0;
};

TenantRegistry::TenantRegistry(std::size_t dim,
                               TenantRegistryOptions options)
    : dim_(dim), options_(std::move(options)) {
  TenantSpec default_spec;
  default_spec.id = kDefaultTenant;
  Register(default_spec);
}

TenantRegistry::~TenantRegistry() = default;

std::unique_ptr<TenantRegistry::State> TenantRegistry::MakeState(
    const TenantSpec& spec) {
  ProximityCacheOptions cache_opts = options_.cache_defaults;
  if (spec.cache_capacity > 0) cache_opts.capacity = spec.cache_capacity;
  if (spec.tolerance >= 0) {
    cache_opts.tolerance = static_cast<float>(spec.tolerance);
  }
  if (spec.adaptive_tau) {
    cache_opts.tolerance = static_cast<float>(spec.adaptive.initial_tau);
  }
  AnswerCacheOptions answer_opts = options_.answer_defaults;
  if (spec.answer_capacity > 0) answer_opts.capacity = spec.answer_capacity;
  if (spec.answer_tau >= 0) {
    answer_opts.tolerance = static_cast<float>(spec.answer_tau);
  }
  const std::string label =
      tenants_.size() < options_.max_obs_tenants
          ? (spec.name.empty() ? std::to_string(spec.id) : spec.name)
          : "other";
  return std::make_unique<State>(dim_, spec, cache_opts, answer_opts, label);
}

TenantId TenantRegistry::Register(const TenantSpec& spec) {
  if (spec.weight <= 0) {
    throw std::invalid_argument("TenantSpec: weight must be > 0");
  }
  std::lock_guard lock(mu_);
  auto it = tenants_.find(spec.id);
  if (it == tenants_.end()) {
    tenants_.emplace(spec.id, MakeState(spec));
    kObsRegistered.Set(static_cast<double>(tenants_.size()));
  }
  return spec.id;
}

std::size_t TenantRegistry::tenant_count() const {
  std::lock_guard lock(mu_);
  return tenants_.size();
}

std::vector<TenantId> TenantRegistry::ids() const {
  std::lock_guard lock(mu_);
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) out.push_back(id);
  return out;
}

bool TenantRegistry::Has(TenantId id) const {
  std::lock_guard lock(mu_);
  return tenants_.find(id) != tenants_.end();
}

TenantId TenantRegistry::Resolve(TenantId id) {
  {
    std::lock_guard lock(mu_);
    if (tenants_.find(id) != tenants_.end()) return id;
    if (options_.unknown_policy == UnknownTenantPolicy::kMapToDefault) {
      return kDefaultTenant;
    }
  }
  TenantSpec spec;
  spec.id = id;
  return Register(spec);
}

TenantRegistry::State& TenantRegistry::StateFor(TenantId id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    throw std::out_of_range("TenantRegistry: unknown tenant " +
                            std::to_string(id));
  }
  return *it->second;
}

const TenantRegistry::State& TenantRegistry::StateFor(TenantId id) const {
  return const_cast<TenantRegistry*>(this)->StateFor(id);
}

Admission TenantRegistry::Admit(TenantId id) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mu_);
  State& state = StateFor(id);
  const TenantQuota& quota = state.spec.quota;
  if (quota.max_inflight != 0 && state.inflight >= quota.max_inflight) {
    return Admission::kOverInflight;
  }
  if (quota.qps > 0 && !state.bucket.TryAcquire(now)) {
    return Admission::kOverRate;
  }
  ++state.inflight;
  return Admission::kAdmitted;
}

void TenantRegistry::OnDone(TenantId id) {
  std::lock_guard lock(mu_);
  State& state = StateFor(id);
  if (state.inflight > 0) --state.inflight;
}

std::vector<TenantInfo> TenantRegistry::Infos() const {
  std::lock_guard lock(mu_);
  std::vector<TenantInfo> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) {
    TenantInfo info;
    info.id = id;
    info.name = state->spec.name.empty() ? std::to_string(id)
                                         : state->spec.name;
    info.quota = state->spec.quota;
    info.weight = state->spec.weight;
    info.tolerance = state->cache.tolerance();
    info.cache_entries = state->cache.size();
    info.answer_entries = state->answer_cache.size();
    info.inflight = state->inflight;
    info.cache = state->cache.stats();
    info.answer = state->answer_cache.stats();
    out.push_back(std::move(info));
  }
  return out;
}

ConcurrentProximityCache& TenantRegistry::CacheFor(TenantId id) {
  std::lock_guard lock(mu_);
  return StateFor(id).cache;
}

ConcurrentAnswerCache& TenantRegistry::AnswerCacheFor(TenantId id) {
  std::lock_guard lock(mu_);
  return StateFor(id).answer_cache;
}

double TenantRegistry::WeightFor(TenantId id) const {
  std::lock_guard lock(mu_);
  return StateFor(id).spec.weight;
}

void TenantRegistry::ObserveLookup(TenantId id, bool hit) {
  ConcurrentProximityCache* cache = nullptr;
  float next_tau = 0.0f;
  {
    std::lock_guard lock(mu_);
    State& state = StateFor(id);
    if (!state.adaptive) return;
    next_tau = static_cast<float>(state.adaptive->Observe(hit));
    cache = &state.cache;
  }
  // The cache has its own mutex; set τ outside the registry lock.
  cache->set_tolerance(next_tau);
}

void TenantRegistry::Record(TenantId id, const TenantCounters& delta) {
  const ObsFamily* fam = nullptr;
  double occupancy = 0.0;
  double answer_occupancy = 0.0;
  {
    std::lock_guard lock(mu_);
    State& state = StateFor(id);
    fam = &state.obs;
    occupancy = static_cast<double>(state.cache.size());
    answer_occupancy = static_cast<double>(state.answer_cache.size());
  }
  if (delta.submitted) fam->submitted.Inc(delta.submitted);
  if (delta.hits) fam->hits.Inc(delta.hits);
  if (delta.answer_hits) fam->answer_hits.Inc(delta.answer_hits);
  if (delta.retrieved) fam->retrieved.Inc(delta.retrieved);
  if (delta.coalesced) fam->coalesced.Inc(delta.coalesced);
  if (delta.shed) fam->shed.Inc(delta.shed);
  if (delta.expired) fam->expired.Inc(delta.expired);
  if (delta.quota_shed) fam->quota_shed.Inc(delta.quota_shed);
  if (delta.mutations) fam->mutations.Inc(delta.mutations);
  fam->occupancy.Set(occupancy);
  fam->acache_occupancy.Set(answer_occupancy);
}

namespace {

bool ParseBool(const std::string& value) {
  return value == "1" || value == "true" || value == "yes";
}

}  // namespace

std::vector<TenantSpec> ParseTenantSpecs(const std::string& text) {
  std::vector<TenantSpec> specs;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream tokens(line);
    std::string token;
    TenantSpec spec;
    bool have_id = false, any = false;
    while (tokens >> token) {
      any = true;
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument(
            "tenant spec line " + std::to_string(lineno) +
            ": expected key=value, got '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "id") {
          spec.id = static_cast<TenantId>(std::stoul(value));
          have_id = true;
        } else if (key == "name") {
          spec.name = value;
        } else if (key == "qps") {
          spec.quota.qps = std::stod(value);
        } else if (key == "burst") {
          spec.quota.burst = std::stod(value);
        } else if (key == "max_inflight") {
          spec.quota.max_inflight = std::stoul(value);
        } else if (key == "capacity") {
          spec.cache_capacity = std::stoul(value);
        } else if (key == "tau") {
          spec.tolerance = std::stod(value);
        } else if (key == "answer_capacity") {
          spec.answer_capacity = std::stoul(value);
        } else if (key == "answer_tau") {
          spec.answer_tau = std::stod(value);
        } else if (key == "weight") {
          spec.weight = std::stod(value);
        } else if (key == "adaptive") {
          spec.adaptive_tau = ParseBool(value);
        } else if (key == "target_hit_rate") {
          spec.adaptive.target_hit_rate = std::stod(value);
          spec.adaptive_tau = true;
        } else {
          throw std::invalid_argument("unknown key '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        throw std::invalid_argument(
            "tenant spec line " + std::to_string(lineno) + ": bad '" +
            token + "'");
      }
    }
    if (!any) continue;
    if (!have_id) {
      throw std::invalid_argument("tenant spec line " +
                                  std::to_string(lineno) + ": missing id=");
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<TenantSpec> LoadTenantSpecs(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read tenant roster: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseTenantSpecs(text.str());
}

}  // namespace proximity
