// Live introspection plane (DESIGN.md §12): a minimal HTTP/1.1 GET
// server on its own epoll loop and port (`--admin HOST:PORT`), serving
//
//   /metrics  Prometheus text exposition of the live MetricsRegistry
//   /healthz  drain-FSM-aware health: serving / draining / unavailable
//   /statusz  build + serving configuration, quotas, queue depths
//   /tracez   recent tail-sampled traces; ?id=<hex> returns one trace
//             as Chrome/Perfetto trace_event JSON
//
// The handler speaks just enough HTTP for curl, a Prometheus scraper
// and a browser: GET only, Connection: close, no keep-alive, headers
// capped at 8 KiB. Routing lives in Handle() so tests exercise every
// endpoint without sockets; the epoll loop only frames bytes.
//
// The admin plane compiles unconditionally — /healthz must answer even
// with PROXIMITY_OBS=OFF (then /metrics exposes an empty registry and
// /tracez an empty list).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

namespace proximity::net {

/// What /healthz reports; mapped to 200 (serving) or 503 (otherwise).
enum class HealthState { kServing, kDraining, kUnavailable };

constexpr const char* HealthStateName(HealthState state) noexcept {
  switch (state) {
    case HealthState::kServing: return "serving";
    case HealthState::kDraining: return "draining";
    case HealthState::kUnavailable: return "unavailable";
  }
  return "unavailable";
}

struct AdminOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result from port().
  std::uint16_t port = 0;
};

/// Wiring into the serving stack. Both hooks are optional and called
/// from the admin thread — they must be thread-safe and non-blocking
/// (the serving stack's accessors here are atomics or short mutexes).
struct AdminHooks {
  /// Drain-FSM state for /healthz; defaults to kServing when unset.
  std::function<HealthState()> health;
  /// Extra body appended to /statusz (per-tenant quotas, queue depths,
  /// build info — assembled by the owner, who knows the stack).
  std::function<std::string()> statusz;
};

/// One routed response, before HTTP framing.
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminServer {
 public:
  explicit AdminServer(AdminHooks hooks = {}, AdminOptions options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens and starts the admin loop thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  void Start();

  /// Stops the loop and closes every connection. Idempotent.
  void Stop();

  /// The bound TCP port (after Start).
  std::uint16_t port() const noexcept { return bound_port_; }

  /// Routes one request target ("/healthz", "/tracez?id=..."), exactly
  /// as the socket path does — exposed so tests cover every endpoint
  /// without a live socket.
  AdminResponse Handle(const std::string& target) const;

 private:
  void Loop();

  AdminHooks hooks_;
  AdminOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::thread loop_;

  struct Conn;
  struct ConnTable;
  std::unique_ptr<ConnTable> conns_;
};

}  // namespace proximity::net
