#include "net/protocol.h"

#include <cstring>

namespace proximity::net {
namespace {

// Little-endian append/read helpers over flat byte buffers. serde's
// BinaryReader/Writer work on iostreams with a checksum trailer — the
// right contract for files, the wrong one for per-message frames.
void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto n = out.size();
  out.resize(n + sizeof(v));
  std::memcpy(out.data() + n, &v, sizeof(v));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto n = out.size();
  out.resize(n + sizeof(v));
  std::memcpy(out.data() + n, &v, sizeof(v));
}

void PutF32(std::vector<std::uint8_t>& out, float v) {
  const auto n = out.size();
  out.resize(n + sizeof(v));
  std::memcpy(out.data() + n, &v, sizeof(v));
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool ReadU32(std::uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(std::uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI64(std::int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF32(float* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadBytes(std::size_t n, std::string* out) {
    if (buf_.size() - pos_ < n) return false;
    out->assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  bool AtEnd() const noexcept { return pos_ == buf_.size(); }

 private:
  bool ReadRaw(void* v, std::size_t n) {
    if (buf_.size() - pos_ < n) return false;
    std::memcpy(v, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

// Patches the length prefix once the payload size is known.
void FinishFrame(std::vector<std::uint8_t>& out, std::size_t len_at) {
  const std::uint32_t payload =
      static_cast<std::uint32_t>(out.size() - len_at - sizeof(std::uint32_t));
  std::memcpy(out.data() + len_at, &payload, sizeof(payload));
}

// Extracts the payload of the first frame, common to both directions.
ParseResult FramePayload(std::span<const std::uint8_t> buf,
                         std::size_t* consumed,
                         std::span<const std::uint8_t>* payload) {
  if (buf.size() < sizeof(std::uint32_t)) return ParseResult::kNeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, buf.data(), sizeof(len));
  if (len > kMaxFrameBytes) return ParseResult::kError;
  if (buf.size() - sizeof(len) < len) return ParseResult::kNeedMore;
  *payload = buf.subspan(sizeof(len), len);
  *consumed = sizeof(len) + len;
  return ParseResult::kOk;
}

}  // namespace

void AppendFrame(std::vector<std::uint8_t>& out, const Request& request) {
  // The tenant field is emitted only when needed, so a default-tenant
  // frame stays byte-identical to protocol v1.
  const bool has_tenant = request.tenant != kDefaultTenant ||
                          (request.flags & kReqFlagHasTenant) != 0;
  const bool has_trace = request.trace_id != 0 ||
                         (request.flags & kReqFlagHasTrace) != 0;
  const bool has_mutation = request.mutation_op != kMutationNone ||
                            (request.flags & kReqFlagHasMutation) != 0;
  std::uint32_t flags = request.flags;
  if (has_tenant) flags |= kReqFlagHasTenant;
  if (has_trace) flags |= kReqFlagHasTrace;
  if (has_mutation) flags |= kReqFlagHasMutation;
  const std::size_t len_at = out.size();
  PutU32(out, 0);  // patched by FinishFrame
  PutU32(out, kRequestMagic);
  PutU64(out, request.id);
  PutU32(out, flags);
  PutU64(out, request.deadline_us);
  if (has_tenant) PutU32(out, request.tenant);
  if (has_trace) {
    PutU64(out, request.trace_id);
    PutU64(out, request.trace_parent);
  }
  if (has_mutation) {
    PutU32(out, request.mutation_op);
    PutU64(out, request.mutation_target);
  }
  PutU32(out, static_cast<std::uint32_t>(request.text.size()));
  out.insert(out.end(), request.text.begin(), request.text.end());
  FinishFrame(out, len_at);
}

void AppendFrame(std::vector<std::uint8_t>& out, const Response& response) {
  // Like the optional request fields: the distance array is emitted
  // only when set (or the flag is pre-set), so distance-free responses
  // stay byte-identical to v4. A pre-set flag with missing entries
  // emits the default (0.0f) per doc, mirroring tenant-0 / trace-0.
  const bool has_distances = !response.distances.empty() ||
                             (response.flags & kFlagHasDistances) != 0;
  std::uint32_t flags = response.flags;
  if (has_distances) flags |= kFlagHasDistances;
  const std::size_t len_at = out.size();
  PutU32(out, 0);
  PutU32(out, kResponseMagic);
  PutU64(out, response.id);
  PutU32(out, static_cast<std::uint32_t>(response.status));
  PutU32(out, flags);
  PutU64(out, response.queue_ns);
  PutU64(out, response.server_ns);
  PutU32(out, static_cast<std::uint32_t>(response.documents.size()));
  for (const VectorId id : response.documents) {
    PutU64(out, static_cast<std::uint64_t>(id));
  }
  if (has_distances) {
    for (std::size_t i = 0; i < response.documents.size(); ++i) {
      PutF32(out, i < response.distances.size() ? response.distances[i]
                                                : 0.0f);
    }
  }
  FinishFrame(out, len_at);
}

ParseResult ParseFrame(std::span<const std::uint8_t> buf,
                       std::size_t* consumed, Request* out) {
  std::span<const std::uint8_t> payload;
  const ParseResult framed = FramePayload(buf, consumed, &payload);
  if (framed != ParseResult::kOk) return framed;

  Cursor c(payload);
  std::uint32_t magic = 0, text_len = 0;
  if (!c.ReadU32(&magic) || magic != kRequestMagic) return ParseResult::kError;
  if (!c.ReadU64(&out->id) || !c.ReadU32(&out->flags) ||
      !c.ReadU64(&out->deadline_us)) {
    return ParseResult::kError;
  }
  out->tenant = kDefaultTenant;
  if ((out->flags & kReqFlagHasTenant) != 0 && !c.ReadU32(&out->tenant)) {
    return ParseResult::kError;
  }
  out->trace_id = 0;
  out->trace_parent = 0;
  if ((out->flags & kReqFlagHasTrace) != 0 &&
      (!c.ReadU64(&out->trace_id) || !c.ReadU64(&out->trace_parent))) {
    return ParseResult::kError;
  }
  out->mutation_op = kMutationNone;
  out->mutation_target = 0;
  if ((out->flags & kReqFlagHasMutation) != 0) {
    if (!c.ReadU32(&out->mutation_op) || !c.ReadU64(&out->mutation_target)) {
      return ParseResult::kError;
    }
    // An unknown opcode is a protocol error: the stream is well-formed
    // but the request is meaningless, and silently treating it as a
    // query would corrupt the mutation accounting downstream.
    // kMutationNone stays legal — a writer with the flag pre-set emits
    // the field at its default (like tenant 0 / trace 0), and the
    // server dispatches such frames as plain queries.
    if (out->mutation_op != kMutationNone &&
        out->mutation_op != kMutationInsert &&
        out->mutation_op != kMutationDelete) {
      return ParseResult::kError;
    }
  }
  if (!c.ReadU32(&text_len) || !c.ReadBytes(text_len, &out->text) ||
      !c.AtEnd()) {
    return ParseResult::kError;
  }
  return ParseResult::kOk;
}

ParseResult ParseFrame(std::span<const std::uint8_t> buf,
                       std::size_t* consumed, Response* out) {
  std::span<const std::uint8_t> payload;
  const ParseResult framed = FramePayload(buf, consumed, &payload);
  if (framed != ParseResult::kOk) return framed;

  Cursor c(payload);
  std::uint32_t magic = 0, status = 0, ndocs = 0;
  if (!c.ReadU32(&magic) || magic != kResponseMagic) {
    return ParseResult::kError;
  }
  if (!c.ReadU64(&out->id) || !c.ReadU32(&status) ||
      !c.ReadU32(&out->flags) || !c.ReadU64(&out->queue_ns) ||
      !c.ReadU64(&out->server_ns) || !c.ReadU32(&ndocs)) {
    return ParseResult::kError;
  }
  if (status > static_cast<std::uint32_t>(RequestStatus::kInternal)) {
    return ParseResult::kError;
  }
  out->status = static_cast<RequestStatus>(status);
  out->documents.clear();
  out->documents.reserve(ndocs);
  for (std::uint32_t i = 0; i < ndocs; ++i) {
    std::int64_t id = 0;
    if (!c.ReadI64(&id)) return ParseResult::kError;
    out->documents.push_back(id);
  }
  out->distances.clear();
  if ((out->flags & kFlagHasDistances) != 0) {
    out->distances.reserve(ndocs);
    for (std::uint32_t i = 0; i < ndocs; ++i) {
      float d = 0.0f;
      if (!c.ReadF32(&d)) return ParseResult::kError;
      out->distances.push_back(d);
    }
  }
  return c.AtEnd() ? ParseResult::kOk : ParseResult::kError;
}

}  // namespace proximity::net
