// Wire protocol of the RPC serving front-end (DESIGN.md §9).
//
// Both directions speak length-prefixed binary frames over TCP:
//
//   [u32 payload_len][payload]            (little-endian, len <= 1 MiB)
//
// Request payload (v4):
//   [u32 magic 'PRXQ'] [u64 request_id] [u32 flags] [u64 deadline_us]
//   ([u32 tenant_id] iff flags & kReqFlagHasTenant)
//   ([u64 trace_id] [u64 trace_parent] iff flags & kReqFlagHasTrace)
//   ([u32 mutation_op] [u64 mutation_target] iff flags &
//    kReqFlagHasMutation)
//   [u32 text_len] [text bytes]
//
// v2 grew the optional tenant-id field, v3 the optional trace-context
// field, v4 the optional mutation field (INSERT carries the new
// document's text in the text field; DELETE carries the target id); all
// are gated on request flag bits so every v1 frame (bits clear, no
// fields) still parses and maps to the default tenant with no trace —
// the golden-frame regression test in tests/protocol_compat_test.cpp
// pins this byte-exactly. A writer emits each field only when it is
// set, so clients that use none of tenancy, tracing, or mutation stay
// byte-identical to v1.
//
// The trace field carries the client's 64-bit trace id plus the span id
// of the client-side call span, so the server's root span nests under
// the client's — client -> server -> driver stitch into one trace
// (obs/trace.h) without any out-of-band correlation.
//
// Response payload (v5):
//   [u32 magic 'PRXR'] [u64 request_id] [u32 status] [u32 flags]
//   [u64 queue_ns] [u64 server_ns] [u32 ndocs] [i64 doc_id]*
//   ([f32 distance]* iff flags & kFlagHasDistances, one per doc)
//
// `deadline_us` is a relative budget from server receipt (0 = none);
// `status` is a RequestStatus code; response flag bits record whether the
// answer came from the approximate cache or coalesced onto a τ-similar
// neighbor's retrieval — the client-observed hit/miss latency split
// (PAPER §3, Figure 5) keys off these. `queue_ns`/`server_ns` are the
// per-stage server timings (admission-queue wait, receipt→completion).
//
// v5 grew the distance side-channel for the cluster router (DESIGN.md
// §14): a request carrying kReqFlagWantDistances (no extra request
// bytes) asks the server to attach the raw per-document distances, and
// the server answers with kFlagHasDistances plus one f32 per doc after
// the id array — but only when the answer came from a fresh index
// retrieval. Cache hits return ids alone (the approximate cache stores
// no distances), so a router merging per-shard answers falls back to
// rank interleaving when any leg lacks the field. Responses to requests
// without the flag are byte-identical to v4.
//
// Framing is deliberately stateless per message: a parser needs only a
// byte buffer, so partial reads concatenate and pipelined requests
// separate for free. Anything malformed (bad magic, oversized length)
// is a protocol error and the server closes the connection — there is
// no way to resynchronize a corrupt length-prefixed stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace proximity::net {

inline constexpr std::uint32_t kRequestMagic = 0x51585250;   // "PRXQ"
inline constexpr std::uint32_t kResponseMagic = 0x52585250;  // "PRXR"
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Wire protocol version: v2 added the optional request tenant-id
/// field, v3 the optional trace-context field, v4 the optional
/// mutation field (live-corpus INSERT/DELETE), v5 the opt-in response
/// distance array (cluster router merge). v1–v4 frames remain
/// parseable (see the header comment).
inline constexpr std::uint32_t kProtocolVersion = 5;

/// Request flag bits.
inline constexpr std::uint32_t kReqFlagHasTenant = 1u << 0;
inline constexpr std::uint32_t kReqFlagHasTrace = 1u << 1;
inline constexpr std::uint32_t kReqFlagHasMutation = 1u << 2;
/// v5: ask the server to attach per-document distances to the response
/// (pure flag bit — the request payload grows no field). Servers that
/// predate v5 ignore unknown flag bits and answer without distances.
inline constexpr std::uint32_t kReqFlagWantDistances = 1u << 3;

/// Mutation opcodes carried by the v4 mutation field.
inline constexpr std::uint32_t kMutationNone = 0;
inline constexpr std::uint32_t kMutationInsert = 1;
inline constexpr std::uint32_t kMutationDelete = 2;

/// Response flag bits.
inline constexpr std::uint32_t kFlagCacheHit = 1u << 0;
inline constexpr std::uint32_t kFlagCoalesced = 1u << 1;
/// v5: the frame carries one f32 distance per document after the id
/// array. Set only on fresh index retrievals — cache hits have no
/// distances to report.
inline constexpr std::uint32_t kFlagHasDistances = 1u << 2;

struct Request {
  std::uint64_t id = 0;
  std::uint32_t flags = 0;
  /// Relative deadline budget in microseconds from server receipt;
  /// 0 means no deadline.
  std::uint64_t deadline_us = 0;
  /// Submitting tenant; serialized only when != kDefaultTenant (or the
  /// kReqFlagHasTenant bit is pre-set). v1 frames parse to the default.
  TenantId tenant = kDefaultTenant;
  /// Distributed-tracing context: the client's trace id and the span id
  /// of its call span (the server roots under it). Serialized only when
  /// trace_id != 0 (or kReqFlagHasTrace is pre-set); untraced frames
  /// stay byte-identical to v1/v2.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent = 0;
  /// v4 mutation field (serialized only when mutation_op !=
  /// kMutationNone or kReqFlagHasMutation is pre-set): kMutationInsert
  /// adds `text` as a new corpus document (the response returns the
  /// assigned id as its single document); kMutationDelete tombstones
  /// `mutation_target`. Query frames leave this at kMutationNone and
  /// stay byte-identical to v1–v3.
  std::uint32_t mutation_op = kMutationNone;
  std::uint64_t mutation_target = 0;
  std::string text;
};

struct Response {
  std::uint64_t id = 0;
  RequestStatus status = RequestStatus::kOk;
  std::uint32_t flags = 0;
  /// Time the request waited in the admission queue.
  std::uint64_t queue_ns = 0;
  /// Server-side wall time, receipt to response serialization.
  std::uint64_t server_ns = 0;
  std::vector<VectorId> documents;
  /// v5 distance side-channel, parallel to `documents`. Serialized only
  /// when non-empty (or kFlagHasDistances is pre-set); empty on cache
  /// hits and on answers to clients that did not ask (see
  /// kReqFlagWantDistances), keeping those frames byte-identical to v4.
  std::vector<float> distances;

  bool cache_hit() const noexcept { return (flags & kFlagCacheHit) != 0; }
  bool coalesced() const noexcept { return (flags & kFlagCoalesced) != 0; }
  bool has_distances() const noexcept {
    return (flags & kFlagHasDistances) != 0;
  }
};

/// Appends one framed message to `out` (length prefix included).
void AppendFrame(std::vector<std::uint8_t>& out, const Request& request);
void AppendFrame(std::vector<std::uint8_t>& out, const Response& response);

enum class ParseResult {
  /// The buffer holds no complete frame yet; read more bytes.
  kNeedMore,
  /// One message decoded; *consumed bytes were used.
  kOk,
  /// The stream is corrupt (bad magic / oversized frame / truncated
  /// payload fields); the connection cannot be resynchronized.
  kError,
};

/// Decodes the first complete frame of `buf`, if any.
ParseResult ParseFrame(std::span<const std::uint8_t> buf,
                       std::size_t* consumed, Request* out);
ParseResult ParseFrame(std::span<const std::uint8_t> buf,
                       std::size_t* consumed, Response* out);

}  // namespace proximity::net
