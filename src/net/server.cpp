#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/log.h"
#include "obs/metrics_registry.h"

namespace proximity::net {

namespace {

const obs::CounterHandle kObsAccepted("net.accepted");
const obs::CounterHandle kObsRequests("net.requests");
const obs::CounterHandle kObsResponses("net.responses");
const obs::CounterHandle kObsShed("net.shed");
const obs::CounterHandle kObsDeadline("net.deadline_exceeded");
const obs::CounterHandle kObsAbandoned("net.abandoned");
const obs::CounterHandle kObsMutationRequests("net.mutations");
const obs::CounterHandle kObsProtocolErrors("net.protocol_errors");
// Receipt -> response serialization, split by cache outcome: the
// client-observed analogue of the retrieve.hit_ns / miss_ns contrast.
const obs::HistogramHandle kObsRequestNs("net.request_ns");
const obs::HistogramHandle kObsHitNs("net.hit_ns");
const obs::HistogramHandle kObsMissNs("net.miss_ns");

// A stalled client that never drains its socket cannot buffer the
// server into the ground; past this the connection is dropped.
constexpr std::size_t kMaxWriteBuffer = 16u << 20;

Nanos SinceNs(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
      .count();
}

void SetNonBlocking(int fd) {
  // accept4/SOCK_NONBLOCK cover the common paths; this is the fallback.
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void DriverSink::Submit(Request request, const SubmitOptions& options,
                        BatchCallback done) {
  if (request.mutation_op != kMutationNone) {
    // v4 live-corpus mutation: same admission queue, same completion
    // path. The driver refuses inline (kInvalidArgument) when its
    // mutation path was never armed, so a v4 frame against a build-once
    // index degrades to an error response, not a crash.
    const MutationOp op = request.mutation_op == kMutationInsert
                              ? MutationOp::kInsert
                              : MutationOp::kDelete;
    driver_.SubmitMutationAsync(
        op, std::move(request.text),
        static_cast<VectorId>(request.mutation_target), options,
        std::move(done));
    return;
  }
  driver_.SubmitTextAsync(std::move(request.text), options, std::move(done));
}

Server::Server(BatchingDriver& driver, ServerOptions options)
    : owned_sink_(std::make_unique<DriverSink>(driver)),
      sink_(*owned_sink_),
      options_(std::move(options)) {}

Server::Server(RequestSink& sink, ServerOptions options)
    : sink_(sink), options_(std::move(options)) {}

Server::~Server() { Stop(); }

void Server::Start() {
  if (started_.exchange(true)) {
    throw std::logic_error("net::Server: Start called twice");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("net::Server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("net::Server: bad listen host '" +
                                options_.host + "' (numeric IPv4 only)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("net::Server: bind/listen on ") +
                             options_.host + " failed: " +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw std::runtime_error("net::Server: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  loop_ = std::thread([this] { Loop(); });
  LogInfo("net: listening on {}:{}", options_.host, bound_port_);
}

void Server::RequestDrain() noexcept {
  draining_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    // write() is async-signal-safe; the return value is irrelevant
    // because the loop also polls `draining_` on every wakeup.
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Server::Join() {
  if (loop_.joinable()) loop_.join();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

void Server::Stop() {
  if (!started_.load()) return;
  RequestDrain();
  Join();
}

ServerHealth Server::health() const noexcept {
  if (loop_exited_.load(std::memory_order_acquire)) {
    return ServerHealth::kStopped;
  }
  if (!started_.load(std::memory_order_acquire)) {
    return ServerHealth::kStopped;
  }
  return draining_.load(std::memory_order_acquire) ? ServerHealth::kDraining
                                                   : ServerHealth::kServing;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = stats_.accepted.load();
  s.rejected_connections = stats_.rejected_connections.load();
  s.closed = stats_.closed.load();
  s.requests = stats_.requests.load();
  s.responses = stats_.responses.load();
  s.shed = stats_.shed.load();
  s.unavailable = stats_.unavailable.load();
  s.deadline_exceeded = stats_.deadline_exceeded.load();
  s.abandoned = stats_.abandoned.load();
  s.mutation_requests = stats_.mutation_requests.load();
  s.protocol_errors = stats_.protocol_errors.load();
  s.bytes_in = stats_.bytes_in.load();
  s.bytes_out = stats_.bytes_out.load();
  return s;
}

bool Server::DrainComplete() const {
  if (inflight_ != 0) return false;
  for (const auto& [fd, conn] : conns_) {
    if (conn->woff < conn->wbuf.size()) return false;
  }
  return true;
}

void Server::Loop() {
  std::array<epoll_event, 64> events;
  bool drain_initiated = false;
  for (;;) {
    const int timeout_ms = drain_initiated ? 50 : -1;
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        ProcessCompletions();
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Conn& conn = *it->second;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        HandleReadable(conn);
        // HandleReadable may have closed and erased the connection.
        if (conns_.find(fd) == conns_.end()) continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }

    if (draining_.load(std::memory_order_acquire)) {
      if (!drain_initiated) {
        drain_initiated = true;
        drain_started_ = std::chrono::steady_clock::now();
        if (listen_fd_ >= 0) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        LogInfo("net: drain started ({} in flight)", inflight_);
      }
      ProcessCompletions();
      if (DrainComplete()) break;
      const auto waited = std::chrono::steady_clock::now() - drain_started_;
      if (waited >
          std::chrono::milliseconds(options_.drain_timeout_ms)) {
        LogWarn("net: drain timeout, force-closing {} connections "
                "({} in flight)",
                conns_.size(), inflight_);
        break;
      }
    }
  }

  // Loop exit: every connection closes; late completions for them are
  // discarded by ProcessCompletions (driver shutdown is the owner's
  // job, after Join).
  while (!conns_.empty()) CloseConn(*conns_.begin()->second);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  loop_exited_.store(true, std::memory_order_release);
}

void Server::HandleAccept() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept failure: try next wakeup
    }
    if (conns_.size() >= options_.max_connections ||
        draining_.load(std::memory_order_acquire)) {
      stats_.rejected_connections.fetch_add(1);
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);  // belt and braces; accept4 already set it
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_by_id_[conn->id] = conn.get();
    conns_[fd] = std::move(conn);
    stats_.accepted.fetch_add(1);
    kObsAccepted.Inc();
  }
}

void Server::HandleReadable(Conn& conn) {
  // EOF does not short-circuit parsing: a client that sends and
  // immediately closes still gets its buffered complete frames admitted
  // (their completions are then discarded as `abandoned`), so work is
  // never silently dropped on the floor.
  bool eof = false;
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk.data(), chunk.size());
    if (n > 0) {
      conn.rbuf.insert(conn.rbuf.end(), chunk.data(), chunk.data() + n);
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }

  const auto received = std::chrono::steady_clock::now();
  const int fd = conn.fd;
  std::size_t off = 0;
  for (;;) {
    Request request;
    std::size_t consumed = 0;
    const ParseResult parsed = ParseFrame(
        std::span<const std::uint8_t>(conn.rbuf).subspan(off), &consumed,
        &request);
    if (parsed == ParseResult::kNeedMore) break;
    if (parsed == ParseResult::kError) {
      stats_.protocol_errors.fetch_add(1);
      kObsProtocolErrors.Inc();
      CloseConn(conn);
      return;
    }
    off += consumed;
    HandleRequest(conn, std::move(request), received);
    // Answering can close the connection (dead peer, write-buffer cap);
    // `conn` is destroyed then, so stop touching it.
    if (conns_.find(fd) == conns_.end()) return;
  }
  if (off > 0) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  if (eof) CloseConn(conn);
}

void Server::HandleRequest(Conn& conn, Request request,
                           std::chrono::steady_clock::time_point received) {
  stats_.requests.fetch_add(1);
  kObsRequests.Inc();

  // Every request gets a trace: a propagated client context is adopted
  // (client -> server stitch into one trace), otherwise a fresh id is
  // minted. Whether the trace survives is decided at completion time by
  // the tail sampler; with PROXIMITY_OBS=OFF the ids stay 0 and every
  // emission below is a no-op.
  obs::TraceContext trace;
  trace.trace_id =
      request.trace_id != 0 ? request.trace_id : obs::NewTraceId();
  if (trace.trace_id != 0) trace.span_id = obs::NewSpanId();
  const std::uint64_t trace_parent = request.trace_parent;
  // Requests answered inline (drain, shed) never reach the driver, but
  // the tail sampler must still see them: shed/unavailable outcomes are
  // always kept.
  const auto complete_inline = [&](RequestStatus status) {
    if (!trace.active()) return;
    obs::TraceSpanRecord rec;
    rec.trace_id = trace.trace_id;
    rec.span_id = trace.span_id;
    rec.parent_id = trace_parent;
    rec.op = obs::TraceOp::kRequest;
    rec.start_ns = obs::TraceRelNanos(received);
    rec.duration_ns = obs::TraceNowNs() - rec.start_ns;
    obs::EmitTraceSpan(rec);
    obs::TraceCollector::Default().Complete(trace, status, rec.duration_ns);
  };

  if (draining_.load(std::memory_order_acquire)) {
    Response resp;
    resp.id = request.id;
    resp.status = RequestStatus::kUnavailable;
    stats_.unavailable.fetch_add(1);
    complete_inline(resp.status);
    QueueResponse(conn, resp);
    return;
  }
  if (inflight_ >= options_.max_inflight) {
    Response resp;
    resp.id = request.id;
    resp.status = RequestStatus::kResourceExhausted;
    stats_.shed.fetch_add(1);
    kObsShed.Inc();
    complete_inline(resp.status);
    QueueResponse(conn, resp);
    return;
  }

  auto deadline = std::chrono::steady_clock::time_point::max();
  const std::uint64_t budget_us = request.deadline_us != 0
                                      ? request.deadline_us
                                      : options_.default_deadline_us;
  if (budget_us != 0) {
    deadline = received + std::chrono::microseconds(budget_us);
  }

  ++inflight_;
  ++conn.inflight;
  SubmitOptions sopts;
  sopts.deadline = deadline;
  sopts.tenant = request.tenant;
  sopts.trace = trace;
  // The callback runs on the flusher thread (or inline right here when
  // the driver sheds): it only posts to the completion queue and rings
  // the eventfd, so neither thread ever blocks on the other.
  const bool want_distances =
      (request.flags & kReqFlagWantDistances) != 0;
  auto done = [this, conn_id = conn.id, request_id = request.id, received,
               deadline, trace, trace_parent,
               want_distances](BatchResult result) {
    {
      std::lock_guard lock(completions_mu_);
      completions_.push_back(Completion{conn_id, request_id, received,
                                        deadline, trace, trace_parent,
                                        want_distances, std::move(result)});
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  };
  if (request.mutation_op != kMutationNone) {
    stats_.mutation_requests.fetch_add(1);
    kObsMutationRequests.Inc();
  }
  sink_.Submit(std::move(request), sopts, std::move(done));
}

void Server::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard lock(completions_mu_);
    batch.swap(completions_);
  }
  if (batch.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& c : batch) {
    if (inflight_ > 0) --inflight_;
    const auto it = conns_by_id_.find(c.conn_id);
    if (it == conns_by_id_.end()) {
      // The client is gone; the work still completed in the driver and
      // is simply discarded — never leaked, never written to a dead fd.
      stats_.abandoned.fetch_add(1);
      kObsAbandoned.Inc();
      continue;
    }
    Conn& conn = *it->second;
    if (conn.inflight > 0) --conn.inflight;

    Response resp;
    resp.id = c.request_id;
    resp.status = c.result.status;
    resp.queue_ns = static_cast<std::uint64_t>(c.result.queue_wait_ns);
    resp.server_ns = static_cast<std::uint64_t>(SinceNs(c.received, now));
    // Response-time deadline check: a reply that would arrive after the
    // deadline degrades to DEADLINE_EXCEEDED even though the work ran.
    if (resp.status == RequestStatus::kOk && now > c.deadline) {
      resp.status = RequestStatus::kDeadlineExceeded;
    }
    if (resp.status == RequestStatus::kOk) {
      resp.documents = std::move(c.result.documents);
      if (c.result.cache_hit) resp.flags |= kFlagCacheHit;
      if (c.result.coalesced) resp.flags |= kFlagCoalesced;
      // v5 distance side-channel, opt-in per request. Cache hits carry
      // no distances (the cache stores bare ids), so the field — and
      // kFlagHasDistances — appears only on fresh retrievals; the
      // router's merge falls back to rank interleave without it.
      if (c.want_distances && !c.result.distances.empty()) {
        resp.distances = std::move(c.result.distances);
      }
      const Nanos served_ns = SinceNs(c.received, now);
      (c.result.cache_hit ? kObsHitNs : kObsMissNs).Record(served_ns);
    }
    switch (resp.status) {
      case RequestStatus::kResourceExhausted:
        stats_.shed.fetch_add(1);
        kObsShed.Inc();
        break;
      case RequestStatus::kDeadlineExceeded:
        stats_.deadline_exceeded.fetch_add(1);
        kObsDeadline.Inc();
        break;
      case RequestStatus::kUnavailable:
        stats_.unavailable.fetch_add(1);
        break;
      default:
        break;
    }
    kObsRequestNs.Record(static_cast<Nanos>(resp.server_ns));
    // The request's root span closes here (receipt -> serialization);
    // only now is the outcome known, so this is also where the trace
    // meets the tail sampler.
    if (c.trace.active()) {
      obs::TraceSpanRecord rec;
      rec.trace_id = c.trace.trace_id;
      rec.span_id = c.trace.span_id;
      rec.parent_id = c.trace_parent;
      rec.op = obs::TraceOp::kRequest;
      rec.start_ns = obs::TraceRelNanos(c.received);
      rec.duration_ns = static_cast<Nanos>(resp.server_ns);
      obs::EmitTraceSpan(rec);
      obs::TraceCollector::Default().Complete(c.trace, resp.status,
                                              rec.duration_ns);
    }
    if (options_.debug_stall_every != 0 &&
        ++stall_tick_ % options_.debug_stall_every == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.debug_stall_us));
    }
    QueueResponse(conn, resp);
  }
}

void Server::QueueResponse(Conn& conn, const Response& response) {
  AppendFrame(conn.wbuf, response);
  stats_.responses.fetch_add(1);
  kObsResponses.Inc();
  if (conn.wbuf.size() - conn.woff > kMaxWriteBuffer) {
    CloseConn(conn);
    return;
  }
  FlushWrites(conn);
}

void Server::FlushWrites(Conn& conn) {
  while (conn.woff < conn.wbuf.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as
    // EPIPE here, not as a process-killing SIGPIPE.
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.woff += static_cast<std::size_t>(n);
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        UpdateEpoll(conn);
      }
      return;
    }
    CloseConn(conn);
    return;
  }
  conn.wbuf.clear();
  conn.woff = 0;
  if (conn.want_write) {
    conn.want_write = false;
    UpdateEpoll(conn);
  }
}

void Server::HandleWritable(Conn& conn) { FlushWrites(conn); }

void Server::UpdateEpoll(Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::CloseConn(Conn& conn) {
  const int fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_by_id_.erase(conn.id);
  conns_.erase(fd);  // destroys `conn`
  stats_.closed.fetch_add(1);
}

namespace {

std::atomic<Server*> g_drain_server{nullptr};

void DrainSignalHandler(int /*signum*/) {
  Server* server = g_drain_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestDrain();
}

}  // namespace

void InstallSignalDrain(Server* server) {
  g_drain_server.store(server, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = server != nullptr ? DrainSignalHandler : SIG_DFL;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace proximity::net
