// Nonblocking epoll-based RPC serving front-end (DESIGN.md §9).
//
// One event-loop thread owns every socket: it accepts connections,
// reassembles length-prefixed request frames from partial reads, and
// admits each request into the BatchingDriver's bounded queue via the
// callback Submit path. Completions are posted back from the flusher
// thread through a mutex-protected queue plus an eventfd wakeup, so the
// event loop never blocks on a future and the driver never touches a
// socket. Responses are written with partial-write handling (EPOLLOUT
// is armed only while a connection has unflushed bytes).
//
// The unglamorous production cases are first-class here:
//   - slow/disconnecting clients: a closed connection's in-flight
//     requests still complete in the driver; their completions find no
//     connection and are discarded (counted `abandoned`), never leaked;
//   - overload: admission beyond `max_inflight` (or the driver's
//     queue_bound) answers RESOURCE_EXHAUSTED immediately instead of
//     queueing without bound;
//   - deadlines: enforced in-queue by the driver and re-checked at
//     response time, so a reply that would arrive too late degrades to
//     DEADLINE_EXCEEDED;
//   - graceful drain: RequestDrain() (async-signal-safe, the SIGINT /
//     SIGTERM handler calls it) stops accepting, answers new requests
//     UNAVAILABLE, flushes everything in flight, then exits the loop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "obs/trace.h"
#include "rag/batching_driver.h"

namespace proximity::net {

/// The drain FSM as seen by /healthz: running -> draining -> stopped.
enum class ServerHealth { kServing, kDraining, kStopped };

/// Where admitted requests go. The front-end couples to the rag layer
/// only through this seam: the production sink adapts BatchingDriver
/// (DriverSink below), and the cluster router (src/cluster) implements
/// its own sink that scatter-gathers over backend connections — reusing
/// this entire epoll front-end (framing, admission control, drain FSM,
/// completion ring, partial-write handling) unchanged.
class RequestSink {
 public:
  virtual ~RequestSink() = default;

  /// Dispatches one admitted request. `done` may be invoked from any
  /// thread, or inline; it must be called exactly once. The sink
  /// receives the request exactly as parsed off the wire (flags
  /// included), which is what lets a relaying sink forward it
  /// byte-identically.
  virtual void Submit(Request request, const SubmitOptions& options,
                      BatchCallback done) = 0;
};

/// The production sink: queries go to SubmitTextAsync, v4 mutation
/// frames to SubmitMutationAsync.
class DriverSink final : public RequestSink {
 public:
  explicit DriverSink(BatchingDriver& driver) : driver_(driver) {}

  void Submit(Request request, const SubmitOptions& options,
              BatchCallback done) override;

 private:
  BatchingDriver& driver_;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result from port().
  std::uint16_t port = 0;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 256;
  /// Server-wide bound on admitted-but-unanswered requests; beyond it
  /// requests are shed with RESOURCE_EXHAUSTED.
  std::size_t max_inflight = 1024;
  /// Applied when a request carries deadline_us == 0; 0 = no deadline.
  std::uint64_t default_deadline_us = 0;
  /// Hard cap on a graceful drain; connections still unflushed or in
  /// flight after this are force-closed so drain always terminates.
  std::uint64_t drain_timeout_ms = 10000;
  /// Fault injection for tail-latency experiments (the hedging sweep in
  /// bench/cluster_scaling): every Nth response stalls the event loop
  /// for `debug_stall_us` before serialization, the way a GC or
  /// compaction pause would stall a real replica. 0 disables.
  std::size_t debug_stall_every = 0;
  std::uint64_t debug_stall_us = 0;
};

/// Counters over the server's lifetime; exact once the loop has exited.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_connections = 0;
  std::uint64_t closed = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  /// RESOURCE_EXHAUSTED answers (server max_inflight + driver sheds).
  std::uint64_t shed = 0;
  /// UNAVAILABLE answers (request arrived while draining).
  std::uint64_t unavailable = 0;
  /// DEADLINE_EXCEEDED answers (in-queue expiry + response-time check).
  std::uint64_t deadline_exceeded = 0;
  /// Completions whose connection was already gone; discarded safely.
  std::uint64_t abandoned = 0;
  /// v4 INSERT/DELETE frames dispatched to the driver's mutation path.
  std::uint64_t mutation_requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class Server {
 public:
  /// `driver` must outlive the server and must not be Shutdown before
  /// the server's loop has exited (Join/Stop).
  Server(BatchingDriver& driver, ServerOptions options = {});
  /// Serves an arbitrary sink (the cluster router's path). `sink` must
  /// outlive the server and keep accepting `done` callbacks until the
  /// loop has exited.
  Server(RequestSink& sink, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the event-loop thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  void Start();

  /// The bound TCP port (after Start); useful with options.port == 0.
  std::uint16_t port() const noexcept { return bound_port_; }

  /// Begins a graceful drain. Async-signal-safe (atomic store + eventfd
  /// write) so SIGINT/SIGTERM handlers may call it directly. Idempotent.
  void RequestDrain() noexcept;

  /// Blocks until the event loop has exited (drain finished).
  void Join();

  /// RequestDrain + Join. Idempotent; called by the destructor.
  void Stop();

  ServerStats stats() const;

  /// Drain-FSM state, readable from any thread (the admin plane's
  /// /healthz hook): kServing until RequestDrain, kDraining while the
  /// loop flushes in-flight work, kStopped once the loop has exited.
  ServerHealth health() const noexcept;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;
    std::size_t inflight = 0;
    bool want_write = false;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::chrono::steady_clock::time_point received;
    std::chrono::steady_clock::time_point deadline;
    /// Request trace: trace id + this request's root span, with the
    /// client-side span (if propagated) as the root's parent. The root
    /// span is emitted and the trace completed into the tail sampler
    /// when the response is serialized.
    obs::TraceContext trace;
    std::uint64_t trace_parent = 0;
    /// The request carried kReqFlagWantDistances: attach the result's
    /// distance array (when the retrieval produced one) to the wire
    /// response.
    bool want_distances = false;
    BatchResult result;
  };

  void Loop();
  void HandleAccept();
  void HandleReadable(Conn& conn);
  void HandleWritable(Conn& conn);
  void HandleRequest(Conn& conn, Request request,
                     std::chrono::steady_clock::time_point received);
  void ProcessCompletions();
  /// Serializes `response` into the connection's write buffer and
  /// flushes as much as the socket accepts.
  void QueueResponse(Conn& conn, const Response& response);
  /// Flushes the write buffer; handles partial writes / EPOLLOUT.
  void FlushWrites(Conn& conn);
  void CloseConn(Conn& conn);
  void UpdateEpoll(Conn& conn);
  /// True when a drain can finish: nothing in flight, nothing buffered.
  bool DrainComplete() const;

  // The driver-construction path owns its adapter; both paths dispatch
  // through sink_. Declaration order matters: owned_sink_ must be built
  // before sink_ binds to it.
  std::unique_ptr<DriverSink> owned_sink_;
  RequestSink& sink_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread loop_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> loop_exited_{false};
  std::chrono::steady_clock::time_point drain_started_;

  // Event-loop-owned state (no lock needed).
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;       // by fd
  std::unordered_map<std::uint64_t, Conn*> conns_by_id_;
  std::uint64_t next_conn_id_ = 1;
  std::size_t inflight_ = 0;
  std::size_t stall_tick_ = 0;  // debug_stall_every response counter

  // Crossing the flusher -> event loop boundary.
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  // Counters are atomics: the loop thread writes, stats() may read from
  // any thread while the server runs.
  struct AtomicStats {
    std::atomic<std::uint64_t> accepted{0}, rejected_connections{0},
        closed{0}, requests{0}, responses{0}, shed{0}, unavailable{0},
        deadline_exceeded{0}, abandoned{0}, mutation_requests{0},
        protocol_errors{0}, bytes_in{0}, bytes_out{0};
  };
  AtomicStats stats_;
};

/// Routes SIGINT/SIGTERM to server.RequestDrain() (one server at a time;
/// passing nullptr restores the default disposition). The handler only
/// performs async-signal-safe work.
void InstallSignalDrain(Server* server);

}  // namespace proximity::net
