// Minimal blocking client for the net protocol (DESIGN.md §9).
//
// One TCP connection, synchronous Call() = Send + Recv. The client is
// deliberately simple — load generators that need concurrency open many
// clients (one per simulated connection) rather than multiplexing; that
// mirrors how the paper's serving experiments drive the system and keeps
// per-connection latency attribution exact.
//
// Send/Recv are usable separately for pipelining: queue several Send()s
// and then Recv() the responses in order. Responses carry the request id,
// so callers can correlate out-of-order completions if the server ever
// reorders (the current server answers per-connection in completion
// order, which batching can permute).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace proximity::net {

struct ClientOptions {
  /// Dial budget in milliseconds. A blocking connect() against a dead
  /// or blackholed backend can hang for minutes; the cluster router
  /// needs bounded dial times to fail over. 0 = block indefinitely
  /// (the historical behavior).
  int connect_timeout_ms = 0;
  /// Receive budget applied by Recv()/Call() in milliseconds. Expiry
  /// closes the connection — a mid-frame stream cannot be resumed
  /// safely by a caller that has given up on the response. 0 = block
  /// indefinitely.
  int recv_timeout_ms = 0;
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientOptions options) : options_(options) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port (numeric IPv4). Returns false on failure or
  /// when the dial exceeds options().connect_timeout_ms.
  bool Connect(const std::string& host, std::uint16_t port);

  bool connected() const noexcept { return fd_ >= 0; }
  void Close();

  const ClientOptions& options() const noexcept { return options_; }

  /// The raw socket fd (-1 when disconnected), for callers that poll
  /// several clients at once — the router's hedging loop waits on the
  /// primary and the hedge leg together.
  int native_handle() const noexcept { return fd_; }

  /// Writes one framed request (blocking until fully written).
  bool Send(const Request& request);

  /// Blocks until one complete response arrives (bounded by
  /// options().recv_timeout_ms when set). Returns false on EOF, a
  /// protocol error, or timeout (the connection is closed in all three
  /// cases).
  bool Recv(Response* response);

  enum class RecvStatus { kOk, kTimeout, kError };

  /// Bounded receive that survives a timeout: waits up to timeout_ms
  /// (-1 = forever) for one complete frame. kTimeout leaves the
  /// connection open with any partial frame buffered, so a later
  /// TryRecv can finish the read — this is the hedging primitive (give
  /// the primary its latency-quantile budget, then open a second leg
  /// while the first keeps running). kError closes the connection.
  RecvStatus TryRecv(Response* response, int timeout_ms);

  /// Send + Recv. Returns false when either side fails.
  bool Call(const Request& request, Response* response);

 private:
  int fd_ = -1;
  ClientOptions options_;
  std::vector<std::uint8_t> rbuf_;
};

}  // namespace proximity::net
