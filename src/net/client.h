// Minimal blocking client for the net protocol (DESIGN.md §9).
//
// One TCP connection, synchronous Call() = Send + Recv. The client is
// deliberately simple — load generators that need concurrency open many
// clients (one per simulated connection) rather than multiplexing; that
// mirrors how the paper's serving experiments drive the system and keeps
// per-connection latency attribution exact.
//
// Send/Recv are usable separately for pipelining: queue several Send()s
// and then Recv() the responses in order. Responses carry the request id,
// so callers can correlate out-of-order completions if the server ever
// reorders (the current server answers per-connection in completion
// order, which batching can permute).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace proximity::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port (numeric IPv4). Returns false on failure.
  bool Connect(const std::string& host, std::uint16_t port);

  bool connected() const noexcept { return fd_ >= 0; }
  void Close();

  /// Writes one framed request (blocking until fully written).
  bool Send(const Request& request);

  /// Blocks until one complete response arrives. Returns false on EOF
  /// or a protocol error (the connection is closed in either case).
  bool Recv(Response* response);

  /// Send + Recv. Returns false when either side fails.
  bool Call(const Request& request, Response* response);

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> rbuf_;
};

}  // namespace proximity::net
