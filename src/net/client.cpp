#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <utility>

#include "obs/trace.h"

namespace proximity::net {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), rbuf_(std::move(other.rbuf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

bool Client::Connect(const std::string& host, std::uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  rbuf_.clear();
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool Client::Send(const Request& request) {
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, request);
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a dead server surfaces as a failed Send, not a
    // SIGPIPE that kills the client process.
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return false;
  }
  return true;
}

bool Client::Recv(Response* response) {
  if (fd_ < 0) return false;
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    std::size_t consumed = 0;
    const ParseResult parsed = ParseFrame(
        std::span<const std::uint8_t>(rbuf_), &consumed, response);
    if (parsed == ParseResult::kOk) {
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return true;
    }
    if (parsed == ParseResult::kError) {
      Close();
      return false;
    }
    const ssize_t n = ::read(fd_, chunk.data(), chunk.size());
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk.data(), chunk.data() + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();  // EOF or a hard read error
    return false;
  }
}

bool Client::Call(const Request& request, Response* response) {
  // When the calling thread carries an active trace and the request is
  // not already stamped, propagate the context on the wire: the call
  // span becomes the parent of the server's root span, so both sides
  // stitch into one trace. Untraced callers pay nothing and their
  // frames stay byte-identical.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (!ctx.active() || request.trace_id != 0) {
    return Send(request) && Recv(response);
  }
  Request traced = request;
  traced.trace_id = ctx.trace_id;
  const std::uint64_t call_span = obs::NewSpanId();
  traced.trace_parent = call_span;
  const Nanos start_ns = obs::TraceNowNs();
  const bool ok = Send(traced) && Recv(response);
  obs::TraceSpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = call_span;
  record.parent_id = ctx.span_id;
  record.op = obs::TraceOp::kClientCall;
  record.start_ns = start_ns;
  record.duration_ns = obs::TraceNowNs() - start_ns;
  obs::EmitTraceSpan(record);
  return ok;
}

}  // namespace proximity::net
