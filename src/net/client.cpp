#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/trace.h"

namespace proximity::net {
namespace {

using SteadyClock = std::chrono::steady_clock;

// Milliseconds left until `deadline`, clamped to >= 0 for poll().
int RemainingMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - SteadyClock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

// connect() with a poll()-bounded dial budget. The socket is flipped to
// non-blocking for the dial and restored after, so Send/Recv keep their
// blocking fast path.
bool ConnectWithTimeout(int fd, const sockaddr_in& addr, int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  bool ok = false;
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    ok = true;
  } else if (errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const auto deadline =
        SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const int pr = ::poll(&pfd, 1, RemainingMs(deadline));
      if (pr > 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        ok = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
             err == 0;
        break;
      }
      if (pr == 0) break;  // dial budget exhausted
      if (errno != EINTR) break;
    }
  }
  return ok && ::fcntl(fd, F_SETFL, flags) == 0;
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      rbuf_(std::move(other.rbuf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

bool Client::Connect(const std::string& host, std::uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  const bool connected =
      options_.connect_timeout_ms > 0
          ? ConnectWithTimeout(fd, addr, options_.connect_timeout_ms)
          : ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
                0;
  if (!connected) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  rbuf_.clear();
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool Client::Send(const Request& request) {
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, request);
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a dead server surfaces as a failed Send, not a
    // SIGPIPE that kills the client process.
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return false;
  }
  return true;
}

bool Client::Recv(Response* response) {
  if (fd_ < 0) return false;
  if (options_.recv_timeout_ms > 0) {
    const RecvStatus st = TryRecv(response, options_.recv_timeout_ms);
    if (st == RecvStatus::kTimeout) {
      // A caller using plain Recv() has no way to resume a half-read
      // frame later, so a timed-out connection is dead to it.
      Close();
    }
    return st == RecvStatus::kOk;
  }
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    std::size_t consumed = 0;
    const ParseResult parsed = ParseFrame(
        std::span<const std::uint8_t>(rbuf_), &consumed, response);
    if (parsed == ParseResult::kOk) {
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return true;
    }
    if (parsed == ParseResult::kError) {
      Close();
      return false;
    }
    const ssize_t n = ::read(fd_, chunk.data(), chunk.size());
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk.data(), chunk.data() + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();  // EOF or a hard read error
    return false;
  }
}

Client::RecvStatus Client::TryRecv(Response* response, int timeout_ms) {
  if (fd_ < 0) return RecvStatus::kError;
  std::array<std::uint8_t, 65536> chunk;
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(
                               timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    std::size_t consumed = 0;
    const ParseResult parsed = ParseFrame(
        std::span<const std::uint8_t>(rbuf_), &consumed, response);
    if (parsed == ParseResult::kOk) {
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return RecvStatus::kOk;
    }
    if (parsed == ParseResult::kError) {
      Close();
      return RecvStatus::kError;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int wait = timeout_ms < 0 ? -1 : RemainingMs(deadline);
    const int pr = ::poll(&pfd, 1, wait);
    if (pr == 0) return RecvStatus::kTimeout;
    if (pr < 0) {
      if (errno == EINTR) continue;
      Close();
      return RecvStatus::kError;
    }
    // MSG_DONTWAIT: poll() readiness can be spurious, and this loop
    // must never block past its budget.
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), MSG_DONTWAIT);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk.data(), chunk.data() + n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      continue;
    }
    Close();  // EOF or a hard read error
    return RecvStatus::kError;
  }
}

bool Client::Call(const Request& request, Response* response) {
  // When the calling thread carries an active trace and the request is
  // not already stamped, propagate the context on the wire: the call
  // span becomes the parent of the server's root span, so both sides
  // stitch into one trace. Untraced callers pay nothing and their
  // frames stay byte-identical.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (!ctx.active() || request.trace_id != 0) {
    return Send(request) && Recv(response);
  }
  Request traced = request;
  traced.trace_id = ctx.trace_id;
  const std::uint64_t call_span = obs::NewSpanId();
  traced.trace_parent = call_span;
  const Nanos start_ns = obs::TraceNowNs();
  const bool ok = Send(traced) && Recv(response);
  obs::TraceSpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = call_span;
  record.parent_id = ctx.span_id;
  record.op = obs::TraceOp::kClientCall;
  record.start_ns = start_ns;
  record.duration_ns = obs::TraceNowNs() - start_ns;
  obs::EmitTraceSpan(record);
  return ok;
}

}  // namespace proximity::net
