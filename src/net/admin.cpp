#include "net/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace proximity::net {

namespace {

const obs::CounterHandle kObsAdminRequests("admin.requests");
const obs::CounterHandle kObsAdminErrors("admin.errors");

// Tiny requests, tiny responses: one read cap keeps a misbehaving
// client from buffering the admin plane into the ground.
constexpr std::size_t kMaxHeaderBytes = 8192;

const char* StatusText(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

std::string FrameHttp(const AdminResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

/// "id=abc&x=1" -> value of `key`, or "" when absent.
std::string QueryParam(const std::string& query, const std::string& key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = end + 1;
  }
  return {};
}

}  // namespace

struct AdminServer::Conn {
  int fd = -1;
  std::string rbuf;
  std::string wbuf;
  std::size_t woff = 0;
  bool responded = false;
};

struct AdminServer::ConnTable {
  std::unordered_map<int, Conn> by_fd;
};

AdminServer::AdminServer(AdminHooks hooks, AdminOptions options)
    : hooks_(std::move(hooks)),
      options_(std::move(options)),
      conns_(std::make_unique<ConnTable>()) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Start() {
  if (started_.exchange(true)) {
    throw std::logic_error("net::AdminServer: Start called twice");
  }
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("net::AdminServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("net::AdminServer: bad host '" +
                                options_.host + "' (numeric IPv4 only)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        std::string("net::AdminServer: bind/listen on ") + options_.host +
        " failed: " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("net::AdminServer: epoll setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);

  loop_ = std::thread([this] { Loop(); });
  LogInfo("admin: listening on {}:{}", options_.host, bound_port_);
}

void AdminServer::Stop() {
  if (!started_.load()) return;
  stop_.store(true, std::memory_order_release);
  if (loop_.joinable()) loop_.join();
  for (auto& [fd, conn] : conns_->by_fd) ::close(fd);
  conns_->by_fd.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

AdminResponse AdminServer::Handle(const std::string& target) const {
  kObsAdminRequests.Inc();
  std::string path = target;
  std::string query;
  const std::size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }

  AdminResponse resp;
  if (path == "/healthz") {
    const HealthState state =
        hooks_.health ? hooks_.health() : HealthState::kServing;
    resp.status = state == HealthState::kServing ? 200 : 503;
    resp.body = std::string(HealthStateName(state)) + "\n";
    return resp;
  }
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body =
        obs::ToPrometheusText(obs::MetricsRegistry::Default().Snapshot());
    return resp;
  }
  if (path == "/statusz") {
    resp.body = "proximity statusz\n";
    if (hooks_.health) {
      resp.body += std::string("health: ") +
                   HealthStateName(hooks_.health()) + "\n";
    }
    if (hooks_.statusz) resp.body += hooks_.statusz();
    return resp;
  }
  if (path == "/tracez") {
    resp.content_type = "application/json";
    const std::string id_hex = QueryParam(query, "id");
    if (id_hex.empty()) {
      resp.body =
          obs::ToTraceListJson(obs::TraceCollector::Default().Sampled());
      return resp;
    }
    const std::uint64_t id =
        std::strtoull(id_hex.c_str(), nullptr, 16);  // accepts 0x prefix
    auto trace = obs::TraceCollector::Default().Find(id);
    if (!trace.has_value()) {
      kObsAdminErrors.Inc();
      resp.status = 404;
      resp.content_type = "text/plain; charset=utf-8";
      resp.body = "trace not found (dropped by the tail sampler?)\n";
      return resp;
    }
    resp.body = obs::ToTraceEventJson(*trace);
    return resp;
  }
  if (path == "/") {
    resp.body =
        "proximity admin endpoints:\n"
        "  /metrics  Prometheus text exposition (live)\n"
        "  /healthz  serving | draining | unavailable\n"
        "  /statusz  build + serving configuration\n"
        "  /tracez   sampled traces; ?id=<hex> -> trace_event JSON\n";
    return resp;
  }
  kObsAdminErrors.Inc();
  resp.status = 404;
  resp.body = "not found\n";
  return resp;
}

void AdminServer::Loop() {
  std::array<epoll_event, 16> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        for (;;) {
          const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
          conns_->by_fd.emplace(cfd, Conn{cfd, {}, {}, 0, false});
        }
        continue;
      }
      auto it = conns_->by_fd.find(fd);
      if (it == conns_->by_fd.end()) continue;
      Conn& conn = it->second;
      const auto close_conn = [&] {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        conns_->by_fd.erase(fd);
      };

      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0 &&
          !conn.responded) {
        std::array<char, 4096> chunk;
        bool dead = false;
        for (;;) {
          const ssize_t r = ::read(fd, chunk.data(), chunk.size());
          if (r > 0) {
            conn.rbuf.append(chunk.data(), static_cast<std::size_t>(r));
            continue;
          }
          if (r == 0) dead = true;
          if (r < 0 && errno == EINTR) continue;
          if (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK) dead = true;
          break;
        }
        const std::size_t header_end = conn.rbuf.find("\r\n\r\n");
        if (header_end != std::string::npos) {
          // "GET <target> HTTP/1.x" — everything else is a 405/400.
          AdminResponse resp;
          const std::size_t line_end = conn.rbuf.find("\r\n");
          const std::string line = conn.rbuf.substr(0, line_end);
          if (line.rfind("GET ", 0) == 0) {
            const std::size_t sp = line.find(' ', 4);
            const std::string target =
                sp != std::string::npos ? line.substr(4, sp - 4)
                                        : line.substr(4);
            resp = Handle(target);
          } else {
            kObsAdminErrors.Inc();
            resp.status = line.find(' ') != std::string::npos ? 405 : 400;
            resp.body = "admin plane speaks GET only\n";
          }
          conn.wbuf = FrameHttp(resp);
          conn.responded = true;
        } else if (conn.rbuf.size() > kMaxHeaderBytes || dead) {
          close_conn();
          continue;
        }
      }

      if (conn.responded) {
        bool failed = false;
        while (conn.woff < conn.wbuf.size()) {
          const ssize_t w =
              ::send(fd, conn.wbuf.data() + conn.woff,
                     conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
          if (w > 0) {
            conn.woff += static_cast<std::size_t>(w);
            continue;
          }
          if (w < 0 && errno == EINTR) continue;
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            epoll_event ev{};
            ev.events = EPOLLIN | EPOLLOUT;
            ev.data.fd = fd;
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
            break;
          }
          failed = true;
          break;
        }
        if (failed || conn.woff >= conn.wbuf.size()) {
          close_conn();  // Connection: close — one request per socket
          continue;
        }
      }
    }
  }
}

}  // namespace proximity::net
