// Exact brute-force index (the FAISS-FLAT stand-in used for MedRAG, §4.2).
#pragma once

#include <cstddef>

#include "index/vector_index.h"
#include "vecmath/compressed_store.h"

namespace proximity {

class ThreadPool;

struct FlatIndexOptions {
  Metric metric = Metric::kL2;
  /// Scans with more than this many vectors are split across the shared
  /// thread pool; 0 disables parallel scan.
  std::size_t parallel_threshold = 65536;
  /// Primary-scan representation (DESIGN.md §11). kFloat32 keeps the
  /// exact single-level scan; sq8/sq4 scan cache-line-blocked quantized
  /// codes first and rerank the survivors against the float rows.
  StorageLayout storage = StorageLayout::kFloat32;
  /// Over-fetch multiplier for the quantized primary scan: the
  /// compressed pass keeps rerank_factor * k candidates before the
  /// full-precision rerank. Ignored for kFloat32.
  std::size_t rerank_factor = 4;
};

class FlatIndex final : public VectorIndex {
 public:
  FlatIndex(std::size_t dim, FlatIndexOptions options = {});

  std::size_t dim() const noexcept override { return vectors_.dim(); }
  Metric metric() const noexcept override { return options_.metric; }
  std::size_t size() const noexcept override { return vectors_.rows(); }

  VectorId Add(std::span<const float> vec) override;
  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;
  std::string Describe() const override;

  void SaveTo(std::ostream& os) const override;
  static FlatIndex LoadFrom(std::istream& is);

  /// Exact filtered search: one predicated scan (no over-fetch).
  std::vector<Neighbor> SearchFiltered(std::span<const float> query,
                                       std::size_t k,
                                       const Filter& filter) const override;

  /// Direct access to a stored vector (used by tests and by IVF training).
  std::span<const float> Vector(VectorId id) const noexcept {
    return vectors_.Row(static_cast<std::size_t>(id));
  }

  const Matrix& vectors() const noexcept { return vectors_; }

  StorageLayout storage() const noexcept { return options_.storage; }
  /// The compressed primary store (empty for kFloat32); tests only.
  const CompressedStore& compressed() const noexcept { return store_; }

 private:
  bool quantized() const noexcept {
    return options_.storage != StorageLayout::kFloat32;
  }

  /// Compressed scan of rows [lo, hi) keeping the best `fetch` rows.
  std::vector<Neighbor> ScanCompressed(std::span<const float> query,
                                       std::size_t lo, std::size_t hi,
                                       std::size_t fetch) const;

  FlatIndexOptions options_;
  Matrix vectors_;
  // Quantized mirror of vectors_ (primary scan representation); rows are
  // appended in lockstep with vectors_ when storage != kFloat32.
  CompressedStore store_;
};

}  // namespace proximity
