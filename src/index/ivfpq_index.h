// IVF-PQ: inverted file with product-quantized residual-free codes.
//
// Combines the coarse quantizer (kmeans.h) with ProductQuantizer for
// memory-compact approximate search — the third ANN family compared in
// the index benchmark (DESIGN.md row A-index).
#pragma once

#include <cstdint>
#include <vector>

#include "index/pq.h"
#include "index/vector_index.h"

namespace proximity {

struct IvfPqOptions {
  Metric metric = Metric::kL2;  // ADC is L2-based; kL2 is the supported metric
  std::size_t nlist = 64;
  std::size_t nprobe = 8;
  PqOptions pq;
  std::uint64_t seed = 42;
  /// Exact re-ranking (FAISS "Refine"): when > 0, ADC search retrieves
  /// refine_factor * k candidates which are then re-ranked with exact
  /// distances against retained raw vectors. Trades the PQ memory savings
  /// for recall; 0 disables refinement (raw vectors are not stored).
  std::size_t refine_factor = 0;
};

class IvfPqIndex final : public VectorIndex {
 public:
  IvfPqIndex(std::size_t dim, IvfPqOptions options = {});

  /// Trains the coarse quantizer and PQ codebooks on `sample`.
  void Train(const Matrix& sample);
  bool trained() const noexcept { return trained_; }

  std::size_t dim() const noexcept override { return dim_; }
  Metric metric() const noexcept override { return options_.metric; }
  std::size_t size() const noexcept override { return count_; }

  VectorId Add(std::span<const float> vec) override;
  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;
  std::string Describe() const override;

  void SaveTo(std::ostream& os) const override;
  static IvfPqIndex LoadFrom(std::istream& is);

  void set_nprobe(std::size_t nprobe) noexcept { options_.nprobe = nprobe; }

  /// Bytes used per stored vector (code only), for the memory comparison.
  std::size_t BytesPerVector() const noexcept { return pq_.code_size(); }

 private:
  struct InvertedList {
    std::vector<VectorId> ids;
    std::vector<std::uint8_t> codes;  // code_size bytes per entry
  };

  std::size_t dim_;
  IvfPqOptions options_;
  bool trained_ = false;
  Matrix centroids_;
  ProductQuantizer pq_;
  std::vector<InvertedList> lists_;
  /// Raw vectors by id, kept only when refine_factor > 0.
  Matrix raw_vectors_;
  std::size_t count_ = 0;
};

}  // namespace proximity
