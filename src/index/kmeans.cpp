#include "index/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "vecmath/kernels.h"

namespace proximity {

namespace {

// k-means++ seeding: first centroid uniform, then proportional to D^2.
Matrix SeedPlusPlus(const Matrix& data, std::size_t k, Rng& rng) {
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  Matrix centroids(0, d);
  centroids.Reserve(k);

  std::vector<float> min_dist(n, std::numeric_limits<float>::infinity());
  std::size_t first = static_cast<std::size_t>(rng.Below(n));
  centroids.AppendRow(data.Row(first));

  for (std::size_t c = 1; c < k; ++c) {
    const auto last = centroids.Row(centroids.rows() - 1);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float dd = L2SquaredDistance(data.Row(i), last);
      min_dist[i] = std::min(min_dist[i], dd);
      total += min_dist[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; pick uniformly.
      centroids.AppendRow(data.Row(static_cast<std::size_t>(rng.Below(n))));
      continue;
    }
    double target = rng.NextDouble() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= min_dist[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.AppendRow(data.Row(chosen));
  }
  return centroids;
}

}  // namespace

std::uint32_t NearestCentroid(const Matrix& centroids,
                              std::span<const float> v) noexcept {
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const float d = L2SquaredDistance(centroids.Row(c), v);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return best;
}

KMeansResult RunKMeans(const Matrix& data, std::size_t k,
                       const KMeansOptions& options) {
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  if (n == 0) throw std::invalid_argument("RunKMeans: empty data");
  if (k == 0) throw std::invalid_argument("RunKMeans: k must be > 0");

  Rng rng(options.seed);
  KMeansResult result;

  if (k >= n) {
    // Degenerate: each point is its own centroid.
    result.centroids = Matrix(0, d);
    result.centroids.Reserve(n);
    result.assignment.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      result.centroids.AppendRow(data.Row(i));
      result.assignment[i] = static_cast<std::uint32_t>(i);
    }
    return result;
  }

  result.centroids = SeedPlusPlus(data, k, rng);
  result.assignment.assign(n, 0);
  std::vector<float> dists(n, 0.f);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    auto assign_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const std::uint32_t c = NearestCentroid(result.centroids, data.Row(i));
        result.assignment[i] = c;
        dists[i] = L2SquaredDistance(result.centroids.Row(c), data.Row(i));
      }
    };
    if (options.parallel) {
      ThreadPool::Shared().ParallelForChunked(0, n, assign_range);
    } else {
      assign_range(0, n);
    }

    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) inertia += dists[i];
    result.inertia = inertia;

    // Update step.
    Matrix sums(k, d);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = result.assignment[i];
      auto row = sums.MutableRow(c);
      const auto src = data.Row(i);
      for (std::size_t j = 0; j < d; ++j) row[j] += src[j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the farthest point.
        std::size_t far = static_cast<std::size_t>(
            std::max_element(dists.begin(), dists.end()) - dists.begin());
        const auto src = data.Row(far);
        std::copy(src.begin(), src.end(),
                  result.centroids.MutableRow(c).begin());
        dists[far] = 0.f;
        continue;
      }
      auto dst = result.centroids.MutableRow(c);
      const auto sum = sums.Row(c);
      const float inv = 1.f / static_cast<float>(counts[c]);
      for (std::size_t j = 0; j < d; ++j) dst[j] = sum[j] * inv;
    }

    if (prev_inertia < std::numeric_limits<double>::infinity()) {
      const double rel =
          prev_inertia > 0 ? (prev_inertia - inertia) / prev_inertia : 0.0;
      if (rel >= 0 && rel < options.tolerance) break;
    }
    prev_inertia = inertia;
  }

  // Final assignment against the updated centroids.
  auto final_assign = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      result.assignment[i] = NearestCentroid(result.centroids, data.Row(i));
    }
  };
  if (options.parallel) {
    ThreadPool::Shared().ParallelForChunked(0, n, final_assign);
  } else {
    final_assign(0, n);
  }
  return result;
}

}  // namespace proximity
