// Index persistence: magic tags and type-dispatching load.
//
// Every serializable index implements SaveTo (and a static LoadFrom);
// LoadIndex() peeks the magic tag and reconstructs the right type, the
// way faiss's read_index does.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "index/vector_index.h"

namespace proximity {

namespace io_magic {
// 'P' 'x' 'y' 'z' little-endian tags, one per persistent artifact.
inline constexpr std::uint32_t kFlatIndex = 0x544c4650;   // "PFLT"
inline constexpr std::uint32_t kHnswIndex = 0x574e4850;   // "PHNW"
inline constexpr std::uint32_t kIvfFlat = 0x46564950;     // "PIVF"
inline constexpr std::uint32_t kPq = 0x58515050;          // "PPQX"
inline constexpr std::uint32_t kIvfPq = 0x51504950;       // "PIPQ"
inline constexpr std::uint32_t kCache = 0x48434350;       // "PCCH"
inline constexpr std::uint32_t kMutableIndex = 0x54554d50;  // "PMUT"
}  // namespace io_magic

/// Reconstructs an index saved with VectorIndex::SaveTo. Dispatches on the
/// leading magic tag. Throws std::runtime_error on unknown or corrupt
/// input.
std::unique_ptr<VectorIndex> LoadIndex(std::istream& is);

/// File-path conveniences (binary mode, whole-file).
void SaveIndexToFile(const VectorIndex& index, const std::string& path);
std::unique_ptr<VectorIndex> LoadIndexFromFile(const std::string& path);

}  // namespace proximity
