#include "index/vector_index.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace proximity {

void VectorIndex::CheckDim(std::span<const float> v) const {
  if (v.size() != dim()) {
    throw std::invalid_argument("VectorIndex: expected dim " +
                                std::to_string(dim()) + ", got " +
                                std::to_string(v.size()));
  }
}

VectorId VectorIndex::AddBatch(const Matrix& vectors) {
  if (vectors.dim() != dim()) {
    throw std::invalid_argument("VectorIndex::AddBatch: dimension mismatch");
  }
  const VectorId first = static_cast<VectorId>(size());
  for (std::size_t r = 0; r < vectors.rows(); ++r) {
    Add(vectors.Row(r));
  }
  return first;
}

std::vector<std::vector<Neighbor>> VectorIndex::SearchBatch(
    const Matrix& queries, std::size_t k) const {
  if (queries.rows() > 0 && queries.dim() != dim()) {
    throw std::invalid_argument("VectorIndex::SearchBatch: dimension mismatch");
  }
  std::vector<std::vector<Neighbor>> results(queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    results[q] = Search(queries.Row(q), k);
  }
  return results;
}

bool VectorIndex::Delete(VectorId) {
  throw std::logic_error("VectorIndex: " + Describe() +
                         " is build-once and does not support Delete");
}

void VectorIndex::SaveTo(std::ostream&) const {
  throw std::logic_error("VectorIndex: " + Describe() +
                         " does not support serialization");
}

std::vector<Neighbor> VectorIndex::SearchFiltered(
    std::span<const float> query, std::size_t k, const Filter& filter) const {
  if (!filter) return Search(query, k);
  if (k == 0 || size() == 0) return {};

  // Over-fetch with geometric widening until k survivors are found or the
  // whole index has been requested.
  std::size_t fetch = k;
  for (;;) {
    fetch = std::min(fetch, size());
    auto candidates = Search(query, fetch);
    std::vector<Neighbor> kept;
    kept.reserve(k);
    for (const auto& n : candidates) {
      if (filter(n.id)) {
        kept.push_back(n);
        if (kept.size() == k) return kept;
      }
    }
    if (fetch >= size()) return kept;  // fewer than k matches exist
    fetch *= 4;
  }
}

}  // namespace proximity
