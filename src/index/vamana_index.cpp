#include "index/vamana_index.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/rng.h"
#include "obs/scan_stats.h"
#include "vecmath/kernels.h"

namespace proximity {

namespace {
struct NeighborFartherFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.distance > b.distance;
  }
};
struct NeighborCloserFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.distance < b.distance;
  }
};
}  // namespace

VamanaIndex::VamanaIndex(std::size_t dim, VamanaOptions options)
    : options_(options), vectors_(0, dim) {
  if (options_.max_degree < 2) {
    throw std::invalid_argument("VamanaIndex: max_degree must be >= 2");
  }
  if (options_.alpha < 1.0f) {
    throw std::invalid_argument("VamanaIndex: alpha must be >= 1");
  }
  if (options_.build_beam < options_.max_degree) {
    options_.build_beam = options_.max_degree;
  }
  if (quantized()) store_ = CompressedStore(dim, options_.storage);
}

float VamanaIndex::Dist(std::span<const float> a, NodeId b) const noexcept {
  return Distance(options_.metric, a, vectors_.Row(b));
}

float VamanaIndex::TraversalDist(std::span<const float> query,
                                 NodeId b) const {
  return quantized() ? store_.RowDistance(options_.metric, query, b)
                     : Dist(query, b);
}

std::vector<Neighbor> VamanaIndex::BeamSearch(
    std::span<const float> query, std::size_t beam,
    std::vector<Neighbor>* visited_out) const {
  std::lock_guard lock(scratch_mu_);
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_stamp_.begin(), visited_stamp_.end(), 0u);
    epoch_ = 1;
  }
  if (visited_stamp_.size() < vectors_.rows()) {
    visited_stamp_.resize(vectors_.rows(), 0u);
  }

  std::vector<Neighbor> frontier;  // min-heap (closest first)
  std::vector<Neighbor> results;   // max-heap (worst first)

  const float d0 = TraversalDist(query, medoid_);
  frontier.push_back({static_cast<VectorId>(medoid_), d0});
  results.push_back({static_cast<VectorId>(medoid_), d0});
  visited_stamp_[medoid_] = epoch_;
  if (visited_out != nullptr) visited_out->push_back(frontier.front());
  std::uint64_t expanded = 1;

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), NeighborFartherFirst{});
    const Neighbor cur = frontier.back();
    frontier.pop_back();
    if (results.size() >= beam && cur.distance > results.front().distance) {
      break;
    }
    auto expand = [&](NodeId nb) {
      if (visited_stamp_[nb] == epoch_) return;
      visited_stamp_[nb] = epoch_;
      ++expanded;
      const float d = TraversalDist(query, nb);
      if (visited_out != nullptr) {
        visited_out->push_back({static_cast<VectorId>(nb), d});
      }
      if (results.size() < beam || d < results.front().distance) {
        frontier.push_back({static_cast<VectorId>(nb), d});
        std::push_heap(frontier.begin(), frontier.end(),
                       NeighborFartherFirst{});
        results.push_back({static_cast<VectorId>(nb), d});
        std::push_heap(results.begin(), results.end(), NeighborCloserFirst{});
        if (results.size() > beam) {
          std::pop_heap(results.begin(), results.end(), NeighborCloserFirst{});
          results.pop_back();
        }
      }
    };
    const auto cur_id = static_cast<std::size_t>(cur.id);
    for (NodeId nb : adjacency_[cur_id]) expand(nb);
    if (cur_id < long_links_.size()) {
      for (NodeId nb : long_links_[cur_id]) expand(nb);
    }
  }
  if (quantized()) obs::ScanPrimaryBytes(expanded * store_.block_stride());
  std::sort(results.begin(), results.end(), NeighborCloser{});
  return results;
}

std::vector<VamanaIndex::NodeId> VamanaIndex::RobustPrune(
    NodeId node, std::vector<Neighbor> candidates, float alpha) const {
  // Drop self and duplicates, sort ascending by distance to `node`.
  std::sort(candidates.begin(), candidates.end(), NeighborCloser{});
  candidates.erase(
      std::unique(candidates.begin(), candidates.end(),
                  [](const Neighbor& a, const Neighbor& b) {
                    return a.id == b.id;
                  }),
      candidates.end());

  std::vector<NodeId> selected;
  std::vector<bool> pruned(candidates.size(), false);
  for (std::size_t i = 0;
       i < candidates.size() && selected.size() < options_.max_degree; ++i) {
    if (pruned[i]) continue;
    const NodeId chosen = static_cast<NodeId>(candidates[i].id);
    if (chosen == node) continue;
    selected.push_back(chosen);
    // Drop every remaining candidate that `chosen` dominates: a candidate
    // v is redundant when α·d(chosen, v) <= d(node, v).
    const auto chosen_vec = vectors_.Row(chosen);
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      if (pruned[j]) continue;
      const float d_cv = Distance(options_.metric, chosen_vec,
                                  vectors_.Row(static_cast<std::size_t>(
                                      candidates[j].id)));
      if (alpha * d_cv <= candidates[j].distance) {
        pruned[j] = true;
      }
    }
  }
  return selected;
}

void VamanaIndex::BuildGraph() {
  const std::size_t n = vectors_.rows();
  adjacency_.assign(n, {});
  if (n == 0) {
    graph_dirty_ = false;
    return;
  }
  if (n == 1) {
    medoid_ = 0;
    graph_dirty_ = false;
    return;
  }

  Rng rng(SplitMix64(options_.seed ^ 0x7a3aULL));

  // 0. Protected random shortcuts (never pruned; see VamanaOptions).
  long_links_.assign(n, {});
  if (options_.long_edges > 0 && n > 2) {
    for (std::size_t i = 0; i < n; ++i) {
      auto& links = long_links_[i];
      while (links.size() < std::min(options_.long_edges, n - 1)) {
        const NodeId r = static_cast<NodeId>(rng.Below(n));
        if (r == i) continue;
        if (std::find(links.begin(), links.end(), r) == links.end()) {
          links.push_back(r);
        }
      }
    }
  }

  // 1. Random R-regular initialization: the long-range edges that make
  //    the later passes able to route between distant regions.
  const std::size_t init_degree =
      std::min(options_.max_degree, n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto& out = adjacency_[i];
    out.reserve(init_degree);
    while (out.size() < init_degree) {
      const NodeId r = static_cast<NodeId>(rng.Below(n));
      if (r == i) continue;
      if (std::find(out.begin(), out.end(), r) == out.end()) {
        out.push_back(r);
      }
    }
  }

  // 2. Medoid: the point closest to the dataset centroid.
  std::vector<float> mean(vectors_.dim(), 0.f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = vectors_.Row(i);
    for (std::size_t j = 0; j < mean.size(); ++j) mean[j] += row[j];
  }
  for (auto& x : mean) x /= static_cast<float>(n);
  medoid_ = 0;
  float best = Distance(options_.metric, mean, vectors_.Row(0));
  for (std::size_t i = 1; i < n; ++i) {
    const float d = Distance(options_.metric, mean, vectors_.Row(i));
    if (d < best) {
      best = d;
      medoid_ = static_cast<NodeId>(i);
    }
  }

  // 3. Two refinement passes over all nodes in random order: α = 1 builds
  //    a tight navigable skeleton, α > 1 re-adds detour-resistant edges
  //    (the DiskANN construction schedule).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (float alpha : {1.0f, options_.alpha}) {
    rng.Shuffle(order);
    for (std::size_t i : order) {
      const NodeId node = static_cast<NodeId>(i);
      const auto query = vectors_.Row(i);
      std::vector<Neighbor> visited;
      BeamSearch(query, options_.build_beam, &visited);
      // Candidates: beam-visited set plus current out-neighbors
      // (traversal distances, so the candidate ordering is consistent).
      for (NodeId nb : adjacency_[i]) {
        visited.push_back({static_cast<VectorId>(nb),
                           TraversalDist(query, nb)});
      }
      adjacency_[i] = RobustPrune(node, std::move(visited), alpha);
      for (NodeId nb : adjacency_[i]) {
        auto& reverse = adjacency_[nb];
        if (std::find(reverse.begin(), reverse.end(), node) !=
            reverse.end()) {
          continue;
        }
        reverse.push_back(node);
        if (reverse.size() > options_.max_degree) {
          const auto nb_vec = vectors_.Row(nb);
          std::vector<Neighbor> cands;
          cands.reserve(reverse.size());
          for (NodeId r : reverse) {
            cands.push_back({static_cast<VectorId>(r), Dist(nb_vec, r)});
          }
          adjacency_[nb] = RobustPrune(nb, std::move(cands), alpha);
        }
      }
    }
  }
  graph_dirty_ = false;
}

void VamanaIndex::InsertIntoGraph(NodeId id) {
  // Assign the node's protected shortcuts first so it participates in
  // long-range routing like bulk-built nodes.
  if (long_links_.size() <= id) long_links_.resize(id + 1);
  if (options_.long_edges > 0 && vectors_.rows() > 2) {
    auto& links = long_links_[id];
    while (links.size() <
           std::min(options_.long_edges, vectors_.rows() - 1)) {
      long_rng_state_ = SplitMix64(long_rng_state_ ^ options_.seed ^ id);
      const NodeId r =
          static_cast<NodeId>(long_rng_state_ % vectors_.rows());
      if (r == id) continue;
      if (std::find(links.begin(), links.end(), r) == links.end()) {
        links.push_back(r);
      }
    }
  }
  const auto query = vectors_.Row(id);
  std::vector<Neighbor> visited;
  BeamSearch(query, options_.build_beam, &visited);
  adjacency_[id] = RobustPrune(id, std::move(visited), options_.alpha);
  for (NodeId nb : adjacency_[id]) {
    auto& reverse = adjacency_[nb];
    if (std::find(reverse.begin(), reverse.end(), id) == reverse.end()) {
      reverse.push_back(id);
    }
    if (reverse.size() > options_.max_degree) {
      const auto nb_vec = vectors_.Row(nb);
      std::vector<Neighbor> candidates;
      candidates.reserve(reverse.size());
      for (NodeId r : reverse) {
        candidates.push_back({static_cast<VectorId>(r), Dist(nb_vec, r)});
      }
      adjacency_[nb] =
          RobustPrune(nb, std::move(candidates), options_.alpha);
    }
  }
}

VectorId VamanaIndex::Add(std::span<const float> vec) {
  CheckDim(vec);
  const NodeId id = static_cast<NodeId>(vectors_.rows());
  vectors_.AppendRow(vec);
  // Quantized traversal mirror; the float row stays authoritative for
  // RobustPrune and the final rerank.
  if (quantized()) store_.AppendRow(vec);
  adjacency_.emplace_back();

  if (id == 0) {
    medoid_ = 0;
    return 0;
  }
  if (options_.bulk_build && graph_dirty_) {
    return static_cast<VectorId>(id);  // buffered; built on demand
  }
  if (options_.bulk_build && vectors_.rows() > 1 && adjacency_[0].empty()) {
    // First insertions before any search: defer to the bulk build.
    graph_dirty_ = true;
    return static_cast<VectorId>(id);
  }
  InsertIntoGraph(id);
  return static_cast<VectorId>(id);
}

void VamanaIndex::EnsureBuilt() const {
  if (!graph_dirty_) return;
  std::lock_guard lock(build_mu_);
  if (graph_dirty_) {
    const_cast<VamanaIndex*>(this)->BuildGraph();
  }
}

void VamanaIndex::Build() { EnsureBuilt(); }

const std::vector<std::uint32_t>& VamanaIndex::OutNeighbors(VectorId id) {
  EnsureBuilt();
  return adjacency_[static_cast<std::size_t>(id)];
}

const std::vector<std::uint32_t>& VamanaIndex::LongLinks(VectorId id) {
  EnsureBuilt();
  if (static_cast<std::size_t>(id) >= long_links_.size()) {
    static const std::vector<std::uint32_t> kEmpty;
    return kEmpty;
  }
  return long_links_[static_cast<std::size_t>(id)];
}

std::vector<Neighbor> VamanaIndex::Search(std::span<const float> query,
                                          std::size_t k) const {
  CheckDim(query);
  if (k == 0 || vectors_.rows() == 0) return {};
  EnsureBuilt();
  const std::size_t beam = std::max(options_.search_beam, k);
  auto results = BeamSearch(query, beam, nullptr);
  if (quantized()) {
    // The beam ran on compressed codes; rerank the surviving candidates
    // against the float rows before the final cut (DESIGN.md §11).
    for (auto& nb : results) {
      nb.distance = Dist(query, static_cast<NodeId>(nb.id));
    }
    obs::ScanRerankBytes(results.size() * vectors_.dim() * sizeof(float));
    obs::ScanCandidates(results.size());
    obs::ScanQuery(static_cast<double>(results.size()) /
                   static_cast<double>(vectors_.rows()));
    std::sort(results.begin(), results.end(), NeighborCloser{});
  }
  if (results.size() > k) results.resize(k);
  return results;
}

std::string VamanaIndex::Describe() const {
  std::string desc = "vamana(" + std::string(MetricName(options_.metric)) +
                     ",R=" + std::to_string(options_.max_degree) +
                     ",L=" + std::to_string(options_.search_beam) +
                     ",alpha=" + std::to_string(options_.alpha);
  if (quantized()) {
    desc += ",storage=" + std::string(StorageLayoutName(options_.storage));
  }
  return desc + ",n=" + std::to_string(size()) + ")";
}

}  // namespace proximity
