#include "index/sq8_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {

Sq8Index::Sq8Index(std::size_t dim, Sq8Options options)
    : dim_(dim), options_(options), raw_vectors_(0, dim) {
  if (dim == 0) throw std::invalid_argument("Sq8Index: dim must be > 0");
  if (options_.trim < 0.0 || options_.trim >= 0.5) {
    throw std::invalid_argument("Sq8Index: trim must be in [0, 0.5)");
  }
}

void Sq8Index::Train(const Matrix& sample) {
  if (trained_) throw std::logic_error("Sq8Index: already trained");
  if (sample.dim() != dim_) {
    throw std::invalid_argument("Sq8Index::Train: dimension mismatch");
  }
  if (sample.rows() == 0) {
    throw std::invalid_argument("Sq8Index::Train: empty sample");
  }
  vmin_.resize(dim_);
  vscale_.resize(dim_);
  std::vector<float> column(sample.rows());
  const auto lo_idx = static_cast<std::size_t>(
      options_.trim * static_cast<double>(sample.rows() - 1));
  const std::size_t hi_idx = sample.rows() - 1 - lo_idx;
  for (std::size_t j = 0; j < dim_; ++j) {
    for (std::size_t r = 0; r < sample.rows(); ++r) {
      column[r] = sample.Row(r)[j];
    }
    std::nth_element(column.begin(), column.begin() + lo_idx, column.end());
    const float lo = column[lo_idx];
    std::nth_element(column.begin(), column.begin() + hi_idx, column.end());
    const float hi = column[hi_idx];
    vmin_[j] = lo;
    vscale_[j] = std::max((hi - lo) / 255.f, 1e-12f);
  }
  trained_ = true;
}

void Sq8Index::Encode(std::span<const float> vec, std::uint8_t* code) const {
  if (!trained_) throw std::logic_error("Sq8Index: train first");
  for (std::size_t j = 0; j < dim_; ++j) {
    const float q = (vec[j] - vmin_[j]) / vscale_[j];
    code[j] = static_cast<std::uint8_t>(
        std::clamp(std::lround(q), 0L, 255L));
  }
}

void Sq8Index::Decode(const std::uint8_t* code, std::span<float> out) const {
  if (!trained_) throw std::logic_error("Sq8Index: train first");
  for (std::size_t j = 0; j < dim_; ++j) {
    out[j] = vmin_[j] + static_cast<float>(code[j]) * vscale_[j];
  }
}

VectorId Sq8Index::Add(std::span<const float> vec) {
  if (!trained_) throw std::logic_error("Sq8Index: train before Add");
  CheckDim(vec);
  const VectorId id = static_cast<VectorId>(count_++);
  const std::size_t off = codes_.size();
  codes_.resize(off + dim_);
  Encode(vec, codes_.data() + off);
  if (options_.refine_factor > 0) raw_vectors_.AppendRow(vec);
  return id;
}

std::vector<Neighbor> Sq8Index::Search(std::span<const float> query,
                                       std::size_t k) const {
  if (!trained_) throw std::logic_error("Sq8Index: train before Search");
  CheckDim(query);
  if (k == 0 || count_ == 0) return {};

  const std::size_t scan_k =
      options_.refine_factor > 0 ? k * options_.refine_factor : k;
  TopK top(scan_k);
  std::vector<float> decoded(dim_);
  for (std::size_t r = 0; r < count_; ++r) {
    Decode(codes_.data() + r * dim_, decoded);
    const float d = Distance(options_.metric, query, decoded);
    top.Push(static_cast<VectorId>(r), d);
  }
  auto candidates = top.Take();
  if (options_.refine_factor == 0) return candidates;

  TopK refined(k);
  for (const auto& cand : candidates) {
    const float d = Distance(
        options_.metric, query,
        raw_vectors_.Row(static_cast<std::size_t>(cand.id)));
    refined.Push(cand.id, d);
  }
  return refined.Take();
}

std::string Sq8Index::Describe() const {
  return "sq8(" + std::string(MetricName(options_.metric)) +
         ",refine=" + std::to_string(options_.refine_factor) +
         ",n=" + std::to_string(count_) + ")";
}

}  // namespace proximity
