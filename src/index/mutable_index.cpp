#include "index/mutable_index.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "common/rng.h"
#include "common/serde.h"
#include "index/index_io.h"
#include "obs/metrics_registry.h"
#include "vecmath/kernels.h"

namespace proximity {

namespace {

const obs::CounterHandle kObsInserts("index.inserts");
const obs::CounterHandle kObsDeletes("index.deletes");
const obs::CounterHandle kObsReclaimed("index.reclaimed");
const obs::GaugeHandle kObsGeneration("index.generation");
const obs::GaugeHandle kObsTombstones("index.tombstones");

struct NeighborFartherFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.distance > b.distance;
  }
};
struct NeighborCloserFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.distance < b.distance;
  }
};

}  // namespace

MutableGraphIndex::MutableGraphIndex(std::size_t dim,
                                     MutableGraphOptions options)
    : options_(options), dim_(dim), rows_(0, dim) {
  if (options_.max_degree < 2) {
    throw std::invalid_argument("MutableGraphIndex: max_degree must be >= 2");
  }
  if (options_.alpha < 1.0f) {
    throw std::invalid_argument("MutableGraphIndex: alpha must be >= 1");
  }
  if (options_.consolidate_chunk == 0) options_.consolidate_chunk = 1;
  if (options_.build_beam < options_.max_degree) {
    options_.build_beam = options_.max_degree;
  }
  long_rng_state_ = SplitMix64(options_.seed ^ 0x6d75746cULL);  // "mutl"
}

float MutableGraphIndex::Dist(std::span<const float> a,
                              NodeId b) const noexcept {
  return Distance(options_.metric, a, rows_.Row(b));
}

std::shared_lock<std::shared_mutex> MutableGraphIndex::AcquireShared() const {
  // Back off while a writer waits; without this a sustained query
  // stream starves mutations forever (glibc rwlocks prefer readers).
  while (writers_waiting_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  return std::shared_lock(mu_);
}

std::unique_lock<std::shared_mutex> MutableGraphIndex::AcquireUnique() const {
  writers_waiting_.fetch_add(1, std::memory_order_acq_rel);
  std::unique_lock lock(mu_);
  writers_waiting_.fetch_sub(1, std::memory_order_acq_rel);
  return lock;
}

std::vector<Neighbor> MutableGraphIndex::BeamSearchLocked(
    std::span<const float> query, std::size_t beam, bool include_dead) const {
  std::vector<Neighbor> results;
  if (live_count_.load(std::memory_order_relaxed) == 0 &&
      tombstones_ == 0) {
    return results;
  }
  // Local visited set: concurrent shared-lock searches never share
  // scratch, which keeps this path TSan-clean without a scratch mutex.
  std::vector<std::uint8_t> visited(rows_.rows(), 0);

  std::vector<Neighbor> frontier;  // min-heap (closest first)
  std::vector<Neighbor> best;      // max-heap (worst first), live+dead

  const NodeId start = entry_;
  const float d0 = Dist(query, start);
  frontier.push_back({static_cast<VectorId>(start), d0});
  best.push_back({static_cast<VectorId>(start), d0});
  visited[start] = 1;

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), NeighborFartherFirst{});
    const Neighbor cur = frontier.back();
    frontier.pop_back();
    if (best.size() >= beam && cur.distance > best.front().distance) break;
    auto expand = [&](NodeId nb) {
      if (visited[nb] != 0) return;
      visited[nb] = 1;
      const float d = Dist(query, nb);
      if (best.size() < beam || d < best.front().distance) {
        frontier.push_back({static_cast<VectorId>(nb), d});
        std::push_heap(frontier.begin(), frontier.end(),
                       NeighborFartherFirst{});
        best.push_back({static_cast<VectorId>(nb), d});
        std::push_heap(best.begin(), best.end(), NeighborCloserFirst{});
        if (best.size() > beam) {
          std::pop_heap(best.begin(), best.end(), NeighborCloserFirst{});
          best.pop_back();
        }
      }
    };
    const auto cur_id = static_cast<std::size_t>(cur.id);
    for (NodeId nb : adjacency_[cur_id]) expand(nb);
    for (NodeId nb : long_links_[cur_id]) expand(nb);
  }

  if (!include_dead) {
    // Tombstones routed the search; they must not surface as results.
    best.erase(std::remove_if(best.begin(), best.end(),
                              [&](const Neighbor& n) {
                                return live_[static_cast<std::size_t>(
                                           n.id)] == 0;
                              }),
               best.end());
  }
  std::sort(best.begin(), best.end(), NeighborCloser{});
  return best;
}

std::vector<MutableGraphIndex::NodeId> MutableGraphIndex::RobustPruneLocked(
    NodeId node, std::vector<Neighbor> candidates, float alpha) const {
  std::sort(candidates.begin(), candidates.end(), NeighborCloser{});
  candidates.erase(
      std::unique(candidates.begin(), candidates.end(),
                  [](const Neighbor& a, const Neighbor& b) {
                    return a.id == b.id;
                  }),
      candidates.end());

  std::vector<NodeId> selected;
  std::vector<bool> pruned(candidates.size(), false);
  for (std::size_t i = 0;
       i < candidates.size() && selected.size() < options_.max_degree; ++i) {
    if (pruned[i]) continue;
    const NodeId chosen = static_cast<NodeId>(candidates[i].id);
    if (chosen == node) continue;
    selected.push_back(chosen);
    const auto chosen_vec = rows_.Row(chosen);
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      if (pruned[j]) continue;
      const float d_cv = Distance(
          options_.metric, chosen_vec,
          rows_.Row(static_cast<std::size_t>(candidates[j].id)));
      if (alpha * d_cv <= candidates[j].distance) pruned[j] = true;
    }
  }
  return selected;
}

void MutableGraphIndex::RepairEntryLocked() {
  // Prefer a live out-neighbor of the dead entry (stays in the same
  // region of the graph); fall back to the first live slot.
  for (NodeId nb : adjacency_[entry_]) {
    if (live_[nb] != 0) {
      entry_ = nb;
      return;
    }
  }
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i] != 0) {
      entry_ = static_cast<NodeId>(i);
      return;
    }
  }
  entry_ = 0;  // empty index; reset on next Insert
}

VectorId MutableGraphIndex::Insert(std::span<const float> vec) {
  CheckDim(vec);

  // Two-phase insert (FreshVamana-style): the beam search — by far the
  // expensive half — runs under a SHARED lock, concurrent with queries;
  // only the wiring below takes the exclusive lock. The generation
  // stamp detects a concurrent mutation between the phases, in which
  // case the search is redone under the exclusive lock (correct, just
  // slower — contention between writers is the rare case).
  std::vector<Neighbor> visited;
  std::uint64_t planned_gen;
  {
    auto slock = AcquireShared();
    planned_gen = generation_.load(std::memory_order_acquire);
    if (live_count_.load(std::memory_order_relaxed) + tombstones_ > 0) {
      visited = BeamSearchLocked(vec, options_.build_beam, true);
    }
  }

  auto lock = AcquireUnique();
  return ApplyInsertLocked(vec, std::move(visited), planned_gen);
}

VectorId MutableGraphIndex::ApplyInsertLocked(std::span<const float> vec,
                                              std::vector<Neighbor> visited,
                                              std::uint64_t planned_gen) {
  if (generation_.load(std::memory_order_relaxed) != planned_gen) {
    visited.clear();
    if (live_count_.load(std::memory_order_relaxed) + tombstones_ > 0) {
      visited = BeamSearchLocked(vec, options_.build_beam, true);
    }
  }

  // Slot assignment: lowest reclaimed slot first, then grow the arena.
  NodeId id;
  if (!free_slots_.empty()) {
    std::pop_heap(free_slots_.begin(), free_slots_.end(),
                  std::greater<NodeId>{});
    id = free_slots_.back();
    free_slots_.pop_back();
    rows_.SetRow(id, vec);
    adjacency_[id].clear();
    long_links_[id].clear();
  } else {
    id = static_cast<NodeId>(rows_.rows());
    rows_.AppendRow(vec);
    adjacency_.emplace_back();
    long_links_.emplace_back();
    live_.push_back(0);
  }

  const std::size_t population =
      live_count_.load(std::memory_order_relaxed) + tombstones_;
  if (population == 0) {
    entry_ = id;
  } else {
    // DiskANN fresh insert: beam from the entry point (tombstones kept —
    // their edges still route), α-prune the visited LIVE set, then add
    // reverse edges with re-prune on overflow.
    std::vector<Neighbor> live_cands;
    live_cands.reserve(visited.size());
    for (const auto& n : visited) {
      if (live_[static_cast<std::size_t>(n.id)] != 0) {
        live_cands.push_back(n);
      }
    }
    adjacency_[id] = RobustPruneLocked(id, std::move(live_cands),
                                       options_.alpha);
    for (NodeId nb : adjacency_[id]) {
      auto& reverse = adjacency_[nb];
      if (std::find(reverse.begin(), reverse.end(), id) == reverse.end()) {
        reverse.push_back(id);
      }
      if (reverse.size() > options_.max_degree) {
        const auto nb_vec = rows_.Row(nb);
        std::vector<Neighbor> cands;
        cands.reserve(reverse.size());
        for (NodeId r : reverse) {
          cands.push_back({static_cast<VectorId>(r), Dist(nb_vec, r)});
        }
        adjacency_[nb] =
            RobustPruneLocked(nb, std::move(cands), options_.alpha);
      }
    }
    // Protected long-range shortcuts, targeted at live slots only.
    const std::size_t want =
        std::min(options_.long_edges,
                 live_count_.load(std::memory_order_relaxed));
    std::size_t attempts = 0;
    while (long_links_[id].size() < want && attempts < 64 * (want + 1)) {
      ++attempts;
      long_rng_state_ = SplitMix64(long_rng_state_ + id);
      const NodeId r = static_cast<NodeId>(long_rng_state_ % rows_.rows());
      if (r == id || live_[r] == 0) continue;
      auto& links = long_links_[id];
      if (std::find(links.begin(), links.end(), r) == links.end()) {
        links.push_back(r);
      }
    }
  }

  live_[id] = 1;
  live_count_.fetch_add(1, std::memory_order_relaxed);
  BumpGeneration();
  kObsInserts.Inc();
  kObsGeneration.Set(
      static_cast<double>(generation_.load(std::memory_order_relaxed)));
  return static_cast<VectorId>(id);
}

bool MutableGraphIndex::Delete(VectorId id) {
  auto lock = AcquireUnique();
  const auto slot = static_cast<std::size_t>(id);
  if (id < 0 || slot >= live_.size() || live_[slot] == 0) return false;

  // Lazy delete: the slot keeps its row and edges so searches can still
  // route through it; Consolidate reclaims it later.
  live_[slot] = 0;
  ++tombstones_;
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  if (entry_ == static_cast<NodeId>(slot)) RepairEntryLocked();
  BumpGeneration();
  kObsDeletes.Inc();
  kObsGeneration.Set(
      static_cast<double>(generation_.load(std::memory_order_relaxed)));
  kObsTombstones.Set(static_cast<double>(tombstones_));
  return true;
}

std::vector<MutableGraphIndex::NodeId> MutableGraphIndex::PickChunkLocked()
    const {
  std::vector<NodeId> chunk;
  chunk.reserve(options_.consolidate_chunk);
  for (std::size_t i = 0;
       i < live_.size() && chunk.size() < options_.consolidate_chunk; ++i) {
    const bool is_free =
        std::find(free_slots_.begin(), free_slots_.end(),
                  static_cast<NodeId>(i)) != free_slots_.end();
    if (live_[i] == 0 && !is_free) chunk.push_back(static_cast<NodeId>(i));
  }
  return chunk;
}

std::vector<std::pair<MutableGraphIndex::NodeId,
                      std::vector<MutableGraphIndex::NodeId>>>
MutableGraphIndex::PlanSpliceLocked(const std::vector<NodeId>& chunk) const {
  std::vector<std::uint8_t> dead(rows_.rows(), 0);
  for (NodeId t : chunk) dead[t] = 1;

  // Splice: every survivor that pointed at a chunk tombstone inherits
  // the tombstone's live out-neighbors instead, re-pruned on overflow
  // (SVS-style consolidate-delete).
  std::vector<std::pair<NodeId, std::vector<NodeId>>> rewired;
  for (std::size_t u = 0; u < adjacency_.size(); ++u) {
    const auto& out = adjacency_[u];
    const bool touches_dead =
        std::any_of(out.begin(), out.end(),
                    [&](NodeId nb) { return dead[nb] != 0; });
    if (!touches_dead) continue;
    std::vector<Neighbor> cands;
    const auto u_vec = rows_.Row(u);
    for (NodeId nb : out) {
      if (dead[nb] == 0) {
        cands.push_back({static_cast<VectorId>(nb), Dist(u_vec, nb)});
      } else {
        for (NodeId nn : adjacency_[nb]) {
          if (nn != static_cast<NodeId>(u) && dead[nn] == 0 &&
              live_[nn] != 0) {
            cands.push_back({static_cast<VectorId>(nn), Dist(u_vec, nn)});
          }
        }
      }
    }
    rewired.emplace_back(static_cast<NodeId>(u),
                         RobustPruneLocked(static_cast<NodeId>(u),
                                           std::move(cands), options_.alpha));
  }
  return rewired;
}

std::size_t MutableGraphIndex::Consolidate() {
  std::size_t reclaimed_total = 0;
  for (;;) {
    // Two-phase chunk (same trick as Insert): the in-neighbor scan and
    // re-prunes — the heavy half — are PLANNED under a shared lock,
    // concurrent with queries; the exclusive lock only validates the
    // generation and assigns the rewired lists. A concurrent mutation
    // between the phases invalidates the plan, which is then redone
    // under the exclusive lock.
    std::vector<NodeId> chunk;
    std::vector<std::pair<NodeId, std::vector<NodeId>>> rewired;
    std::uint64_t planned_gen;
    {
      auto slock = AcquireShared();
      planned_gen = generation_.load(std::memory_order_acquire);
      chunk = PickChunkLocked();
      if (!chunk.empty()) rewired = PlanSpliceLocked(chunk);
    }
    if (chunk.empty()) break;

    auto lock = AcquireUnique();
    if (generation_.load(std::memory_order_relaxed) != planned_gen) {
      chunk = PickChunkLocked();
      if (chunk.empty()) break;
      rewired = PlanSpliceLocked(chunk);
    }
    std::vector<std::uint8_t> dead(rows_.rows(), 0);
    for (NodeId t : chunk) dead[t] = 1;
    for (auto& [u, links] : rewired) adjacency_[u] = std::move(links);
    // Long links may not point at reclaimed slots (they will be reused).
    for (auto& links : long_links_) {
      links.erase(std::remove_if(links.begin(), links.end(),
                                 [&](NodeId nb) { return dead[nb] != 0; }),
                  links.end());
    }
    for (NodeId t : chunk) {
      adjacency_[t].clear();
      long_links_[t].clear();
      free_slots_.push_back(t);
      std::push_heap(free_slots_.begin(), free_slots_.end(),
                     std::greater<NodeId>{});
      --tombstones_;
    }
    reclaimed_total += chunk.size();
    // Bumped PER CHUNK, not once at the end: the bump is what
    // invalidates any plan (an Insert's or another Consolidate's) that
    // straddled this apply, so two consolidators can never double-free
    // a slot. A no-op Consolidate still never bumps.
    BumpGeneration();
    kObsReclaimed.Inc(chunk.size());
    kObsGeneration.Set(
        static_cast<double>(generation_.load(std::memory_order_relaxed)));
    kObsTombstones.Set(static_cast<double>(tombstones_));
    if (tombstones_ == 0) break;
  }
  return reclaimed_total;
}

std::vector<Neighbor> MutableGraphIndex::Search(std::span<const float> query,
                                                std::size_t k) const {
  CheckDim(query);
  if (k == 0) return {};
  auto lock = AcquireShared();
  if (live_count_.load(std::memory_order_relaxed) == 0) return {};
  // Over-fetch by the tombstone load: dead nodes occupy beam slots but
  // are filtered from the results.
  const std::size_t beam =
      std::max(options_.search_beam, k + tombstones_ / 4 + 1);
  auto results = BeamSearchLocked(query, beam, false);
  if (results.size() > k) results.resize(k);
  return results;
}

std::string MutableGraphIndex::Describe() const {
  auto lock = AcquireShared();
  return "mutable(" + std::string(MetricName(options_.metric)) +
         ",R=" + std::to_string(options_.max_degree) +
         ",L=" + std::to_string(options_.search_beam) +
         ",n=" + std::to_string(live_count_.load(std::memory_order_relaxed)) +
         ",slots=" + std::to_string(rows_.rows()) +
         ",tombstones=" + std::to_string(tombstones_) +
         ",gen=" + std::to_string(generation()) + ")";
}

std::size_t MutableGraphIndex::slot_count() const {
  auto lock = AcquireShared();
  return rows_.rows();
}

std::size_t MutableGraphIndex::tombstone_count() const {
  auto lock = AcquireShared();
  return tombstones_;
}

std::size_t MutableGraphIndex::free_count() const {
  auto lock = AcquireShared();
  return free_slots_.size();
}

bool MutableGraphIndex::IsLive(VectorId id) const {
  auto lock = AcquireShared();
  const auto slot = static_cast<std::size_t>(id);
  return id >= 0 && slot < live_.size() && live_[slot] != 0;
}

void MutableGraphIndex::SaveTo(std::ostream& os) const {
  auto lock = AcquireShared();
  BinaryWriter w(os);
  WriteHeader(w, io_magic::kMutableIndex, 1);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU64(options_.max_degree);
  w.WriteU64(options_.build_beam);
  w.WriteU64(options_.search_beam);
  w.WriteF32(options_.alpha);
  w.WriteU64(options_.seed);
  w.WriteU64(options_.long_edges);
  w.WriteU64(options_.consolidate_chunk);
  WriteMatrix(w, rows_);
  w.WriteU8s(live_);
  w.WriteU32s(free_slots_);
  w.WriteU64(adjacency_.size());
  for (const auto& out : adjacency_) w.WriteU32s(out);
  w.WriteU64(long_links_.size());
  for (const auto& links : long_links_) w.WriteU32s(links);
  w.WriteU32(entry_);
  w.WriteU64(tombstones_);
  w.WriteU64(generation_.load(std::memory_order_acquire));
  w.WriteU64(long_rng_state_);
  w.Finish();
}

std::unique_ptr<MutableGraphIndex> MutableGraphIndex::LoadFrom(
    std::istream& is) {
  BinaryReader r(is);
  ReadHeader(r, io_magic::kMutableIndex, 1);
  MutableGraphOptions opts;
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.max_degree = r.ReadU64();
  opts.build_beam = r.ReadU64();
  opts.search_beam = r.ReadU64();
  opts.alpha = r.ReadF32();
  opts.seed = r.ReadU64();
  opts.long_edges = r.ReadU64();
  opts.consolidate_chunk = r.ReadU64();
  Matrix rows = ReadMatrix(r);

  auto index = std::make_unique<MutableGraphIndex>(rows.dim(), opts);
  index->rows_ = std::move(rows);
  index->live_ = r.ReadU8s(index->rows_.rows());
  index->free_slots_ = r.ReadU32s(index->rows_.rows());
  const std::uint64_t n_adj = r.ReadU64();
  if (n_adj != index->rows_.rows()) {
    throw std::runtime_error("MutableGraphIndex: adjacency/slot mismatch");
  }
  index->adjacency_.resize(n_adj);
  for (auto& out : index->adjacency_) out = r.ReadU32s(1u << 20);
  const std::uint64_t n_links = r.ReadU64();
  if (n_links != index->rows_.rows()) {
    throw std::runtime_error("MutableGraphIndex: long-link/slot mismatch");
  }
  index->long_links_.resize(n_links);
  for (auto& links : index->long_links_) links = r.ReadU32s(1u << 20);
  index->entry_ = r.ReadU32();
  index->tombstones_ = r.ReadU64();
  index->generation_.store(r.ReadU64(), std::memory_order_release);
  index->long_rng_state_ = r.ReadU64();
  r.VerifyChecksum();

  std::size_t live = 0;
  for (std::uint8_t flag : index->live_) live += flag != 0 ? 1 : 0;
  index->live_count_.store(live, std::memory_order_relaxed);
  std::make_heap(index->free_slots_.begin(), index->free_slots_.end(),
                 std::greater<NodeId>{});
  return index;
}

}  // namespace proximity
