#include "index/index_io.h"

#include <fstream>
#include <stdexcept>

#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "index/ivfpq_index.h"
#include "index/mutable_index.h"

namespace proximity {

std::unique_ptr<VectorIndex> LoadIndex(std::istream& is) {
  // Peek the magic without consuming it; each LoadFrom re-reads the full
  // header so its checksum covers every byte.
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (static_cast<std::size_t>(is.gcount()) != sizeof(magic)) {
    throw std::runtime_error("LoadIndex: stream too short");
  }
  is.seekg(-static_cast<std::streamoff>(sizeof(magic)), std::ios::cur);

  switch (magic) {
    case io_magic::kFlatIndex:
      return std::make_unique<FlatIndex>(FlatIndex::LoadFrom(is));
    case io_magic::kHnswIndex:
      return HnswIndex::LoadFrom(is);
    case io_magic::kIvfFlat:
      return std::make_unique<IvfFlatIndex>(IvfFlatIndex::LoadFrom(is));
    case io_magic::kIvfPq:
      return std::make_unique<IvfPqIndex>(IvfPqIndex::LoadFrom(is));
    case io_magic::kMutableIndex:
      return MutableGraphIndex::LoadFrom(is);
    default:
      throw std::runtime_error("LoadIndex: unknown magic tag");
  }
}

void SaveIndexToFile(const VectorIndex& index, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("SaveIndexToFile: cannot open " + path);
  index.SaveTo(os);
}

std::unique_ptr<VectorIndex> LoadIndexFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("LoadIndexFromFile: cannot open " + path);
  return LoadIndex(is);
}

}  // namespace proximity
