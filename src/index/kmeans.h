// Lloyd's k-means with k-means++ seeding.
//
// Training substrate for the IVF coarse quantizer and the product
// quantizer codebooks (the quantization-based indexing the paper cites
// in §2.2 [18]).
#pragma once

#include <cstdint>
#include <vector>

#include "vecmath/matrix.h"

namespace proximity {

struct KMeansOptions {
  std::size_t max_iterations = 20;
  /// Stop early when the relative improvement in total inertia between
  /// iterations falls below this.
  double tolerance = 1e-4;
  std::uint64_t seed = 42;
  /// Use the shared thread pool for the assignment step.
  bool parallel = true;
};

struct KMeansResult {
  Matrix centroids;                      // k x dim
  std::vector<std::uint32_t> assignment;  // per training row
  double inertia = 0.0;                  // sum of squared distances
  std::size_t iterations = 0;
};

/// Clusters the rows of `data` into k centroids under squared-L2.
/// If k >= rows, every row becomes its own centroid.
/// Empty clusters are re-seeded from the point farthest from its centroid.
KMeansResult RunKMeans(const Matrix& data, std::size_t k,
                       const KMeansOptions& options = {});

/// Index of the centroid closest (squared L2) to v.
std::uint32_t NearestCentroid(const Matrix& centroids,
                              std::span<const float> v) noexcept;

}  // namespace proximity
