// Inverted-file index with exact residual scan (FAISS IVF-Flat analogue).
//
// Vectors are bucketed by their nearest coarse centroid; a query probes the
// `nprobe` closest buckets only. One of the ANN substrates used by the
// index-comparison bench (DESIGN.md row A-index).
#pragma once

#include <cstdint>
#include <vector>

#include "index/vector_index.h"
#include "vecmath/compressed_store.h"

namespace proximity {

struct IvfFlatOptions {
  Metric metric = Metric::kL2;
  std::size_t nlist = 64;   // number of coarse clusters
  std::size_t nprobe = 8;   // clusters scanned per query
  std::uint64_t seed = 42;  // k-means seed
  /// Primary representation of the posting scans (DESIGN.md §11):
  /// kFloat32 keeps the exact fused batch scan; sq8/sq4 scan quantized
  /// codes per probed list and rerank the survivors against the float
  /// entries.
  StorageLayout storage = StorageLayout::kFloat32;
  /// Over-fetch multiplier for the quantized posting scan (ignored for
  /// kFloat32).
  std::size_t rerank_factor = 4;
};

class IvfFlatIndex final : public VectorIndex {
 public:
  IvfFlatIndex(std::size_t dim, IvfFlatOptions options = {});

  /// Trains the coarse quantizer on the given sample. Must be called
  /// before Add. Throws std::logic_error if already trained.
  void Train(const Matrix& sample);
  bool trained() const noexcept { return trained_; }

  std::size_t dim() const noexcept override { return dim_; }
  Metric metric() const noexcept override { return options_.metric; }
  std::size_t size() const noexcept override { return count_; }

  VectorId Add(std::span<const float> vec) override;
  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;
  std::string Describe() const override;

  void SaveTo(std::ostream& os) const override;
  static IvfFlatIndex LoadFrom(std::istream& is);

  /// Changes the probe width at query time (recall/latency knob).
  void set_nprobe(std::size_t nprobe) noexcept { options_.nprobe = nprobe; }
  std::size_t nprobe() const noexcept { return options_.nprobe; }
  std::size_t nlist() const noexcept { return centroids_.rows(); }

  /// Number of vectors stored in list `l` (exposed for tests).
  std::size_t ListSize(std::size_t l) const noexcept {
    return lists_[l].ids.size();
  }

  StorageLayout storage() const noexcept { return options_.storage; }

 private:
  struct InvertedList {
    std::vector<VectorId> ids;
    std::vector<float> vectors;  // row-major, dim_ per entry
    // Quantized mirror of `vectors` (primary posting-scan codes);
    // populated only when options_.storage != kFloat32.
    CompressedStore codes;
  };

  bool quantized() const noexcept {
    return options_.storage != StorageLayout::kFloat32;
  }

  std::size_t dim_;
  IvfFlatOptions options_;
  bool trained_ = false;
  Matrix centroids_;
  std::vector<InvertedList> lists_;
  std::size_t count_ = 0;
};

}  // namespace proximity
