#include "index/flat_index.h"

#include <algorithm>
#include <stdexcept>

#include "common/serde.h"
#include "common/thread_pool.h"
#include "index/index_io.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {

FlatIndex::FlatIndex(std::size_t dim, FlatIndexOptions options)
    : options_(options), vectors_(0, dim) {}

VectorId FlatIndex::Add(std::span<const float> vec) {
  CheckDim(vec);
  const VectorId id = static_cast<VectorId>(vectors_.rows());
  vectors_.AppendRow(vec);
  return id;
}

std::vector<Neighbor> FlatIndex::Search(std::span<const float> query,
                                        std::size_t k) const {
  CheckDim(query);
  if (k == 0 || vectors_.rows() == 0) return {};
  const std::size_t n = vectors_.rows();
  const std::size_t d = vectors_.dim();

  if (options_.parallel_threshold == 0 || n <= options_.parallel_threshold) {
    return SelectTopK(options_.metric, query, vectors_.data(), n, d, k);
  }

  // Parallel scan: each chunk selects its local top-k, then merge.
  auto& pool = ThreadPool::Shared();
  const std::size_t parts = pool.size() + 1;
  std::vector<std::vector<Neighbor>> partial(parts);
  const std::size_t chunk = (n + parts - 1) / parts;
  pool.ParallelFor(0, parts, [&](std::size_t p) {
    const std::size_t lo = p * chunk;
    if (lo >= n) return;
    const std::size_t hi = std::min(n, lo + chunk);
    partial[p] = SelectTopK(options_.metric, query, vectors_.data() + lo * d,
                            hi - lo, d, k, static_cast<VectorId>(lo));
  });

  TopK merged(k);
  for (const auto& part : partial) {
    for (const auto& nb : part) merged.Push(nb.id, nb.distance);
  }
  return merged.Take();
}

std::vector<Neighbor> FlatIndex::SearchFiltered(std::span<const float> query,
                                                std::size_t k,
                                                const Filter& filter) const {
  if (!filter) return Search(query, k);
  CheckDim(query);
  if (k == 0 || vectors_.rows() == 0) return {};
  TopK top(k);
  for (std::size_t r = 0; r < vectors_.rows(); ++r) {
    const auto id = static_cast<VectorId>(r);
    if (!filter(id)) continue;
    top.Push(id, Distance(options_.metric, query, vectors_.Row(r)));
  }
  return top.Take();
}

std::string FlatIndex::Describe() const {
  return "flat(" + std::string(MetricName(options_.metric)) +
         ",n=" + std::to_string(size()) + ")";
}

void FlatIndex::SaveTo(std::ostream& os) const {
  BinaryWriter w(os);
  WriteHeader(w, io_magic::kFlatIndex, /*version=*/1);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU64(options_.parallel_threshold);
  WriteMatrix(w, vectors_);
  w.Finish();
}

FlatIndex FlatIndex::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  ReadHeader(r, io_magic::kFlatIndex, /*max_version=*/1);
  FlatIndexOptions opts;
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.parallel_threshold = r.ReadU64();
  Matrix vectors = ReadMatrix(r);
  r.VerifyChecksum();
  FlatIndex index(vectors.dim(), opts);
  index.vectors_ = std::move(vectors);
  return index;
}

}  // namespace proximity
