#include "index/flat_index.h"

#include <algorithm>
#include <stdexcept>

#include "common/serde.h"
#include "common/thread_pool.h"
#include "index/index_io.h"
#include "obs/span.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {

FlatIndex::FlatIndex(std::size_t dim, FlatIndexOptions options)
    : options_(options), vectors_(0, dim) {
  // Cosine scans use the pre-normalized batch path: keep per-row squared
  // norms so every Search skips the per-row norm pass.
  if (options_.metric == Metric::kCosine) vectors_.EnableNormCache();
}

VectorId FlatIndex::Add(std::span<const float> vec) {
  CheckDim(vec);
  const VectorId id = static_cast<VectorId>(vectors_.rows());
  vectors_.AppendRow(vec);
  return id;
}

std::vector<Neighbor> FlatIndex::Search(std::span<const float> query,
                                        std::size_t k) const {
  CheckDim(query);
  if (k == 0 || vectors_.rows() == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);
  const std::size_t n = vectors_.rows();
  const std::size_t d = vectors_.dim();

  const float* norms = vectors_.RowNorms();
  if (options_.parallel_threshold == 0 || n <= options_.parallel_threshold) {
    return SelectTopK(options_.metric, query, vectors_.data(), n, d, k,
                      /*base_id=*/0, norms);
  }

  // Parallel scan: each chunk selects its local top-k, then merge.
  auto& pool = ThreadPool::Shared();
  const std::size_t parts = pool.size() + 1;
  std::vector<std::vector<Neighbor>> partial(parts);
  const std::size_t chunk = (n + parts - 1) / parts;
  pool.ParallelFor(0, parts, [&](std::size_t p) {
    const std::size_t lo = p * chunk;
    if (lo >= n) return;
    const std::size_t hi = std::min(n, lo + chunk);
    partial[p] = SelectTopK(options_.metric, query, vectors_.data() + lo * d,
                            hi - lo, d, k, static_cast<VectorId>(lo),
                            norms != nullptr ? norms + lo : nullptr);
  });

  TopK merged(k);
  for (const auto& part : partial) {
    for (const auto& nb : part) merged.Push(nb.id, nb.distance);
  }
  return merged.Take();
}

std::vector<Neighbor> FlatIndex::SearchFiltered(std::span<const float> query,
                                                std::size_t k,
                                                const Filter& filter) const {
  if (!filter) return Search(query, k);
  CheckDim(query);
  if (k == 0 || vectors_.rows() == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);
  // Predicated scan through the gather kernel: evaluate the filter tile by
  // tile, then batch-compute distances for the passing rows only.
  const std::size_t n = vectors_.rows();
  const std::size_t d = vectors_.dim();
  TopK top(k);
  constexpr std::size_t kTile = 4096;
  std::vector<std::uint32_t> sel;
  std::vector<float> dist;
  sel.reserve(std::min(n, kTile));
  dist.reserve(std::min(n, kTile));
  for (std::size_t lo = 0; lo < n; lo += kTile) {
    const std::size_t hi = std::min(n, lo + kTile);
    sel.clear();
    for (std::size_t r = lo; r < hi; ++r) {
      if (filter(static_cast<VectorId>(r))) {
        sel.push_back(static_cast<std::uint32_t>(r - lo));
      }
    }
    if (sel.empty()) continue;
    dist.resize(sel.size());
    GatherDistance(options_.metric, query, vectors_.data() + lo * d, d,
                   sel.data(), sel.size(), dist.data());
    for (std::size_t j = 0; j < sel.size(); ++j) {
      top.Push(static_cast<VectorId>(lo + sel[j]), dist[j]);
    }
  }
  return top.Take();
}

std::string FlatIndex::Describe() const {
  return "flat(" + std::string(MetricName(options_.metric)) +
         ",n=" + std::to_string(size()) + ")";
}

void FlatIndex::SaveTo(std::ostream& os) const {
  BinaryWriter w(os);
  WriteHeader(w, io_magic::kFlatIndex, /*version=*/1);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU64(options_.parallel_threshold);
  WriteMatrix(w, vectors_);
  w.Finish();
}

FlatIndex FlatIndex::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  ReadHeader(r, io_magic::kFlatIndex, /*max_version=*/1);
  FlatIndexOptions opts;
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.parallel_threshold = r.ReadU64();
  Matrix vectors = ReadMatrix(r);
  r.VerifyChecksum();
  FlatIndex index(vectors.dim(), opts);
  index.vectors_ = std::move(vectors);
  if (opts.metric == Metric::kCosine) index.vectors_.EnableNormCache();
  return index;
}

}  // namespace proximity
