#include "index/flat_index.h"

#include <algorithm>
#include <stdexcept>

#include "common/serde.h"
#include "common/thread_pool.h"
#include "index/index_io.h"
#include "obs/scan_stats.h"
#include "obs/span.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {

FlatIndex::FlatIndex(std::size_t dim, FlatIndexOptions options)
    : options_(options), vectors_(0, dim) {
  // Cosine scans use the pre-normalized batch path: keep per-row squared
  // norms so every Search skips the per-row norm pass.
  if (options_.metric == Metric::kCosine) vectors_.EnableNormCache();
  if (quantized()) store_ = CompressedStore(dim, options_.storage);
}

VectorId FlatIndex::Add(std::span<const float> vec) {
  CheckDim(vec);
  const VectorId id = static_cast<VectorId>(vectors_.rows());
  vectors_.AppendRow(vec);
  // Full-precision rows are kept alongside the codes: the rerank stage
  // (and exact serialization) reads them.
  if (quantized()) store_.AppendRow(vec);
  return id;
}

std::vector<Neighbor> FlatIndex::ScanCompressed(std::span<const float> query,
                                                std::size_t lo, std::size_t hi,
                                                std::size_t fetch) const {
  TopK top(fetch);
  constexpr std::size_t kTile = 4096;
  std::vector<float> dist(std::min(hi - lo, kTile));
  for (std::size_t t = lo; t < hi; t += kTile) {
    const std::size_t len = std::min(kTile, hi - t);
    store_.ScanRange(options_.metric, query, t, len, dist.data());
    for (std::size_t i = 0; i < len; ++i) {
      top.Push(static_cast<VectorId>(t + i), dist[i]);
    }
  }
  return top.Take();
}

std::vector<Neighbor> FlatIndex::Search(std::span<const float> query,
                                        std::size_t k) const {
  CheckDim(query);
  if (k == 0 || vectors_.rows() == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);
  const std::size_t n = vectors_.rows();
  const std::size_t d = vectors_.dim();

  if (quantized()) {
    // Two-level path: compressed primary scan over-fetches
    // rerank_factor * k candidates, then the float rows of just those
    // candidates decide the final top-k (DESIGN.md §11).
    const std::size_t fetch =
        std::min(n, std::max(k * std::max<std::size_t>(options_.rerank_factor,
                                                       1),
                             k));
    std::vector<Neighbor> coarse;
    if (options_.parallel_threshold == 0 ||
        n <= options_.parallel_threshold) {
      coarse = ScanCompressed(query, 0, n, fetch);
    } else {
      auto& pool = ThreadPool::Shared();
      const std::size_t parts = pool.size() + 1;
      std::vector<std::vector<Neighbor>> partial(parts);
      const std::size_t chunk = (n + parts - 1) / parts;
      pool.ParallelFor(0, parts, [&](std::size_t p) {
        const std::size_t lo = p * chunk;
        if (lo >= n) return;
        partial[p] = ScanCompressed(query, lo, std::min(n, lo + chunk), fetch);
      });
      TopK merged(fetch);
      for (const auto& part : partial) {
        for (const auto& nb : part) merged.Push(nb.id, nb.distance);
      }
      coarse = merged.Take();
    }

    std::vector<std::uint32_t> ids;
    ids.reserve(coarse.size());
    for (const auto& nb : coarse) {
      ids.push_back(static_cast<std::uint32_t>(nb.id));
    }
    std::vector<float> exact(ids.size());
    GatherDistance(options_.metric, query, vectors_.data(), d, ids.data(),
                   ids.size(), exact.data());
    TopK top(k);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      top.Push(static_cast<VectorId>(ids[j]), exact[j]);
    }
    obs::ScanPrimaryBytes(n * store_.block_stride());
    obs::ScanRerankBytes(ids.size() * d * sizeof(float));
    obs::ScanCandidates(ids.size());
    obs::ScanQuery(static_cast<double>(ids.size()) / static_cast<double>(n));
    return top.Take();
  }

  const float* norms = vectors_.RowNorms();
  if (options_.parallel_threshold == 0 || n <= options_.parallel_threshold) {
    return SelectTopK(options_.metric, query, vectors_.data(), n, d, k,
                      /*base_id=*/0, norms);
  }

  // Parallel scan: each chunk selects its local top-k, then merge.
  auto& pool = ThreadPool::Shared();
  const std::size_t parts = pool.size() + 1;
  std::vector<std::vector<Neighbor>> partial(parts);
  const std::size_t chunk = (n + parts - 1) / parts;
  pool.ParallelFor(0, parts, [&](std::size_t p) {
    const std::size_t lo = p * chunk;
    if (lo >= n) return;
    const std::size_t hi = std::min(n, lo + chunk);
    partial[p] = SelectTopK(options_.metric, query, vectors_.data() + lo * d,
                            hi - lo, d, k, static_cast<VectorId>(lo),
                            norms != nullptr ? norms + lo : nullptr);
  });

  TopK merged(k);
  for (const auto& part : partial) {
    for (const auto& nb : part) merged.Push(nb.id, nb.distance);
  }
  return merged.Take();
}

std::vector<Neighbor> FlatIndex::SearchFiltered(std::span<const float> query,
                                                std::size_t k,
                                                const Filter& filter) const {
  if (!filter) return Search(query, k);
  CheckDim(query);
  if (k == 0 || vectors_.rows() == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);
  // Predicated scan through the gather kernel: evaluate the filter tile by
  // tile, then batch-compute distances for the passing rows only.
  const std::size_t n = vectors_.rows();
  const std::size_t d = vectors_.dim();
  TopK top(k);
  constexpr std::size_t kTile = 4096;
  std::vector<std::uint32_t> sel;
  std::vector<float> dist;
  sel.reserve(std::min(n, kTile));
  dist.reserve(std::min(n, kTile));
  for (std::size_t lo = 0; lo < n; lo += kTile) {
    const std::size_t hi = std::min(n, lo + kTile);
    sel.clear();
    for (std::size_t r = lo; r < hi; ++r) {
      if (filter(static_cast<VectorId>(r))) {
        sel.push_back(static_cast<std::uint32_t>(r - lo));
      }
    }
    if (sel.empty()) continue;
    dist.resize(sel.size());
    GatherDistance(options_.metric, query, vectors_.data() + lo * d, d,
                   sel.data(), sel.size(), dist.data());
    for (std::size_t j = 0; j < sel.size(); ++j) {
      top.Push(static_cast<VectorId>(lo + sel[j]), dist[j]);
    }
  }
  return top.Take();
}

std::string FlatIndex::Describe() const {
  std::string desc = "flat(" + std::string(MetricName(options_.metric));
  if (quantized()) {
    desc += ",storage=" + std::string(StorageLayoutName(options_.storage)) +
            ",rerank=" + std::to_string(options_.rerank_factor);
  }
  return desc + ",n=" + std::to_string(size()) + ")";
}

void FlatIndex::SaveTo(std::ostream& os) const {
  BinaryWriter w(os);
  // Version 2 appends the storage layout and rerank factor. Float32
  // indexes keep emitting byte-exact version-1 files so older builds
  // still read them; quantized codes are never persisted — they are
  // re-derived deterministically from the float rows on load.
  WriteHeader(w, io_magic::kFlatIndex, /*version=*/quantized() ? 2 : 1);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU64(options_.parallel_threshold);
  if (quantized()) {
    w.WriteU32(static_cast<std::uint32_t>(options_.storage));
    w.WriteU64(options_.rerank_factor);
  }
  WriteMatrix(w, vectors_);
  w.Finish();
}

FlatIndex FlatIndex::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  const std::uint32_t version =
      ReadHeader(r, io_magic::kFlatIndex, /*max_version=*/2);
  FlatIndexOptions opts;
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.parallel_threshold = r.ReadU64();
  if (version >= 2) {
    opts.storage = static_cast<StorageLayout>(r.ReadU32());
    opts.rerank_factor = r.ReadU64();
  }
  Matrix vectors = ReadMatrix(r);
  r.VerifyChecksum();
  FlatIndex index(vectors.dim(), opts);
  for (std::size_t row = 0; row < vectors.rows(); ++row) {
    if (index.quantized()) index.store_.AppendRow(vectors.Row(row));
  }
  index.vectors_ = std::move(vectors);
  if (opts.metric == Metric::kCosine) index.vectors_.EnableNormCache();
  return index;
}

}  // namespace proximity
