// The vector-database abstraction the Proximity cache sits in front of.
//
// Per the paper (§3): "Proximity is agnostic of the specific vector
// database being used but assumes that this database has a lookup function
// that takes as input a query embedding and returns a sorted list of
// indices of vectors that are close to the query."
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "vecmath/matrix.h"
#include "vecmath/metric.h"

namespace proximity {

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Embedding dimensionality accepted by Add/Search.
  virtual std::size_t dim() const noexcept = 0;

  /// The fixed similarity metric (§2.2). The cache adopts the same metric.
  virtual Metric metric() const noexcept = 0;

  /// Number of stored vectors.
  virtual std::size_t size() const noexcept = 0;

  /// Appends one vector; its id is the insertion position (size() before
  /// the call). Throws std::invalid_argument on dimension mismatch.
  virtual VectorId Add(std::span<const float> vec) = 0;

  /// Appends all rows of `vectors`; returns the id of the first.
  virtual VectorId AddBatch(const Matrix& vectors);

  /// Returns up to k neighbors sorted closest-first. Thread-safe for
  /// concurrent calls once construction has finished.
  virtual std::vector<Neighbor> Search(std::span<const float> query,
                                       std::size_t k) const = 0;

  /// Searches every row of `queries` and returns one result list per row.
  /// The default implementation loops over Search; ShardedIndex overrides
  /// it with a grouped scatter-gather over its shards so batched callers
  /// (the microbatching serving driver) amortize fan-out overhead.
  virtual std::vector<std::vector<Neighbor>> SearchBatch(
      const Matrix& queries, std::size_t k) const;

  /// Predicate over vector ids (metadata filter). Must be pure.
  using Filter = std::function<bool(VectorId)>;

  /// Filtered search: the k closest vectors satisfying `filter`. The
  /// default implementation over-fetches (k, 4k, 16k, ... up to size())
  /// and post-filters — correct for any index, with graph/IVF indexes
  /// paying extra traversal on selective filters. FlatIndex overrides
  /// with a single predicated scan.
  virtual std::vector<Neighbor> SearchFiltered(std::span<const float> query,
                                               std::size_t k,
                                               const Filter& filter) const;

  // --- Mutation (live-corpus) API -----------------------------------
  //
  // Build-once indexes keep the historical contract: Add appends, ids
  // are insertion positions, nothing is ever removed. Mutable indexes
  // (MutableGraphIndex, ShardedIndex over mutable shards) additionally
  // support Delete/Consolidate and may REUSE ids of deleted vectors on
  // Insert. Every mutation bumps generation(), the staleness token the
  // proximity cache stamps into entries at fill time (DESIGN.md §13).

  /// True when Insert/Delete/Consolidate are functional (not the
  /// throwing defaults below).
  virtual bool SupportsMutation() const noexcept { return false; }

  /// Inserts one vector and returns its id. Mutable indexes may reuse a
  /// tombstoned slot (returning a previously-deleted id); the default
  /// forwards to Add for build-once indexes.
  virtual VectorId Insert(std::span<const float> vec) { return Add(vec); }

  /// Tombstones `id`: excluded from all future results, slot reclaimed
  /// by a later Consolidate. Returns false when `id` is unknown or
  /// already deleted. Default throws std::logic_error (build-once).
  virtual bool Delete(VectorId id);

  /// Reclaims tombstoned slots and repairs the neighborhoods around
  /// them; safe to run while queries are in flight. Returns the number
  /// of slots reclaimed. Default is a no-op returning 0.
  virtual std::size_t Consolidate() { return 0; }

  /// Monotone mutation counter: bumped by every Insert/Delete (and by
  /// Consolidate when it rewires). 0 forever on build-once indexes.
  virtual std::uint64_t generation() const noexcept { return 0; }

  /// Human-readable index description for logs/CSV ("flat", "hnsw", ...).
  virtual std::string Describe() const = 0;

  /// Serializes the index in the repo's versioned binary format (see
  /// common/serde.h). Default implementation throws std::logic_error for
  /// index types without a persistent form. Load back with LoadIndex()
  /// from index/index_io.h.
  virtual void SaveTo(std::ostream& os) const;

 protected:
  void CheckDim(std::span<const float> v) const;
};

}  // namespace proximity
