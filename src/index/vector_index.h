// The vector-database abstraction the Proximity cache sits in front of.
//
// Per the paper (§3): "Proximity is agnostic of the specific vector
// database being used but assumes that this database has a lookup function
// that takes as input a query embedding and returns a sorted list of
// indices of vectors that are close to the query."
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "vecmath/matrix.h"
#include "vecmath/metric.h"

namespace proximity {

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Embedding dimensionality accepted by Add/Search.
  virtual std::size_t dim() const noexcept = 0;

  /// The fixed similarity metric (§2.2). The cache adopts the same metric.
  virtual Metric metric() const noexcept = 0;

  /// Number of stored vectors.
  virtual std::size_t size() const noexcept = 0;

  /// Appends one vector; its id is the insertion position (size() before
  /// the call). Throws std::invalid_argument on dimension mismatch.
  virtual VectorId Add(std::span<const float> vec) = 0;

  /// Appends all rows of `vectors`; returns the id of the first.
  virtual VectorId AddBatch(const Matrix& vectors);

  /// Returns up to k neighbors sorted closest-first. Thread-safe for
  /// concurrent calls once construction has finished.
  virtual std::vector<Neighbor> Search(std::span<const float> query,
                                       std::size_t k) const = 0;

  /// Searches every row of `queries` and returns one result list per row.
  /// The default implementation loops over Search; ShardedIndex overrides
  /// it with a grouped scatter-gather over its shards so batched callers
  /// (the microbatching serving driver) amortize fan-out overhead.
  virtual std::vector<std::vector<Neighbor>> SearchBatch(
      const Matrix& queries, std::size_t k) const;

  /// Predicate over vector ids (metadata filter). Must be pure.
  using Filter = std::function<bool(VectorId)>;

  /// Filtered search: the k closest vectors satisfying `filter`. The
  /// default implementation over-fetches (k, 4k, 16k, ... up to size())
  /// and post-filters — correct for any index, with graph/IVF indexes
  /// paying extra traversal on selective filters. FlatIndex overrides
  /// with a single predicated scan.
  virtual std::vector<Neighbor> SearchFiltered(std::span<const float> query,
                                               std::size_t k,
                                               const Filter& filter) const;

  /// Human-readable index description for logs/CSV ("flat", "hnsw", ...).
  virtual std::string Describe() const = 0;

  /// Serializes the index in the repo's versioned binary format (see
  /// common/serde.h). Default implementation throws std::logic_error for
  /// index types without a persistent form. Load back with LoadIndex()
  /// from index/index_io.h.
  virtual void SaveTo(std::ostream& os) const;

 protected:
  void CheckDim(std::span<const float> v) const;
};

}  // namespace proximity
