// Sharded scatter-gather adapter over any VectorIndex.
//
// Partitions a corpus into N sub-indexes ("shards") searched in parallel
// on the shared ThreadPool, then merges the per-shard top-k lists with an
// exact heap merge ordered by (distance, id) — the same tie-break every
// index uses (NeighborCloser) — so for exact indexes (FlatIndex) the
// sharded result is bit-identical to the unsharded one. For approximate
// indexes (HNSW/IVF) each shard runs its full search over a smaller
// sub-corpus, which preserves (typically improves) recall at the cost of
// per-shard fixed overhead.
//
// This is the database-side scaling substrate for the serving layer
// (DESIGN.md §8): the batching driver groups cache misses and issues them
// as one SearchBatch call, fanning shard×query tasks across the pool so
// the fused batch kernels see real batch shapes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "index/index_factory.h"
#include "index/vector_index.h"

namespace proximity {

struct ShardedIndexOptions {
  /// Number of shards; 0 selects the shared thread-pool width.
  std::size_t num_shards = 0;
  /// Scatter per-shard (and per-query, for SearchBatch) searches across
  /// the shared ThreadPool; false searches shards on the calling thread.
  bool parallel = true;
};

class ShardedIndex final : public VectorIndex {
 public:
  /// Wraps externally built shards. `global_ids[s][j]` is the global
  /// corpus id of shard s's local vector j; sizes must match the shards.
  /// All shards must share dim and metric. Prefer BuildShardedIndex below
  /// for the common build-from-corpus path.
  ShardedIndex(std::vector<std::unique_ptr<VectorIndex>> shards,
               std::vector<std::vector<VectorId>> global_ids,
               ShardedIndexOptions options = {});

  std::size_t dim() const noexcept override { return dim_; }
  Metric metric() const noexcept override { return metric_; }
  std::size_t size() const noexcept override {
    return total_.load(std::memory_order_relaxed);
  }
  std::size_t num_shards() const noexcept { return shards_.size(); }
  const VectorIndex& shard(std::size_t s) const { return *shards_[s]; }

  /// Appends to the currently smallest shard; the id is the global
  /// insertion position (size() before the call), as for any VectorIndex.
  VectorId Add(std::span<const float> vec) override;

  // --- Mutation routing (DESIGN.md §13) -----------------------------
  //
  // Available when every shard is mutable. Global ids are stable: the
  // owner table (global id → shard, local slot) and the per-shard
  // local→global lists only ever append, and a shard reusing a
  // reclaimed slot reuses the slot's existing global id. Deletes route
  // to the owning shard by id.

  /// True when every shard supports mutation.
  bool SupportsMutation() const noexcept override;

  /// Routes to the currently smallest (by live count) shard. When the
  /// shard reuses a reclaimed slot the returned global id is the slot's
  /// previous id; otherwise a fresh id is assigned.
  VectorId Insert(std::span<const float> vec) override;

  /// Routes to the owning shard. False for unknown/already-dead ids.
  bool Delete(VectorId id) override;

  /// Consolidates every shard; returns total slots reclaimed.
  std::size_t Consolidate() override;

  /// Sum of the per-shard generations (monotone, since each is).
  std::uint64_t generation() const noexcept override;

  /// Mutation generation of one shard (the cache-staleness token).
  std::uint64_t shard_generation(std::size_t s) const noexcept {
    return shards_[s]->generation();
  }

  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;

  /// Grouped scatter-gather: fans shard×query tasks across the pool in
  /// one wave, then merges per query. This is the batch shape the serving
  /// driver issues grouped cache misses through.
  std::vector<std::vector<Neighbor>> SearchBatch(
      const Matrix& queries, std::size_t k) const override;

  /// Filtered scatter-gather; the filter sees global ids.
  std::vector<Neighbor> SearchFiltered(std::span<const float> query,
                                       std::size_t k,
                                       const Filter& filter) const override;

  std::string Describe() const override;

  /// Exact k-way merge of per-shard sorted lists, ordered by
  /// (distance, id). Public because the cluster router (src/cluster)
  /// merges per-backend answers with this very routine, which is what
  /// makes a routed k-NN bit-identical to the in-process sharded one
  /// for exact indexes (DESIGN.md §14).
  static std::vector<Neighbor> MergeSorted(
      std::vector<std::vector<Neighbor>>& parts, std::size_t k);

 private:
  /// Rewrites shard-local ids in `neighbors` to global ids.
  void ToGlobal(std::size_t shard, std::vector<Neighbor>& neighbors) const;

  std::size_t dim_ = 0;
  Metric metric_ = Metric::kL2;
  ShardedIndexOptions options_;
  std::vector<std::unique_ptr<VectorIndex>> shards_;

  // Guards the id maps. Readers (ToGlobal, filter lambdas) take the
  // shared side briefly and never while holding a shard's internal
  // lock, so scatter-gather legs cannot deadlock against mutators.
  mutable std::shared_mutex map_mu_;
  std::vector<std::vector<VectorId>> global_ids_;
  /// global id → (shard, local slot); kInvalidOwner for never-assigned.
  static constexpr std::uint32_t kInvalidOwner = 0xffffffffu;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owner_;

  std::atomic<std::size_t> total_{0};  // live vectors across shards
};

/// Partitions `corpus` into contiguous stripes and builds one sub-index
/// per stripe according to `spec` (shards build in parallel on the shared
/// pool). `options.num_shards` is clamped to the corpus size so no shard
/// is empty.
std::unique_ptr<ShardedIndex> BuildShardedIndex(
    const IndexSpec& spec, const Matrix& corpus,
    ShardedIndexOptions options = {});

/// Builds a sharded index over stripe `part` of `parts` of `corpus`,
/// with global ids equal to the stripe's corpus row numbers. The stripe
/// boundaries are exactly the ones BuildShardedIndex(parts) would use,
/// so N backend processes each serving one partition return the same
/// global ids as a single process sharded N ways — the property the
/// cluster router's exact merge builds on (`serve partition=I/N`).
/// Throws std::invalid_argument when `part >= parts` or the stripe is
/// empty (more partitions than corpus rows).
std::unique_ptr<ShardedIndex> BuildPartitionedIndex(
    const IndexSpec& spec, const Matrix& corpus, std::size_t part,
    std::size_t parts, ShardedIndexOptions options = {});

}  // namespace proximity
