// Sharded scatter-gather adapter over any VectorIndex.
//
// Partitions a corpus into N sub-indexes ("shards") searched in parallel
// on the shared ThreadPool, then merges the per-shard top-k lists with an
// exact heap merge ordered by (distance, id) — the same tie-break every
// index uses (NeighborCloser) — so for exact indexes (FlatIndex) the
// sharded result is bit-identical to the unsharded one. For approximate
// indexes (HNSW/IVF) each shard runs its full search over a smaller
// sub-corpus, which preserves (typically improves) recall at the cost of
// per-shard fixed overhead.
//
// This is the database-side scaling substrate for the serving layer
// (DESIGN.md §8): the batching driver groups cache misses and issues them
// as one SearchBatch call, fanning shard×query tasks across the pool so
// the fused batch kernels see real batch shapes.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "index/index_factory.h"
#include "index/vector_index.h"

namespace proximity {

struct ShardedIndexOptions {
  /// Number of shards; 0 selects the shared thread-pool width.
  std::size_t num_shards = 0;
  /// Scatter per-shard (and per-query, for SearchBatch) searches across
  /// the shared ThreadPool; false searches shards on the calling thread.
  bool parallel = true;
};

class ShardedIndex final : public VectorIndex {
 public:
  /// Wraps externally built shards. `global_ids[s][j]` is the global
  /// corpus id of shard s's local vector j; sizes must match the shards.
  /// All shards must share dim and metric. Prefer BuildShardedIndex below
  /// for the common build-from-corpus path.
  ShardedIndex(std::vector<std::unique_ptr<VectorIndex>> shards,
               std::vector<std::vector<VectorId>> global_ids,
               ShardedIndexOptions options = {});

  std::size_t dim() const noexcept override { return dim_; }
  Metric metric() const noexcept override { return metric_; }
  std::size_t size() const noexcept override { return total_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }
  const VectorIndex& shard(std::size_t s) const { return *shards_[s]; }

  /// Appends to the currently smallest shard; the id is the global
  /// insertion position (size() before the call), as for any VectorIndex.
  VectorId Add(std::span<const float> vec) override;

  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;

  /// Grouped scatter-gather: fans shard×query tasks across the pool in
  /// one wave, then merges per query. This is the batch shape the serving
  /// driver issues grouped cache misses through.
  std::vector<std::vector<Neighbor>> SearchBatch(
      const Matrix& queries, std::size_t k) const override;

  /// Filtered scatter-gather; the filter sees global ids.
  std::vector<Neighbor> SearchFiltered(std::span<const float> query,
                                       std::size_t k,
                                       const Filter& filter) const override;

  std::string Describe() const override;

 private:
  /// Rewrites shard-local ids in `neighbors` to global ids.
  void ToGlobal(std::size_t shard, std::vector<Neighbor>& neighbors) const;

  /// Exact k-way merge of per-shard sorted lists, ordered by
  /// (distance, id).
  static std::vector<Neighbor> MergeSorted(
      std::vector<std::vector<Neighbor>>& parts, std::size_t k);

  std::size_t dim_ = 0;
  Metric metric_ = Metric::kL2;
  ShardedIndexOptions options_;
  std::vector<std::unique_ptr<VectorIndex>> shards_;
  std::vector<std::vector<VectorId>> global_ids_;
  std::size_t total_ = 0;
};

/// Partitions `corpus` into contiguous stripes and builds one sub-index
/// per stripe according to `spec` (shards build in parallel on the shared
/// pool). `options.num_shards` is clamped to the corpus size so no shard
/// is empty.
std::unique_ptr<ShardedIndex> BuildShardedIndex(
    const IndexSpec& spec, const Matrix& corpus,
    ShardedIndexOptions options = {});

}  // namespace proximity
