// Storage-latency model: wraps any index and charges a deterministic
// per-search delay to a VirtualClock.
//
// §4.3.3 of the paper remarks that "other database implementations such as
// DISKANN (partially) store indices on the disk, which increases retrieval
// latency … such implementations would highly benefit from the speedups
// enabled by Proximity". This wrapper reproduces that regime without real
// disks: the bench `diskann_sim` sweeps the delay model and shows the
// cache's speedup growing with database latency.
#pragma once

#include <memory>

#include "common/stopwatch.h"
#include "index/vector_index.h"

namespace proximity {

struct StorageModel {
  /// Fixed per-search latency (seek + index traversal), in nanoseconds.
  Nanos fixed_ns = 0;
  /// Additional latency charged per result candidate (page reads).
  Nanos per_result_ns = 0;

  Nanos CostOf(std::size_t results) const noexcept {
    return fixed_ns + per_result_ns * static_cast<Nanos>(results);
  }
};

class SlowStorageIndex final : public VectorIndex {
 public:
  /// Does not take ownership of `clock`; it must outlive the index.
  SlowStorageIndex(std::unique_ptr<VectorIndex> inner, StorageModel model,
                   VirtualClock* clock);

  std::size_t dim() const noexcept override { return inner_->dim(); }
  Metric metric() const noexcept override { return inner_->metric(); }
  std::size_t size() const noexcept override { return inner_->size(); }

  VectorId Add(std::span<const float> vec) override {
    return inner_->Add(vec);
  }

  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;
  std::string Describe() const override;

  const VectorIndex& inner() const noexcept { return *inner_; }
  const StorageModel& model() const noexcept { return model_; }

 private:
  std::unique_ptr<VectorIndex> inner_;
  StorageModel model_;
  VirtualClock* clock_;
};

}  // namespace proximity
