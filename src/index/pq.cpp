#include "index/pq.h"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "common/serde.h"
#include "index/index_io.h"
#include "index/kmeans.h"
#include "vecmath/kernels.h"

namespace proximity {

ProductQuantizer::ProductQuantizer(std::size_t dim, PqOptions options)
    : dim_(dim), options_(options) {
  if (dim == 0) throw std::invalid_argument("ProductQuantizer: dim == 0");
  if (options_.m == 0 || dim % options_.m != 0) {
    throw std::invalid_argument("ProductQuantizer: m must divide dim");
  }
  if (options_.ksub == 0 || options_.ksub > 256) {
    throw std::invalid_argument("ProductQuantizer: ksub must be in [1,256]");
  }
}

void ProductQuantizer::Train(const Matrix& sample) {
  if (trained_) throw std::logic_error("ProductQuantizer: already trained");
  if (sample.dim() != dim_) {
    throw std::invalid_argument("ProductQuantizer::Train: dim mismatch");
  }
  if (sample.rows() == 0) {
    throw std::invalid_argument("ProductQuantizer::Train: empty sample");
  }
  const std::size_t ds = dsub();
  codebooks_.reserve(options_.m);
  for (std::size_t sub = 0; sub < options_.m; ++sub) {
    // Slice out the sub-vectors for this subspace.
    Matrix slice(sample.rows(), ds);
    for (std::size_t r = 0; r < sample.rows(); ++r) {
      const auto row = sample.Row(r);
      auto dst = slice.MutableRow(r);
      for (std::size_t j = 0; j < ds; ++j) dst[j] = row[sub * ds + j];
    }
    KMeansOptions kopts;
    kopts.max_iterations = options_.train_iterations;
    kopts.seed = options_.seed + sub;
    codebooks_.push_back(RunKMeans(slice, options_.ksub, kopts).centroids);
  }
  trained_ = true;
}

std::span<const float> ProductQuantizer::Centroid(std::size_t sub,
                                                  std::size_t c) const {
  assert(trained_);
  return codebooks_[sub].Row(c);
}

void ProductQuantizer::Encode(std::span<const float> vec,
                              std::uint8_t* code) const {
  if (!trained_) throw std::logic_error("ProductQuantizer: train first");
  if (vec.size() != dim_) {
    throw std::invalid_argument("ProductQuantizer::Encode: dim mismatch");
  }
  const std::size_t ds = dsub();
  for (std::size_t sub = 0; sub < options_.m; ++sub) {
    code[sub] = static_cast<std::uint8_t>(
        NearestCentroid(codebooks_[sub], vec.subspan(sub * ds, ds)));
  }
}

void ProductQuantizer::Decode(const std::uint8_t* code,
                              std::span<float> out) const {
  if (!trained_) throw std::logic_error("ProductQuantizer: train first");
  assert(out.size() == dim_);
  const std::size_t ds = dsub();
  for (std::size_t sub = 0; sub < options_.m; ++sub) {
    const auto centroid = codebooks_[sub].Row(code[sub]);
    for (std::size_t j = 0; j < ds; ++j) out[sub * ds + j] = centroid[j];
  }
}

std::vector<float> ProductQuantizer::ComputeDistanceTable(
    std::span<const float> query) const {
  if (!trained_) throw std::logic_error("ProductQuantizer: train first");
  if (query.size() != dim_) {
    throw std::invalid_argument("ProductQuantizer: dim mismatch");
  }
  const std::size_t ds = dsub();
  const std::size_t ks = codebooks_[0].rows();
  std::vector<float> table(options_.m * ks);
  for (std::size_t sub = 0; sub < options_.m; ++sub) {
    const auto q = query.subspan(sub * ds, ds);
    for (std::size_t c = 0; c < ks; ++c) {
      table[sub * ks + c] = L2SquaredDistance(q, codebooks_[sub].Row(c));
    }
  }
  return table;
}

float ProductQuantizer::AdcDistance(const std::vector<float>& table,
                                    const std::uint8_t* code) const noexcept {
  const std::size_t ks = codebooks_[0].rows();
  float acc = 0.f;
  for (std::size_t sub = 0; sub < options_.m; ++sub) {
    acc += table[sub * ks + code[sub]];
  }
  return acc;
}

void ProductQuantizer::SaveTo(std::ostream& os) const {
  if (!trained_) throw std::logic_error("ProductQuantizer: train first");
  BinaryWriter w(os);
  WriteHeader(w, io_magic::kPq, /*version=*/1);
  w.WriteU64(dim_);
  w.WriteU64(options_.m);
  w.WriteU64(options_.ksub);
  w.WriteU64(options_.train_iterations);
  w.WriteU64(options_.seed);
  for (const auto& codebook : codebooks_) {
    WriteMatrix(w, codebook);
  }
  w.Finish();
}

ProductQuantizer ProductQuantizer::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  ReadHeader(r, io_magic::kPq, /*max_version=*/1);
  const std::uint64_t dim = r.ReadU64();
  PqOptions opts;
  opts.m = r.ReadU64();
  opts.ksub = r.ReadU64();
  opts.train_iterations = r.ReadU64();
  opts.seed = r.ReadU64();
  ProductQuantizer pq(dim, opts);
  pq.codebooks_.reserve(opts.m);
  for (std::size_t sub = 0; sub < opts.m; ++sub) {
    Matrix codebook = ReadMatrix(r);
    if (codebook.dim() != pq.dsub()) {
      throw std::runtime_error("ProductQuantizer::LoadFrom: dsub mismatch");
    }
    pq.codebooks_.push_back(std::move(codebook));
  }
  pq.trained_ = true;
  r.VerifyChecksum();
  return pq;
}

float ProductQuantizer::ReconstructionError(std::span<const float> vec) const {
  std::vector<std::uint8_t> code(code_size());
  Encode(vec, code.data());
  std::vector<float> rec(dim_);
  Decode(code.data(), rec);
  return L2SquaredDistance(vec, rec);
}

}  // namespace proximity
