// String-configured index construction for benches and examples.
#pragma once

#include <memory>
#include <string>

#include "index/vector_index.h"
#include "vecmath/matrix.h"

namespace proximity {

struct IndexSpec {
  /// "flat", "hnsw", "ivf_flat", "ivf_pq", "vamana", or "mutable" (the
  /// live-corpus graph; reuses the vamana_* knobs, float32 only).
  std::string kind = "flat";
  Metric metric = Metric::kL2;
  std::uint64_t seed = 42;

  /// Primary storage layout: "float32" (default), "sq8", or "sq4".
  /// Quantized layouts run the compressed two-level scan (DESIGN.md §11)
  /// on flat, ivf_flat, hnsw, and vamana; ivf_pq ignores it (PQ is its
  /// own compression scheme).
  std::string storage = "float32";
  /// Over-fetch multiplier for quantized flat/ivf_flat scans.
  std::size_t rerank_factor = 4;

  // HNSW knobs.
  std::size_t hnsw_m = 16;
  std::size_t hnsw_ef_construction = 200;
  std::size_t hnsw_ef_search = 64;

  // IVF knobs.
  std::size_t ivf_nlist = 64;
  std::size_t ivf_nprobe = 8;

  // PQ knobs.
  std::size_t pq_m = 8;
  std::size_t pq_refine_factor = 0;  // 0 = no exact re-ranking

  // Vamana (DiskANN) knobs.
  std::size_t vamana_degree = 32;
  std::size_t vamana_beam = 64;
  float vamana_alpha = 1.2f;
};

/// Builds an index over `corpus` according to `spec`. Trainable indexes
/// (IVF variants) are trained on a deterministic subsample of the corpus
/// before insertion. Throws std::invalid_argument on an unknown kind.
std::unique_ptr<VectorIndex> BuildIndex(const IndexSpec& spec,
                                        const Matrix& corpus);

}  // namespace proximity
