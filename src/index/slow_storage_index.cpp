#include "index/slow_storage_index.h"

#include <stdexcept>

namespace proximity {

SlowStorageIndex::SlowStorageIndex(std::unique_ptr<VectorIndex> inner,
                                   StorageModel model, VirtualClock* clock)
    : inner_(std::move(inner)), model_(model), clock_(clock) {
  if (!inner_) {
    throw std::invalid_argument("SlowStorageIndex: inner index is null");
  }
  if (clock_ == nullptr) {
    throw std::invalid_argument("SlowStorageIndex: clock is null");
  }
}

std::vector<Neighbor> SlowStorageIndex::Search(std::span<const float> query,
                                               std::size_t k) const {
  auto results = inner_->Search(query, k);
  clock_->Advance(model_.CostOf(results.size()));
  return results;
}

std::string SlowStorageIndex::Describe() const {
  return "slow_storage(fixed=" + std::to_string(model_.fixed_ns) +
         "ns,per_result=" + std::to_string(model_.per_result_ns) + "ns," +
         inner_->Describe() + ")";
}

}  // namespace proximity
