// SQ8: flat index over 8-bit scalar-quantized vectors (FAISS
// IndexScalarQuantizer analogue).
//
// Each dimension is affinely mapped to [0, 255] using per-dimension
// min/max learned from a training sample; vectors are stored as one byte
// per dimension (4x smaller than float32). Search scans the codes,
// dequantizing on the fly; an optional exact re-ranking stage (requires
// retaining raw vectors) removes the quantization error from the final
// ranking. Another point on the §2.2 memory/recall/latency trade-off
// curve, between FLAT and PQ.
#pragma once

#include <cstdint>
#include <vector>

#include "index/vector_index.h"

namespace proximity {

struct Sq8Options {
  Metric metric = Metric::kL2;
  /// When > 0, search scans codes for refine_factor * k candidates and
  /// re-ranks them exactly against retained raw vectors.
  std::size_t refine_factor = 0;
  /// Quantile trimming for the per-dim range (0 = exact min/max). A small
  /// trim (e.g. 0.01) makes the quantizer robust to outliers.
  double trim = 0.0;
};

class Sq8Index final : public VectorIndex {
 public:
  Sq8Index(std::size_t dim, Sq8Options options = {});

  /// Learns per-dimension ranges from the sample. Must precede Add.
  void Train(const Matrix& sample);
  bool trained() const noexcept { return trained_; }

  std::size_t dim() const noexcept override { return dim_; }
  Metric metric() const noexcept override { return options_.metric; }
  std::size_t size() const noexcept override { return count_; }

  VectorId Add(std::span<const float> vec) override;
  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;
  std::string Describe() const override;

  /// Quantize/dequantize one vector (exposed for tests).
  void Encode(std::span<const float> vec, std::uint8_t* code) const;
  void Decode(const std::uint8_t* code, std::span<float> out) const;

  std::size_t BytesPerVector() const noexcept {
    return dim_ + (options_.refine_factor > 0 ? dim_ * sizeof(float) : 0);
  }

 private:
  std::size_t dim_;
  Sq8Options options_;
  bool trained_ = false;
  std::vector<float> vmin_;    // per-dim lower bound
  std::vector<float> vscale_;  // per-dim (max-min)/255, >= epsilon
  std::vector<std::uint8_t> codes_;  // row-major, dim_ bytes per vector
  Matrix raw_vectors_;               // only when refine_factor > 0
  std::size_t count_ = 0;
};

}  // namespace proximity
