// Retrieval-quality measures: recall@k and rank-weighted overlap.
//
// Used (a) to validate the ANN indexes against exact ground truth and
// (b) by the RAG answer model, which scores how relevant the served
// (possibly cached) chunks are relative to the exact top-k.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace proximity {

/// |approx ∩ truth| / |truth| over the id sets. Returns 1.0 when truth is
/// empty.
double RecallAtK(std::span<const Neighbor> approx,
                 std::span<const Neighbor> truth);

/// Id-set overlap of two result lists (Jaccard). Returns 1.0 if both empty.
double JaccardOverlap(std::span<const Neighbor> a,
                      std::span<const Neighbor> b);

/// Mean recall across query result pairs; lists must be the same length.
double MeanRecallAtK(
    const std::vector<std::vector<Neighbor>>& approx,
    const std::vector<std::vector<Neighbor>>& truth);

}  // namespace proximity
