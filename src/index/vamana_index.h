// Vamana graph index — the in-memory core of DiskANN (Subramanya et al.,
// cited as [22] in §4.3.3 of the paper).
//
// A single-layer navigable graph built with α-pruned (RobustPrune)
// neighbor selection. Insertions follow the DiskANN "fresh" protocol:
// greedy beam search from the medoid collects a visited set, RobustPrune
// picks at most R diverse out-neighbors, and reverse edges are added with
// re-pruning on overflow. Combined with SlowStorageIndex this models the
// disk-resident regime where Proximity's speedups are largest.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "index/vector_index.h"
#include "vecmath/compressed_store.h"

namespace proximity {

struct VamanaOptions {
  Metric metric = Metric::kL2;
  /// Maximum out-degree (R in the DiskANN paper).
  std::size_t max_degree = 32;
  /// Beam width during construction (L).
  std::size_t build_beam = 64;
  /// Beam width during search; raised to k if smaller.
  std::size_t search_beam = 64;
  /// Pruning slack: a candidate is dropped when an already-selected
  /// neighbor is α× closer to it than the node is. α > 1 keeps long-range
  /// edges that make greedy routing converge.
  float alpha = 1.2f;
  std::uint64_t seed = 42;
  /// Bulk-build threshold: vectors added before the first search are
  /// buffered and indexed with the full Vamana procedure (random
  /// R-regular init + two α passes in random order). Vectors added after
  /// the graph exists use the incremental fresh-insert path. The bulk
  /// build is what provides long-range connectivity on clustered data —
  /// pure incremental insertion can strand the medoid's neighborhood
  /// inside one cluster.
  bool bulk_build = true;
  /// Protected random long-range shortcuts per node (Kleinberg-style),
  /// stored outside the α-pruned degree budget and traversed by every
  /// beam search. They guarantee inter-cluster navigability on data whose
  /// distances concentrate (high-dimensional tight clusters), where
  /// α-pruning alone keeps only nearest-neighborhood edges. 0 disables.
  std::size_t long_edges = 2;
  /// Representation driving beam traversal (DESIGN.md §11): sq8/sq4
  /// expand nodes from quantized codes and rerank the final beam against
  /// the float rows; pruning always uses float distances. The over-fetch
  /// is the beam width itself, so no rerank factor.
  StorageLayout storage = StorageLayout::kFloat32;
};

class VamanaIndex final : public VectorIndex {
 public:
  VamanaIndex(std::size_t dim, VamanaOptions options = {});

  std::size_t dim() const noexcept override { return vectors_.dim(); }
  Metric metric() const noexcept override { return options_.metric; }
  std::size_t size() const noexcept override { return vectors_.rows(); }

  /// Not thread-safe; build single-threaded, then Search freely. With
  /// bulk_build (default), vectors are buffered until the first Search
  /// (or an explicit Build()) triggers the full two-pass construction.
  VectorId Add(std::span<const float> vec) override;

  /// Runs the bulk build if the graph is stale. Idempotent.
  void Build();

  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;
  std::string Describe() const override;

  void set_search_beam(std::size_t beam) noexcept {
    options_.search_beam = beam;
  }

  /// Graph introspection for tests. OutNeighbors triggers Build() if the
  /// graph is stale (it is only meaningful on a built graph).
  const std::vector<std::uint32_t>& OutNeighbors(VectorId id);
  /// The node's protected random shortcuts (see VamanaOptions::long_edges).
  const std::vector<std::uint32_t>& LongLinks(VectorId id);
  VectorId medoid() const noexcept { return medoid_; }
  StorageLayout storage() const noexcept { return options_.storage; }

 private:
  using NodeId = std::uint32_t;

  float Dist(std::span<const float> a, NodeId b) const noexcept;

  bool quantized() const noexcept {
    return options_.storage != StorageLayout::kFloat32;
  }

  /// Traversal distance of one node: quantized codes when enabled,
  /// float row otherwise. Drives every beam expansion.
  float TraversalDist(std::span<const float> query, NodeId b) const;

  /// Beam search from the medoid; returns the visited (expanded) nodes
  /// with distances, closest first, capped at `beam` results.
  std::vector<Neighbor> BeamSearch(std::span<const float> query,
                                   std::size_t beam,
                                   std::vector<Neighbor>* visited) const;

  /// DiskANN Algorithm 2: selects at most max_degree diverse neighbors of
  /// `node` from `candidates`, pruning with the given α.
  std::vector<NodeId> RobustPrune(NodeId node,
                                  std::vector<Neighbor> candidates,
                                  float alpha) const;

  /// Full two-pass Vamana construction over all buffered vectors.
  void BuildGraph();

  /// Incremental fresh-insert of node `id` into an existing graph.
  void InsertIntoGraph(NodeId id);

  void EnsureBuilt() const;

  VamanaOptions options_;
  Matrix vectors_;
  // Quantized mirror of vectors_ for beam traversal (empty for
  // kFloat32); appended in lockstep with vectors_.
  CompressedStore store_;
  // Graph state is rebuilt lazily from const Search, hence mutable.
  mutable std::vector<std::vector<NodeId>> adjacency_;
  mutable std::vector<std::vector<NodeId>> long_links_;
  mutable NodeId medoid_ = 0;
  mutable bool graph_dirty_ = false;
  mutable std::mutex build_mu_;
  std::uint64_t long_rng_state_ = 0;

  // Epoch-stamped visited set, reused across searches (guarded: Search is
  // const but the scratch is shared).
  mutable std::mutex scratch_mu_;
  mutable std::vector<std::uint32_t> visited_stamp_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace proximity
