// Mutable Vamana-style graph index for a live (churning) corpus.
//
// The build-once indexes in this tree freeze their id space at build
// time; MutableGraphIndex instead treats ids as SLOTS (DESIGN.md §13,
// after SVS's dynamic Vamana): Delete tombstones a slot without touching
// the graph around it, Consolidate splices tombstoned slots out of their
// in-neighbors' adjacency lists (chunked, releasing the writer lock
// between chunks so queries keep flowing) and pushes the slot onto a
// free list, and Insert reuses the lowest free slot before growing the
// arena. Every mutation bumps a monotone generation counter — the
// staleness token the proximity cache stamps into entries at fill time.
//
// Concurrency contract: Search takes a shared lock; Insert/Delete/
// Consolidate take the exclusive lock (Consolidate only per chunk).
// Searches allocate a local visited set, so any number run in parallel.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "index/vector_index.h"

namespace proximity {

struct MutableGraphOptions {
  Metric metric = Metric::kL2;
  /// Maximum out-degree (R); tombstone splicing re-prunes to this.
  std::size_t max_degree = 32;
  /// Beam width during insertion (L).
  std::size_t build_beam = 64;
  /// Beam width during search; raised to k if smaller.
  std::size_t search_beam = 64;
  /// RobustPrune slack; α > 1 keeps detour-resistant edges.
  float alpha = 1.2f;
  std::uint64_t seed = 42;
  /// Protected random shortcuts per node (see VamanaOptions); retargeted
  /// away from reclaimed slots during Consolidate.
  std::size_t long_edges = 2;
  /// Consolidate rewires at most this many tombstones per exclusive
  /// lock acquisition, yielding to readers in between.
  std::size_t consolidate_chunk = 64;
};

class MutableGraphIndex final : public VectorIndex {
 public:
  MutableGraphIndex(std::size_t dim, MutableGraphOptions options = {});

  std::size_t dim() const noexcept override { return dim_; }
  Metric metric() const noexcept override { return options_.metric; }
  /// Live vectors (slots minus tombstones minus free slots).
  std::size_t size() const noexcept override {
    return live_count_.load(std::memory_order_relaxed);
  }

  bool SupportsMutation() const noexcept override { return true; }

  /// Add is Insert: the returned id may reuse a reclaimed slot.
  VectorId Add(std::span<const float> vec) override { return Insert(vec); }
  VectorId Insert(std::span<const float> vec) override;
  bool Delete(VectorId id) override;
  std::size_t Consolidate() override;
  std::uint64_t generation() const noexcept override {
    return generation_.load(std::memory_order_acquire);
  }

  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;
  std::string Describe() const override;

  void SaveTo(std::ostream& os) const override;
  static std::unique_ptr<MutableGraphIndex> LoadFrom(std::istream& is);

  void set_search_beam(std::size_t beam) noexcept {
    options_.search_beam = beam;
  }

  /// Introspection for tests and the consolidation runbook.
  std::size_t slot_count() const;
  std::size_t tombstone_count() const;
  std::size_t free_count() const;
  bool IsLive(VectorId id) const;

 private:
  using NodeId = std::uint32_t;

  float Dist(std::span<const float> a, NodeId b) const noexcept;

  /// Beam search from entry_; caller must hold mu_ (either mode). The
  /// visited set is local, so shared-lock callers never contend.
  /// Tombstones are traversed (their edges still route) but filtered
  /// from the returned list unless `include_dead`.
  std::vector<Neighbor> BeamSearchLocked(std::span<const float> query,
                                         std::size_t beam,
                                         bool include_dead) const;

  /// DiskANN Algorithm 2 over live candidates; caller holds mu_.
  std::vector<NodeId> RobustPruneLocked(NodeId node,
                                        std::vector<Neighbor> candidates,
                                        float alpha) const;

  /// Picks the next batch of unreclaimed tombstones (at most
  /// consolidate_chunk); caller holds mu_ (either mode).
  std::vector<NodeId> PickChunkLocked() const;

  /// Computes the consolidation splice for `chunk`: every survivor
  /// adjacency that touches a chunk tombstone, rewired through the
  /// tombstone's live out-neighbors and re-pruned. Pure planning —
  /// caller holds mu_ (either mode, so it can run under a shared lock
  /// concurrently with queries).
  std::vector<std::pair<NodeId, std::vector<NodeId>>> PlanSpliceLocked(
      const std::vector<NodeId>& chunk) const;

  /// The wiring step of Insert: assigns a slot for `vec`, prunes
  /// `visited` into its adjacency, adds reverse edges, and picks long
  /// links. Caller holds mu_ exclusively; `visited` comes from a
  /// beam search planned at `planned_gen` and is re-run here iff the
  /// generation moved since.
  VectorId ApplyInsertLocked(std::span<const float> vec,
                             std::vector<Neighbor> visited,
                             std::uint64_t planned_gen);

  /// Re-picks entry_ after its slot died; caller holds mu_ exclusively.
  void RepairEntryLocked();

  /// glibc's shared_mutex prefers readers, so a sustained query stream
  /// can starve Insert/Delete/Consolidate forever. Writers announce
  /// themselves here before blocking on mu_; readers that see a waiting
  /// writer yield until it has gone through. See AcquireShared/Unique.
  std::shared_lock<std::shared_mutex> AcquireShared() const;
  std::unique_lock<std::shared_mutex> AcquireUnique() const;

  void BumpGeneration() noexcept {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  MutableGraphOptions options_;
  std::size_t dim_;

  mutable std::shared_mutex mu_;
  Matrix rows_;                            // one row per slot
  std::vector<std::uint8_t> live_;         // 1 = serving, 0 = dead
  std::vector<NodeId> free_slots_;         // reclaimed, ready for reuse
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::vector<NodeId>> long_links_;
  NodeId entry_ = 0;
  std::size_t tombstones_ = 0;
  std::uint64_t long_rng_state_ = 0;

  std::atomic<std::size_t> live_count_{0};
  std::atomic<std::uint64_t> generation_{0};
  mutable std::atomic<std::uint32_t> writers_waiting_{0};
};

}  // namespace proximity
