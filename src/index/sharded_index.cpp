#include "index/sharded_index.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace proximity {

namespace {
const obs::CounterHandle kObsSearches("shard.searches");
const obs::CounterHandle kObsBatchQueries("shard.batch_queries");
// One sample per (shard, query) search leg; the scatter-gather fan-out
// cost the serving layer pays per grouped miss.
const obs::HistogramHandle kObsSearchNs("shard.search_ns");
}  // namespace

ShardedIndex::ShardedIndex(std::vector<std::unique_ptr<VectorIndex>> shards,
                           std::vector<std::vector<VectorId>> global_ids,
                           ShardedIndexOptions options)
    : options_(options),
      shards_(std::move(shards)),
      global_ids_(std::move(global_ids)) {
  if (shards_.empty()) {
    throw std::invalid_argument("ShardedIndex: needs at least one shard");
  }
  if (global_ids_.size() != shards_.size()) {
    throw std::invalid_argument(
        "ShardedIndex: one global-id list per shard required");
  }
  dim_ = shards_[0]->dim();
  metric_ = shards_[0]->metric();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->dim() != dim_ || shards_[s]->metric() != metric_) {
      throw std::invalid_argument(
          "ShardedIndex: shards disagree on dim/metric");
    }
    if (global_ids_[s].size() != shards_[s]->size()) {
      throw std::invalid_argument(
          "ShardedIndex: global-id list size mismatch for shard " +
          std::to_string(s));
    }
    total_.fetch_add(shards_[s]->size(), std::memory_order_relaxed);
  }
  // Owner table for O(1) delete routing: global id → (shard, local).
  VectorId max_id = -1;
  for (const auto& ids : global_ids_) {
    for (VectorId id : ids) max_id = std::max(max_id, id);
  }
  owner_.assign(static_cast<std::size_t>(max_id + 1),
                {kInvalidOwner, kInvalidOwner});
  for (std::size_t s = 0; s < global_ids_.size(); ++s) {
    for (std::size_t local = 0; local < global_ids_[s].size(); ++local) {
      owner_[static_cast<std::size_t>(global_ids_[s][local])] = {
          static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(local)};
    }
  }
}

VectorId ShardedIndex::Add(std::span<const float> vec) {
  return Insert(vec);
}

VectorId ShardedIndex::Insert(std::span<const float> vec) {
  CheckDim(vec);
  std::unique_lock lock(map_mu_);
  std::size_t target = 0;
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    if (shards_[s]->size() < shards_[target]->size()) target = s;
  }
  // For build-once shards this appends (local == old shard size); a
  // mutable shard may hand back a reclaimed slot, whose global id we
  // reuse so the owner table and local→global lists stay append-only
  // (that stability is what lets searches read them under a short
  // shared lock).
  const auto local = static_cast<std::size_t>(shards_[target]->Insert(vec));
  VectorId global;
  if (local < global_ids_[target].size()) {
    global = global_ids_[target][local];
  } else {
    global = static_cast<VectorId>(owner_.size());
    global_ids_[target].push_back(global);
    owner_.push_back({static_cast<std::uint32_t>(target),
                      static_cast<std::uint32_t>(local)});
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  return global;
}

bool ShardedIndex::Delete(VectorId id) {
  std::unique_lock lock(map_mu_);
  const auto idx = static_cast<std::size_t>(id);
  if (id < 0 || idx >= owner_.size()) return false;
  const auto [shard, local] = owner_[idx];
  if (shard == kInvalidOwner) return false;
  if (!shards_[shard]->Delete(static_cast<VectorId>(local))) return false;
  total_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::size_t ShardedIndex::Consolidate() {
  std::size_t reclaimed = 0;
  for (auto& shard : shards_) reclaimed += shard->Consolidate();
  return reclaimed;
}

std::uint64_t ShardedIndex::generation() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->generation();
  return sum;
}

bool ShardedIndex::SupportsMutation() const noexcept {
  for (const auto& shard : shards_) {
    if (!shard->SupportsMutation()) return false;
  }
  return true;
}

void ShardedIndex::ToGlobal(std::size_t shard,
                            std::vector<Neighbor>& neighbors) const {
  // Short shared section; callers never hold a shard's internal lock
  // here (the shard search has already returned), so this cannot
  // deadlock against Insert's map-then-shard lock order.
  std::shared_lock lock(map_mu_);
  const auto& ids = global_ids_[shard];
  for (auto& n : neighbors) {
    n.id = ids[static_cast<std::size_t>(n.id)];
  }
}

std::vector<Neighbor> ShardedIndex::MergeSorted(
    std::vector<std::vector<Neighbor>>& parts, std::size_t k) {
  // Exact k-way heap merge. Each part is sorted by (distance, id); the
  // heap pops globally smallest first, so ties across shards resolve by
  // id exactly as the unsharded index's TopK does.
  struct Head {
    Neighbor n;
    std::size_t part;
    std::size_t pos;
  };
  struct HeadLater {
    bool operator()(const Head& a, const Head& b) const noexcept {
      return NeighborCloser{}(b.n, a.n);  // min-heap by (distance, id)
    }
  };
  std::priority_queue<Head, std::vector<Head>, HeadLater> heap;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    if (!parts[p].empty()) heap.push({parts[p][0], p, 0});
  }
  std::vector<Neighbor> merged;
  merged.reserve(k);
  while (merged.size() < k && !heap.empty()) {
    Head head = heap.top();
    heap.pop();
    merged.push_back(head.n);
    if (head.pos + 1 < parts[head.part].size()) {
      ++head.pos;
      head.n = parts[head.part][head.pos];
      heap.push(head);
    }
  }
  return merged;
}

std::vector<Neighbor> ShardedIndex::Search(std::span<const float> query,
                                           std::size_t k) const {
  CheckDim(query);
  if (k == 0 || size() == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);
  const std::size_t S = shards_.size();
  std::vector<std::vector<Neighbor>> parts(S);
  auto search_shard = [&](std::size_t s) {
    Stopwatch watch;
    parts[s] = shards_[s]->Search(query, k);
    ToGlobal(s, parts[s]);
    kObsSearchNs.Record(watch.ElapsedNanos());
    kObsSearches.Inc();
  };
  if (options_.parallel && S > 1) {
    ThreadPool::Shared().ParallelFor(0, S, search_shard);
  } else {
    for (std::size_t s = 0; s < S; ++s) search_shard(s);
  }
  return MergeSorted(parts, k);
}

std::vector<std::vector<Neighbor>> ShardedIndex::SearchBatch(
    const Matrix& queries, std::size_t k) const {
  const std::size_t Q = queries.rows();
  if (Q == 0) return {};
  if (queries.dim() != dim_) {
    throw std::invalid_argument("ShardedIndex::SearchBatch: dim mismatch");
  }
  std::vector<std::vector<Neighbor>> results(Q);
  if (k == 0 || size() == 0) return results;
  const obs::Span span(obs::Stage::kIndexSearch);
  const std::size_t S = shards_.size();
  kObsBatchQueries.Inc(Q);

  // One wave of shard×query tasks (shard-major, so a chunk stays on one
  // shard's rows), then a per-query merge.
  std::vector<std::vector<Neighbor>> parts(S * Q);
  auto search_leg = [&](std::size_t t) {
    const std::size_t s = t / Q;
    const std::size_t q = t % Q;
    Stopwatch watch;
    parts[t] = shards_[s]->Search(queries.Row(q), k);
    ToGlobal(s, parts[t]);
    kObsSearchNs.Record(watch.ElapsedNanos());
    kObsSearches.Inc();
  };
  if (options_.parallel && S * Q > 1) {
    ThreadPool::Shared().ParallelFor(0, S * Q, search_leg);
  } else {
    for (std::size_t t = 0; t < S * Q; ++t) search_leg(t);
  }
  std::vector<std::vector<Neighbor>> per_query(S);
  for (std::size_t q = 0; q < Q; ++q) {
    for (std::size_t s = 0; s < S; ++s) {
      per_query[s] = std::move(parts[s * Q + q]);
    }
    results[q] = MergeSorted(per_query, k);
  }
  return results;
}

std::vector<Neighbor> ShardedIndex::SearchFiltered(
    std::span<const float> query, std::size_t k, const Filter& filter) const {
  if (!filter) return Search(query, k);
  CheckDim(query);
  if (k == 0 || size() == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);
  const std::size_t S = shards_.size();
  std::vector<std::vector<Neighbor>> parts(S);
  auto search_shard = [&](std::size_t s) {
    // Snapshot the shard's id list: the filter lambda runs inside the
    // shard's search (under its internal lock), where taking map_mu_
    // would invert Insert's map-then-shard lock order.
    std::vector<VectorId> ids;
    {
      std::shared_lock lock(map_mu_);
      ids = global_ids_[s];
    }
    Stopwatch watch;
    parts[s] = shards_[s]->SearchFiltered(
        query, k, [&](VectorId local) {
          const auto l = static_cast<std::size_t>(local);
          return l < ids.size() && filter(ids[l]);
        });
    ToGlobal(s, parts[s]);
    kObsSearchNs.Record(watch.ElapsedNanos());
    kObsSearches.Inc();
  };
  if (options_.parallel && S > 1) {
    ThreadPool::Shared().ParallelFor(0, S, search_shard);
  } else {
    for (std::size_t s = 0; s < S; ++s) search_shard(s);
  }
  return MergeSorted(parts, k);
}

std::string ShardedIndex::Describe() const {
  return "sharded(" + shards_[0]->Describe() +
         ",shards=" + std::to_string(shards_.size()) +
         ",n=" + std::to_string(size()) + ")";
}

std::unique_ptr<ShardedIndex> BuildShardedIndex(const IndexSpec& spec,
                                                const Matrix& corpus,
                                                ShardedIndexOptions options) {
  const std::size_t rows = corpus.rows();
  std::size_t S = options.num_shards != 0 ? options.num_shards
                                          : ThreadPool::Shared().size();
  S = std::max<std::size_t>(1, std::min(S, std::max<std::size_t>(1, rows)));
  options.num_shards = S;

  const std::size_t chunk = (rows + S - 1) / S;
  std::vector<std::unique_ptr<VectorIndex>> shards(S);
  std::vector<std::vector<VectorId>> global_ids(S);
  // Shards build in parallel: construction of distinct indexes is
  // independent, and any nested pool use (k-means, flat scans) is safe
  // because blocked ParallelFor callers help drain the queue.
  ThreadPool::Shared().ParallelFor(0, S, [&](std::size_t s) {
    const std::size_t lo = std::min(rows, s * chunk);
    const std::size_t hi = std::min(rows, lo + chunk);
    Matrix stripe(0, corpus.dim());
    stripe.Reserve(hi - lo);
    for (std::size_t r = lo; r < hi; ++r) stripe.AppendRow(corpus.Row(r));
    shards[s] = BuildIndex(spec, stripe);
    global_ids[s].reserve(hi - lo);
    for (std::size_t r = lo; r < hi; ++r) {
      global_ids[s].push_back(static_cast<VectorId>(r));
    }
  });
  return std::make_unique<ShardedIndex>(std::move(shards),
                                        std::move(global_ids), options);
}

std::unique_ptr<ShardedIndex> BuildPartitionedIndex(const IndexSpec& spec,
                                                    const Matrix& corpus,
                                                    std::size_t part,
                                                    std::size_t parts,
                                                    ShardedIndexOptions
                                                        options) {
  const std::size_t rows = corpus.rows();
  if (parts == 0 || part >= parts) {
    throw std::invalid_argument("BuildPartitionedIndex: part " +
                                std::to_string(part) + " of " +
                                std::to_string(parts));
  }
  // The same ceiling-division striping as BuildShardedIndex(parts), so
  // partition boundaries line up between the cluster and the
  // single-process reference.
  const std::size_t chunk = (rows + parts - 1) / parts;
  const std::size_t lo = std::min(rows, part * chunk);
  const std::size_t hi = std::min(rows, lo + chunk);
  if (lo >= hi) {
    throw std::invalid_argument(
        "BuildPartitionedIndex: partition " + std::to_string(part) + "/" +
        std::to_string(parts) + " is empty (corpus has " +
        std::to_string(rows) + " rows)");
  }
  // The stripe itself shards internally like any corpus; an exact
  // sub-merge of an exact index preserves the stripe's true top-k, so
  // the internal shape does not affect the router-visible answer.
  const std::size_t rows_local = hi - lo;
  std::size_t S = options.num_shards != 0 ? options.num_shards
                                          : ThreadPool::Shared().size();
  S = std::max<std::size_t>(1, std::min(S, rows_local));
  options.num_shards = S;
  const std::size_t sub_chunk = (rows_local + S - 1) / S;
  std::vector<std::unique_ptr<VectorIndex>> shards(S);
  std::vector<std::vector<VectorId>> global_ids(S);
  ThreadPool::Shared().ParallelFor(0, S, [&](std::size_t s) {
    const std::size_t sub_lo = std::min(rows_local, s * sub_chunk);
    const std::size_t sub_hi = std::min(rows_local, sub_lo + sub_chunk);
    Matrix sub(0, corpus.dim());
    sub.Reserve(sub_hi - sub_lo);
    for (std::size_t r = sub_lo; r < sub_hi; ++r) {
      sub.AppendRow(corpus.Row(lo + r));
    }
    shards[s] = BuildIndex(spec, sub);
    global_ids[s].reserve(sub_hi - sub_lo);
    for (std::size_t r = sub_lo; r < sub_hi; ++r) {
      global_ids[s].push_back(static_cast<VectorId>(lo + r));
    }
  });
  return std::make_unique<ShardedIndex>(std::move(shards),
                                        std::move(global_ids), options);
}

}  // namespace proximity
