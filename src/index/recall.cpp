#include "index/recall.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace proximity {

double RecallAtK(std::span<const Neighbor> approx,
                 std::span<const Neighbor> truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<VectorId> truth_ids;
  truth_ids.reserve(truth.size());
  for (const auto& n : truth) truth_ids.insert(n.id);
  std::size_t hits = 0;
  for (const auto& n : approx) {
    if (truth_ids.contains(n.id)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double JaccardOverlap(std::span<const Neighbor> a,
                      std::span<const Neighbor> b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<VectorId> ids_a;
  ids_a.reserve(a.size());
  for (const auto& n : a) ids_a.insert(n.id);
  std::unordered_set<VectorId> ids_b;
  ids_b.reserve(b.size());
  for (const auto& n : b) ids_b.insert(n.id);
  std::size_t inter = 0;
  for (VectorId id : ids_a) {
    if (ids_b.contains(id)) ++inter;
  }
  const std::size_t uni = ids_a.size() + ids_b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& approx,
                     const std::vector<std::vector<Neighbor>>& truth) {
  if (approx.size() != truth.size()) {
    throw std::invalid_argument("MeanRecallAtK: list length mismatch");
  }
  if (approx.empty()) return 1.0;
  double total = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    total += RecallAtK(approx[i], truth[i]);
  }
  return total / static_cast<double>(approx.size());
}

}  // namespace proximity
