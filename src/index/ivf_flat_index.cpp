#include "index/ivf_flat_index.h"

#include <algorithm>
#include <stdexcept>

#include "common/serde.h"
#include "index/index_io.h"
#include "index/kmeans.h"
#include "obs/span.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {

IvfFlatIndex::IvfFlatIndex(std::size_t dim, IvfFlatOptions options)
    : dim_(dim), options_(options) {
  if (dim == 0) throw std::invalid_argument("IvfFlatIndex: dim must be > 0");
  if (options_.nlist == 0) {
    throw std::invalid_argument("IvfFlatIndex: nlist must be > 0");
  }
}

void IvfFlatIndex::Train(const Matrix& sample) {
  if (trained_) throw std::logic_error("IvfFlatIndex: already trained");
  if (sample.dim() != dim_) {
    throw std::invalid_argument("IvfFlatIndex::Train: dimension mismatch");
  }
  if (sample.rows() == 0) {
    throw std::invalid_argument("IvfFlatIndex::Train: empty sample");
  }
  KMeansOptions kopts;
  kopts.seed = options_.seed;
  centroids_ = RunKMeans(sample, options_.nlist, kopts).centroids;
  lists_.resize(centroids_.rows());
  trained_ = true;
}

VectorId IvfFlatIndex::Add(std::span<const float> vec) {
  if (!trained_) throw std::logic_error("IvfFlatIndex: train before Add");
  CheckDim(vec);
  const std::uint32_t list = NearestCentroid(centroids_, vec);
  const VectorId id = static_cast<VectorId>(count_++);
  auto& l = lists_[list];
  l.ids.push_back(id);
  l.vectors.insert(l.vectors.end(), vec.begin(), vec.end());
  return id;
}

std::vector<Neighbor> IvfFlatIndex::Search(std::span<const float> query,
                                           std::size_t k) const {
  if (!trained_) throw std::logic_error("IvfFlatIndex: train before Search");
  CheckDim(query);
  if (k == 0 || count_ == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);

  // Rank coarse centroids by distance to the query.
  const std::size_t nprobe = std::min(options_.nprobe, centroids_.rows());
  std::vector<Neighbor> probe_order =
      SelectTopK(Metric::kL2, query, centroids_.data(), centroids_.rows(),
                 dim_, nprobe);

  // Posting lists are contiguous row-major blocks: scan each probed list
  // with the fused batch kernels, reusing one distance buffer across probes.
  TopK top(k);
  std::vector<float> dist;
  for (const auto& probe : probe_order) {
    const auto& list = lists_[static_cast<std::size_t>(probe.id)];
    const std::size_t entries = list.ids.size();
    if (entries == 0) continue;
    dist.resize(entries);
    BatchDistance(options_.metric, query, list.vectors.data(), entries, dim_,
                  dist.data());
    for (std::size_t r = 0; r < entries; ++r) {
      top.Push(list.ids[r], dist[r]);
    }
  }
  return top.Take();
}

void IvfFlatIndex::SaveTo(std::ostream& os) const {
  if (!trained_) throw std::logic_error("IvfFlatIndex: train before SaveTo");
  BinaryWriter w(os);
  WriteHeader(w, io_magic::kIvfFlat, /*version=*/1);
  w.WriteU64(dim_);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU64(options_.nlist);
  w.WriteU64(options_.nprobe);
  w.WriteU64(options_.seed);
  w.WriteU64(count_);
  WriteMatrix(w, centroids_);
  for (const auto& list : lists_) {
    w.WriteI64s(list.ids);
    w.WriteFloats(list.vectors);
  }
  w.Finish();
}

IvfFlatIndex IvfFlatIndex::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  ReadHeader(r, io_magic::kIvfFlat, /*max_version=*/1);
  const std::uint64_t dim = r.ReadU64();
  IvfFlatOptions opts;
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.nlist = r.ReadU64();
  opts.nprobe = r.ReadU64();
  opts.seed = r.ReadU64();
  const std::uint64_t count = r.ReadU64();

  IvfFlatIndex index(dim, opts);
  index.centroids_ = ReadMatrix(r);
  index.lists_.resize(index.centroids_.rows());
  std::uint64_t restored = 0;
  for (auto& list : index.lists_) {
    list.ids = r.ReadI64s();
    list.vectors = r.ReadFloats();
    if (list.vectors.size() != list.ids.size() * dim) {
      throw std::runtime_error("IvfFlatIndex::LoadFrom: list size mismatch");
    }
    restored += list.ids.size();
  }
  if (restored != count) {
    throw std::runtime_error("IvfFlatIndex::LoadFrom: count mismatch");
  }
  index.count_ = count;
  index.trained_ = true;
  r.VerifyChecksum();
  return index;
}

std::string IvfFlatIndex::Describe() const {
  return "ivf_flat(" + std::string(MetricName(options_.metric)) +
         ",nlist=" + std::to_string(nlist()) +
         ",nprobe=" + std::to_string(options_.nprobe) +
         ",n=" + std::to_string(count_) + ")";
}

}  // namespace proximity
