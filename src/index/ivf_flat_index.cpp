#include "index/ivf_flat_index.h"

#include <algorithm>
#include <stdexcept>

#include "common/serde.h"
#include "index/index_io.h"
#include "index/kmeans.h"
#include "obs/scan_stats.h"
#include "obs/span.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {

IvfFlatIndex::IvfFlatIndex(std::size_t dim, IvfFlatOptions options)
    : dim_(dim), options_(options) {
  if (dim == 0) throw std::invalid_argument("IvfFlatIndex: dim must be > 0");
  if (options_.nlist == 0) {
    throw std::invalid_argument("IvfFlatIndex: nlist must be > 0");
  }
}

void IvfFlatIndex::Train(const Matrix& sample) {
  if (trained_) throw std::logic_error("IvfFlatIndex: already trained");
  if (sample.dim() != dim_) {
    throw std::invalid_argument("IvfFlatIndex::Train: dimension mismatch");
  }
  if (sample.rows() == 0) {
    throw std::invalid_argument("IvfFlatIndex::Train: empty sample");
  }
  KMeansOptions kopts;
  kopts.seed = options_.seed;
  centroids_ = RunKMeans(sample, options_.nlist, kopts).centroids;
  lists_.resize(centroids_.rows());
  if (quantized()) {
    for (auto& list : lists_) {
      list.codes = CompressedStore(dim_, options_.storage);
    }
  }
  trained_ = true;
}

VectorId IvfFlatIndex::Add(std::span<const float> vec) {
  if (!trained_) throw std::logic_error("IvfFlatIndex: train before Add");
  CheckDim(vec);
  const std::uint32_t list = NearestCentroid(centroids_, vec);
  const VectorId id = static_cast<VectorId>(count_++);
  auto& l = lists_[list];
  l.ids.push_back(id);
  l.vectors.insert(l.vectors.end(), vec.begin(), vec.end());
  if (quantized()) l.codes.AppendRow(vec);
  return id;
}

std::vector<Neighbor> IvfFlatIndex::Search(std::span<const float> query,
                                           std::size_t k) const {
  if (!trained_) throw std::logic_error("IvfFlatIndex: train before Search");
  CheckDim(query);
  if (k == 0 || count_ == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);

  // Rank coarse centroids by distance to the query.
  const std::size_t nprobe = std::min(options_.nprobe, centroids_.rows());
  std::vector<Neighbor> probe_order =
      SelectTopK(Metric::kL2, query, centroids_.data(), centroids_.rows(),
                 dim_, nprobe);

  if (quantized()) {
    // Two-level posting scan: compressed codes of each probed list feed
    // an over-fetched candidate heap keyed by (list, row); only the
    // survivors read their float entries back for the exact rerank.
    const std::size_t fetch =
        std::max(k * std::max<std::size_t>(options_.rerank_factor, 1), k);
    TopK coarse(fetch);
    std::vector<float> dist;
    std::uint64_t scanned_rows = 0, scanned_bytes = 0;
    for (const auto& probe : probe_order) {
      const auto& list = lists_[static_cast<std::size_t>(probe.id)];
      const std::size_t entries = list.ids.size();
      if (entries == 0) continue;
      dist.resize(entries);
      list.codes.Scan(options_.metric, query, dist.data());
      scanned_rows += entries;
      scanned_bytes += list.codes.bytes();
      // Pack (list, row) into the candidate id; rows per list stay far
      // below 2^40 and nlist below 2^23, so the pack is lossless.
      const VectorId packed_list = probe.id << 40;
      for (std::size_t r = 0; r < entries; ++r) {
        coarse.Push(packed_list | static_cast<VectorId>(r), dist[r]);
      }
    }
    TopK top(k);
    const auto coarse_hits = coarse.Take();
    for (const auto& cand : coarse_hits) {
      const auto& list = lists_[static_cast<std::size_t>(cand.id >> 40)];
      const auto row = static_cast<std::size_t>(cand.id & ((1LL << 40) - 1));
      const std::span<const float> entry(list.vectors.data() + row * dim_,
                                         dim_);
      top.Push(list.ids[row], Distance(options_.metric, query, entry));
    }
    obs::ScanPrimaryBytes(scanned_bytes);
    obs::ScanRerankBytes(coarse_hits.size() * dim_ * sizeof(float));
    obs::ScanCandidates(coarse_hits.size());
    if (scanned_rows > 0) {
      obs::ScanQuery(static_cast<double>(coarse_hits.size()) /
                     static_cast<double>(scanned_rows));
    }
    return top.Take();
  }

  // Posting lists are contiguous row-major blocks: scan each probed list
  // with the fused batch kernels, reusing one distance buffer across probes.
  TopK top(k);
  std::vector<float> dist;
  for (const auto& probe : probe_order) {
    const auto& list = lists_[static_cast<std::size_t>(probe.id)];
    const std::size_t entries = list.ids.size();
    if (entries == 0) continue;
    dist.resize(entries);
    BatchDistance(options_.metric, query, list.vectors.data(), entries, dim_,
                  dist.data());
    for (std::size_t r = 0; r < entries; ++r) {
      top.Push(list.ids[r], dist[r]);
    }
  }
  return top.Take();
}

void IvfFlatIndex::SaveTo(std::ostream& os) const {
  if (!trained_) throw std::logic_error("IvfFlatIndex: train before SaveTo");
  BinaryWriter w(os);
  // Version 2 appends the storage layout and rerank factor; float32
  // indexes keep writing byte-exact version-1 files (see FlatIndex).
  WriteHeader(w, io_magic::kIvfFlat, /*version=*/quantized() ? 2 : 1);
  w.WriteU64(dim_);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU64(options_.nlist);
  w.WriteU64(options_.nprobe);
  w.WriteU64(options_.seed);
  if (quantized()) {
    w.WriteU32(static_cast<std::uint32_t>(options_.storage));
    w.WriteU64(options_.rerank_factor);
  }
  w.WriteU64(count_);
  WriteMatrix(w, centroids_);
  for (const auto& list : lists_) {
    w.WriteI64s(list.ids);
    w.WriteFloats(list.vectors);
  }
  w.Finish();
}

IvfFlatIndex IvfFlatIndex::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  const std::uint32_t version =
      ReadHeader(r, io_magic::kIvfFlat, /*max_version=*/2);
  const std::uint64_t dim = r.ReadU64();
  IvfFlatOptions opts;
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.nlist = r.ReadU64();
  opts.nprobe = r.ReadU64();
  opts.seed = r.ReadU64();
  if (version >= 2) {
    opts.storage = static_cast<StorageLayout>(r.ReadU32());
    opts.rerank_factor = r.ReadU64();
  }
  const std::uint64_t count = r.ReadU64();

  IvfFlatIndex index(dim, opts);
  index.centroids_ = ReadMatrix(r);
  index.lists_.resize(index.centroids_.rows());
  std::uint64_t restored = 0;
  for (auto& list : index.lists_) {
    list.ids = r.ReadI64s();
    list.vectors = r.ReadFloats();
    if (list.vectors.size() != list.ids.size() * dim) {
      throw std::runtime_error("IvfFlatIndex::LoadFrom: list size mismatch");
    }
    if (index.quantized()) {
      // Codes are re-derived from the float entries (deterministic
      // encoding), so version-2 files carry no code payload.
      list.codes = CompressedStore(dim, opts.storage);
      for (std::size_t row = 0; row < list.ids.size(); ++row) {
        list.codes.AppendRow({list.vectors.data() + row * dim, dim});
      }
    }
    restored += list.ids.size();
  }
  if (restored != count) {
    throw std::runtime_error("IvfFlatIndex::LoadFrom: count mismatch");
  }
  index.count_ = count;
  index.trained_ = true;
  r.VerifyChecksum();
  return index;
}

std::string IvfFlatIndex::Describe() const {
  std::string desc = "ivf_flat(" + std::string(MetricName(options_.metric)) +
                     ",nlist=" + std::to_string(nlist()) +
                     ",nprobe=" + std::to_string(options_.nprobe);
  if (quantized()) {
    desc += ",storage=" + std::string(StorageLayoutName(options_.storage)) +
            ",rerank=" + std::to_string(options_.rerank_factor);
  }
  return desc + ",n=" + std::to_string(count_) + ")";
}

}  // namespace proximity
