#include "index/ivfpq_index.h"

#include <algorithm>
#include <stdexcept>

#include "common/serde.h"
#include "index/index_io.h"
#include "index/kmeans.h"
#include "obs/span.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {

IvfPqIndex::IvfPqIndex(std::size_t dim, IvfPqOptions options)
    : dim_(dim), options_(options), pq_(dim, options.pq),
      raw_vectors_(0, dim) {
  if (options_.metric != Metric::kL2) {
    throw std::invalid_argument("IvfPqIndex: only L2 is supported (ADC)");
  }
  if (options_.nlist == 0) {
    throw std::invalid_argument("IvfPqIndex: nlist must be > 0");
  }
}

void IvfPqIndex::Train(const Matrix& sample) {
  if (trained_) throw std::logic_error("IvfPqIndex: already trained");
  if (sample.dim() != dim_) {
    throw std::invalid_argument("IvfPqIndex::Train: dim mismatch");
  }
  KMeansOptions kopts;
  kopts.seed = options_.seed;
  centroids_ = RunKMeans(sample, options_.nlist, kopts).centroids;
  lists_.resize(centroids_.rows());
  pq_.Train(sample);
  trained_ = true;
}

VectorId IvfPqIndex::Add(std::span<const float> vec) {
  if (!trained_) throw std::logic_error("IvfPqIndex: train before Add");
  CheckDim(vec);
  const std::uint32_t list = NearestCentroid(centroids_, vec);
  const VectorId id = static_cast<VectorId>(count_++);
  auto& l = lists_[list];
  l.ids.push_back(id);
  const std::size_t off = l.codes.size();
  l.codes.resize(off + pq_.code_size());
  pq_.Encode(vec, l.codes.data() + off);
  if (options_.refine_factor > 0) raw_vectors_.AppendRow(vec);
  return id;
}

std::vector<Neighbor> IvfPqIndex::Search(std::span<const float> query,
                                         std::size_t k) const {
  if (!trained_) throw std::logic_error("IvfPqIndex: train before Search");
  CheckDim(query);
  if (k == 0 || count_ == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);

  const std::size_t nprobe = std::min(options_.nprobe, centroids_.rows());
  std::vector<Neighbor> probe_order =
      SelectTopK(Metric::kL2, query, centroids_.data(), centroids_.rows(),
                 dim_, nprobe);

  const std::vector<float> table = pq_.ComputeDistanceTable(query);
  const std::size_t code_size = pq_.code_size();

  const std::size_t adc_k =
      options_.refine_factor > 0 ? k * options_.refine_factor : k;
  TopK top(adc_k);
  for (const auto& probe : probe_order) {
    const auto& list = lists_[static_cast<std::size_t>(probe.id)];
    for (std::size_t r = 0; r < list.ids.size(); ++r) {
      const float d = pq_.AdcDistance(table, list.codes.data() + r * code_size);
      top.Push(list.ids[r], d);
    }
  }
  auto candidates = top.Take();
  if (options_.refine_factor == 0) return candidates;

  // Exact re-ranking of the ADC shortlist against the raw vectors.
  TopK refined(k);
  for (const auto& cand : candidates) {
    const float d = L2SquaredDistance(
        query, raw_vectors_.Row(static_cast<std::size_t>(cand.id)));
    refined.Push(cand.id, d);
  }
  return refined.Take();
}

void IvfPqIndex::SaveTo(std::ostream& os) const {
  if (!trained_) throw std::logic_error("IvfPqIndex: train before SaveTo");
  BinaryWriter w(os);
  WriteHeader(w, io_magic::kIvfPq, /*version=*/1);
  w.WriteU64(dim_);
  w.WriteU64(options_.nlist);
  w.WriteU64(options_.nprobe);
  w.WriteU64(options_.seed);
  w.WriteU64(options_.refine_factor);
  w.WriteU64(count_);
  WriteMatrix(w, centroids_);
  if (options_.refine_factor > 0) WriteMatrix(w, raw_vectors_);
  w.Finish();
  // The product quantizer is a nested self-verifying block.
  pq_.SaveTo(os);
  BinaryWriter lists_writer(os);
  for (const auto& list : lists_) {
    lists_writer.WriteI64s(list.ids);
    lists_writer.WriteU8s(list.codes);
  }
  lists_writer.Finish();
}

IvfPqIndex IvfPqIndex::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  ReadHeader(r, io_magic::kIvfPq, /*max_version=*/1);
  const std::uint64_t dim = r.ReadU64();
  IvfPqOptions opts;
  opts.nlist = r.ReadU64();
  opts.nprobe = r.ReadU64();
  opts.seed = r.ReadU64();
  opts.refine_factor = r.ReadU64();
  const std::uint64_t count = r.ReadU64();
  Matrix centroids = ReadMatrix(r);
  Matrix raw(0, dim);
  if (opts.refine_factor > 0) {
    raw = ReadMatrix(r);
    if (raw.rows() != count) {
      throw std::runtime_error("IvfPqIndex::LoadFrom: raw vector mismatch");
    }
  }
  r.VerifyChecksum();

  ProductQuantizer pq = ProductQuantizer::LoadFrom(is);
  if (pq.dim() != dim) {
    throw std::runtime_error("IvfPqIndex::LoadFrom: pq dimension mismatch");
  }
  opts.pq.m = pq.m();
  opts.pq.ksub = pq.ksub();

  IvfPqIndex index(dim, opts);
  index.centroids_ = std::move(centroids);
  index.raw_vectors_ = std::move(raw);
  index.pq_ = std::move(pq);
  index.lists_.resize(index.centroids_.rows());
  BinaryReader lists_reader(is);
  std::uint64_t restored = 0;
  for (auto& list : index.lists_) {
    list.ids = lists_reader.ReadI64s();
    list.codes = lists_reader.ReadU8s();
    if (list.codes.size() != list.ids.size() * index.pq_.code_size()) {
      throw std::runtime_error("IvfPqIndex::LoadFrom: code size mismatch");
    }
    restored += list.ids.size();
  }
  if (restored != count) {
    throw std::runtime_error("IvfPqIndex::LoadFrom: count mismatch");
  }
  index.count_ = count;
  index.trained_ = true;
  lists_reader.VerifyChecksum();
  return index;
}

std::string IvfPqIndex::Describe() const {
  return "ivf_pq(nlist=" + std::to_string(centroids_.rows()) +
         ",nprobe=" + std::to_string(options_.nprobe) +
         ",m=" + std::to_string(pq_.m()) + ",n=" + std::to_string(count_) +
         ")";
}

}  // namespace proximity
