// Product quantization (Jégou et al., cited as [18] in §2.2).
//
// Splits each vector into m sub-vectors and quantizes each with its own
// 256-entry codebook; asymmetric distance computation (ADC) then evaluates
// approximate distances via per-subspace lookup tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "vecmath/matrix.h"

namespace proximity {

struct PqOptions {
  std::size_t m = 8;          // number of subquantizers; must divide dim
  std::size_t ksub = 256;     // centroids per subquantizer (codes are u8)
  std::size_t train_iterations = 15;
  std::uint64_t seed = 42;
};

class ProductQuantizer {
 public:
  ProductQuantizer(std::size_t dim, PqOptions options = {});

  void Train(const Matrix& sample);
  bool trained() const noexcept { return trained_; }

  std::size_t dim() const noexcept { return dim_; }
  std::size_t m() const noexcept { return options_.m; }
  std::size_t ksub() const noexcept { return options_.ksub; }
  std::size_t dsub() const noexcept { return dim_ / options_.m; }
  std::size_t code_size() const noexcept { return options_.m; }

  /// Encodes `vec` into m bytes (one centroid id per subspace).
  void Encode(std::span<const float> vec, std::uint8_t* code) const;

  /// Reconstructs an approximation of the encoded vector.
  void Decode(const std::uint8_t* code, std::span<float> out) const;

  /// Precomputes the query's squared-L2 distance to every centroid of every
  /// subspace: table[sub * ksub + centroid]. ADC then sums m lookups.
  std::vector<float> ComputeDistanceTable(std::span<const float> query) const;

  /// ADC distance of one code against a precomputed table.
  float AdcDistance(const std::vector<float>& table,
                    const std::uint8_t* code) const noexcept;

  /// Exact quantization error |x - decode(encode(x))|^2, for tests.
  float ReconstructionError(std::span<const float> vec) const;

  /// Centroid `c` of subquantizer `sub` (dsub floats).
  std::span<const float> Centroid(std::size_t sub, std::size_t c) const;

  void SaveTo(std::ostream& os) const;
  static ProductQuantizer LoadFrom(std::istream& is);

 private:
  std::size_t dim_;
  PqOptions options_;
  bool trained_ = false;
  // codebooks_[sub] is a (ksub x dsub) matrix.
  std::vector<Matrix> codebooks_;
};

}  // namespace proximity
