// Hierarchical Navigable Small World graph index (Malkov & Yashunin,
// cited as [17] in the paper; FAISS-HNSW is the index used for the MMLU
// benchmark, §4.2).
//
// Full implementation: geometric level assignment, greedy descent through
// upper layers, best-first ef-bounded search on the base layer, and
// heuristic neighbor selection (Algorithm 4 of the HNSW paper) during
// construction.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "index/vector_index.h"
#include "vecmath/compressed_store.h"

namespace proximity {

struct HnswOptions {
  Metric metric = Metric::kL2;
  /// Max links per node on layers > 0; layer 0 allows 2*M.
  std::size_t M = 16;
  /// Beam width during construction.
  std::size_t ef_construction = 200;
  /// Default beam width during search (raised to k if smaller).
  std::size_t ef_search = 64;
  std::uint64_t seed = 42;
  /// Representation driving graph traversal (DESIGN.md §11): sq8/sq4
  /// expand neighbors from quantized codes and rerank the final ef
  /// candidates against the float vectors; kFloat32 is the classic
  /// all-float walk. The over-fetch is ef itself, so no rerank factor.
  StorageLayout storage = StorageLayout::kFloat32;
};

class HnswIndex final : public VectorIndex {
 public:
  HnswIndex(std::size_t dim, HnswOptions options = {});

  std::size_t dim() const noexcept override { return vectors_.dim(); }
  Metric metric() const noexcept override { return options_.metric; }
  std::size_t size() const noexcept override { return vectors_.rows(); }

  /// Not thread-safe; build the graph single-threaded, then Search freely.
  VectorId Add(std::span<const float> vec) override;

  std::vector<Neighbor> Search(std::span<const float> query,
                               std::size_t k) const override;
  std::string Describe() const override;

  /// Persists the full graph (vectors, levels, links, entry point, and
  /// the level-assignment RNG state, so inserts resume identically).
  /// Returned by pointer: the index owns a mutex and is not movable.
  void SaveTo(std::ostream& os) const override;
  static std::unique_ptr<HnswIndex> LoadFrom(std::istream& is);

  void set_ef_search(std::size_t ef) noexcept { options_.ef_search = ef; }
  std::size_t ef_search() const noexcept { return options_.ef_search; }
  StorageLayout storage() const noexcept { return options_.storage; }

  /// Graph introspection for tests.
  int max_level() const noexcept { return max_level_; }
  int NodeLevel(VectorId id) const noexcept {
    return levels_[static_cast<std::size_t>(id)];
  }
  const std::vector<std::uint32_t>& Links(VectorId id, int level) const {
    return links_[static_cast<std::size_t>(id)][static_cast<std::size_t>(
        level)];
  }

 private:
  using NodeId = std::uint32_t;

  float Dist(std::span<const float> a, NodeId b) const noexcept;

  bool quantized() const noexcept {
    return options_.storage != StorageLayout::kFloat32;
  }

  /// Traversal distance of one node: quantized codes when enabled,
  /// float row otherwise. Entry points of greedy descent / beam search.
  float TraversalDist(std::span<const float> query, NodeId b) const;

  /// Fused neighbor-expansion distances: compressed GatherScan when
  /// quantized, float GatherDistance otherwise.
  void ExpandDistances(std::span<const float> query, const NodeId* ids,
                       std::size_t count, float* out) const;

  /// Best-first search on one layer; returns up to ef closest nodes,
  /// unsorted (heap order). `visited` must be a fresh epoch.
  std::vector<Neighbor> SearchLayer(std::span<const float> query,
                                    NodeId entry, float entry_dist,
                                    std::size_t ef, int level,
                                    std::vector<std::uint32_t>& visited,
                                    std::uint32_t epoch) const;

  /// Greedy 1-NN descent on one layer starting from `entry`.
  void GreedyStep(std::span<const float> query, NodeId& entry,
                  float& entry_dist, int level) const;

  /// HNSW Algorithm 4: prunes `candidates` (sorted ascending) to at most
  /// `max_links` diverse neighbors.
  std::vector<NodeId> SelectNeighborsHeuristic(
      std::vector<Neighbor> candidates, std::size_t max_links) const;

  std::size_t MaxLinksFor(int level) const noexcept {
    return level == 0 ? options_.M * 2 : options_.M;
  }

  /// Re-prunes `node`'s link list on `level` after adding a reverse edge.
  void ShrinkLinks(NodeId node, int level);

  // Visited-set pool: epoch-stamped arrays reused across searches.
  struct VisitedGuard;
  std::pair<std::vector<std::uint32_t>*, std::uint32_t> AcquireVisited() const;
  void ReleaseVisited(std::vector<std::uint32_t>* v) const;

  HnswOptions options_;
  Matrix vectors_;
  // Quantized mirror of vectors_ for graph traversal (empty for
  // kFloat32); appended in lockstep with vectors_.
  CompressedStore store_;
  std::vector<int> levels_;
  // links_[node][level] -> neighbor ids; sized to node's level + 1.
  std::vector<std::vector<std::vector<NodeId>>> links_;
  NodeId entry_point_ = 0;
  int max_level_ = -1;
  std::uint64_t level_rng_state_;
  double level_mult_;

  mutable std::mutex visited_mu_;
  mutable std::vector<std::unique_ptr<std::vector<std::uint32_t>>>
      visited_pool_;
  mutable std::uint32_t visited_epoch_ = 0;
};

}  // namespace proximity
