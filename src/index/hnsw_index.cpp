#include "index/hnsw_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.h"
#include "common/serde.h"
#include "index/index_io.h"
#include "obs/scan_stats.h"
#include "obs/span.h"
#include "vecmath/kernels.h"
#include "vecmath/topk.h"

namespace proximity {

namespace {
// Min-heap by distance for the candidate frontier.
struct NeighborFartherFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.distance > b.distance;
  }
};
// Max-heap by distance for the result set (worst on top).
struct NeighborCloserFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.distance < b.distance;
  }
};
}  // namespace

HnswIndex::HnswIndex(std::size_t dim, HnswOptions options)
    : options_(options),
      vectors_(0, dim),
      level_rng_state_(SplitMix64(options.seed ^ 0x68e5737744a1fULL)),
      level_mult_(1.0 / std::log(static_cast<double>(options.M))) {
  if (options_.M < 2) throw std::invalid_argument("HnswIndex: M must be >= 2");
  if (options_.ef_construction < options_.M) {
    options_.ef_construction = options_.M;
  }
  if (quantized()) store_ = CompressedStore(dim, options_.storage);
}

float HnswIndex::Dist(std::span<const float> a, NodeId b) const noexcept {
  return Distance(options_.metric, a, vectors_.Row(b));
}

float HnswIndex::TraversalDist(std::span<const float> query, NodeId b) const {
  return quantized() ? store_.RowDistance(options_.metric, query, b)
                     : Dist(query, b);
}

void HnswIndex::ExpandDistances(std::span<const float> query,
                                const NodeId* ids, std::size_t count,
                                float* out) const {
  if (quantized()) {
    store_.GatherScan(options_.metric, query, ids, count, out);
    obs::ScanPrimaryBytes(count * store_.block_stride());
  } else {
    GatherDistance(options_.metric, query, vectors_.data(), vectors_.dim(),
                   ids, count, out);
  }
}

std::pair<std::vector<std::uint32_t>*, std::uint32_t>
HnswIndex::AcquireVisited() const {
  std::lock_guard lock(visited_mu_);
  ++visited_epoch_;
  if (visited_epoch_ == 0) {
    for (auto& v : visited_pool_) std::fill(v->begin(), v->end(), 0u);
    visited_epoch_ = 1;
  }
  std::vector<std::uint32_t>* v;
  if (!visited_pool_.empty()) {
    v = visited_pool_.back().release();
    visited_pool_.pop_back();
  } else {
    v = new std::vector<std::uint32_t>();
  }
  if (v->size() < vectors_.rows()) v->resize(vectors_.rows(), 0u);
  return {v, visited_epoch_};
}

void HnswIndex::ReleaseVisited(std::vector<std::uint32_t>* v) const {
  std::lock_guard lock(visited_mu_);
  visited_pool_.emplace_back(v);
}

void HnswIndex::GreedyStep(std::span<const float> query, NodeId& entry,
                           float& entry_dist, int level) const {
  std::vector<float> dist;
  bool improved = true;
  while (improved) {
    improved = false;
    const auto& nbrs = links_[entry][static_cast<std::size_t>(level)];
    if (nbrs.empty()) return;
    // One fused gather per hop instead of a scalar distance per neighbor.
    dist.resize(nbrs.size());
    ExpandDistances(query, nbrs.data(), nbrs.size(), dist.data());
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (dist[j] < entry_dist) {
        entry_dist = dist[j];
        entry = nbrs[j];
        improved = true;
      }
    }
  }
}

std::vector<Neighbor> HnswIndex::SearchLayer(
    std::span<const float> query, NodeId entry, float entry_dist,
    std::size_t ef, int level, std::vector<std::uint32_t>& visited,
    std::uint32_t epoch) const {
  std::vector<Neighbor> frontier;   // min-heap: closest candidate first
  std::vector<Neighbor> results;    // max-heap: worst result first
  std::vector<NodeId> fresh;        // unvisited neighbors of the popped node
  std::vector<float> fresh_dist;

  visited[entry] = epoch;
  frontier.push_back({static_cast<VectorId>(entry), entry_dist});
  results.push_back({static_cast<VectorId>(entry), entry_dist});

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), NeighborFartherFirst{});
    const Neighbor cur = frontier.back();
    frontier.pop_back();

    if (results.size() >= ef && cur.distance > results.front().distance) {
      break;  // closest unexplored candidate is worse than the worst result
    }

    // Expansion is the hot loop of HNSW search: collect the unvisited
    // neighbors first, then compute their distances in one fused gather
    // (prefetched, bit-identical to the per-neighbor kernel).
    const auto& nbrs =
        links_[static_cast<std::size_t>(cur.id)][static_cast<std::size_t>(
            level)];
    fresh.clear();
    for (NodeId nb : nbrs) {
      if (visited[nb] == epoch) continue;
      visited[nb] = epoch;
      fresh.push_back(nb);
    }
    if (fresh.empty()) continue;
    fresh_dist.resize(fresh.size());
    ExpandDistances(query, fresh.data(), fresh.size(), fresh_dist.data());
    for (std::size_t j = 0; j < fresh.size(); ++j) {
      const NodeId nb = fresh[j];
      const float d = fresh_dist[j];
      if (results.size() < ef || d < results.front().distance) {
        frontier.push_back({static_cast<VectorId>(nb), d});
        std::push_heap(frontier.begin(), frontier.end(),
                       NeighborFartherFirst{});
        results.push_back({static_cast<VectorId>(nb), d});
        std::push_heap(results.begin(), results.end(), NeighborCloserFirst{});
        if (results.size() > ef) {
          std::pop_heap(results.begin(), results.end(), NeighborCloserFirst{});
          results.pop_back();
        }
      }
    }
  }
  return results;
}

std::vector<HnswIndex::NodeId> HnswIndex::SelectNeighborsHeuristic(
    std::vector<Neighbor> candidates, std::size_t max_links) const {
  std::sort(candidates.begin(), candidates.end(), NeighborCloser{});
  std::vector<NodeId> selected;
  selected.reserve(max_links);
  for (const auto& cand : candidates) {
    if (selected.size() >= max_links) break;
    // Keep `cand` only if it is closer to the query than to every already
    // selected neighbor — this spreads links across directions.
    bool keep = true;
    const auto cand_vec = vectors_.Row(static_cast<std::size_t>(cand.id));
    for (NodeId s : selected) {
      const float d_cs = Distance(options_.metric, cand_vec, vectors_.Row(s));
      if (d_cs < cand.distance) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(static_cast<NodeId>(cand.id));
  }
  // Backfill with the closest pruned candidates if diversity left slots
  // unused (keepPrunedConnections from the reference implementation).
  if (selected.size() < max_links) {
    for (const auto& cand : candidates) {
      if (selected.size() >= max_links) break;
      const NodeId id = static_cast<NodeId>(cand.id);
      if (std::find(selected.begin(), selected.end(), id) == selected.end()) {
        selected.push_back(id);
      }
    }
  }
  return selected;
}

void HnswIndex::ShrinkLinks(NodeId node, int level) {
  auto& list = links_[node][static_cast<std::size_t>(level)];
  const std::size_t max_links = MaxLinksFor(level);
  if (list.size() <= max_links) return;
  const auto node_vec = vectors_.Row(node);
  std::vector<Neighbor> candidates;
  candidates.reserve(list.size());
  for (NodeId nb : list) {
    candidates.push_back({static_cast<VectorId>(nb), Dist(node_vec, nb)});
  }
  list = SelectNeighborsHeuristic(std::move(candidates), max_links);
}

VectorId HnswIndex::Add(std::span<const float> vec) {
  CheckDim(vec);
  const NodeId id = static_cast<NodeId>(vectors_.rows());
  vectors_.AppendRow(vec);
  // Quantized traversal mirror; the float row stays authoritative for
  // neighbor selection and the final rerank.
  if (quantized()) store_.AppendRow(vec);

  // Geometric level assignment: floor(-ln(U) * mult).
  level_rng_state_ = SplitMix64(level_rng_state_);
  const double u =
      (static_cast<double>(level_rng_state_ >> 11) + 0.5) * 0x1.0p-53;
  const int level = static_cast<int>(-std::log(u) * level_mult_);

  levels_.push_back(level);
  links_.emplace_back(static_cast<std::size_t>(level) + 1);

  if (max_level_ < 0) {  // first node
    entry_point_ = id;
    max_level_ = level;
    return static_cast<VectorId>(id);
  }

  const auto query = vectors_.Row(id);
  NodeId cur = entry_point_;
  float cur_dist = TraversalDist(query, cur);

  // Greedy descent through layers above the new node's level.
  for (int l = max_level_; l > level; --l) {
    GreedyStep(query, cur, cur_dist, l);
  }

  auto [visited, epoch0] = AcquireVisited();
  std::uint32_t epoch = epoch0;

  for (int l = std::min(level, max_level_); l >= 0; --l) {
    auto candidates = SearchLayer(query, cur, cur_dist,
                                  options_.ef_construction, l, *visited,
                                  epoch);
    // Each layer needs a fresh visited epoch; bump locally (safe: epochs are
    // only compared for equality within this search).
    {
      std::lock_guard lock(visited_mu_);
      epoch = ++visited_epoch_;
      if (visited_epoch_ == 0) {
        std::fill(visited->begin(), visited->end(), 0u);
        epoch = visited_epoch_ = 1;
      }
    }

    auto selected =
        SelectNeighborsHeuristic(candidates, MaxLinksFor(l));
    links_[id][static_cast<std::size_t>(l)] = selected;
    for (NodeId nb : selected) {
      links_[nb][static_cast<std::size_t>(l)].push_back(id);
      ShrinkLinks(nb, l);
    }

    // Continue the descent from the closest candidate found on this layer.
    for (const auto& c : candidates) {
      if (c.distance < cur_dist) {
        cur_dist = c.distance;
        cur = static_cast<NodeId>(c.id);
      }
    }
  }
  ReleaseVisited(visited);

  if (level > max_level_) {
    entry_point_ = id;
    max_level_ = level;
  }
  return static_cast<VectorId>(id);
}

std::vector<Neighbor> HnswIndex::Search(std::span<const float> query,
                                        std::size_t k) const {
  CheckDim(query);
  if (k == 0 || vectors_.rows() == 0) return {};
  const obs::Span span(obs::Stage::kIndexSearch);

  NodeId cur = entry_point_;
  float cur_dist = TraversalDist(query, cur);
  for (int l = max_level_; l >= 1; --l) {
    GreedyStep(query, cur, cur_dist, l);
  }

  const std::size_t ef = std::max(options_.ef_search, k);
  auto [visited, epoch] = AcquireVisited();
  auto results = SearchLayer(query, cur, cur_dist, ef, 0, *visited, epoch);
  ReleaseVisited(visited);

  if (quantized()) {
    // The beam ran on compressed codes; rerank the surviving ef
    // candidates against the float rows before the final cut. The
    // over-fetch is ef itself (DESIGN.md §11).
    std::vector<NodeId> ids;
    ids.reserve(results.size());
    for (const auto& nb : results) {
      ids.push_back(static_cast<NodeId>(nb.id));
    }
    std::vector<float> exact(ids.size());
    GatherDistance(options_.metric, query, vectors_.data(), vectors_.dim(),
                   ids.data(), ids.size(), exact.data());
    for (std::size_t j = 0; j < ids.size(); ++j) {
      results[j].distance = exact[j];
    }
    obs::ScanRerankBytes(ids.size() * vectors_.dim() * sizeof(float));
    obs::ScanCandidates(ids.size());
    obs::ScanQuery(static_cast<double>(ids.size()) /
                   static_cast<double>(vectors_.rows()));
  }

  std::sort(results.begin(), results.end(), NeighborCloser{});
  if (results.size() > k) results.resize(k);
  return results;
}

void HnswIndex::SaveTo(std::ostream& os) const {
  BinaryWriter w(os);
  // Version 2 appends the storage layout; float32 graphs keep writing
  // byte-exact version-1 files. Codes are re-derived on load.
  WriteHeader(w, io_magic::kHnswIndex, /*version=*/quantized() ? 2 : 1);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU64(options_.M);
  w.WriteU64(options_.ef_construction);
  w.WriteU64(options_.ef_search);
  w.WriteU64(options_.seed);
  if (quantized()) {
    w.WriteU32(static_cast<std::uint32_t>(options_.storage));
  }
  w.WriteU64(level_rng_state_);
  w.WriteU32(entry_point_);
  w.WriteI64(max_level_);
  WriteMatrix(w, vectors_);
  w.WriteU64(levels_.size());
  for (int level : levels_) w.WriteI64(level);
  for (std::size_t node = 0; node < links_.size(); ++node) {
    w.WriteU64(links_[node].size());
    for (const auto& level_links : links_[node]) {
      w.WriteU32s(level_links);
    }
  }
  w.Finish();
}

std::unique_ptr<HnswIndex> HnswIndex::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  const std::uint32_t version =
      ReadHeader(r, io_magic::kHnswIndex, /*max_version=*/2);
  HnswOptions opts;
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.M = r.ReadU64();
  opts.ef_construction = r.ReadU64();
  opts.ef_search = r.ReadU64();
  opts.seed = r.ReadU64();
  if (version >= 2) {
    opts.storage = static_cast<StorageLayout>(r.ReadU32());
  }
  const std::uint64_t rng_state = r.ReadU64();
  const NodeId entry = r.ReadU32();
  const auto max_level = static_cast<int>(r.ReadI64());
  Matrix vectors = ReadMatrix(r);

  auto index = std::make_unique<HnswIndex>(vectors.dim(), opts);
  index->level_rng_state_ = rng_state;
  index->entry_point_ = entry;
  index->max_level_ = max_level;
  if (index->quantized()) {
    // Deterministic re-encode: the file carries no code payload.
    for (std::size_t row = 0; row < vectors.rows(); ++row) {
      index->store_.AppendRow(vectors.Row(row));
    }
  }
  index->vectors_ = std::move(vectors);

  const std::uint64_t n = r.ReadU64();
  if (n != index->vectors_.rows()) {
    throw std::runtime_error("HnswIndex::LoadFrom: node count mismatch");
  }
  index->levels_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    index->levels_.push_back(static_cast<int>(r.ReadI64()));
  }
  index->links_.resize(n);
  for (std::uint64_t node = 0; node < n; ++node) {
    const std::uint64_t level_count = r.ReadU64();
    if (level_count !=
        static_cast<std::uint64_t>(index->levels_[node]) + 1) {
      throw std::runtime_error("HnswIndex::LoadFrom: level count mismatch");
    }
    index->links_[node].resize(level_count);
    for (auto& level_links : index->links_[node]) {
      level_links = r.ReadU32s();
      for (NodeId nb : level_links) {
        if (nb >= n) {
          throw std::runtime_error("HnswIndex::LoadFrom: dangling link");
        }
      }
    }
  }
  r.VerifyChecksum();
  return index;
}

std::string HnswIndex::Describe() const {
  std::string desc = "hnsw(" + std::string(MetricName(options_.metric)) +
                     ",M=" + std::to_string(options_.M) +
                     ",efc=" + std::to_string(options_.ef_construction) +
                     ",efs=" + std::to_string(options_.ef_search);
  if (quantized()) {
    desc += ",storage=" + std::string(StorageLayoutName(options_.storage));
  }
  return desc + ",n=" + std::to_string(size()) + ")";
}

}  // namespace proximity
