#include "index/index_factory.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "common/rng.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_flat_index.h"
#include "index/ivfpq_index.h"
#include "index/mutable_index.h"
#include "index/vamana_index.h"

namespace proximity {

namespace {

/// Deterministic subsample of up to `max_rows` corpus rows for training.
Matrix TrainingSample(const Matrix& corpus, std::size_t max_rows,
                      std::uint64_t seed) {
  if (corpus.rows() <= max_rows) return corpus;
  Rng rng(seed);
  std::vector<std::size_t> ids(corpus.rows());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  rng.Shuffle(ids);
  ids.resize(max_rows);
  Matrix sample(0, corpus.dim());
  sample.Reserve(max_rows);
  for (std::size_t id : ids) sample.AppendRow(corpus.Row(id));
  return sample;
}

}  // namespace

std::unique_ptr<VectorIndex> BuildIndex(const IndexSpec& spec,
                                        const Matrix& corpus) {
  const std::size_t dim = corpus.dim();
  std::unique_ptr<VectorIndex> index;

  StorageLayout storage = StorageLayout::kFloat32;
  if (!ParseStorageLayout(spec.storage, &storage)) {
    throw std::invalid_argument("BuildIndex: unknown storage layout '" +
                                spec.storage + "'");
  }

  if (spec.kind == "flat") {
    FlatIndexOptions opts;
    opts.metric = spec.metric;
    opts.storage = storage;
    opts.rerank_factor = spec.rerank_factor;
    index = std::make_unique<FlatIndex>(dim, opts);
  } else if (spec.kind == "hnsw") {
    HnswOptions opts;
    opts.metric = spec.metric;
    opts.M = spec.hnsw_m;
    opts.ef_construction = spec.hnsw_ef_construction;
    opts.ef_search = spec.hnsw_ef_search;
    opts.seed = spec.seed;
    opts.storage = storage;
    index = std::make_unique<HnswIndex>(dim, opts);
  } else if (spec.kind == "ivf_flat") {
    IvfFlatOptions opts;
    opts.metric = spec.metric;
    opts.nlist = spec.ivf_nlist;
    opts.nprobe = spec.ivf_nprobe;
    opts.seed = spec.seed;
    opts.storage = storage;
    opts.rerank_factor = spec.rerank_factor;
    auto ivf = std::make_unique<IvfFlatIndex>(dim, opts);
    ivf->Train(TrainingSample(corpus, std::max<std::size_t>(spec.ivf_nlist * 64,
                                                            4096),
                              spec.seed));
    index = std::move(ivf);
  } else if (spec.kind == "ivf_pq") {
    IvfPqOptions opts;
    opts.metric = spec.metric;
    opts.nlist = spec.ivf_nlist;
    opts.nprobe = spec.ivf_nprobe;
    opts.pq.m = spec.pq_m;
    opts.refine_factor = spec.pq_refine_factor;
    opts.seed = spec.seed;
    auto ivfpq = std::make_unique<IvfPqIndex>(dim, opts);
    ivfpq->Train(TrainingSample(corpus,
                                std::max<std::size_t>(spec.ivf_nlist * 64,
                                                      4096),
                                spec.seed));
    index = std::move(ivfpq);
  } else if (spec.kind == "vamana") {
    VamanaOptions opts;
    opts.metric = spec.metric;
    opts.max_degree = spec.vamana_degree;
    opts.build_beam = spec.vamana_beam;
    opts.search_beam = spec.vamana_beam;
    opts.alpha = spec.vamana_alpha;
    opts.seed = spec.seed;
    opts.storage = storage;
    index = std::make_unique<VamanaIndex>(dim, opts);
  } else if (spec.kind == "mutable") {
    if (storage != StorageLayout::kFloat32) {
      throw std::invalid_argument(
          "BuildIndex: mutable index supports storage=float32 only");
    }
    MutableGraphOptions opts;
    opts.metric = spec.metric;
    opts.max_degree = spec.vamana_degree;
    opts.build_beam = spec.vamana_beam;
    opts.search_beam = spec.vamana_beam;
    opts.alpha = spec.vamana_alpha;
    opts.seed = spec.seed;
    index = std::make_unique<MutableGraphIndex>(dim, opts);
  } else {
    throw std::invalid_argument("BuildIndex: unknown index kind '" +
                                spec.kind + "'");
  }

  LogInfo("building {} over {} vectors (dim {})", spec.kind, corpus.rows(),
          dim);
  index->AddBatch(corpus);
  return index;
}

}  // namespace proximity
