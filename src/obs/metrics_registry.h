// Process-wide metrics registry with a lock-free record path.
//
// Design (DESIGN.md §7): the registry owns one Shard per recording thread.
// Counters and histogram buckets are plain relaxed atomics inside the
// calling thread's shard — the record path takes no lock and shares no
// cache line with other writers, so it can sit inside the SIMD-hot cache
// scan and index search loops without perturbing them. Snapshot() merges
// all shards under the registry mutex; totals are exact once recording
// threads have quiesced (joined or stopped issuing queries) and
// monotonically approximate while they are still running.
//
// Histograms reuse the LatencyHistogram bucket layout from common/stats.h
// (64 log buckets per decade), so shard buckets merge losslessly into a
// LatencyHistogram via MergeBuckets().
//
// Compile-time gating: the `PROXIMITY_OBS` CMake option sets
// PROXIMITY_OBS_ENABLED. When 0, the instrumentation vehicles — Span and
// the Counter/Gauge/Histogram handles below — compile to no-ops, so the
// instrumented hot paths carry zero overhead; the registry class itself
// still links and returns empty snapshots.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/stage.h"

#ifndef PROXIMITY_OBS_ENABLED
#define PROXIMITY_OBS_ENABLED 1
#endif

namespace proximity::obs {

using MetricId = std::uint32_t;

/// Returned when a registry is full; recording against it is a no-op.
inline constexpr MetricId kInvalidMetric = ~MetricId{0};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  LatencyHistogram histogram;
};

/// Point-in-time merge of every shard, in registration order.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Lookup helpers; counters/gauges return 0 and histograms null when the
  /// name was never registered.
  std::uint64_t CounterValue(std::string_view name) const noexcept;
  double GaugeValue(std::string_view name) const noexcept;
  const LatencyHistogram* FindHistogram(std::string_view name) const noexcept;

  /// True when no metric holds a recorded value (all counters zero, all
  /// gauges zero, all histograms empty) — the PROXIMITY_OBS=OFF shape.
  bool Empty() const noexcept;
};

class MetricsRegistry {
 public:
  /// Shards are fixed-capacity so the record path never reallocates under
  /// a concurrent Snapshot(). Registration past these limits returns
  /// kInvalidMetric (recording against it is a safe no-op).
  static constexpr std::size_t kMaxCounters = 192;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 96;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Name -> id registration; idempotent per name (cold path, mutex).
  MetricId Counter(std::string_view name);
  MetricId Gauge(std::string_view name);
  MetricId Histogram(std::string_view name);

  /// Record paths: lock-free, relaxed atomics in the caller's shard.
  void Add(MetricId counter, std::uint64_t delta = 1) noexcept;
  void Record(MetricId histogram, Nanos ns) noexcept;
  /// Convenience for the pre-registered `stage.<name>_ns` histograms.
  void RecordStage(Stage stage, Nanos ns) noexcept;

  /// Gauges are process-level set-semantics values (occupancy, τ); they
  /// live in the registry, not in shards (last write wins).
  void GaugeSet(MetricId gauge, double value) noexcept;
  void GaugeAdd(MetricId gauge, double delta) noexcept;

  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter, gauge and histogram (metric names survive).
  /// Exact only once recording threads have quiesced.
  void Reset() noexcept;

  MetricId StageHistogramId(Stage stage) const noexcept {
    return stage_hists_[static_cast<std::size_t>(stage)];
  }

  /// The process-wide registry every Span and handle records into.
  static MetricsRegistry& Default();

 private:
  struct HistShard {
    std::array<std::atomic<std::uint64_t>, LatencyHistogram::kNumBuckets>
        buckets{};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<Nanos> min_ns{std::numeric_limits<Nanos>::max()};
    std::atomic<Nanos> max_ns{0};
  };

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    /// Allocated lazily by the owning thread on first record; read by
    /// Snapshot() with acquire loads.
    std::array<std::atomic<HistShard*>, kMaxHistograms> hists{};
    ~Shard();
  };

  Shard& LocalShard() noexcept;
  MetricId RegisterIn(std::vector<std::string>& names, std::size_t capacity,
                      std::string_view name);

  const std::uint64_t uid_;  // never reused; keys the thread-local cache

  mutable std::mutex mu_;  // guards names and the shard list (cold paths)
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::array<MetricId, kNumStages> stage_hists_{};
};

/// Instrumentation handles: name-resolved once (thread-safe static-local
/// friendly), recording into the default registry. With
/// PROXIMITY_OBS_ENABLED=0 they are empty structs and every call inlines
/// to nothing — the testable zero-cost claim.
#if PROXIMITY_OBS_ENABLED

class CounterHandle {
 public:
  explicit CounterHandle(std::string_view name)
      : id_(MetricsRegistry::Default().Counter(name)) {}
  void Inc(std::uint64_t delta = 1) const noexcept {
    MetricsRegistry::Default().Add(id_, delta);
  }

 private:
  MetricId id_;
};

class GaugeHandle {
 public:
  explicit GaugeHandle(std::string_view name)
      : id_(MetricsRegistry::Default().Gauge(name)) {}
  void Set(double value) const noexcept {
    MetricsRegistry::Default().GaugeSet(id_, value);
  }
  void Add(double delta) const noexcept {
    MetricsRegistry::Default().GaugeAdd(id_, delta);
  }

 private:
  MetricId id_;
};

class HistogramHandle {
 public:
  explicit HistogramHandle(std::string_view name)
      : id_(MetricsRegistry::Default().Histogram(name)) {}
  void Record(Nanos ns) const noexcept {
    MetricsRegistry::Default().Record(id_, ns);
  }

 private:
  MetricId id_;
};

#else  // PROXIMITY_OBS_ENABLED == 0: no-op handles

class CounterHandle {
 public:
  explicit CounterHandle(std::string_view) noexcept {}
  void Inc(std::uint64_t = 1) const noexcept {}
};

class GaugeHandle {
 public:
  explicit GaugeHandle(std::string_view) noexcept {}
  void Set(double) const noexcept {}
  void Add(double) const noexcept {}
};

class HistogramHandle {
 public:
  explicit HistogramHandle(std::string_view) noexcept {}
  void Record(Nanos) const noexcept {}
};

#endif  // PROXIMITY_OBS_ENABLED

}  // namespace proximity::obs
