// End-to-end request tracing (DESIGN.md §12).
//
// A TraceContext (64-bit trace id + parent span id) rides along with a
// request from the client through the net front-end, the BatchingDriver's
// tenant queues and batch stages, down to the cache probes and index
// scans. Every obs::Span whose thread carries an active context also
// emits a TraceSpanRecord — a causally-linked span reusing the 8-stage
// taxonomy — into a per-thread lock-free ring buffer (seqlock slots, so
// a collector on another thread reads them without tearing and without
// TSan complaints). Batch-wide work (one EmbedBatch / SearchBatch call
// serving many requests) is attributed to each live request explicitly
// via EmitChildSpan with the shared timings.
//
// Sampling is tail-based: the decision happens at COMPLETION time, when
// the outcome is known. Every shed/expired/error request is kept, plus
// the slowest ~1% of OK completions (threshold = a running quantile of
// completion durations); the boring majority is dropped without ever
// being assembled. Kept traces are bounded (a small deque) and exported
// as Chrome/Perfetto `trace_event` JSON so a capture opens directly in
// ui.perfetto.dev.
//
// With PROXIMITY_OBS_ENABLED=0 every function here is an inline no-op
// (ids stay 0, contexts never activate, the collector keeps nothing),
// so the traced hot paths pay exactly what they paid before.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/stage.h"

#ifndef PROXIMITY_OBS_ENABLED
#define PROXIMITY_OBS_ENABLED 1
#endif

namespace proximity::obs {

/// Operation taxonomy of trace spans: the 8 pipeline stages (same values
/// as obs::Stage) plus the request-scoped pseudo-stages only traces see.
enum class TraceOp : std::uint8_t {
  kEmbed = 0,
  kCacheLookup,
  kCacheScan,
  kIndexSearch,
  kPrompt,
  kGenerate,
  kEvict,
  kInsert,
  /// Server-side root: request receipt -> response serialization.
  kRequest = 8,
  /// Admission-queue wait inside the BatchingDriver.
  kQueue = 9,
  /// Client-side Call(): request serialization -> response parsed.
  kClientCall = 10,
};

inline constexpr std::size_t kNumTraceOps = 11;

constexpr TraceOp TraceOpFromStage(Stage stage) noexcept {
  return static_cast<TraceOp>(static_cast<std::uint8_t>(stage));
}

/// Short lowercase op name ("embed", ..., "request", "queue",
/// "client_call").
constexpr const char* TraceOpName(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::kRequest: return "request";
    case TraceOp::kQueue: return "queue";
    case TraceOp::kClientCall: return "client_call";
    default:
      return StageName(static_cast<Stage>(op));
  }
}

/// The propagated context: which trace a piece of work belongs to and
/// which span is its causal parent. trace_id == 0 means "not traced" —
/// every emission keyed on an inactive context is a no-op.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool active() const noexcept { return trace_id != 0; }
};

/// One completed span as stored in the per-thread trace rings.
struct TraceSpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  /// Span id of the causal parent (0 = root of this trace).
  std::uint64_t parent_id = 0;
  TraceOp op = TraceOp::kRequest;
  /// Small stable index of the emitting thread (ring index).
  std::uint32_t thread = 0;
  /// Open timestamp relative to the process trace epoch.
  Nanos start_ns = 0;
  Nanos duration_ns = 0;
};

/// Per-thread trace ring capacity; older records are overwritten. Memory
/// is bounded: one fixed ring per thread that ever emitted a span.
inline constexpr std::size_t kTraceRingCapacity = 1024;

/// A trace kept by the tail sampler: the request outcome plus every span
/// recovered from the rings, sorted by start time.
struct SampledTrace {
  std::uint64_t trace_id = 0;
  RequestStatus status = RequestStatus::kOk;
  Nanos duration_ns = 0;
  std::vector<TraceSpanRecord> spans;
};

#if PROXIMITY_OBS_ENABLED

/// Fresh nonzero trace id (cheap splitmix over a process counter).
std::uint64_t NewTraceId() noexcept;

/// Fresh process-unique span id (thread ring index in the high bits).
std::uint64_t NewSpanId() noexcept;

/// Nanoseconds since the process trace epoch (shared with the span
/// ring so trace and span timestamps are directly comparable).
Nanos TraceNowNs() noexcept;
Nanos TraceRelNanos(std::chrono::steady_clock::time_point tp) noexcept;

/// The calling thread's current context ({} when none is active).
TraceContext CurrentTraceContext() noexcept;
void SetCurrentTraceContext(TraceContext ctx) noexcept;

/// Low-level emission into the calling thread's ring. `record.thread`
/// is filled in here; a zero trace id drops the record.
void EmitTraceSpan(TraceSpanRecord record) noexcept;

/// Emits one child span under `parent` and returns its span id (0 when
/// the parent is inactive). Used to attribute batch-wide stage timings
/// (one EmbedBatch call, one SearchBatch call) to each live request.
std::uint64_t EmitChildSpan(const TraceContext& parent, TraceOp op,
                            Nanos start_ns, Nanos duration_ns) noexcept;

/// Scans every thread ring for `trace_id`, sorted by start time. Slots
/// being concurrently overwritten are skipped, never torn.
std::vector<TraceSpanRecord> CollectTraceSpans(std::uint64_t trace_id);

#else  // PROXIMITY_OBS_ENABLED == 0: tracing compiles to nothing

inline std::uint64_t NewTraceId() noexcept { return 0; }
inline std::uint64_t NewSpanId() noexcept { return 0; }
inline Nanos TraceNowNs() noexcept { return 0; }
inline Nanos TraceRelNanos(std::chrono::steady_clock::time_point) noexcept {
  return 0;
}
inline TraceContext CurrentTraceContext() noexcept { return {}; }
inline void SetCurrentTraceContext(TraceContext) noexcept {}
inline void EmitTraceSpan(TraceSpanRecord) noexcept {}
inline std::uint64_t EmitChildSpan(const TraceContext&, TraceOp, Nanos,
                                   Nanos) noexcept {
  return 0;
}
inline std::vector<TraceSpanRecord> CollectTraceSpans(std::uint64_t) {
  return {};
}

#endif  // PROXIMITY_OBS_ENABLED

/// RAII thread-context setter: work done in the scope (cache probes,
/// inserts) attaches its spans to `ctx`'s trace. Restores the previous
/// context on exit so nesting works.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx) noexcept
      : prev_(CurrentTraceContext()) {
    SetCurrentTraceContext(ctx);
  }
  ~ScopedTraceContext() { SetCurrentTraceContext(prev_); }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

struct TraceCollectorOptions {
  /// Sampled traces retained (older ones fall off).
  std::size_t keep = 64;
  /// OK completions at or above this running duration quantile are kept.
  double slow_quantile = 0.99;
  /// The first N OK completions are kept unconditionally so /tracez
  /// shows something before the quantile threshold has armed.
  std::size_t bootstrap_keep = 4;
  /// The threshold is recomputed every this many completions.
  std::size_t recompute_every = 64;
};

/// The tail sampler. Complete() is called once per finished request with
/// the outcome; non-OK requests (shed/expired/error/unavailable) are
/// always kept, OK ones only when slower than the running ~p99. Keeping
/// a trace assembles its spans from the rings right away (and Find()
/// re-merges late spans, e.g. the client-side span emitted after the
/// server answered).
class TraceCollector {
 public:
  explicit TraceCollector(TraceCollectorOptions options = {});
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Returns true when the trace was sampled. No-op (false) for an
  /// inactive context or with PROXIMITY_OBS_ENABLED=0.
  bool Complete(const TraceContext& ctx, RequestStatus status,
                Nanos duration_ns);

  /// Kept traces, newest first.
  std::vector<SampledTrace> Sampled() const;

  /// One kept trace by id, with spans refreshed from the rings.
  std::optional<SampledTrace> Find(std::uint64_t trace_id);

  /// Current slow-keep threshold; max() until armed.
  Nanos slow_threshold_ns() const noexcept;

  std::uint64_t completed() const noexcept;
  std::uint64_t sampled() const noexcept;

  /// Drops kept traces and re-arms the bootstrap (test isolation).
  void Reset();

  /// The process-wide collector the serving path completes into.
  static TraceCollector& Default();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Chrome/Perfetto trace_event JSON for one trace: {"traceEvents":
/// [...]} of "X" (complete) events, timestamps in microseconds; span
/// ids and causal parents ride in "args". Opens in ui.perfetto.dev.
std::string ToTraceEventJson(const SampledTrace& trace);

/// Compact listing for /tracez: {"traces":[{"id","status",
/// "duration_ms","spans"}...]}, same order as given.
std::string ToTraceListJson(const std::vector<SampledTrace>& traces);

}  // namespace proximity::obs
