// Per-run report: joins the run-level metric triple with the per-stage
// latency breakdown (the Figure-5-style decomposition), the cache-hit vs
// database-miss latency split, the adaptive-τ trajectory, and the raw
// metric snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace proximity::obs {

/// One row of the stage-breakdown table.
struct StageRow {
  std::string name;
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  Nanos min_ns = 0;
  Nanos max_ns = 0;
};

struct RunReport {
  /// Context of the run (free-form; the CLI fills command/workload/index).
  std::string command;
  std::string workload;
  std::string index_kind;

  /// The paper's run-level metrics (§4.2); zero when not applicable
  /// (e.g. a sweep aggregates many runs).
  std::size_t queries = 0;
  double accuracy = 0.0;
  double hit_rate = 0.0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;

  /// τ after each query of an adaptive run (empty otherwise).
  std::vector<double> tau_trajectory;

  MetricsSnapshot snapshot;
};

/// Mirrors the run-level result triple into the `run.*` gauges of the
/// default registry, so a `.prom` export carries the paper's metrics
/// next to the stage histograms. Call before taking the snapshot.
void PublishRunGauges(const RunReport& report);

/// Rows for every non-empty stage histogram, then the retrieval hit/miss
/// split ("retrieve.hit"/"retrieve.miss") when present.
std::vector<StageRow> StageBreakdown(const MetricsSnapshot& snapshot);

/// Fixed-width text table of StageBreakdown (ends in '\n'; empty string
/// when there is no stage data, e.g. PROXIMITY_OBS=OFF).
std::string RenderStageTable(const MetricsSnapshot& snapshot);

/// ascii_plot chart of per-stage latency quantiles: x = quantile,
/// y = log10(latency ns), one series per stage (hit/miss split first).
std::string RenderStagePlot(const MetricsSnapshot& snapshot);

/// JSON document: run fields + tau trajectory + StageBreakdown + the full
/// snapshot (counters/gauges/histogram summaries).
std::string RunReportToJson(const RunReport& report);

/// Writes the report to `path`: ".prom"/".txt" -> Prometheus exposition of
/// the snapshot, anything else -> RunReportToJson.
void WriteRunReport(const RunReport& report, const std::string& path);

}  // namespace proximity::obs
