#include "obs/metrics_registry.h"

#include <algorithm>

namespace proximity::obs {

namespace {

/// Monotone registry uids; never reused, so a stale thread-local shard
/// entry for a destroyed registry can never alias a new one.
std::atomic<std::uint64_t> g_next_registry_uid{1};

template <typename T>
void AtomicMin(std::atomic<T>& slot, T value) noexcept {
  T cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

template <typename T>
void AtomicMax(std::atomic<T>& slot, T value) noexcept {
  T cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

MetricsRegistry::Shard::~Shard() {
  for (auto& slot : hists) delete slot.load(std::memory_order_acquire);
}

MetricsRegistry::MetricsRegistry()
    : uid_(g_next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {
  // Pre-register the span stage histograms so RecordStage is a plain
  // array index on the hot path.
  for (std::size_t s = 0; s < kNumStages; ++s) {
    std::string name = "stage.";
    name += StageName(static_cast<Stage>(s));
    name += "_ns";
    stage_hists_[s] = Histogram(name);
  }
}

MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::RegisterIn(std::vector<std::string>& names,
                                     std::size_t capacity,
                                     std::string_view name) {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<MetricId>(i);
  }
  if (names.size() >= capacity) return kInvalidMetric;
  names.emplace_back(name);
  return static_cast<MetricId>(names.size() - 1);
}

MetricId MetricsRegistry::Counter(std::string_view name) {
  return RegisterIn(counter_names_, kMaxCounters, name);
}

MetricId MetricsRegistry::Gauge(std::string_view name) {
  return RegisterIn(gauge_names_, kMaxGauges, name);
}

MetricId MetricsRegistry::Histogram(std::string_view name) {
  return RegisterIn(hist_names_, kMaxHistograms, name);
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() noexcept {
  struct TlsEntry {
    std::uint64_t registry_uid;
    Shard* shard;
  };
  thread_local std::vector<TlsEntry> tls_shards;
  for (const auto& e : tls_shards) {
    if (e.registry_uid == uid_) return *e.shard;
  }
  Shard* shard;
  {
    std::lock_guard lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  tls_shards.push_back({uid_, shard});
  return *shard;
}

void MetricsRegistry::Add(MetricId counter, std::uint64_t delta) noexcept {
  if (counter >= kMaxCounters) return;
  LocalShard().counters[counter].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Record(MetricId histogram, Nanos ns) noexcept {
  if (histogram >= kMaxHistograms) return;
  if (ns < 0) ns = 0;
  Shard& shard = LocalShard();
  HistShard* h = shard.hists[histogram].load(std::memory_order_relaxed);
  if (h == nullptr) {
    // Only the owning thread writes this slot; release pairs with the
    // acquire load in Snapshot().
    h = new HistShard();
    shard.hists[histogram].store(h, std::memory_order_release);
  }
  h->buckets[LatencyHistogram::BucketIndex(ns)].fetch_add(
      1, std::memory_order_relaxed);
  h->sum_ns.fetch_add(static_cast<std::uint64_t>(ns),
                      std::memory_order_relaxed);
  AtomicMin(h->min_ns, ns);
  AtomicMax(h->max_ns, ns);
}

void MetricsRegistry::RecordStage(Stage stage, Nanos ns) noexcept {
  Record(stage_hists_[static_cast<std::size_t>(stage)], ns);
}

void MetricsRegistry::GaugeSet(MetricId gauge, double value) noexcept {
  if (gauge >= kMaxGauges) return;
  gauges_[gauge].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::GaugeAdd(MetricId gauge, double delta) noexcept {
  if (gauge >= kMaxGauges) return;
  double cur = gauges_[gauge].load(std::memory_order_relaxed);
  while (!gauges_[gauge].compare_exchange_weak(cur, cur + delta,
                                               std::memory_order_relaxed)) {
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);

  snap.counters.resize(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters[i].name = counter_names_[i];
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters[i].value = total;
  }

  snap.gauges.resize(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges[i].name = gauge_names_[i];
    snap.gauges[i].value = gauges_[i].load(std::memory_order_relaxed);
  }

  snap.histograms.resize(hist_names_.size());
  std::array<std::uint64_t, LatencyHistogram::kNumBuckets> buckets;
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    snap.histograms[i].name = hist_names_[i];
    for (const auto& shard : shards_) {
      const HistShard* h = shard->hists[i].load(std::memory_order_acquire);
      if (h == nullptr) continue;
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        buckets[b] = h->buckets[b].load(std::memory_order_relaxed);
      }
      snap.histograms[i].histogram.MergeBuckets(
          buckets.data(), buckets.size(),
          static_cast<double>(h->sum_ns.load(std::memory_order_relaxed)),
          h->min_ns.load(std::memory_order_relaxed),
          h->max_ns.load(std::memory_order_relaxed));
    }
  }
  return snap;
}

void MetricsRegistry::Reset() noexcept {
  std::lock_guard lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& slot : shard->hists) {
      HistShard* h = slot.load(std::memory_order_acquire);
      if (h == nullptr) continue;
      for (auto& b : h->buckets) b.store(0, std::memory_order_relaxed);
      h->sum_ns.store(0, std::memory_order_relaxed);
      h->min_ns.store(std::numeric_limits<Nanos>::max(),
                      std::memory_order_relaxed);
      h->max_ns.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

std::uint64_t MetricsSnapshot::CounterValue(
    std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const LatencyHistogram* MetricsSnapshot::FindHistogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h.histogram;
  }
  return nullptr;
}

bool MetricsSnapshot::Empty() const noexcept {
  for (const auto& c : counters) {
    if (c.value != 0) return false;
  }
  for (const auto& g : gauges) {
    if (g.value != 0.0) return false;
  }
  for (const auto& h : histograms) {
    if (h.histogram.count() != 0) return false;
  }
  return true;
}

}  // namespace proximity::obs
