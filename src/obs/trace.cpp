#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <limits>
#include <mutex>
#include <random>
#include <sstream>

#include "common/stats.h"
#include "obs/metrics_registry.h"

namespace proximity::obs {

namespace {

const CounterHandle kObsSpans("trace.spans");
const CounterHandle kObsCompleted("trace.completed");
const CounterHandle kObsSampled("trace.sampled");
const GaugeHandle kObsThreshold("trace.slow_threshold_ns");

}  // namespace

#if PROXIMITY_OBS_ENABLED

namespace {

// One seqlock-protected ring slot. Every field is an atomic accessed
// with relaxed ordering; the version counter (odd = write in progress)
// plus fences give readers a consistent record or a clean skip — no
// torn span can ever be observed, and TSan sees only atomic accesses.
struct Slot {
  std::atomic<std::uint64_t> version{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> span_id{0};
  std::atomic<std::uint64_t> parent_id{0};
  std::atomic<std::uint32_t> op{0};
  std::atomic<Nanos> start_ns{0};
  std::atomic<Nanos> duration_ns{0};
};

struct TraceRing {
  std::uint32_t thread = 0;
  // Writer-only cursors; readers scan every slot.
  std::uint64_t next = 0;
  std::uint64_t span_counter = 0;
  Slot slots[kTraceRingCapacity];
};

// Rings are owned by the store and intentionally leaked at process
// exit: a collector may scan them after the emitting thread has died,
// and thread_local destruction order must not matter. Memory stays
// bounded — one fixed-capacity ring per emitting thread, ever.
struct TraceStore {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceRing>> rings;

  TraceRing* Acquire() {
    std::lock_guard lock(mu);
    rings.push_back(std::make_unique<TraceRing>());
    rings.back()->thread = static_cast<std::uint32_t>(rings.size());
    return rings.back().get();
  }

  static TraceStore& Get() {
    static TraceStore* store = new TraceStore;
    return *store;
  }
};

TraceRing& LocalRing() noexcept {
  thread_local TraceRing* ring = TraceStore::Get().Acquire();
  return *ring;
}

std::chrono::steady_clock::time_point TraceEpoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Pin the epoch at process start (static init), not at the first traced
// request: timestamps captured before the first emission (e.g. a request
// received while the stack warms up) must still export as non-negative.
const auto g_epoch_pin = TraceEpoch();

std::uint64_t Splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// Per-process entropy mixed into trace and span ids. Traces cross the
// wire between processes that each number their threads and counters
// identically from zero — without this, the server's first span id
// collides with the client's first span id and parent links cross.
std::uint64_t ProcessSeed() noexcept {
  static const std::uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) |
           static_cast<std::uint64_t>(rd());
  }();
  return seed;
}

thread_local TraceContext t_ctx;

// Reads one slot; false when the slot is empty, mid-write or was
// overwritten during the read (the seqlock retry is a skip: a span
// being overwritten is by definition old enough to drop).
bool ReadSlot(const Slot& slot, TraceSpanRecord* out) noexcept {
  const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1) != 0) return false;
  out->trace_id = slot.trace_id.load(std::memory_order_relaxed);
  out->span_id = slot.span_id.load(std::memory_order_relaxed);
  out->parent_id = slot.parent_id.load(std::memory_order_relaxed);
  const std::uint32_t meta = slot.op.load(std::memory_order_relaxed);
  out->op = static_cast<TraceOp>(meta & 0xFF);
  out->thread = meta >> 8;
  out->start_ns = slot.start_ns.load(std::memory_order_relaxed);
  out->duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.version.load(std::memory_order_relaxed) == v1;
}

}  // namespace

std::uint64_t NewTraceId() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  // splitmix64 so consecutive ids do not look consecutive on the wire.
  return Splitmix64(counter.fetch_add(1, std::memory_order_relaxed) ^
                    ProcessSeed()) |
         1;  // an active trace id is never 0
}

std::uint64_t NewSpanId() noexcept {
  TraceRing& ring = LocalRing();
  // Thread ring index in the high bits keeps ids process-unique with a
  // plain (writer-owned) counter; XOR with the process seed (bijective,
  // so uniqueness is preserved) keeps them distinct across processes.
  return ((static_cast<std::uint64_t>(ring.thread) << 40) |
          ++ring.span_counter) ^
         ProcessSeed();
}

Nanos TraceRelNanos(std::chrono::steady_clock::time_point tp) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp - TraceEpoch())
      .count();
}

Nanos TraceNowNs() noexcept {
  return TraceRelNanos(std::chrono::steady_clock::now());
}

TraceContext CurrentTraceContext() noexcept { return t_ctx; }

void SetCurrentTraceContext(TraceContext ctx) noexcept { t_ctx = ctx; }

void EmitTraceSpan(TraceSpanRecord record) noexcept {
  if (record.trace_id == 0) return;
  TraceRing& ring = LocalRing();
  Slot& slot = ring.slots[ring.next % kTraceRingCapacity];
  ++ring.next;
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.span_id.store(record.span_id, std::memory_order_relaxed);
  slot.parent_id.store(record.parent_id, std::memory_order_relaxed);
  slot.op.store(static_cast<std::uint32_t>(record.op) |
                    (ring.thread << 8),
                std::memory_order_relaxed);
  slot.start_ns.store(record.start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(record.duration_ns, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
  kObsSpans.Inc();
}

std::uint64_t EmitChildSpan(const TraceContext& parent, TraceOp op,
                            Nanos start_ns, Nanos duration_ns) noexcept {
  if (!parent.active()) return 0;
  TraceSpanRecord record;
  record.trace_id = parent.trace_id;
  record.span_id = NewSpanId();
  record.parent_id = parent.span_id;
  record.op = op;
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  EmitTraceSpan(record);
  return record.span_id;
}

std::vector<TraceSpanRecord> CollectTraceSpans(std::uint64_t trace_id) {
  std::vector<TraceSpanRecord> out;
  if (trace_id == 0) return out;
  TraceStore& store = TraceStore::Get();
  std::lock_guard lock(store.mu);
  for (const auto& ring : store.rings) {
    for (const Slot& slot : ring->slots) {
      TraceSpanRecord record;
      if (ReadSlot(slot, &record) && record.trace_id == trace_id) {
        out.push_back(record);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpanRecord& a, const TraceSpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  return out;
}

#endif  // PROXIMITY_OBS_ENABLED

struct TraceCollector::Impl {
  TraceCollectorOptions options;
  mutable std::mutex mu;
  LatencyHistogram durations;
  std::uint64_t completed = 0;
  std::uint64_t sampled = 0;
  std::deque<SampledTrace> kept;  // newest first
  std::atomic<Nanos> threshold_ns{std::numeric_limits<Nanos>::max()};
};

TraceCollector::TraceCollector(TraceCollectorOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  if (impl_->options.keep == 0) impl_->options.keep = 1;
  if (impl_->options.recompute_every == 0) impl_->options.recompute_every = 1;
}

TraceCollector::~TraceCollector() = default;

bool TraceCollector::Complete(const TraceContext& ctx, RequestStatus status,
                              Nanos duration_ns) {
#if PROXIMITY_OBS_ENABLED
  if (!ctx.active()) return false;
  kObsCompleted.Inc();
  std::lock_guard lock(impl_->mu);
  ++impl_->completed;
  impl_->durations.Record(duration_ns);
  if (impl_->completed % impl_->options.recompute_every == 0) {
    const Nanos threshold = static_cast<Nanos>(
        impl_->durations.QuantileNanos(impl_->options.slow_quantile));
    impl_->threshold_ns.store(threshold, std::memory_order_relaxed);
    kObsThreshold.Set(static_cast<double>(threshold));
  }
  // Tail-based decision: errors/sheds/expiries always, plus the slow
  // tail of OK completions. Everything else is dropped right here.
  bool keep = status != RequestStatus::kOk;
  if (!keep) {
    if (impl_->completed <= impl_->options.bootstrap_keep) {
      keep = true;
    } else if (duration_ns >=
               impl_->threshold_ns.load(std::memory_order_relaxed)) {
      keep = true;
    }
  }
  if (!keep) return false;
  SampledTrace trace;
  trace.trace_id = ctx.trace_id;
  trace.status = status;
  trace.duration_ns = duration_ns;
  trace.spans = CollectTraceSpans(ctx.trace_id);
  impl_->kept.push_front(std::move(trace));
  while (impl_->kept.size() > impl_->options.keep) impl_->kept.pop_back();
  ++impl_->sampled;
  kObsSampled.Inc();
  return true;
#else
  (void)ctx;
  (void)status;
  (void)duration_ns;
  return false;
#endif
}

std::vector<SampledTrace> TraceCollector::Sampled() const {
  std::lock_guard lock(impl_->mu);
  return {impl_->kept.begin(), impl_->kept.end()};
}

std::optional<SampledTrace> TraceCollector::Find(std::uint64_t trace_id) {
  std::lock_guard lock(impl_->mu);
  for (SampledTrace& trace : impl_->kept) {
    if (trace.trace_id != trace_id) continue;
    // Refresh from the rings: spans emitted after the completion (the
    // client-side Call span lands only once the response was parsed)
    // are merged in, keyed by span id.
    for (TraceSpanRecord& fresh : CollectTraceSpans(trace_id)) {
      const bool known =
          std::any_of(trace.spans.begin(), trace.spans.end(),
                      [&](const TraceSpanRecord& have) {
                        return have.span_id == fresh.span_id;
                      });
      if (!known) trace.spans.push_back(fresh);
    }
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const TraceSpanRecord& a, const TraceSpanRecord& b) {
                if (a.start_ns != b.start_ns) {
                  return a.start_ns < b.start_ns;
                }
                return a.span_id < b.span_id;
              });
    return trace;
  }
  return std::nullopt;
}

Nanos TraceCollector::slow_threshold_ns() const noexcept {
  return impl_->threshold_ns.load(std::memory_order_relaxed);
}

std::uint64_t TraceCollector::completed() const noexcept {
  std::lock_guard lock(impl_->mu);
  return impl_->completed;
}

std::uint64_t TraceCollector::sampled() const noexcept {
  std::lock_guard lock(impl_->mu);
  return impl_->sampled;
}

void TraceCollector::Reset() {
  std::lock_guard lock(impl_->mu);
  impl_->durations = LatencyHistogram{};
  impl_->completed = 0;
  impl_->sampled = 0;
  impl_->kept.clear();
  impl_->threshold_ns.store(std::numeric_limits<Nanos>::max(),
                            std::memory_order_relaxed);
}

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector;
  return *collector;
}

namespace {

void AppendHexId(std::string& out, std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  out += buf;
}

void AppendMicros(std::string& out, Nanos ns) {
  // Microseconds with nanosecond precision, the trace_event time unit.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) / 1000.0);
  out += buf;
}

}  // namespace

std::string ToTraceEventJson(const SampledTrace& trace) {
  std::string out;
  out.reserve(256 + trace.spans.size() * 192);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"proximity trace 0x";
  AppendHexId(out, trace.trace_id);
  out += " (";
  out += RequestStatusName(trace.status);
  out += ")\"}}";
  for (const TraceSpanRecord& span : trace.spans) {
    out += ",{\"name\":\"";
    out += TraceOpName(span.op);
    out += "\",\"cat\":\"proximity\",\"ph\":\"X\",\"ts\":";
    AppendMicros(out, span.start_ns);
    out += ",\"dur\":";
    // Perfetto drops zero-width slices; clamp to 1ns-as-µs.
    AppendMicros(out, span.duration_ns > 0 ? span.duration_ns : 1);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(span.thread);
    out += ",\"args\":{\"span_id\":\"0x";
    AppendHexId(out, span.span_id);
    out += "\",\"parent_id\":\"0x";
    AppendHexId(out, span.parent_id);
    out += "\"}}";
  }
  out += "]}";
  return out;
}

std::string ToTraceListJson(const std::vector<SampledTrace>& traces) {
  std::string out = "{\"traces\":[";
  bool first = true;
  for (const SampledTrace& trace : traces) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"0x";
    AppendHexId(out, trace.trace_id);
    out += "\",\"status\":\"";
    out += RequestStatusName(trace.status);
    out += "\",\"duration_ms\":";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(trace.duration_ns) / 1e6);
    out += buf;
    out += ",\"spans\":";
    out += std::to_string(trace.spans.size());
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace proximity::obs
