// RAII span tracing: tag a scope with a Stage; on destruction the span's
// wall duration is recorded into the stage's histogram in the default
// MetricsRegistry and appended to a bounded per-thread ring buffer of
// recent span events (the lightweight "what just happened" trace).
//
// When the opening thread carries an active TraceContext (obs/trace.h),
// the span additionally joins that request's end-to-end trace as a
// causally-linked child — existing instrumentation sites become trace
// emitters with no changes at the call site.
//
// With PROXIMITY_OBS_ENABLED=0 the Span constructor/destructor are empty
// inline functions and the compiler erases them — the instrumented hot
// paths (cache scan, index search) pay nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/metrics_registry.h"
#include "obs/stage.h"
#include "obs/trace.h"

namespace proximity::obs {

/// One completed span, as kept in the per-thread ring.
struct SpanEvent {
  Stage stage = Stage::kEmbed;
  /// Nesting depth at open time (0 = outermost on this thread).
  std::uint16_t depth = 0;
  /// Open timestamp relative to the process trace epoch.
  Nanos start_ns = 0;
  Nanos duration_ns = 0;
};

/// Ring capacity per thread; older events are overwritten.
inline constexpr std::size_t kSpanRingCapacity = 256;

/// Copies the *calling thread's* ring, oldest event first. Empty when
/// tracing is compiled out. Spans close inner-first, so a nested span
/// appears before its parent.
std::vector<SpanEvent> ThreadRecentSpans();

/// Clears the calling thread's ring (test isolation).
void ClearThreadSpans();

#if PROXIMITY_OBS_ENABLED

class Span {
 public:
  explicit Span(Stage stage) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Stage stage_;
  std::uint16_t depth_;
  std::chrono::steady_clock::time_point start_;
  /// When the opening thread carried an active TraceContext, the span
  /// also joins that trace: `trace_parent_` is the inherited context,
  /// `trace_span_` this span's own id (pushed as the thread context so
  /// nested spans parent under it; restored in the destructor).
  TraceContext trace_parent_;
  std::uint64_t trace_span_ = 0;
};

#else  // PROXIMITY_OBS_ENABLED == 0: spans compile to nothing

class Span {
 public:
  explicit Span(Stage) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // PROXIMITY_OBS_ENABLED

}  // namespace proximity::obs
