#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace proximity::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void AppendSummary(std::string& out, const std::string& pname,
                   const LatencyHistogram& h) {
  out += "# TYPE " + pname + " summary\n";
  for (double q : {0.5, 0.9, 0.99}) {
    out += pname + "{quantile=\"" + FormatDouble(q) + "\"} " +
           FormatDouble(h.QuantileNanos(q)) + "\n";
  }
  out += pname + "_sum " +
         FormatDouble(h.MeanNanos() * static_cast<double>(h.count())) + "\n";
  out += pname + "_count " + std::to_string(h.count()) + "\n";
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "proximity_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string pname = PrometheusName(c.name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string pname = PrometheusName(g.name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + FormatDouble(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    AppendSummary(out, PrometheusName(h.name), h.histogram);
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(c.name) + "\": " + std::to_string(c.value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(g.name) + "\": " + FormatDouble(g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : snapshot.histograms) {
    const LatencyHistogram& hist = h.histogram;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(h.name) + "\": {";
    out += "\"count\": " + std::to_string(hist.count());
    out += ", \"mean_ns\": " + FormatDouble(hist.MeanNanos());
    out += ", \"p50_ns\": " + FormatDouble(hist.QuantileNanos(0.5));
    out += ", \"p90_ns\": " + FormatDouble(hist.QuantileNanos(0.9));
    out += ", \"p99_ns\": " + FormatDouble(hist.QuantileNanos(0.99));
    out += ", \"min_ns\": " + std::to_string(hist.MinNanos());
    out += ", \"max_ns\": " + std::to_string(hist.MaxNanos());
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

void WriteSnapshotFile(const MetricsSnapshot& snapshot,
                       const std::string& path) {
  const bool prom = path.ends_with(".prom") || path.ends_with(".txt");
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("WriteSnapshotFile: cannot open " + path);
  }
  os << (prom ? ToPrometheusText(snapshot) : ToJson(snapshot));
  if (!os) {
    throw std::runtime_error("WriteSnapshotFile: write failed for " + path);
  }
}

}  // namespace proximity::obs
