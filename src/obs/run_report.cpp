#include "obs/run_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/ascii_plot.h"
#include "obs/export.h"
#include "obs/stage.h"

namespace proximity::obs {

namespace {

StageRow RowFrom(std::string name, const LatencyHistogram& h) {
  StageRow row;
  row.name = std::move(name);
  row.count = h.count();
  row.mean_ns = h.MeanNanos();
  row.p50_ns = h.QuantileNanos(0.5);
  row.p90_ns = h.QuantileNanos(0.9);
  row.p99_ns = h.QuantileNanos(0.99);
  row.min_ns = h.MinNanos();
  row.max_ns = h.MaxNanos();
  return row;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Run-level results mirrored into the registry so a `.prom` export
// carries the paper's metric triple next to the stage histograms. The
// handles live in the library (not the CLI) so every stack user —
// including the docs_sync test — registers the same `run.*` names.
const GaugeHandle kRunQueries("run.queries");
const GaugeHandle kRunAccuracy("run.accuracy");
const GaugeHandle kRunHitRate("run.hit_rate");
const GaugeHandle kRunMeanLatencyMs("run.mean_latency_ms");

}  // namespace

void PublishRunGauges(const RunReport& report) {
  kRunQueries.Set(static_cast<double>(report.queries));
  kRunAccuracy.Set(report.accuracy);
  kRunHitRate.Set(report.hit_rate);
  kRunMeanLatencyMs.Set(report.mean_latency_ms);
}

std::vector<StageRow> StageBreakdown(const MetricsSnapshot& snapshot) {
  std::vector<StageRow> rows;
  std::vector<std::string> consumed;
  const auto take = [&](const std::string& histogram_name,
                        std::string row_name) {
    const auto* h = snapshot.FindHistogram(histogram_name);
    consumed.push_back(histogram_name);
    if (h != nullptr && h->count() > 0) {
      rows.push_back(RowFrom(std::move(row_name), *h));
    }
  };
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const char* name = StageName(static_cast<Stage>(s));
    take("stage." + std::string(name) + "_ns", name);
  }
  // The paper's headline contrast: served-from-cache vs database-miss
  // retrieval latency (Figure 5).
  take("retrieve.hit_ns", "retrieve.hit");
  take("retrieve.miss_ns", "retrieve.miss");
  // Every other non-empty latency family (net.*, serve.*, shard.*, ...)
  // in registration order, so the table audits the whole stack and new
  // histograms cannot silently miss the report (docs_sync_test pins
  // this invariant).
  for (const auto& hs : snapshot.histograms) {
    if (hs.histogram.count() == 0) continue;
    if (std::find(consumed.begin(), consumed.end(), hs.name) !=
        consumed.end()) {
      continue;
    }
    std::string name = hs.name;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0) {
      name.resize(name.size() - 3);
    }
    rows.push_back(RowFrom(std::move(name), hs.histogram));
  }
  return rows;
}

std::string RenderStageTable(const MetricsSnapshot& snapshot) {
  const std::vector<StageRow> rows = StageBreakdown(snapshot);
  if (rows.empty()) return "";
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %10s %10s %10s %10s %10s %10s\n",
                "stage", "count", "mean", "p50", "p90", "p99", "max");
  out += line;
  for (const auto& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-14s %10llu %10s %10s %10s %10s %10s\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.count),
                  FormatNanos(r.mean_ns).c_str(),
                  FormatNanos(r.p50_ns).c_str(),
                  FormatNanos(r.p90_ns).c_str(),
                  FormatNanos(r.p99_ns).c_str(),
                  FormatNanos(static_cast<double>(r.max_ns)).c_str());
    out += line;
  }
  return out;
}

std::string RenderStagePlot(const MetricsSnapshot& snapshot) {
  std::vector<StageRow> rows = StageBreakdown(snapshot);
  if (rows.empty()) return "";
  // Hit/miss split leads (the paper's contrast), then the busiest stages,
  // capped at six series (one glyph each).
  std::stable_partition(rows.begin(), rows.end(), [](const StageRow& r) {
    return r.name.starts_with("retrieve.");
  });
  if (rows.size() > 6) rows.resize(6);

  std::vector<PlotSeries> series;
  for (const auto& r : rows) {
    PlotSeries s;
    s.label = r.name;
    const auto log_ns = [](double ns) {
      return std::log10(std::max(ns, 1.0));
    };
    s.points = {{0.50, log_ns(r.p50_ns)},
                {0.90, log_ns(r.p90_ns)},
                {0.99, log_ns(r.p99_ns)}};
    series.push_back(std::move(s));
  }
  PlotOptions opts;
  opts.title = "per-stage latency quantiles";
  opts.x_label = "quantile";
  opts.y_label = "log10(ns)";
  opts.width = 48;
  opts.height = 12;
  return RenderAsciiPlot(series, opts);
}

std::string RunReportToJson(const RunReport& report) {
  std::string out = "{\n";
  out += "  \"command\": \"" + report.command + "\",\n";
  out += "  \"workload\": \"" + report.workload + "\",\n";
  out += "  \"index\": \"" + report.index_kind + "\",\n";
  out += "  \"queries\": " + std::to_string(report.queries) + ",\n";
  out += "  \"accuracy\": " + FormatDouble(report.accuracy) + ",\n";
  out += "  \"hit_rate\": " + FormatDouble(report.hit_rate) + ",\n";
  out += "  \"mean_latency_ms\": " + FormatDouble(report.mean_latency_ms) +
         ",\n";
  out += "  \"p50_latency_ms\": " + FormatDouble(report.p50_latency_ms) +
         ",\n";
  out += "  \"p99_latency_ms\": " + FormatDouble(report.p99_latency_ms) +
         ",\n";

  out += "  \"tau_trajectory\": [";
  for (std::size_t i = 0; i < report.tau_trajectory.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(report.tau_trajectory[i]);
  }
  out += "],\n";

  out += "  \"stages\": [";
  const std::vector<StageRow> rows = StageBreakdown(report.snapshot);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StageRow& r = rows[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"stage\": \"" + r.name + "\"";
    out += ", \"count\": " + std::to_string(r.count);
    out += ", \"mean_ns\": " + FormatDouble(r.mean_ns);
    out += ", \"p50_ns\": " + FormatDouble(r.p50_ns);
    out += ", \"p90_ns\": " + FormatDouble(r.p90_ns);
    out += ", \"p99_ns\": " + FormatDouble(r.p99_ns);
    out += ", \"min_ns\": " + std::to_string(r.min_ns);
    out += ", \"max_ns\": " + std::to_string(r.max_ns);
    out += "}";
  }
  out += rows.empty() ? "],\n" : "\n  ],\n";

  // Full snapshot nested last (it is itself a JSON object).
  std::string snap = ToJson(report.snapshot);
  out += "  \"metrics\": " + snap;
  if (!snap.empty() && snap.back() == '\n') out.pop_back();
  out += "\n}\n";
  return out;
}

void WriteRunReport(const RunReport& report, const std::string& path) {
  if (path.ends_with(".prom") || path.ends_with(".txt")) {
    WriteSnapshotFile(report.snapshot, path);
    return;
  }
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("WriteRunReport: cannot open " + path);
  }
  os << RunReportToJson(report);
  if (!os) {
    throw std::runtime_error("WriteRunReport: write failed for " + path);
  }
}

}  // namespace proximity::obs
