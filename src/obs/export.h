// Snapshot exporters: Prometheus text exposition and JSON.
//
// Histograms are exported Prometheus-style as summaries (quantile-labeled
// series plus _sum/_count) rather than 768 raw log buckets — the bucket
// layout is an implementation detail; the quantiles are the contract.
#pragma once

#include <string>

#include "obs/metrics_registry.h"

namespace proximity::obs {

/// Prometheus text exposition format (version 0.0.4). Metric names are
/// sanitized ("cache.hits" -> "proximity_cache_hits").
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// JSON object: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, mean_ns, p50_ns, p90_ns, p99_ns, min_ns, max_ns}}}.
std::string ToJson(const MetricsSnapshot& snapshot);

/// Writes the snapshot to `path`; the extension picks the format
/// (".prom"/".txt" -> Prometheus text, anything else -> JSON).
/// Throws std::runtime_error when the file cannot be written.
void WriteSnapshotFile(const MetricsSnapshot& snapshot,
                       const std::string& path);

/// "cache.hits" -> "proximity_cache_hits" (exposed for tests).
std::string PrometheusName(std::string_view name);

}  // namespace proximity::obs
