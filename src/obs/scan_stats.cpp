#include "obs/scan_stats.h"

#include "obs/metrics_registry.h"

namespace proximity::obs {

namespace {
const CounterHandle kPrimaryBytes("scan.primary_bytes");
const CounterHandle kRerankBytes("scan.rerank_bytes");
const CounterHandle kCandidates("scan.candidates");
const CounterHandle kQueries("scan.queries");
const GaugeHandle kRerankRatio("scan.rerank_ratio");
}  // namespace

void ScanPrimaryBytes(std::uint64_t bytes) noexcept {
  kPrimaryBytes.Inc(bytes);
}

void ScanRerankBytes(std::uint64_t bytes) noexcept {
  kRerankBytes.Inc(bytes);
}

void ScanCandidates(std::uint64_t count) noexcept { kCandidates.Inc(count); }

void ScanQuery(double rerank_ratio) noexcept {
  kQueries.Inc();
  kRerankRatio.Set(rerank_ratio);
}

}  // namespace proximity::obs
