#include "obs/span.h"

namespace proximity::obs {

#if PROXIMITY_OBS_ENABLED

namespace {

struct Ring {
  SpanEvent events[kSpanRingCapacity];
  std::size_t next = 0;
  std::size_t count = 0;
};

thread_local Ring t_ring;
thread_local std::uint16_t t_depth = 0;

Nanos ToNanos(std::chrono::steady_clock::duration d) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

}  // namespace

Span::Span(Stage stage) noexcept
    : stage_(stage),
      depth_(t_depth++),
      start_(std::chrono::steady_clock::now()),
      trace_parent_(CurrentTraceContext()) {
  if (trace_parent_.active()) {
    trace_span_ = NewSpanId();
    SetCurrentTraceContext({trace_parent_.trace_id, trace_span_});
  }
}

Span::~Span() {
  const auto end = std::chrono::steady_clock::now();
  if (t_depth > 0) --t_depth;
  const Nanos duration = ToNanos(end - start_);
  MetricsRegistry::Default().RecordStage(stage_, duration);

  Ring& ring = t_ring;
  ring.events[ring.next] = SpanEvent{
      .stage = stage_,
      .depth = depth_,
      .start_ns = TraceRelNanos(start_),
      .duration_ns = duration,
  };
  ring.next = (ring.next + 1) % kSpanRingCapacity;
  if (ring.count < kSpanRingCapacity) ++ring.count;

  if (trace_parent_.active()) {
    TraceSpanRecord record;
    record.trace_id = trace_parent_.trace_id;
    record.span_id = trace_span_;
    record.parent_id = trace_parent_.span_id;
    record.op = TraceOpFromStage(stage_);
    record.start_ns = TraceRelNanos(start_);
    record.duration_ns = duration;
    EmitTraceSpan(record);
    SetCurrentTraceContext(trace_parent_);
  }
}

std::vector<SpanEvent> ThreadRecentSpans() {
  const Ring& ring = t_ring;
  std::vector<SpanEvent> out;
  out.reserve(ring.count);
  const std::size_t oldest =
      (ring.next + kSpanRingCapacity - ring.count) % kSpanRingCapacity;
  for (std::size_t i = 0; i < ring.count; ++i) {
    out.push_back(ring.events[(oldest + i) % kSpanRingCapacity]);
  }
  return out;
}

void ClearThreadSpans() {
  t_ring.next = 0;
  t_ring.count = 0;
  t_depth = 0;
}

#else  // PROXIMITY_OBS_ENABLED == 0

std::vector<SpanEvent> ThreadRecentSpans() { return {}; }
void ClearThreadSpans() {}

#endif  // PROXIMITY_OBS_ENABLED

}  // namespace proximity::obs
