// scan.* metric family: accounting for the vector-scan data plane
// (docs/METRICS.md "Scan"). The two-level compressed search path
// (DESIGN.md §11) reports how many bytes its primary (compressed) scans
// and float rerank passes touch, and how many candidates survive the
// primary scan; the cache's linear key scan reports its float bytes
// through the same primary counter.
//
// These are free functions rather than exposed handles so call sites in
// index/ and cache/ stay one line and the metric names live in exactly
// one translation unit (scan_stats.cpp — linked whenever any scan path
// is, which is what keeps docs_sync_test honest). Under
// PROXIMITY_OBS=OFF every call compiles down to the no-op handles.
#pragma once

#include <cstdint>

namespace proximity::obs {

/// Bytes read by a primary scan: compressed blocks (block_stride per
/// row) on the quantized paths, float rows on the cache key scan.
void ScanPrimaryBytes(std::uint64_t bytes) noexcept;

/// Bytes of full-precision vectors touched by a rerank pass.
void ScanRerankBytes(std::uint64_t bytes) noexcept;

/// Candidates handed from a primary scan to the rerank pass.
void ScanCandidates(std::uint64_t count) noexcept;

/// One completed two-level query; `rerank_ratio` is candidates scanned
/// in full precision divided by rows scanned compressed (the over-fetch
/// fraction — small is good).
void ScanQuery(double rerank_ratio) noexcept;

}  // namespace proximity::obs
