// Pipeline stage taxonomy for span tracing (Figure 5 / §4.3: the paper's
// latency decomposition attributes end-to-end RAG time to embedding, cache
// lookup, vector-database search, and generation; the cache-internal
// stages make the Proximity-specific work visible too).
#pragma once

#include <cstddef>
#include <cstdint>

namespace proximity::obs {

/// One stage of the RAG request path. Every Span is tagged with a stage
/// and feeds the pre-registered `stage.<name>_ns` histogram.
enum class Stage : std::uint8_t {
  kEmbed = 0,     // query text -> embedding
  kCacheLookup,   // full cache probe (lock + scan + policy bookkeeping)
  kCacheScan,     // the linear key scan inside the proximity cache (§3.2.1)
  kIndexSearch,   // vector-database search (flat/HNSW/IVF/...)
  kPrompt,        // prompt assembly / context judging
  kGenerate,      // answer generation (the simulated LLM)
  kEvict,         // victim selection + slot overwrite on a full cache
  kInsert,        // cache insertion (includes kEvict when the cache is full)
};

inline constexpr std::size_t kNumStages = 8;

/// Short lowercase stage name ("embed", "cache_lookup", ...).
constexpr const char* StageName(Stage stage) noexcept {
  switch (stage) {
    case Stage::kEmbed: return "embed";
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kCacheScan: return "cache_scan";
    case Stage::kIndexSearch: return "index_search";
    case Stage::kPrompt: return "prompt";
    case Stage::kGenerate: return "generate";
    case Stage::kEvict: return "evict";
    case Stage::kInsert: return "insert";
  }
  return "unknown";
}

}  // namespace proximity::obs
