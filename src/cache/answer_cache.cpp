#include "cache/answer_cache.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics_registry.h"
#include "obs/scan_stats.h"
#include "obs/span.h"
#include "vecmath/kernels.h"

namespace proximity {
namespace {

// Telemetry mirrors of AnswerCacheStats, same split as the retrieval
// cache: struct fields stay plain (single-threaded by contract, the
// concurrent wrapper serializes under its mutex), registry counters are
// relaxed atomics visible to the exporters.
const obs::CounterHandle kObsLookups("acache.lookups");
const obs::CounterHandle kObsHits("acache.hits");
const obs::CounterHandle kObsMisses("acache.misses");
const obs::CounterHandle kObsStaleHits("acache.stale_hits");
const obs::CounterHandle kObsInsertions("acache.insertions");
const obs::CounterHandle kObsRefreshes("acache.refreshes");
const obs::CounterHandle kObsEvictions("acache.evictions");
const obs::GaugeHandle kObsOccupancy("acache.occupancy");
const obs::GaugeHandle kObsCapacity("acache.capacity");

}  // namespace

AnswerCache::AnswerCache(std::size_t dim, AnswerCacheOptions options)
    : dim_(dim), options_(options), keys_(0, dim) {
  if (dim == 0) {
    throw std::invalid_argument("AnswerCache: dim must be > 0");
  }
  if (options_.capacity == 0) {
    throw std::invalid_argument("AnswerCache: capacity must be > 0");
  }
  if (options_.tolerance < 0.f) {
    throw std::invalid_argument("AnswerCache: tolerance must be >= 0");
  }
  keys_.Reserve(options_.capacity);
  // Same trick as the retrieval cache: keep per-row squared norms so
  // cosine scans take the norm-assisted batch kernel.
  if (options_.metric == Metric::kCosine) keys_.EnableNormCache();
  answers_.reserve(options_.capacity);
  entry_gen_.reserve(options_.capacity);
}

std::optional<std::pair<std::size_t, float>> AnswerCache::ScanKeys(
    std::span<const float> query) {
  const std::size_t n = keys_.rows();
  if (n == 0) return std::nullopt;
  const obs::Span span(obs::Stage::kCacheScan);
  scan_buffer_.resize(n);
  BatchDistanceWithNorms(options_.metric, query, keys_.data(),
                         keys_.RowNorms(), n, dim_, scan_buffer_.data());
  stats_.keys_scanned += n;
  obs::ScanPrimaryBytes(n * dim_ * sizeof(float));
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (scan_buffer_[i] < scan_buffer_[best]) best = i;
  }
  return std::make_pair(best, scan_buffer_[best]);
}

AnswerCache::LookupResult AnswerCache::Lookup(std::span<const float> query) {
  if (query.size() != dim_) {
    throw std::invalid_argument("AnswerCache::Lookup: dim mismatch");
  }
  ++stats_.lookups;
  kObsLookups.Inc();
  LookupResult result;
  const obs::Span span(obs::Stage::kCacheLookup);
  const auto best = ScanKeys(query);
  if (best) result.best_distance = best->second;
  if (best && best->second <= options_.tolerance) {
    result.hit = true;
    result.stale = entry_gen_[best->first] != generation_;
    result.answer = &answers_[best->first];
    ++stats_.hits;
    kObsHits.Inc();
    if (result.stale) {
      ++stats_.stale_hits;
      kObsStaleHits.Inc();
    }
  } else {
    ++stats_.misses;
    kObsMisses.Inc();
  }
  return result;
}

void AnswerCache::Insert(std::span<const float> query, CachedAnswer answer) {
  if (query.size() != dim_) {
    throw std::invalid_argument("AnswerCache::Insert: dim mismatch");
  }
  const obs::Span span(obs::Stage::kInsert);
  // Upsert: a τ-close existing entry is refreshed in place, so a
  // regenerated answer replaces the stale one that triggered it instead
  // of coexisting with it.
  const auto best = ScanKeys(query);
  std::size_t slot;
  if (best && best->second <= options_.tolerance) {
    slot = best->first;
    keys_.SetRow(slot, query);
    ++stats_.refreshes;
    kObsRefreshes.Inc();
  } else if (keys_.rows() < options_.capacity) {
    slot = keys_.rows();
    keys_.AppendRow(query);
    answers_.emplace_back();
    entry_gen_.push_back(0);
  } else {
    // FIFO replacement, the paper's choice for the retrieval tier too.
    slot = fifo_next_;
    fifo_next_ = (fifo_next_ + 1) % options_.capacity;
    keys_.SetRow(slot, query);
    ++stats_.evictions;
    kObsEvictions.Inc();
  }
  answers_[slot] = std::move(answer);
  entry_gen_[slot] = generation_;
  ++stats_.insertions;
  kObsInsertions.Inc();
  kObsOccupancy.Set(static_cast<double>(keys_.rows()));
  kObsCapacity.Set(static_cast<double>(options_.capacity));
}

void AnswerCache::Clear() {
  keys_ = Matrix(0, dim_);
  keys_.Reserve(options_.capacity);
  if (options_.metric == Metric::kCosine) keys_.EnableNormCache();
  answers_.clear();
  entry_gen_.clear();
  fifo_next_ = 0;
  kObsOccupancy.Set(0.0);
}

ConcurrentAnswerCache::ConcurrentAnswerCache(std::size_t dim,
                                             AnswerCacheOptions options)
    : dim_(dim), cache_(dim, options) {}

float ConcurrentAnswerCache::tolerance() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.tolerance();
}

void ConcurrentAnswerCache::set_tolerance(float tau) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.set_tolerance(tau);
}

void ConcurrentAnswerCache::set_generation(std::uint64_t gen) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.set_generation(gen);
}

std::uint64_t ConcurrentAnswerCache::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.generation();
}

std::optional<ConcurrentAnswerCache::Hit> ConcurrentAnswerCache::Lookup(
    std::span<const float> query) {
  std::lock_guard<std::mutex> lock(mu_);
  const AnswerCache::LookupResult result = cache_.Lookup(query);
  if (!result.hit) return std::nullopt;
  Hit hit;
  hit.stale = result.stale;
  hit.best_distance = result.best_distance;
  hit.answer = *result.answer;
  return hit;
}

void ConcurrentAnswerCache::Insert(std::span<const float> query,
                                   CachedAnswer answer) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Insert(query, std::move(answer));
}

AnswerCacheStats ConcurrentAnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.stats();
}

std::size_t ConcurrentAnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace proximity
