#include "cache/adaptive_tau.h"

#include <algorithm>
#include <stdexcept>

namespace proximity {

AdaptiveTau::AdaptiveTau(AdaptiveTauOptions options)
    : options_(options), tau_(options.initial_tau) {
  if (options_.window == 0) {
    throw std::invalid_argument("AdaptiveTau: window must be > 0");
  }
  if (options_.step <= 1.0) {
    throw std::invalid_argument("AdaptiveTau: step must be > 1");
  }
  if (options_.min_tau > options_.max_tau) {
    throw std::invalid_argument("AdaptiveTau: min_tau > max_tau");
  }
  if (options_.period == 0) options_.period = 1;
  tau_ = std::clamp(tau_, options_.min_tau, options_.max_tau);
}

double AdaptiveTau::WindowedHitRate() const noexcept {
  if (window_.empty()) return 0.0;
  return static_cast<double>(window_hits_) /
         static_cast<double>(window_.size());
}

double AdaptiveTau::Observe(bool hit) {
  ++observations_;
  window_.push_back(hit);
  if (hit) ++window_hits_;
  if (window_.size() > options_.window) {
    if (window_.front()) --window_hits_;
    window_.pop_front();
  }

  // Adjust only on full windows and on the configured cadence.
  if (window_.size() == options_.window &&
      observations_ % options_.period == 0) {
    const double rate = WindowedHitRate();
    if (rate < options_.target_hit_rate) {
      tau_ *= options_.step;
      if (tau_ <= 0.0) tau_ = 1e-3;  // escape the τ = 0 fixed point
      ++adjustments_;
    } else if (rate > options_.target_hit_rate) {
      tau_ /= options_.step;
      ++adjustments_;
    }
    tau_ = std::clamp(tau_, options_.min_tau, options_.max_tau);
  }
  return tau_;
}

}  // namespace proximity
