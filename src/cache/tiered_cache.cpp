#include "cache/tiered_cache.h"

#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace proximity {

namespace {
const obs::CounterHandle kObsLookups("tcache.lookups");
const obs::CounterHandle kObsL1Hits("tcache.l1_hits");
const obs::CounterHandle kObsL2Hits("tcache.l2_hits");
const obs::CounterHandle kObsMisses("tcache.misses");
}  // namespace

TieredCache::TieredCache(std::size_t dim, TieredCacheOptions options)
    : l1_(dim, options.l1_capacity), l2_(dim, options.l2) {}

TieredCache::LookupResult TieredCache::Lookup(std::span<const float> query) {
  const obs::Span span(obs::Stage::kCacheLookup);
  ++stats_.lookups;
  kObsLookups.Inc();
  LookupResult result;

  if (const auto* docs = l1_.Lookup(query)) {
    ++stats_.l1_hits;
    kObsL1Hits.Inc();
    result.source = Source::kL1;
    result.documents = *docs;
    return result;
  }

  const auto l2_result = l2_.Lookup(query);
  if (l2_result.hit) {
    ++stats_.l2_hits;
    kObsL2Hits.Inc();
    result.source = Source::kL2;
    // Promote under the exact query key: an identical repeat now costs a
    // hash probe instead of the L2 scan. The promoted copy is what we
    // return (the L2 span could be invalidated by the promotion's own
    // bookkeeping in future revisions; the L1 copy is stable).
    l1_.Insert(query,
               {l2_result.documents.begin(), l2_result.documents.end()});
    result.documents = *l1_.Lookup(query);
    return result;
  }

  ++stats_.misses;
  kObsMisses.Inc();
  return result;
}

void TieredCache::Insert(std::span<const float> query,
                         std::vector<VectorId> documents) {
  l1_.Insert(query, documents);
  l2_.Insert(query, std::move(documents));
}

std::vector<VectorId> TieredCache::FetchOrRetrieve(
    std::span<const float> query,
    const std::function<std::vector<VectorId>(std::span<const float>)>&
        retrieve,
    Source* source_out) {
  const LookupResult cached = Lookup(query);
  if (cached.source != Source::kMiss) {
    if (source_out != nullptr) *source_out = cached.source;
    return {cached.documents.begin(), cached.documents.end()};
  }
  std::vector<VectorId> documents = retrieve(query);
  Insert(query, documents);
  if (source_out != nullptr) *source_out = Source::kMiss;
  return documents;
}

void TieredCache::Clear() {
  l1_.Clear();
  l2_.Clear();
}

}  // namespace proximity
