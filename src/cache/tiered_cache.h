// Two-level cache: an exact O(1) front (L1) over the approximate
// Proximity cache (L2).
//
// Motivation: production query streams contain many *bit-identical*
// repeats (retries, pagination, multi-turn context refreshes). Those are
// served by a hash probe without paying the L2 linear key scan; only
// genuinely new phrasings fall through to similarity matching. Related
// systems stack caches the same way (RAGCACHE's hierarchy, discussed in
// the paper's related work §5).
//
// L2 hits are promoted into L1 under the *queried* embedding, so an exact
// repeat of a promoted query short-circuits at L1 next time.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cache/exact_cache.h"
#include "cache/proximity_cache.h"

namespace proximity {

struct TieredCacheOptions {
  std::size_t l1_capacity = 64;
  ProximityCacheOptions l2;
};

struct TieredCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t misses = 0;

  double HitRate() const noexcept {
    return lookups ? static_cast<double>(l1_hits + l2_hits) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
};

class TieredCache {
 public:
  TieredCache(std::size_t dim, TieredCacheOptions options);

  enum class Source { kMiss, kL1, kL2 };

  struct LookupResult {
    Source source = Source::kMiss;
    /// Valid until the next Insert/Lookup (may point into either level).
    std::span<const VectorId> documents{};
  };

  /// L1 exact probe first; on miss, L2 approximate scan. An L2 hit is
  /// promoted into L1 under this exact query embedding.
  LookupResult Lookup(std::span<const float> query);

  /// Inserts into both levels.
  void Insert(std::span<const float> query, std::vector<VectorId> documents);

  /// Algorithm-1-style convenience (see ProximityCache::FetchOrRetrieve).
  std::vector<VectorId> FetchOrRetrieve(
      std::span<const float> query,
      const std::function<std::vector<VectorId>(std::span<const float>)>&
          retrieve,
      Source* source_out = nullptr);

  void Clear();

  const TieredCacheStats& stats() const noexcept { return stats_; }
  const ProximityCache& l2() const noexcept { return l2_; }
  const ExactCache& l1() const noexcept { return l1_; }
  std::size_t dim() const noexcept { return l2_.dim(); }

 private:
  ExactCache l1_;
  ProximityCache l2_;
  TieredCacheStats stats_;
};

}  // namespace proximity
