// ProximityCache — the paper's contribution (§3, Algorithm 1).
//
// An approximate key-value cache for RAG document retrieval. Keys are query
// embeddings previously sent to the vector database; values are the sorted
// document-index lists the database returned. A lookup linearly scans all
// cached keys with the same SIMD distance kernels the flat index uses
// (§3.2.1: "Our current implementation does a linear scan over the keys");
// if the closest key is within the similarity tolerance τ, the associated
// documents are returned and the database lookup is skipped.
//
// Slot management: entries live in a fixed arena of `capacity` rows that
// fills append-only; once full, the eviction policy picks a victim slot
// which the new entry overwrites. Live keys are therefore always one
// contiguous row-major block, so the scan is a single batched kernel pass.
//
// Not thread-safe: the RAG pipeline issues queries sequentially (§2.1);
// wrap with a mutex for concurrent use.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/eviction_policy.h"
#include "common/types.h"
#include "vecmath/matrix.h"
#include "vecmath/metric.h"

namespace proximity {

/// What a Lookup does when the best key is within τ but the entry was
/// filled under an older index generation (the corpus has mutated since;
/// DESIGN.md §13). Every stale match counts `stale_hits` regardless.
enum class StalenessPolicy : std::uint32_t {
  /// Serve the entry anyway — the paper's bet that approximate staleness
  /// is acceptable, now made explicit and observable.
  kServeStale = 0,
  /// Report a miss and drop the stale entry, forcing the pipeline to
  /// re-retrieve and refill under the current generation.
  kRevalidate = 1,
  /// Report a miss and drop EVERY entry within τ of the query: the
  /// mutated region is purged wholesale (RAGCache-style region
  /// invalidation), so nearby stale entries cannot serve either.
  kInvalidateRegion = 2,
};

const char* StalenessPolicyName(StalenessPolicy policy) noexcept;
bool ParseStalenessPolicy(const std::string& name, StalenessPolicy* out);

struct ProximityCacheOptions {
  /// Cache capacity c (entries). §3.2.1.
  std::size_t capacity = 100;
  /// Similarity tolerance τ. Distances <= τ count as a hit; τ = 0 degrades
  /// to exact matching (§3.2.3).
  float tolerance = 1.0f;
  /// Distance function; must equal the underlying database's metric (§3.1).
  Metric metric = Metric::kL2;
  /// Replacement policy; the paper uses FIFO (§3.2.2).
  EvictionKind eviction = EvictionKind::kFifo;
  /// Seed for the random eviction policy.
  std::uint64_t seed = 42;
  /// Staleness bound (extension): entries older than this many cache
  /// operations (lookups + insertions) are never served — the lookup
  /// reports a miss so the pipeline refreshes from the database. Storage
  /// is reclaimed by the normal eviction policy. 0 disables expiry.
  /// Rationale: the cached document lists shadow the vector database; if
  /// the database is updated (new documents indexed), a TTL bounds how
  /// long the cache can keep serving pre-update results.
  std::uint64_t max_age = 0;
  /// Hit-time behavior for entries filled under an older index
  /// generation (see set_generation and DESIGN.md §13).
  StalenessPolicy staleness = StalenessPolicy::kServeStale;
};

/// Counters exposed for the evaluation (§4.2: cache hit rate is
/// hits / lookups).
///
/// Concurrency audit (ISSUE 2): these fields are plain integers and are
/// safe exactly because every mutation path is serialized — ProximityCache
/// is single-threaded by contract, and ConcurrentProximityCache only
/// touches the inner cache under its mutex. Do NOT mutate them from a
/// lock-free path; the hot counters are mirrored into the obs
/// MetricsRegistry (per-thread relaxed atomics, names `cache.*`), which is
/// the safe-under-contention, exporter-visible copy. concurrent_test
/// verifies both stay exact under contention.
struct ProximityCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Total keys compared across all lookups (scan work).
  std::uint64_t keys_scanned = 0;
  /// Matches that were suppressed because the entry exceeded max_age.
  std::uint64_t expired_skips = 0;
  /// Within-τ matches whose entry generation trailed the index
  /// generation (counted under every staleness policy).
  std::uint64_t stale_hits = 0;
  /// Entries dropped by the revalidate/invalidate-region policies.
  std::uint64_t stale_evictions = 0;

  double HitRate() const noexcept {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class ProximityCache {
 public:
  ProximityCache(std::size_t dim, ProximityCacheOptions options = {});

  std::size_t dim() const noexcept { return dim_; }
  std::size_t capacity() const noexcept { return options_.capacity; }
  std::size_t size() const noexcept { return keys_.rows(); }
  float tolerance() const noexcept { return options_.tolerance; }
  Metric metric() const noexcept { return options_.metric; }
  EvictionKind eviction() const noexcept { return options_.eviction; }

  /// Adjusts τ at runtime (used by the adaptive controller, §3.2.3).
  void set_tolerance(float tau) noexcept { options_.tolerance = tau; }

  /// The cache-staleness contract (DESIGN.md §13): the owner pushes the
  /// index's generation counter here after mutations; Insert stamps the
  /// current value into the entry, and Lookup compares the stamp at hit
  /// time under options().staleness. Must be monotone.
  void set_generation(std::uint64_t gen) noexcept { generation_ = gen; }
  std::uint64_t generation() const noexcept { return generation_; }
  StalenessPolicy staleness() const noexcept { return options_.staleness; }

  struct LookupResult {
    bool hit = false;
    /// Distance to the best-matching key; +inf when the cache is empty.
    float best_distance = std::numeric_limits<float>::infinity();
    /// The cached document indices (hit only). The span stays valid until
    /// the next Insert/Clear.
    std::span<const VectorId> documents{};
  };

  /// Algorithm 1 lines 3-6: scans all keys, returns the value of the best
  /// match if its distance is <= τ. Updates hit/miss statistics and the
  /// eviction policy's access bookkeeping.
  LookupResult Lookup(std::span<const float> query);

  /// Algorithm 1 lines 7-11 (post-database path): stores the retrieved
  /// indices under the query key, evicting one entry if the cache is full.
  void Insert(std::span<const float> query, std::vector<VectorId> documents);

  /// The full Algorithm 1: returns cached documents on a hit, otherwise
  /// invokes `retrieve` (the database lookup), inserts, and returns its
  /// result. `hit_out`, if non-null, reports which path was taken.
  std::vector<VectorId> FetchOrRetrieve(
      std::span<const float> query,
      const std::function<std::vector<VectorId>(std::span<const float>)>&
          retrieve,
      bool* hit_out = nullptr);

  void Clear();

  const ProximityCacheStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = {}; }

  /// Introspection for tests: slot contents (slot < size()).
  std::span<const float> KeyAt(std::size_t slot) const;
  std::span<const VectorId> ValueAt(std::size_t slot) const;

  /// Persists options and entries (not statistics). On load, eviction
  /// bookkeeping is reconstructed by re-inserting entries in slot order —
  /// an approximation of the original age order, which is the usual
  /// warm-restart trade-off for caches.
  void SaveTo(std::ostream& os) const;
  static ProximityCache LoadFrom(std::istream& is);

 private:
  /// Returns (slot, distance) of the closest key, or nullopt if empty.
  std::optional<std::pair<std::size_t, float>> ScanKeys(
      std::span<const float> query);

  std::size_t dim_;
  ProximityCacheOptions options_;
  std::unique_ptr<EvictionPolicy> policy_;

  /// Drops `slots` (swap-with-last compaction) and rebuilds the eviction
  /// policy's bookkeeping in slot order — same age approximation as
  /// LoadFrom's warm restart. `slots` must be sorted ascending.
  void RemoveSlots(const std::vector<std::size_t>& slots);

  Matrix keys_;                                // one row per slot
  std::vector<std::vector<VectorId>> values_;  // parallels keys_ rows
  std::vector<std::uint64_t> birth_;           // op tick at insertion
  std::vector<std::uint64_t> entry_gen_;       // index gen at fill time
  std::vector<float> scan_buffer_;             // distance scratch
  std::uint64_t op_tick_ = 0;                  // advances on every op
  std::uint64_t generation_ = 0;               // latest index generation

  ProximityCacheStats stats_;
};

}  // namespace proximity
