// ReuseRouter — the grounding check in front of answer reuse.
//
// A τ-hit in the AnswerCache says the *query* looks familiar; it says
// nothing about whether the *evidence* the cached answer was generated
// from still matches what retrieval would return today. Following the
// grounded-routing idea in PAPERS.md, every answer-cache hit is routed
// by comparing the cached entry's retrieved-doc id set and distance
// profile against a fresh (or overlapped) retrieval:
//
//   kServe       — evidence overlap is high and the distance profile
//                  has not drifted: commit the cached/drafted answer.
//   kPatch       — partial overlap: keep the draft but splice in the
//                  fresh context (the answer model re-judges it).
//   kRegenerate  — low overlap, heavy drift, or a stale generation
//                  stamp: discard the draft and run the full path.
//
// A stale entry (its source docs predate the index's current mutation
// generation — DESIGN.md §13) is never served regardless of overlap:
// its doc ids may reference deleted vectors.
//
// Not thread-safe; each pipeline or driver flusher owns its router.
// The router.* registry counters are incremented inside Route, so both
// the sequential pipeline and the serving driver feed the same
// telemetry for free.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"

namespace proximity {

enum class ReuseDecision : std::uint32_t {
  kServe = 0,
  kPatch = 1,
  kRegenerate = 2,
};

const char* ReuseDecisionName(ReuseDecision decision) noexcept;

struct ReuseRouterOptions {
  /// Minimum evidence overlap (|cached ∩ fresh| / |cached|) to serve.
  double serve_overlap = 0.6;
  /// Minimum overlap to patch; below this the router regenerates.
  double patch_overlap = 0.3;
  /// Maximum relative drift of the mean retrieval distance for a
  /// serve; beyond it the corpus moved under the query and the router
  /// downgrades to patch even at full id overlap.
  double max_distance_drift = 0.5;
};

/// One routing verdict plus the signals it was derived from (surfaced
/// in tests, the bench JSON, and operator debugging).
struct ReuseVerdict {
  ReuseDecision decision = ReuseDecision::kRegenerate;
  /// |cached ∩ fresh| / |cached| (1.0 when both evidence sets empty).
  double overlap = 0.0;
  /// |mean(fresh) − mean(cached)| / |mean(cached)|, 0 when either
  /// distance profile is missing.
  double drift = 0.0;
  /// The decision was forced by a stale generation stamp.
  bool stale_forced = false;
};

class ReuseRouter {
 public:
  explicit ReuseRouter(ReuseRouterOptions options = {});

  const ReuseRouterOptions& options() const noexcept { return options_; }

  /// Routes one answer-cache hit. `stale` is the cache's generation
  /// verdict; the spans are the cached entry's evidence and the fresh
  /// retrieval's result (fresh_dists may be empty, e.g. when the fresh
  /// docs came from a retrieval-cache hit that carries no distances).
  ReuseVerdict Route(bool stale, std::span<const VectorId> cached_docs,
                     std::span<const float> cached_dists,
                     std::span<const VectorId> fresh_docs,
                     std::span<const float> fresh_dists);

  struct Stats {
    std::uint64_t routed = 0;
    std::uint64_t served = 0;
    std::uint64_t patched = 0;
    std::uint64_t regenerated = 0;
    /// Regenerations forced by a stale generation stamp alone.
    std::uint64_t stale_forced = 0;
  };

  const Stats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = {}; }

 private:
  ReuseRouterOptions options_;
  Stats stats_;
};

}  // namespace proximity
