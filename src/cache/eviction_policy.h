// Eviction policies for the Proximity cache.
//
// The paper opts for FIFO (§3.2.2: "It evicts the oldest entry in the
// cache, irrespective of how often or recently it has been accessed. FIFO
// provides a simple and predictable replacement strategy."). LRU, LFU, and
// Random are provided for the eviction ablation bench (DESIGN.md A-evict).
//
// Policies operate on slot numbers (0..capacity-1) owned by the cache; they
// never see keys or values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace proximity {

enum class EvictionKind { kFifo, kLru, kLfu, kRandom, kClock };

std::string_view EvictionName(EvictionKind kind) noexcept;
EvictionKind EvictionFromName(std::string_view name);

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// A new entry was written into `slot`.
  virtual void OnInsert(std::size_t slot) = 0;

  /// The entry in `slot` served a cache hit.
  virtual void OnAccess(std::size_t slot) = 0;

  /// Chooses the slot to evict and forgets it. Only called when at least
  /// one slot is live.
  virtual std::size_t SelectVictim() = 0;

  /// Drops all bookkeeping.
  virtual void Clear() = 0;

  virtual EvictionKind kind() const noexcept = 0;
};

/// First-in first-out over a ring of slots (the paper's policy; the
/// original implementation uses a growable ring buffer, §4.1).
class FifoPolicy final : public EvictionPolicy {
 public:
  void OnInsert(std::size_t slot) override;
  void OnAccess(std::size_t slot) override;  // no-op by definition
  std::size_t SelectVictim() override;
  void Clear() override;
  EvictionKind kind() const noexcept override { return EvictionKind::kFifo; }

 private:
  std::deque<std::size_t> ring_;
};

/// Least-recently-used via an intrusive recency list.
class LruPolicy final : public EvictionPolicy {
 public:
  void OnInsert(std::size_t slot) override;
  void OnAccess(std::size_t slot) override;
  std::size_t SelectVictim() override;
  void Clear() override;
  EvictionKind kind() const noexcept override { return EvictionKind::kLru; }

 private:
  void Touch(std::size_t slot);

  std::list<std::size_t> recency_;  // front = most recent
  std::unordered_map<std::size_t, std::list<std::size_t>::iterator> where_;
};

/// Least-frequently-used; ties broken by insertion age (older evicted
/// first), which makes the policy deterministic.
class LfuPolicy final : public EvictionPolicy {
 public:
  void OnInsert(std::size_t slot) override;
  void OnAccess(std::size_t slot) override;
  std::size_t SelectVictim() override;
  void Clear() override;
  EvictionKind kind() const noexcept override { return EvictionKind::kLfu; }

 private:
  struct Entry {
    std::uint64_t frequency = 0;
    std::uint64_t inserted_at = 0;
  };
  std::unordered_map<std::size_t, Entry> entries_;
  std::uint64_t tick_ = 0;
};

/// Uniform random victim (seeded for reproducibility).
class RandomPolicy final : public EvictionPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 42) : rng_(seed) {}

  void OnInsert(std::size_t slot) override;
  void OnAccess(std::size_t slot) override;
  std::size_t SelectVictim() override;
  void Clear() override;
  EvictionKind kind() const noexcept override { return EvictionKind::kRandom; }

 private:
  std::vector<std::size_t> slots_;
  std::unordered_map<std::size_t, std::size_t> position_;
  Rng rng_;
};

/// CLOCK (second chance): FIFO order, but an entry whose reference bit is
/// set gets one reprieve — the hand clears the bit and moves on. Captures
/// most of LRU's recency benefit at FIFO's bookkeeping cost.
class ClockPolicy final : public EvictionPolicy {
 public:
  void OnInsert(std::size_t slot) override;
  void OnAccess(std::size_t slot) override;
  std::size_t SelectVictim() override;
  void Clear() override;
  EvictionKind kind() const noexcept override { return EvictionKind::kClock; }

 private:
  std::deque<std::size_t> ring_;                      // hand at the front
  std::unordered_map<std::size_t, bool> referenced_;  // per live slot
};

/// Factory. `seed` only affects kRandom.
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionKind kind,
                                                   std::uint64_t seed = 42);

}  // namespace proximity
