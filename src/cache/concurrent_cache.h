// Thread-safe Proximity cache with approximate single-flight retrieval.
//
// The paper's pipeline issues queries sequentially; a deployment serving
// many users does not. This wrapper adds two things on top of
// ProximityCache:
//
//  1. Mutual exclusion: lookups and insertions are serialized on an
//     internal mutex (the linear scan is short — §3.2.1 — so a single
//     lock is the right call until c gets very large).
//
//  2. Approximate single-flight: when a query misses but an *in-flight*
//     database retrieval for a τ-similar query exists, the caller waits
//     for that retrieval instead of issuing a duplicate one. This is the
//     cache-stampede protection exact-key caches get from request
//     coalescing, generalized to similarity matching.
#pragma once

#include <condition_variable>
#include <future>
#include <list>
#include <mutex>
#include <optional>

#include "cache/proximity_cache.h"

namespace proximity {

struct ConcurrentCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  /// Misses that piggybacked on another thread's in-flight retrieval.
  std::uint64_t coalesced = 0;
  /// Misses that performed the database retrieval themselves.
  std::uint64_t retrievals = 0;

  double HitRate() const noexcept {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class ConcurrentProximityCache {
 public:
  ConcurrentProximityCache(std::size_t dim, ProximityCacheOptions options);

  std::size_t dim() const noexcept { return dim_; }

  /// The inner cache's metric (fixed at construction).
  Metric metric() const noexcept { return cache_.metric(); }

  /// The inner cache's current similarity tolerance τ. Takes the cache
  /// lock: τ may be adjusted at runtime by the adaptive controller.
  float tolerance() const;

  /// Re-tunes τ at runtime (the per-tenant adaptive controller steers it
  /// between lookups). Thread-safe; applies to subsequent lookups only.
  void set_tolerance(float tolerance);

  /// Pushes the index's mutation generation into the inner cache (the
  /// staleness contract; the serving driver calls this after applying
  /// mutations). Thread-safe.
  void set_generation(std::uint64_t gen);
  std::uint64_t generation() const;
  /// The inner cache's configured hit-time staleness policy.
  StalenessPolicy staleness() const;

  /// Thread-safe cache probe; returns a copy of the cached documents on a
  /// hit (spans would dangle across concurrent insertions).
  std::optional<std::vector<VectorId>> Lookup(std::span<const float> query);

  /// Thread-safe insertion.
  void Insert(std::span<const float> query, std::vector<VectorId> documents);

  /// Algorithm 1 with single-flight: on a miss, either performs `retrieve`
  /// (at most one thread per τ-neighborhood) or waits for the τ-similar
  /// retrieval already in progress. `retrieve` runs outside the lock.
  /// If the in-flight retrieval it waited on throws, the waiter falls
  /// back to its own retrieval.
  std::vector<VectorId> FetchOrRetrieve(
      std::span<const float> query,
      const std::function<std::vector<VectorId>(std::span<const float>)>&
          retrieve);

  ConcurrentCacheStats stats() const;
  /// Snapshot of the inner cache statistics (scan counters etc.).
  ProximityCacheStats inner_stats() const;
  std::size_t size() const;

 private:
  struct Flight {
    std::vector<float> key;
    std::shared_future<std::vector<VectorId>> future;
  };

  /// Finds an in-flight retrieval within tolerance of `query`.
  /// Caller must hold mu_.
  const Flight* FindFlight(std::span<const float> query) const;

  std::size_t dim_;
  mutable std::mutex mu_;
  ProximityCache cache_;
  std::list<Flight> flights_;
  ConcurrentCacheStats stats_;
};

}  // namespace proximity
