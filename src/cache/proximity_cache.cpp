#include "cache/proximity_cache.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/serde.h"
#include "obs/metrics_registry.h"
#include "obs/scan_stats.h"
#include "obs/span.h"
#include "vecmath/kernels.h"

// Cache snapshot magic tag (see index/index_io.h for the index tags).
namespace {
constexpr std::uint32_t kCacheMagic = 0x48434350;  // "PCCH"
}

namespace proximity {

namespace {
// Telemetry mirrors of the hot ProximityCacheStats counters. The struct
// fields stay plain (this class is single-threaded by contract; the
// concurrent wrapper serializes access under its mutex — see the
// lost-update audit in DESIGN.md §7), while these registry counters are
// per-thread relaxed atomics, safe under any interleaving and visible to
// the exporters. Gauges are process-level: with several cache instances
// the last writer wins.
const obs::CounterHandle kObsLookups("cache.lookups");
const obs::CounterHandle kObsHits("cache.hits");
const obs::CounterHandle kObsMisses("cache.misses");
const obs::CounterHandle kObsInsertions("cache.insertions");
const obs::CounterHandle kObsEvictions("cache.evictions");
const obs::CounterHandle kObsKeysScanned("cache.keys_scanned");
const obs::CounterHandle kObsExpiredSkips("cache.expired_skips");
const obs::CounterHandle kObsStaleHits("cache.stale_hits");
const obs::CounterHandle kObsStaleEvictions("cache.stale_evictions");
const obs::GaugeHandle kObsOccupancy("cache.occupancy");
const obs::GaugeHandle kObsCapacity("cache.capacity");
}  // namespace

const char* StalenessPolicyName(StalenessPolicy policy) noexcept {
  switch (policy) {
    case StalenessPolicy::kServeStale:
      return "serve-stale";
    case StalenessPolicy::kRevalidate:
      return "revalidate";
    case StalenessPolicy::kInvalidateRegion:
      return "invalidate-region";
  }
  return "unknown";
}

bool ParseStalenessPolicy(const std::string& name, StalenessPolicy* out) {
  if (name == "serve-stale") {
    *out = StalenessPolicy::kServeStale;
  } else if (name == "revalidate") {
    *out = StalenessPolicy::kRevalidate;
  } else if (name == "invalidate-region") {
    *out = StalenessPolicy::kInvalidateRegion;
  } else {
    return false;
  }
  return true;
}

ProximityCache::ProximityCache(std::size_t dim, ProximityCacheOptions options)
    : dim_(dim),
      options_(options),
      policy_(MakeEvictionPolicy(options.eviction, options.seed)),
      keys_(0, dim) {
  if (dim == 0) throw std::invalid_argument("ProximityCache: dim must be > 0");
  if (options_.capacity == 0) {
    throw std::invalid_argument("ProximityCache: capacity must be > 0");
  }
  if (options_.tolerance < 0.f && options_.metric != Metric::kInnerProduct) {
    // Negative tolerances only make sense for inner-product distances,
    // which are negated similarities and can be any real number.
    throw std::invalid_argument(
        "ProximityCache: tolerance must be >= 0 for L2/cosine metrics");
  }
  keys_.Reserve(options_.capacity);
  values_.reserve(options_.capacity);
  // Cosine scans reuse stored per-key squared norms (bit-identical to the
  // single-pair kernel), so every Lookup skips the per-key norm pass.
  if (options_.metric == Metric::kCosine) keys_.EnableNormCache();
}

std::optional<std::pair<std::size_t, float>> ProximityCache::ScanKeys(
    std::span<const float> query) {
  const std::size_t n = keys_.rows();
  if (n == 0) return std::nullopt;
  const obs::Span span(obs::Stage::kCacheScan);
  scan_buffer_.resize(n);
  BatchDistanceWithNorms(options_.metric, query, keys_.data(),
                         keys_.RowNorms(), n, dim_, scan_buffer_.data());
  // Cache key scans are float primary scans: they feed the same scan.*
  // bandwidth accounting as the index scans (docs/METRICS.md).
  obs::ScanPrimaryBytes(n * dim_ * sizeof(float));
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < n; ++i) {
    if (options_.max_age != 0 && op_tick_ - birth_[i] > options_.max_age) {
      // Expired entries are invisible to lookups; count only the ones
      // that would otherwise have matched, so the stat is meaningful.
      if (scan_buffer_[i] <= options_.tolerance) {
        ++stats_.expired_skips;
        kObsExpiredSkips.Inc();
      }
      continue;
    }
    if (!best || scan_buffer_[i] < scan_buffer_[*best]) best = i;
  }
  if (!best) return std::nullopt;
  return std::make_pair(*best, scan_buffer_[*best]);
}

ProximityCache::LookupResult ProximityCache::Lookup(
    std::span<const float> query) {
  if (query.size() != dim_) {
    throw std::invalid_argument("ProximityCache::Lookup: dim mismatch");
  }
  ++stats_.lookups;
  ++op_tick_;
  stats_.keys_scanned += keys_.rows();
  kObsLookups.Inc();
  kObsKeysScanned.Inc(keys_.rows());

  LookupResult result;
  const auto best = ScanKeys(query);
  if (!best) {
    ++stats_.misses;
    kObsMisses.Inc();
    return result;
  }
  result.best_distance = best->second;
  if (best->second <= options_.tolerance) {
    // Staleness contract (DESIGN.md §13): a within-τ match filled under
    // an older index generation is a stale hit; what happens next is
    // the configured policy's call.
    const bool stale = entry_gen_[best->first] != generation_;
    if (stale) {
      ++stats_.stale_hits;
      kObsStaleHits.Inc();
    }
    if (stale && options_.staleness == StalenessPolicy::kRevalidate) {
      RemoveSlots({best->first});
      ++stats_.misses;
      kObsMisses.Inc();
      return result;
    }
    if (stale &&
        options_.staleness == StalenessPolicy::kInvalidateRegion) {
      // Purge the whole τ-neighborhood of the query: every entry close
      // enough to have served this query is suspect after a mutation.
      // scan_buffer_ still holds this lookup's distances.
      std::vector<std::size_t> region;
      for (std::size_t i = 0; i < keys_.rows(); ++i) {
        if (scan_buffer_[i] <= options_.tolerance) region.push_back(i);
      }
      RemoveSlots(region);
      ++stats_.misses;
      kObsMisses.Inc();
      return result;
    }
    result.hit = true;
    result.documents = values_[best->first];
    ++stats_.hits;
    kObsHits.Inc();
    policy_->OnAccess(best->first);
  } else {
    ++stats_.misses;
    kObsMisses.Inc();
  }
  return result;
}

void ProximityCache::RemoveSlots(const std::vector<std::size_t>& slots) {
  if (slots.empty()) return;
  // Swap-with-last compaction, highest slot first so earlier swaps never
  // move a slot that is still pending removal.
  for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
    const std::size_t slot = *it;
    const std::size_t last = keys_.rows() - 1;
    if (slot != last) {
      keys_.SetRow(slot, keys_.Row(last));
      values_[slot] = std::move(values_[last]);
      birth_[slot] = birth_[last];
      entry_gen_[slot] = entry_gen_[last];
    }
    keys_.TruncateRows(last);
    values_.pop_back();
    birth_.pop_back();
    entry_gen_.pop_back();
    ++stats_.stale_evictions;
    kObsStaleEvictions.Inc();
  }
  // Eviction policies track slots, not entries; rebuild their
  // bookkeeping in slot order (the LoadFrom warm-restart approximation).
  policy_->Clear();
  for (std::size_t i = 0; i < keys_.rows(); ++i) policy_->OnInsert(i);
  kObsOccupancy.Set(static_cast<double>(keys_.rows()));
}

void ProximityCache::Insert(std::span<const float> query,
                            std::vector<VectorId> documents) {
  if (query.size() != dim_) {
    throw std::invalid_argument("ProximityCache::Insert: dim mismatch");
  }
  ++op_tick_;
  const obs::Span span(obs::Stage::kInsert);
  std::size_t slot;
  if (keys_.rows() < options_.capacity) {
    slot = keys_.rows();
    keys_.AppendRow(query);
    values_.emplace_back(std::move(documents));
    birth_.push_back(op_tick_);
    entry_gen_.push_back(generation_);
  } else {
    const obs::Span evict_span(obs::Stage::kEvict);
    slot = policy_->SelectVictim();
    ++stats_.evictions;
    kObsEvictions.Inc();
    keys_.SetRow(slot, query);  // keeps the norm cache in sync
    values_[slot] = std::move(documents);
    birth_[slot] = op_tick_;
    entry_gen_[slot] = generation_;
  }
  ++stats_.insertions;
  kObsInsertions.Inc();
  kObsOccupancy.Set(static_cast<double>(keys_.rows()));
  kObsCapacity.Set(static_cast<double>(options_.capacity));
  policy_->OnInsert(slot);
}

std::vector<VectorId> ProximityCache::FetchOrRetrieve(
    std::span<const float> query,
    const std::function<std::vector<VectorId>(std::span<const float>)>&
        retrieve,
    bool* hit_out) {
  const LookupResult cached = Lookup(query);
  if (cached.hit) {
    if (hit_out != nullptr) *hit_out = true;
    return {cached.documents.begin(), cached.documents.end()};
  }
  std::vector<VectorId> indices = retrieve(query);
  Insert(query, indices);
  if (hit_out != nullptr) *hit_out = false;
  return indices;
}

void ProximityCache::Clear() {
  keys_ = Matrix(0, dim_);
  keys_.Reserve(options_.capacity);
  if (options_.metric == Metric::kCosine) keys_.EnableNormCache();
  values_.clear();
  birth_.clear();
  entry_gen_.clear();
  op_tick_ = 0;
  policy_->Clear();
}

void ProximityCache::SaveTo(std::ostream& os) const {
  BinaryWriter w(os);
  // v2 appends the staleness contract (policy, index generation, per-
  // entry fill generations); v1 snapshots load with serve-stale/gen 0.
  WriteHeader(w, kCacheMagic, /*version=*/2);
  w.WriteU64(dim_);
  w.WriteU64(options_.capacity);
  w.WriteF32(options_.tolerance);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU32(static_cast<std::uint32_t>(options_.eviction));
  w.WriteU64(options_.seed);
  w.WriteU64(options_.max_age);
  WriteMatrix(w, keys_);
  w.WriteU64(values_.size());
  for (const auto& docs : values_) {
    w.WriteI64s(docs);
  }
  w.WriteU32(static_cast<std::uint32_t>(options_.staleness));
  w.WriteU64(generation_);
  w.WriteU64s(entry_gen_);
  w.Finish();
}

ProximityCache ProximityCache::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  const std::uint32_t version = ReadHeader(r, kCacheMagic, /*max_version=*/2);
  const std::uint64_t dim = r.ReadU64();
  ProximityCacheOptions opts;
  opts.capacity = r.ReadU64();
  opts.tolerance = r.ReadF32();
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.eviction = static_cast<EvictionKind>(r.ReadU32());
  opts.seed = r.ReadU64();
  opts.max_age = r.ReadU64();
  Matrix keys = ReadMatrix(r);
  const std::uint64_t entries = r.ReadU64();
  if (entries != keys.rows() || entries > opts.capacity ||
      keys.dim() != dim) {
    throw std::runtime_error("ProximityCache::LoadFrom: shape mismatch");
  }
  std::vector<std::vector<VectorId>> values;
  values.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    values.push_back(r.ReadI64s());
  }
  std::uint64_t generation = 0;
  std::vector<std::uint64_t> entry_gens;
  if (version >= 2) {
    std::uint32_t staleness = r.ReadU32();
    if (!ParseStalenessPolicy(
            StalenessPolicyName(static_cast<StalenessPolicy>(staleness)),
            &opts.staleness)) {
      throw std::runtime_error("ProximityCache::LoadFrom: bad staleness");
    }
    generation = r.ReadU64();
    entry_gens = r.ReadU64s(entries);
    if (entry_gens.size() != entries) {
      throw std::runtime_error(
          "ProximityCache::LoadFrom: generation list mismatch");
    }
  }
  r.VerifyChecksum();

  ProximityCache cache(dim, opts);
  cache.generation_ = generation;
  for (std::uint64_t i = 0; i < entries; ++i) {
    cache.Insert(keys.Row(i), std::move(values[i]));
  }
  if (version >= 2) cache.entry_gen_ = std::move(entry_gens);
  cache.ResetStats();  // the insertions above are reconstruction, not use
  return cache;
}

std::span<const float> ProximityCache::KeyAt(std::size_t slot) const {
  if (slot >= keys_.rows()) {
    throw std::out_of_range("ProximityCache::KeyAt: bad slot");
  }
  return keys_.Row(slot);
}

std::span<const VectorId> ProximityCache::ValueAt(std::size_t slot) const {
  if (slot >= values_.size()) {
    throw std::out_of_range("ProximityCache::ValueAt: bad slot");
  }
  return values_[slot];
}

}  // namespace proximity
