#include "cache/proximity_cache.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/serde.h"
#include "obs/metrics_registry.h"
#include "obs/scan_stats.h"
#include "obs/span.h"
#include "vecmath/kernels.h"

// Cache snapshot magic tag (see index/index_io.h for the index tags).
namespace {
constexpr std::uint32_t kCacheMagic = 0x48434350;  // "PCCH"
}

namespace proximity {

namespace {
// Telemetry mirrors of the hot ProximityCacheStats counters. The struct
// fields stay plain (this class is single-threaded by contract; the
// concurrent wrapper serializes access under its mutex — see the
// lost-update audit in DESIGN.md §7), while these registry counters are
// per-thread relaxed atomics, safe under any interleaving and visible to
// the exporters. Gauges are process-level: with several cache instances
// the last writer wins.
const obs::CounterHandle kObsLookups("cache.lookups");
const obs::CounterHandle kObsHits("cache.hits");
const obs::CounterHandle kObsMisses("cache.misses");
const obs::CounterHandle kObsInsertions("cache.insertions");
const obs::CounterHandle kObsEvictions("cache.evictions");
const obs::CounterHandle kObsKeysScanned("cache.keys_scanned");
const obs::CounterHandle kObsExpiredSkips("cache.expired_skips");
const obs::GaugeHandle kObsOccupancy("cache.occupancy");
const obs::GaugeHandle kObsCapacity("cache.capacity");
}  // namespace

ProximityCache::ProximityCache(std::size_t dim, ProximityCacheOptions options)
    : dim_(dim),
      options_(options),
      policy_(MakeEvictionPolicy(options.eviction, options.seed)),
      keys_(0, dim) {
  if (dim == 0) throw std::invalid_argument("ProximityCache: dim must be > 0");
  if (options_.capacity == 0) {
    throw std::invalid_argument("ProximityCache: capacity must be > 0");
  }
  if (options_.tolerance < 0.f && options_.metric != Metric::kInnerProduct) {
    // Negative tolerances only make sense for inner-product distances,
    // which are negated similarities and can be any real number.
    throw std::invalid_argument(
        "ProximityCache: tolerance must be >= 0 for L2/cosine metrics");
  }
  keys_.Reserve(options_.capacity);
  values_.reserve(options_.capacity);
  // Cosine scans reuse stored per-key squared norms (bit-identical to the
  // single-pair kernel), so every Lookup skips the per-key norm pass.
  if (options_.metric == Metric::kCosine) keys_.EnableNormCache();
}

std::optional<std::pair<std::size_t, float>> ProximityCache::ScanKeys(
    std::span<const float> query) {
  const std::size_t n = keys_.rows();
  if (n == 0) return std::nullopt;
  const obs::Span span(obs::Stage::kCacheScan);
  scan_buffer_.resize(n);
  BatchDistanceWithNorms(options_.metric, query, keys_.data(),
                         keys_.RowNorms(), n, dim_, scan_buffer_.data());
  // Cache key scans are float primary scans: they feed the same scan.*
  // bandwidth accounting as the index scans (docs/METRICS.md).
  obs::ScanPrimaryBytes(n * dim_ * sizeof(float));
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < n; ++i) {
    if (options_.max_age != 0 && op_tick_ - birth_[i] > options_.max_age) {
      // Expired entries are invisible to lookups; count only the ones
      // that would otherwise have matched, so the stat is meaningful.
      if (scan_buffer_[i] <= options_.tolerance) {
        ++stats_.expired_skips;
        kObsExpiredSkips.Inc();
      }
      continue;
    }
    if (!best || scan_buffer_[i] < scan_buffer_[*best]) best = i;
  }
  if (!best) return std::nullopt;
  return std::make_pair(*best, scan_buffer_[*best]);
}

ProximityCache::LookupResult ProximityCache::Lookup(
    std::span<const float> query) {
  if (query.size() != dim_) {
    throw std::invalid_argument("ProximityCache::Lookup: dim mismatch");
  }
  ++stats_.lookups;
  ++op_tick_;
  stats_.keys_scanned += keys_.rows();
  kObsLookups.Inc();
  kObsKeysScanned.Inc(keys_.rows());

  LookupResult result;
  const auto best = ScanKeys(query);
  if (!best) {
    ++stats_.misses;
    kObsMisses.Inc();
    return result;
  }
  result.best_distance = best->second;
  if (best->second <= options_.tolerance) {
    result.hit = true;
    result.documents = values_[best->first];
    ++stats_.hits;
    kObsHits.Inc();
    policy_->OnAccess(best->first);
  } else {
    ++stats_.misses;
    kObsMisses.Inc();
  }
  return result;
}

void ProximityCache::Insert(std::span<const float> query,
                            std::vector<VectorId> documents) {
  if (query.size() != dim_) {
    throw std::invalid_argument("ProximityCache::Insert: dim mismatch");
  }
  ++op_tick_;
  const obs::Span span(obs::Stage::kInsert);
  std::size_t slot;
  if (keys_.rows() < options_.capacity) {
    slot = keys_.rows();
    keys_.AppendRow(query);
    values_.emplace_back(std::move(documents));
    birth_.push_back(op_tick_);
  } else {
    const obs::Span evict_span(obs::Stage::kEvict);
    slot = policy_->SelectVictim();
    ++stats_.evictions;
    kObsEvictions.Inc();
    keys_.SetRow(slot, query);  // keeps the norm cache in sync
    values_[slot] = std::move(documents);
    birth_[slot] = op_tick_;
  }
  ++stats_.insertions;
  kObsInsertions.Inc();
  kObsOccupancy.Set(static_cast<double>(keys_.rows()));
  kObsCapacity.Set(static_cast<double>(options_.capacity));
  policy_->OnInsert(slot);
}

std::vector<VectorId> ProximityCache::FetchOrRetrieve(
    std::span<const float> query,
    const std::function<std::vector<VectorId>(std::span<const float>)>&
        retrieve,
    bool* hit_out) {
  const LookupResult cached = Lookup(query);
  if (cached.hit) {
    if (hit_out != nullptr) *hit_out = true;
    return {cached.documents.begin(), cached.documents.end()};
  }
  std::vector<VectorId> indices = retrieve(query);
  Insert(query, indices);
  if (hit_out != nullptr) *hit_out = false;
  return indices;
}

void ProximityCache::Clear() {
  keys_ = Matrix(0, dim_);
  keys_.Reserve(options_.capacity);
  if (options_.metric == Metric::kCosine) keys_.EnableNormCache();
  values_.clear();
  birth_.clear();
  op_tick_ = 0;
  policy_->Clear();
}

void ProximityCache::SaveTo(std::ostream& os) const {
  BinaryWriter w(os);
  WriteHeader(w, kCacheMagic, /*version=*/1);
  w.WriteU64(dim_);
  w.WriteU64(options_.capacity);
  w.WriteF32(options_.tolerance);
  w.WriteU32(static_cast<std::uint32_t>(options_.metric));
  w.WriteU32(static_cast<std::uint32_t>(options_.eviction));
  w.WriteU64(options_.seed);
  w.WriteU64(options_.max_age);
  WriteMatrix(w, keys_);
  w.WriteU64(values_.size());
  for (const auto& docs : values_) {
    w.WriteI64s(docs);
  }
  w.Finish();
}

ProximityCache ProximityCache::LoadFrom(std::istream& is) {
  BinaryReader r(is);
  ReadHeader(r, kCacheMagic, /*max_version=*/1);
  const std::uint64_t dim = r.ReadU64();
  ProximityCacheOptions opts;
  opts.capacity = r.ReadU64();
  opts.tolerance = r.ReadF32();
  opts.metric = static_cast<Metric>(r.ReadU32());
  opts.eviction = static_cast<EvictionKind>(r.ReadU32());
  opts.seed = r.ReadU64();
  opts.max_age = r.ReadU64();
  Matrix keys = ReadMatrix(r);
  const std::uint64_t entries = r.ReadU64();
  if (entries != keys.rows() || entries > opts.capacity ||
      keys.dim() != dim) {
    throw std::runtime_error("ProximityCache::LoadFrom: shape mismatch");
  }
  std::vector<std::vector<VectorId>> values;
  values.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    values.push_back(r.ReadI64s());
  }
  r.VerifyChecksum();

  ProximityCache cache(dim, opts);
  for (std::uint64_t i = 0; i < entries; ++i) {
    cache.Insert(keys.Row(i), std::move(values[i]));
  }
  cache.ResetStats();  // the insertions above are reconstruction, not use
  return cache;
}

std::span<const float> ProximityCache::KeyAt(std::size_t slot) const {
  if (slot >= keys_.rows()) {
    throw std::out_of_range("ProximityCache::KeyAt: bad slot");
  }
  return keys_.Row(slot);
}

std::span<const VectorId> ProximityCache::ValueAt(std::size_t slot) const {
  if (slot >= values_.size()) {
    throw std::out_of_range("ProximityCache::ValueAt: bad slot");
  }
  return values_[slot];
}

}  // namespace proximity
