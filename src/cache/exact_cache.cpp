#include "cache/exact_cache.h"

#include <cstring>
#include <stdexcept>

namespace proximity {

ExactCache::ExactCache(std::size_t dim, std::size_t capacity)
    : dim_(dim), capacity_(capacity) {
  if (dim == 0) throw std::invalid_argument("ExactCache: dim must be > 0");
  if (capacity == 0) {
    throw std::invalid_argument("ExactCache: capacity must be > 0");
  }
}

std::string ExactCache::MakeKey(std::span<const float> v) {
  std::string key(v.size() * sizeof(float), '\0');
  std::memcpy(key.data(), v.data(), key.size());
  return key;
}

const std::vector<VectorId>* ExactCache::Lookup(std::span<const float> query) {
  if (query.size() != dim_) {
    throw std::invalid_argument("ExactCache::Lookup: dim mismatch");
  }
  ++stats_.lookups;
  auto it = map_.find(MakeKey(query));
  if (it == map_.end()) return nullptr;
  ++stats_.hits;
  return &it->second;
}

void ExactCache::Insert(std::span<const float> query,
                        std::vector<VectorId> documents) {
  if (query.size() != dim_) {
    throw std::invalid_argument("ExactCache::Insert: dim mismatch");
  }
  std::string key = MakeKey(query);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second = std::move(documents);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(fifo_.front());
    fifo_.pop_front();
    ++stats_.evictions;
  }
  fifo_.push_back(key);
  map_.emplace(std::move(key), std::move(documents));
  ++stats_.insertions;
}

void ExactCache::Clear() {
  map_.clear();
  fifo_.clear();
}

}  // namespace proximity
