// Exact-match key-value cache baseline.
//
// §3 motivates Proximity by noting that "exact embedding matching is
// ineffective when queries are phrased slightly differently, as their
// embeddings are unlikely to match precisely". This hash-based cache gives
// that baseline its fair shot: keys match only on bit-identical embeddings
// (the behaviour Proximity degrades to at τ = 0, but with O(1) lookups).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace proximity {

struct ExactCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double HitRate() const noexcept {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class ExactCache {
 public:
  ExactCache(std::size_t dim, std::size_t capacity);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return map_.size(); }

  /// Returns the cached documents iff a bit-identical key exists; the
  /// pointer stays valid until the next Insert/Clear.
  const std::vector<VectorId>* Lookup(std::span<const float> query);

  /// Inserts with FIFO eviction when full. Re-inserting an existing key
  /// replaces its value without consuming a new slot.
  void Insert(std::span<const float> query, std::vector<VectorId> documents);

  void Clear();
  const ExactCacheStats& stats() const noexcept { return stats_; }

 private:
  /// Bit-exact byte serialization of the embedding, used as the map key.
  static std::string MakeKey(std::span<const float> v);

  std::size_t dim_;
  std::size_t capacity_;
  std::unordered_map<std::string, std::vector<VectorId>> map_;
  std::deque<std::string> fifo_;  // insertion order
  ExactCacheStats stats_;
};

}  // namespace proximity
