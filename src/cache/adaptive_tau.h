// Adaptive similarity-tolerance controller (the paper's future-work idea,
// §3.2.3: "one might consider adaptive strategies to dynamically adjust τ
// based on … the patterns of queries sent to the system").
//
// A proportional controller steers the observed hit rate toward a target:
// when the windowed hit rate is below target, τ is widened; when above, τ
// is tightened. τ stays inside [min_tau, max_tau] to bound the relevance
// loss.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace proximity {

struct AdaptiveTauOptions {
  double target_hit_rate = 0.6;
  /// Sliding window (number of lookups) over which the hit rate is
  /// estimated.
  std::size_t window = 64;
  /// Multiplicative step applied per adjustment (> 1).
  double step = 1.05;
  double min_tau = 0.0;
  double max_tau = 10.0;
  /// Initial tolerance.
  double initial_tau = 1.0;
  /// Adjust only every `period` observations to let the window settle.
  std::size_t period = 16;
};

class AdaptiveTau {
 public:
  explicit AdaptiveTau(AdaptiveTauOptions options = {});

  /// Records the outcome of one cache lookup and possibly adjusts τ.
  /// Returns the tolerance to use for the *next* lookup.
  double Observe(bool hit);

  double tau() const noexcept { return tau_; }
  double WindowedHitRate() const noexcept;
  std::uint64_t observations() const noexcept { return observations_; }
  std::uint64_t adjustments() const noexcept { return adjustments_; }

 private:
  AdaptiveTauOptions options_;
  double tau_;
  std::deque<bool> window_;
  std::size_t window_hits_ = 0;
  std::uint64_t observations_ = 0;
  std::uint64_t adjustments_ = 0;
};

}  // namespace proximity
