// Filter-aware cache routing.
//
// When the RAG pipeline supports metadata filters ("only documents from
// 2024", "only cardiology"), a cached result is only reusable by queries
// with the *same* filter: serving an unfiltered result to a filtered
// query (or across filters) silently violates the filter contract — a
// nasty bug class for approximate caches. The router keeps one
// independent ProximityCache per filter tag, lazily created, all sharing
// one option set; eviction is per-tag (a hot filter cannot evict a cold
// filter's entries beyond its own cache).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "cache/proximity_cache.h"

namespace proximity {

/// Opaque identity of a filter. Callers hash their predicate's parameters
/// (e.g. SplitMix64 over a canonical encoding); kNoFilter means
/// "unfiltered".
using FilterTag = std::uint64_t;
inline constexpr FilterTag kNoFilter = 0;

class FilteredCacheRouter {
 public:
  /// `options` applies to every per-tag cache.
  FilteredCacheRouter(std::size_t dim, ProximityCacheOptions options);

  /// The cache dedicated to `tag`, created on first use.
  ProximityCache& CacheFor(FilterTag tag);

  /// Lookup/insert restricted to the tag's cache.
  ProximityCache::LookupResult Lookup(FilterTag tag,
                                      std::span<const float> query);
  void Insert(FilterTag tag, std::span<const float> query,
              std::vector<VectorId> documents);

  std::size_t tag_count() const noexcept { return caches_.size(); }
  std::size_t dim() const noexcept { return dim_; }

  /// Aggregate statistics across all tags.
  ProximityCacheStats TotalStats() const;

  /// Drops the cache of one tag (e.g. after the underlying filtered view
  /// of the corpus changed); no-op if the tag has no cache.
  void Invalidate(FilterTag tag);
  void Clear();

 private:
  std::size_t dim_;
  ProximityCacheOptions options_;
  std::unordered_map<FilterTag, std::unique_ptr<ProximityCache>> caches_;
};

}  // namespace proximity
