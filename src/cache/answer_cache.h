// AnswerCache — the answer-level tier above the Proximity cache.
//
// The ProximityCache reuses *retrievals* (document-id lists); this cache
// reuses *answers*. Keys are query embeddings, values are the generated
// answer's payload plus the evidence it was grounded in: the retrieved
// document-id set and the distance profile of that retrieval. "Grounded
// Cache Routing for RAG" (PAPERS.md) argues answer reuse is only safe
// behind a router that re-checks this evidence against a fresh
// retrieval; the ReuseRouter (cache/reuse_router.h) consumes exactly
// what an entry stores here.
//
// Mechanics mirror the ProximityCache deliberately: a fixed arena of
// `capacity` rows scanned with the same batched SIMD distance kernels,
// its own (typically tighter) tolerance τ, FIFO replacement, and the
// staleness generation stamp of DESIGN.md §13 — the owner pushes the
// index's mutation generation via set_generation(), Insert stamps it,
// and Lookup reports a hit filled under an older generation as `stale`
// so the router can force regeneration.
//
// One deviation from the retrieval cache: Insert is an upsert. When the
// new key lands within τ of an existing entry, that entry is refreshed
// in place (key, payload, and generation) instead of a FIFO victim
// being evicted — regenerated answers replace the stale entry that
// triggered them rather than accumulating near-duplicates.
//
// AnswerCache is not thread-safe (the paper's pipeline is sequential);
// ConcurrentAnswerCache below is the mutex wrapper the multi-tenant
// serving driver uses.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "vecmath/matrix.h"
#include "vecmath/metric.h"

namespace proximity {

struct AnswerCacheOptions {
  /// Arena capacity (entries).
  std::size_t capacity = 64;
  /// Similarity tolerance τ for answer reuse. Usually tighter than the
  /// retrieval cache's τ: reusing a whole answer is a bigger bet than
  /// reusing a document list.
  float tolerance = 0.5f;
  /// Distance function; must equal the embedding space's metric.
  Metric metric = Metric::kL2;
};

/// One cached answer plus the evidence it was generated from. The
/// payload fields are what the simulator's answer model produces (a
/// real deployment would store the generated text); the evidence fields
/// are what the ReuseRouter compares against a fresh retrieval.
struct CachedAnswer {
  /// Document ids the answer was grounded in, in retrieval order.
  std::vector<VectorId> source_docs;
  /// Distances parallel to source_docs; may be empty when the serving
  /// path had no distances (e.g. a retrieval-cache hit).
  std::vector<float> source_distances;
  /// Answer payload: the judged context quality and the verdict the
  /// answer model produced from it.
  double relevance = 0.0;
  double misleading = 0.0;
  bool correct = false;
};

struct AnswerCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Within-τ matches whose entry generation trailed the index
  /// generation (reported to the caller via LookupResult::stale).
  std::uint64_t stale_hits = 0;
  std::uint64_t insertions = 0;
  /// Insertions that refreshed a τ-close existing entry in place.
  std::uint64_t refreshes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t keys_scanned = 0;

  double HitRate() const noexcept {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class AnswerCache {
 public:
  AnswerCache(std::size_t dim, AnswerCacheOptions options = {});

  std::size_t dim() const noexcept { return dim_; }
  std::size_t capacity() const noexcept { return options_.capacity; }
  std::size_t size() const noexcept { return keys_.rows(); }
  float tolerance() const noexcept { return options_.tolerance; }
  Metric metric() const noexcept { return options_.metric; }
  void set_tolerance(float tau) noexcept { options_.tolerance = tau; }

  /// The staleness contract (DESIGN.md §13, §15): the owner pushes the
  /// index's mutation generation here; Insert stamps it, Lookup reports
  /// hits filled under an older stamp as stale. Must be monotone.
  void set_generation(std::uint64_t gen) noexcept { generation_ = gen; }
  std::uint64_t generation() const noexcept { return generation_; }

  struct LookupResult {
    bool hit = false;
    /// Hit only: the entry predates the current generation. The router
    /// must treat this as ungrounded (forced regenerate).
    bool stale = false;
    /// Distance to the best-matching key; +inf when the cache is empty.
    float best_distance = std::numeric_limits<float>::infinity();
    /// Hit only: the cached entry. Valid until the next Insert/Clear.
    const CachedAnswer* answer = nullptr;
  };

  LookupResult Lookup(std::span<const float> query);

  /// Upsert: refreshes the τ-closest entry in place when one exists,
  /// otherwise appends (evicting the FIFO victim once full). Stamps the
  /// current generation either way.
  void Insert(std::span<const float> query, CachedAnswer answer);

  void Clear();

  const AnswerCacheStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = {}; }

 private:
  /// Returns (slot, distance) of the closest key, or nullopt if empty.
  std::optional<std::pair<std::size_t, float>> ScanKeys(
      std::span<const float> query);

  std::size_t dim_;
  AnswerCacheOptions options_;

  Matrix keys_;                        // one row per slot
  std::vector<CachedAnswer> answers_;  // parallels keys_ rows
  std::vector<std::uint64_t> entry_gen_;
  std::vector<float> scan_buffer_;
  std::size_t fifo_next_ = 0;  // next victim slot once full
  std::uint64_t generation_ = 0;

  AnswerCacheStats stats_;
};

/// Thread-safe wrapper (mirrors ConcurrentProximityCache): a single
/// mutex around the short linear scan. Used by the TenantRegistry for
/// the per-tenant answer caches the BatchingDriver probes.
class ConcurrentAnswerCache {
 public:
  ConcurrentAnswerCache(std::size_t dim, AnswerCacheOptions options);

  std::size_t dim() const noexcept { return dim_; }
  Metric metric() const noexcept { return cache_.metric(); }

  float tolerance() const;
  void set_tolerance(float tau);
  void set_generation(std::uint64_t gen);
  std::uint64_t generation() const;

  /// A hit, copied out: references into the inner cache would dangle
  /// across concurrent insertions.
  struct Hit {
    bool stale = false;
    float best_distance = 0.0f;
    CachedAnswer answer;
  };

  std::optional<Hit> Lookup(std::span<const float> query);
  void Insert(std::span<const float> query, CachedAnswer answer);

  AnswerCacheStats stats() const;
  std::size_t size() const;

 private:
  std::size_t dim_;
  mutable std::mutex mu_;
  AnswerCache cache_;
};

}  // namespace proximity
