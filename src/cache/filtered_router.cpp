#include "cache/filtered_router.h"

namespace proximity {

FilteredCacheRouter::FilteredCacheRouter(std::size_t dim,
                                         ProximityCacheOptions options)
    : dim_(dim), options_(options) {}

ProximityCache& FilteredCacheRouter::CacheFor(FilterTag tag) {
  auto it = caches_.find(tag);
  if (it == caches_.end()) {
    it = caches_.emplace(tag, std::make_unique<ProximityCache>(dim_, options_))
             .first;
  }
  return *it->second;
}

ProximityCache::LookupResult FilteredCacheRouter::Lookup(
    FilterTag tag, std::span<const float> query) {
  return CacheFor(tag).Lookup(query);
}

void FilteredCacheRouter::Insert(FilterTag tag, std::span<const float> query,
                                 std::vector<VectorId> documents) {
  CacheFor(tag).Insert(query, std::move(documents));
}

ProximityCacheStats FilteredCacheRouter::TotalStats() const {
  ProximityCacheStats total;
  for (const auto& [_, cache] : caches_) {
    const auto& s = cache->stats();
    total.lookups += s.lookups;
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.keys_scanned += s.keys_scanned;
    total.expired_skips += s.expired_skips;
  }
  return total;
}

void FilteredCacheRouter::Invalidate(FilterTag tag) { caches_.erase(tag); }

void FilteredCacheRouter::Clear() { caches_.clear(); }

}  // namespace proximity
