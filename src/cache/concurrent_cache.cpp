#include "cache/concurrent_cache.h"

#include <stdexcept>

#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "vecmath/kernels.h"

namespace proximity {

namespace {
// Wrapper-level telemetry (the inner ProximityCache reports `cache.*`).
const obs::CounterHandle kObsLookups("ccache.lookups");
const obs::CounterHandle kObsHits("ccache.hits");
const obs::CounterHandle kObsCoalesced("ccache.coalesced");
const obs::CounterHandle kObsRetrievals("ccache.retrievals");
}  // namespace

ConcurrentProximityCache::ConcurrentProximityCache(
    std::size_t dim, ProximityCacheOptions options)
    : dim_(dim), cache_(dim, options) {}

float ConcurrentProximityCache::tolerance() const {
  std::lock_guard lock(mu_);
  return cache_.tolerance();
}

void ConcurrentProximityCache::set_tolerance(float tolerance) {
  std::lock_guard lock(mu_);
  cache_.set_tolerance(tolerance);
}

void ConcurrentProximityCache::set_generation(std::uint64_t gen) {
  std::lock_guard lock(mu_);
  cache_.set_generation(gen);
}

std::uint64_t ConcurrentProximityCache::generation() const {
  std::lock_guard lock(mu_);
  return cache_.generation();
}

StalenessPolicy ConcurrentProximityCache::staleness() const {
  std::lock_guard lock(mu_);
  return cache_.staleness();
}

std::optional<std::vector<VectorId>> ConcurrentProximityCache::Lookup(
    std::span<const float> query) {
  // The span covers lock acquisition too, so cache_lookup latency under
  // the concurrent driver includes contention on the cache mutex.
  const obs::Span span(obs::Stage::kCacheLookup);
  std::lock_guard lock(mu_);
  ++stats_.lookups;
  kObsLookups.Inc();
  const auto result = cache_.Lookup(query);
  if (!result.hit) return std::nullopt;
  ++stats_.hits;
  kObsHits.Inc();
  return std::vector<VectorId>(result.documents.begin(),
                               result.documents.end());
}

void ConcurrentProximityCache::Insert(std::span<const float> query,
                                      std::vector<VectorId> documents) {
  std::lock_guard lock(mu_);
  cache_.Insert(query, std::move(documents));
}

const ConcurrentProximityCache::Flight*
ConcurrentProximityCache::FindFlight(std::span<const float> query) const {
  for (const auto& flight : flights_) {
    if (Distance(cache_.metric(), query, flight.key) <=
        cache_.tolerance()) {
      return &flight;
    }
  }
  return nullptr;
}

std::vector<VectorId> ConcurrentProximityCache::FetchOrRetrieve(
    std::span<const float> query,
    const std::function<std::vector<VectorId>(std::span<const float>)>&
        retrieve) {
  std::shared_future<std::vector<VectorId>> wait_on;
  std::promise<std::vector<VectorId>> my_promise;
  std::list<Flight>::iterator my_flight;
  bool i_retrieve = false;

  {
    const obs::Span span(obs::Stage::kCacheLookup);
    std::lock_guard lock(mu_);
    ++stats_.lookups;
    kObsLookups.Inc();
    const auto cached = cache_.Lookup(query);
    if (cached.hit) {
      ++stats_.hits;
      kObsHits.Inc();
      return {cached.documents.begin(), cached.documents.end()};
    }
    if (const Flight* flight = FindFlight(query)) {
      ++stats_.coalesced;
      kObsCoalesced.Inc();
      wait_on = flight->future;
    } else {
      ++stats_.retrievals;
      kObsRetrievals.Inc();
      i_retrieve = true;
      flights_.push_front(Flight{
          .key = {query.begin(), query.end()},
          .future = my_promise.get_future().share(),
      });
      my_flight = flights_.begin();
    }
  }

  if (!i_retrieve) {
    try {
      return wait_on.get();  // served with the coalesced result
    } catch (...) {
      // The flight owner failed; fall back to a retrieval of our own.
      std::lock_guard lock(mu_);
      ++stats_.retrievals;
      kObsRetrievals.Inc();
      i_retrieve = true;
      flights_.push_front(Flight{
          .key = {query.begin(), query.end()},
          .future = my_promise.get_future().share(),
      });
      my_flight = flights_.begin();
    }
  }

  // Retrieval runs outside the lock: the whole point is overlapping the
  // expensive database query with other threads' cache traffic.
  std::vector<VectorId> documents;
  try {
    documents = retrieve(query);
  } catch (...) {
    {
      std::lock_guard lock(mu_);
      my_promise.set_exception(std::current_exception());
      flights_.erase(my_flight);
    }
    throw;
  }

  {
    std::lock_guard lock(mu_);
    cache_.Insert(query, documents);
    my_promise.set_value(documents);
    flights_.erase(my_flight);
  }
  return documents;
}

ConcurrentCacheStats ConcurrentProximityCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

ProximityCacheStats ConcurrentProximityCache::inner_stats() const {
  std::lock_guard lock(mu_);
  return cache_.stats();
}

std::size_t ConcurrentProximityCache::size() const {
  std::lock_guard lock(mu_);
  return cache_.size();
}

}  // namespace proximity
