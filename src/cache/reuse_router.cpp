#include "cache/reuse_router.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/metrics_registry.h"

namespace proximity {
namespace {

const obs::CounterHandle kObsRouted("router.routed");
const obs::CounterHandle kObsServed("router.served");
const obs::CounterHandle kObsPatched("router.patched");
const obs::CounterHandle kObsRegenerated("router.regenerated");
const obs::CounterHandle kObsStaleForced("router.stale_forced");

double MeanOf(std::span<const float> values) {
  double sum = 0.0;
  for (const float v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// |cached ∩ fresh| / |cached|, as sets. Evidence lists are top-k
/// sized (tens of ids), so the quadratic membership test beats
/// building a hash set.
double EvidenceOverlap(std::span<const VectorId> cached,
                       std::span<const VectorId> fresh) {
  if (cached.empty()) return fresh.empty() ? 1.0 : 0.0;
  std::size_t shared = 0;
  for (const VectorId id : cached) {
    if (std::find(fresh.begin(), fresh.end(), id) != fresh.end()) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(cached.size());
}

}  // namespace

const char* ReuseDecisionName(ReuseDecision decision) noexcept {
  switch (decision) {
    case ReuseDecision::kServe:
      return "serve";
    case ReuseDecision::kPatch:
      return "patch";
    case ReuseDecision::kRegenerate:
      return "regenerate";
  }
  return "unknown";
}

ReuseRouter::ReuseRouter(ReuseRouterOptions options) : options_(options) {
  if (options_.patch_overlap > options_.serve_overlap) {
    throw std::invalid_argument(
        "ReuseRouter: patch_overlap must be <= serve_overlap");
  }
}

ReuseVerdict ReuseRouter::Route(bool stale,
                                std::span<const VectorId> cached_docs,
                                std::span<const float> cached_dists,
                                std::span<const VectorId> fresh_docs,
                                std::span<const float> fresh_dists) {
  ++stats_.routed;
  kObsRouted.Inc();
  ReuseVerdict verdict;
  verdict.overlap = EvidenceOverlap(cached_docs, fresh_docs);
  if (!cached_dists.empty() && !fresh_dists.empty()) {
    const double cached_mean = MeanOf(cached_dists);
    const double fresh_mean = MeanOf(fresh_dists);
    // Relative drift; abs() because inner-product distances go
    // negative, with a floor so a near-zero cached mean cannot blow up
    // the ratio.
    verdict.drift = std::abs(fresh_mean - cached_mean) /
                    std::max(std::abs(cached_mean), 1e-12);
  }
  if (stale) {
    // Stale stamps short-circuit: the cached doc ids may point at
    // deleted vectors, so no overlap score can make reuse grounded.
    verdict.decision = ReuseDecision::kRegenerate;
    verdict.stale_forced = true;
    ++stats_.regenerated;
    ++stats_.stale_forced;
    kObsRegenerated.Inc();
    kObsStaleForced.Inc();
    return verdict;
  }
  if (verdict.overlap >= options_.serve_overlap &&
      verdict.drift <= options_.max_distance_drift) {
    verdict.decision = ReuseDecision::kServe;
    ++stats_.served;
    kObsServed.Inc();
  } else if (verdict.overlap >= options_.patch_overlap) {
    verdict.decision = ReuseDecision::kPatch;
    ++stats_.patched;
    kObsPatched.Inc();
  } else {
    verdict.decision = ReuseDecision::kRegenerate;
    ++stats_.regenerated;
    kObsRegenerated.Inc();
  }
  return verdict;
}

}  // namespace proximity
