#include "cache/eviction_policy.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace proximity {

std::string_view EvictionName(EvictionKind kind) noexcept {
  switch (kind) {
    case EvictionKind::kFifo:
      return "fifo";
    case EvictionKind::kLru:
      return "lru";
    case EvictionKind::kLfu:
      return "lfu";
    case EvictionKind::kRandom:
      return "random";
    case EvictionKind::kClock:
      return "clock";
  }
  return "?";
}

EvictionKind EvictionFromName(std::string_view name) {
  if (name == "fifo") return EvictionKind::kFifo;
  if (name == "lru") return EvictionKind::kLru;
  if (name == "lfu") return EvictionKind::kLfu;
  if (name == "random") return EvictionKind::kRandom;
  if (name == "clock") return EvictionKind::kClock;
  throw std::invalid_argument("unknown eviction policy: " + std::string(name));
}

// ---------------------------------------------------------------- FIFO --

void FifoPolicy::OnInsert(std::size_t slot) { ring_.push_back(slot); }

void FifoPolicy::OnAccess(std::size_t) {}

std::size_t FifoPolicy::SelectVictim() {
  assert(!ring_.empty());
  const std::size_t victim = ring_.front();
  ring_.pop_front();
  return victim;
}

void FifoPolicy::Clear() { ring_.clear(); }

// ----------------------------------------------------------------- LRU --

void LruPolicy::Touch(std::size_t slot) {
  auto it = where_.find(slot);
  if (it != where_.end()) {
    recency_.erase(it->second);
  }
  recency_.push_front(slot);
  where_[slot] = recency_.begin();
}

void LruPolicy::OnInsert(std::size_t slot) { Touch(slot); }

void LruPolicy::OnAccess(std::size_t slot) { Touch(slot); }

std::size_t LruPolicy::SelectVictim() {
  assert(!recency_.empty());
  const std::size_t victim = recency_.back();
  recency_.pop_back();
  where_.erase(victim);
  return victim;
}

void LruPolicy::Clear() {
  recency_.clear();
  where_.clear();
}

// ----------------------------------------------------------------- LFU --

void LfuPolicy::OnInsert(std::size_t slot) {
  entries_[slot] = Entry{.frequency = 0, .inserted_at = tick_++};
}

void LfuPolicy::OnAccess(std::size_t slot) {
  auto it = entries_.find(slot);
  if (it != entries_.end()) ++it->second.frequency;
}

std::size_t LfuPolicy::SelectVictim() {
  assert(!entries_.empty());
  auto best = entries_.begin();
  for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
    const bool less_frequent = it->second.frequency < best->second.frequency;
    const bool tie_but_older =
        it->second.frequency == best->second.frequency &&
        it->second.inserted_at < best->second.inserted_at;
    if (less_frequent || tie_but_older) best = it;
  }
  const std::size_t victim = best->first;
  entries_.erase(best);
  return victim;
}

void LfuPolicy::Clear() {
  entries_.clear();
  tick_ = 0;
}

// -------------------------------------------------------------- Random --

void RandomPolicy::OnInsert(std::size_t slot) {
  position_[slot] = slots_.size();
  slots_.push_back(slot);
}

void RandomPolicy::OnAccess(std::size_t) {}

std::size_t RandomPolicy::SelectVictim() {
  assert(!slots_.empty());
  const std::size_t idx = static_cast<std::size_t>(rng_.Below(slots_.size()));
  const std::size_t victim = slots_[idx];
  // Swap-remove.
  slots_[idx] = slots_.back();
  position_[slots_[idx]] = idx;
  slots_.pop_back();
  position_.erase(victim);
  return victim;
}

void RandomPolicy::Clear() {
  slots_.clear();
  position_.clear();
}

// ---------------------------------------------------------------- CLOCK --

void ClockPolicy::OnInsert(std::size_t slot) {
  ring_.push_back(slot);
  referenced_[slot] = false;  // fresh entries start unreferenced
}

void ClockPolicy::OnAccess(std::size_t slot) {
  auto it = referenced_.find(slot);
  if (it != referenced_.end()) it->second = true;
}

std::size_t ClockPolicy::SelectVictim() {
  assert(!ring_.empty());
  for (;;) {
    const std::size_t slot = ring_.front();
    ring_.pop_front();
    auto it = referenced_.find(slot);
    if (it != referenced_.end() && it->second) {
      it->second = false;  // second chance: clear and move the hand on
      ring_.push_back(slot);
      continue;
    }
    referenced_.erase(slot);
    return slot;
  }
}

void ClockPolicy::Clear() {
  ring_.clear();
  referenced_.clear();
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionKind kind,
                                                   std::uint64_t seed) {
  switch (kind) {
    case EvictionKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case EvictionKind::kLru:
      return std::make_unique<LruPolicy>();
    case EvictionKind::kLfu:
      return std::make_unique<LfuPolicy>();
    case EvictionKind::kRandom:
      return std::make_unique<RandomPolicy>(seed);
    case EvictionKind::kClock:
      return std::make_unique<ClockPolicy>();
  }
  throw std::invalid_argument("MakeEvictionPolicy: bad kind");
}

}  // namespace proximity
