// Calibrated stochastic answer model — the LLaMA 3.1 Instruct stand-in.
//
// The paper's accuracy metric (§4.2) is the fraction of multiple-choice
// questions the LLM answers correctly given the (possibly cache-served)
// context. Reproducing that does not require a language model: accuracy
// depends on the *relevance of the served context*, which is fully
// observable in the simulator. The model is calibrated to the paper's
// anchor points:
//
//   MMLU:   48%  without RAG, ~50.2% with exact retrieval, and a mild
//           degradation toward the no-RAG floor with misleading context.
//   MedRAG: 57%  without RAG,  ~88%  with exact retrieval, and a steep
//           collapse to ~37% when the context is misleading (τ = 10).
//
// Context quality is summarized by two fractions computed against the
// workload's ground truth: `relevance` (gold passages of this question in
// the served list) and `misleading` (passages that are gold for a
// *different* question — plausible-but-wrong evidence, which is what a
// too-loose cache serves).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "workload/corpus.h"

namespace proximity {

struct ContextJudgment {
  /// Fraction of a full evidence set (min(context size, gold count)) that
  /// is gold for this question, in [0, 1].
  double relevance = 0.0;
  /// Same normalization, counting passages that are gold for a *different*
  /// question (plausible-but-wrong evidence), capped at 1.
  double misleading = 0.0;
};

/// Scores a served context against the workload ground truth.
ContextJudgment JudgeContext(std::span<const VectorId> served,
                             const Question& question,
                             const Workload& workload);

struct AnswerModelParams {
  /// Accuracy with no (or useless) retrieved context.
  double p_no_rag = 0.48;
  /// Accuracy with fully relevant context.
  double p_full_rag = 0.502;
  /// Accuracy drop when the context is fully misleading (applied on top of
  /// the relevance interpolation; large for MedRAG, small for MMLU).
  double misleading_penalty = 0.02;
};

/// Calibration presets matching the paper's reported anchors.
AnswerModelParams MmluAnswerParams() noexcept;
AnswerModelParams MedragAnswerParams() noexcept;

class AnswerModel {
 public:
  explicit AnswerModel(AnswerModelParams params) : params_(params) {}

  /// P(correct answer | context quality), clamped to [0.02, 0.98] so the
  /// simulated LLM is never an oracle.
  double CorrectProbability(const ContextJudgment& judgment) const noexcept;

  /// Stochastic multiple-choice outcome (used by tests / ad-hoc callers).
  bool AnswerCorrectly(const ContextJudgment& judgment, Rng& rng) const {
    return rng.Bernoulli(CorrectProbability(judgment));
  }

  /// Deterministic outcome given a per-question difficulty in [0, 1):
  /// correct iff difficulty < P(correct | context). A real LLM answers a
  /// fixed (prompt, context) pair deterministically; modelling difficulty
  /// as a fixed per-question quantile reproduces that — the same question
  /// with the same served context always resolves the same way, and
  /// accuracy over a stratified difficulty table matches the calibrated
  /// probabilities to within 1/num_questions (the paper reports stddevs
  /// as "negligible" for exactly this reason, §4.2).
  bool AnswerCorrectly(const ContextJudgment& judgment,
                       double difficulty) const noexcept {
    return difficulty < CorrectProbability(judgment);
  }

  const AnswerModelParams& params() const noexcept { return params_; }

 private:
  AnswerModelParams params_;
};

/// Builds a stratified difficulty table: a seeded random permutation of the
/// quantile midpoints (k + 0.5)/n, one per question. Stratification makes
/// the realized accuracy at any fixed probability p equal to p within 1/n,
/// for every seed, while seeds still vary *which* questions are hard.
std::vector<double> MakeDifficultyTable(std::size_t num_questions,
                                        std::uint64_t seed);

}  // namespace proximity
