#include "llm/prompt.h"

#include <stdexcept>

namespace proximity {

std::string BuildPrompt(std::string_view question,
                        const std::vector<std::string_view>& passages,
                        const PromptOptions& options) {
  std::string prompt;
  prompt.reserve(512 + passages.size() * 128);
  prompt += options.system_preamble;
  prompt += "\n\n";
  for (std::size_t i = 0; i < passages.size(); ++i) {
    std::string block = "[" + std::to_string(i + 1) + "] ";
    block += passages[i];
    block += '\n';
    if (prompt.size() + block.size() + question.size() + 16 >
        options.max_chars) {
      break;  // context window exhausted; drop the remaining passages
    }
    prompt += block;
  }
  prompt += "\nQuestion: ";
  prompt += question;
  prompt += "\nAnswer:";
  return prompt;
}

std::string BuildPrompt(std::string_view question,
                        const std::vector<VectorId>& passage_ids,
                        const std::vector<std::string>& corpus,
                        const PromptOptions& options) {
  std::vector<std::string_view> passages;
  passages.reserve(passage_ids.size());
  for (VectorId id : passage_ids) {
    if (id < 0 || static_cast<std::size_t>(id) >= corpus.size()) {
      throw std::out_of_range("BuildPrompt: passage id out of range");
    }
    passages.push_back(corpus[static_cast<std::size_t>(id)]);
  }
  return BuildPrompt(question, passages, options);
}

}  // namespace proximity
