// RAG prompt assembly (steps 3 and 7 of the workflow, Figure 1).
//
// The retrieved data chunks and the user query are combined into a single
// prompt for the LLM. The simulated LLM does not parse this text — it
// judges context ids directly — but the prompt builder keeps the pipeline
// end-to-end faithful and is what an adopter would swap a real LLM into.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace proximity {

struct PromptOptions {
  std::string_view system_preamble =
      "Answer the question using only the context passages below.";
  /// Hard cap on total prompt characters; passages are truncated to fit
  /// (mirrors a context-window limit).
  std::size_t max_chars = 16384;
};

/// Builds the augmented prompt: preamble, numbered context passages, then
/// the user question.
std::string BuildPrompt(std::string_view question,
                        const std::vector<std::string_view>& passages,
                        const PromptOptions& options = {});

/// Convenience overload resolving passage ids against a corpus.
std::string BuildPrompt(std::string_view question,
                        const std::vector<VectorId>& passage_ids,
                        const std::vector<std::string>& corpus,
                        const PromptOptions& options = {});

}  // namespace proximity
