#include "llm/answer_model.h"

#include <algorithm>

namespace proximity {

ContextJudgment JudgeContext(std::span<const VectorId> served,
                             const Question& question,
                             const Workload& workload) {
  ContextJudgment judgment;
  if (served.empty()) return judgment;

  std::size_t gold_hits = 0;
  std::size_t misleading = 0;
  for (VectorId id : served) {
    if (id < 0 || static_cast<std::size_t>(id) >= workload.gold_for.size()) {
      continue;  // foreign id (e.g. tests feeding synthetic lists)
    }
    const std::int32_t owner = workload.gold_for[static_cast<std::size_t>(id)];
    if (owner < 0) continue;  // neutral distractor
    const bool is_mine =
        std::find(question.gold_ids.begin(), question.gold_ids.end(), id) !=
        question.gold_ids.end();
    if (is_mine) {
      ++gold_hits;
    } else {
      ++misleading;
    }
  }

  // Both fractions are normalized by the size of a full evidence set
  // (min(k, golds)): relevance 1 means the LLM saw complete evidence;
  // misleading 1 means it saw a complete set of plausible-but-wrong
  // evidence for some other question.
  const std::size_t denom =
      std::min(served.size(), question.gold_ids.size());
  if (denom != 0) {
    judgment.relevance = std::min(
        1.0, static_cast<double>(gold_hits) / static_cast<double>(denom));
    judgment.misleading = std::min(
        1.0, static_cast<double>(misleading) / static_cast<double>(denom));
  }
  return judgment;
}

AnswerModelParams MmluAnswerParams() noexcept {
  // §4.3.1: accuracy 47.9-50.2% across the sweep; 48% without RAG; only a
  // mild drop at large τ.
  return AnswerModelParams{
      .p_no_rag = 0.48, .p_full_rag = 0.502, .misleading_penalty = 0.003};
}

AnswerModelParams MedragAnswerParams() noexcept {
  // §4.3.1: 57% without RAG, 88% with RAG, 37% at τ = 10 (misleading
  // context is actively harmful).
  return AnswerModelParams{
      .p_no_rag = 0.57, .p_full_rag = 0.88, .misleading_penalty = 0.28};
}

std::vector<double> MakeDifficultyTable(std::size_t num_questions,
                                        std::uint64_t seed) {
  std::vector<double> table(num_questions);
  for (std::size_t k = 0; k < num_questions; ++k) {
    table[k] = (static_cast<double>(k) + 0.5) /
               static_cast<double>(num_questions);
  }
  Rng rng(SplitMix64(seed ^ 0xd1f5c0de));
  rng.Shuffle(table);
  return table;
}

double AnswerModel::CorrectProbability(
    const ContextJudgment& judgment) const noexcept {
  const double base =
      params_.p_no_rag +
      (params_.p_full_rag - params_.p_no_rag) * judgment.relevance;
  // Misleading evidence only sways the model when the real evidence is
  // incomplete: with full relevance the confusers are drowned out.
  const double penalized =
      base - params_.misleading_penalty * judgment.misleading *
                 (1.0 - judgment.relevance);
  return std::clamp(penalized, 0.02, 0.98);
}

}  // namespace proximity
