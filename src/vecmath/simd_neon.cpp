// AArch64 Advanced-SIMD (NEON) kernels. NEON is architecturally mandatory
// on aarch64, so this translation unit needs no extra compile flags and no
// runtime check beyond being compiled in (see vecmath/CMakeLists.txt).
//
// Shared chunk pattern: 8 floats per iteration into two 4-lane
// accumulators, one 4-wide mop-up into acc0, and a scalar fmaf tail. The
// fused batch kernels replicate this per-row order exactly, making batch
// results bit-identical to the single-pair kernels.
#include <arm_neon.h>

#include <cmath>
#include <cstddef>

#include "vecmath/kernel_table.h"

namespace proximity::detail {

namespace {

inline void PrefetchRow(const float* p) noexcept {
  __builtin_prefetch(p, 0, 3);
  __builtin_prefetch(reinterpret_cast<const char*>(p) + 64, 0, 3);
}

// ------------------------------------------------------- single-pair ----

float L2One(const float* a, const float* b, std::size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.f), acc1 = vdupq_n_f32(0.f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d0, d0);
    const float32x4_t d1 =
        vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  if (i + 4 <= n) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d, d);
    i += 4;
  }
  float tail = 0.f;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail = std::fmaf(d, d, tail);
  }
  return vaddvq_f32(vaddq_f32(acc0, acc1)) + tail;
}

float IpOne(const float* a, const float* b, std::size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.f), acc1 = vdupq_n_f32(0.f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  if (i + 4 <= n) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    i += 4;
  }
  float tail = 0.f;
  for (; i < n; ++i) tail = std::fmaf(a[i], b[i], tail);
  return vaddvq_f32(vaddq_f32(acc0, acc1)) + tail;
}

float SqNormOne(const float* a, std::size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.f), acc1 = vdupq_n_f32(0.f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t v0 = vld1q_f32(a + i);
    acc0 = vfmaq_f32(acc0, v0, v0);
    const float32x4_t v1 = vld1q_f32(a + i + 4);
    acc1 = vfmaq_f32(acc1, v1, v1);
  }
  if (i + 4 <= n) {
    const float32x4_t v = vld1q_f32(a + i);
    acc0 = vfmaq_f32(acc0, v, v);
    i += 4;
  }
  float tail = 0.f;
  for (; i < n; ++i) tail = std::fmaf(a[i], a[i], tail);
  return vaddvq_f32(vaddq_f32(acc0, acc1)) + tail;
}

// ------------------------------------------------- fused batch cores ----
// Four rows in flight sharing the query loads; per-row accumulator order
// matches the single-pair kernels above exactly.

void L2Rows4(const float* q, const float* r0, const float* r1,
             const float* r2, const float* r3, std::size_t n, float* out) {
  float32x4_t a00 = vdupq_n_f32(0.f), a01 = vdupq_n_f32(0.f);
  float32x4_t a10 = vdupq_n_f32(0.f), a11 = vdupq_n_f32(0.f);
  float32x4_t a20 = vdupq_n_f32(0.f), a21 = vdupq_n_f32(0.f);
  float32x4_t a30 = vdupq_n_f32(0.f), a31 = vdupq_n_f32(0.f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t q0 = vld1q_f32(q + i);
    const float32x4_t q1 = vld1q_f32(q + i + 4);
    float32x4_t d;
    d = vsubq_f32(q0, vld1q_f32(r0 + i));
    a00 = vfmaq_f32(a00, d, d);
    d = vsubq_f32(q1, vld1q_f32(r0 + i + 4));
    a01 = vfmaq_f32(a01, d, d);
    d = vsubq_f32(q0, vld1q_f32(r1 + i));
    a10 = vfmaq_f32(a10, d, d);
    d = vsubq_f32(q1, vld1q_f32(r1 + i + 4));
    a11 = vfmaq_f32(a11, d, d);
    d = vsubq_f32(q0, vld1q_f32(r2 + i));
    a20 = vfmaq_f32(a20, d, d);
    d = vsubq_f32(q1, vld1q_f32(r2 + i + 4));
    a21 = vfmaq_f32(a21, d, d);
    d = vsubq_f32(q0, vld1q_f32(r3 + i));
    a30 = vfmaq_f32(a30, d, d);
    d = vsubq_f32(q1, vld1q_f32(r3 + i + 4));
    a31 = vfmaq_f32(a31, d, d);
  }
  if (i + 4 <= n) {
    const float32x4_t q0 = vld1q_f32(q + i);
    float32x4_t d;
    d = vsubq_f32(q0, vld1q_f32(r0 + i));
    a00 = vfmaq_f32(a00, d, d);
    d = vsubq_f32(q0, vld1q_f32(r1 + i));
    a10 = vfmaq_f32(a10, d, d);
    d = vsubq_f32(q0, vld1q_f32(r2 + i));
    a20 = vfmaq_f32(a20, d, d);
    d = vsubq_f32(q0, vld1q_f32(r3 + i));
    a30 = vfmaq_f32(a30, d, d);
    i += 4;
  }
  float t0 = 0.f, t1 = 0.f, t2 = 0.f, t3 = 0.f;
  for (; i < n; ++i) {
    const float qa = q[i];
    float d = qa - r0[i];
    t0 = std::fmaf(d, d, t0);
    d = qa - r1[i];
    t1 = std::fmaf(d, d, t1);
    d = qa - r2[i];
    t2 = std::fmaf(d, d, t2);
    d = qa - r3[i];
    t3 = std::fmaf(d, d, t3);
  }
  out[0] = vaddvq_f32(vaddq_f32(a00, a01)) + t0;
  out[1] = vaddvq_f32(vaddq_f32(a10, a11)) + t1;
  out[2] = vaddvq_f32(vaddq_f32(a20, a21)) + t2;
  out[3] = vaddvq_f32(vaddq_f32(a30, a31)) + t3;
}

void IpRows4(const float* q, const float* r0, const float* r1,
             const float* r2, const float* r3, std::size_t n, float* out) {
  float32x4_t a00 = vdupq_n_f32(0.f), a01 = vdupq_n_f32(0.f);
  float32x4_t a10 = vdupq_n_f32(0.f), a11 = vdupq_n_f32(0.f);
  float32x4_t a20 = vdupq_n_f32(0.f), a21 = vdupq_n_f32(0.f);
  float32x4_t a30 = vdupq_n_f32(0.f), a31 = vdupq_n_f32(0.f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t q0 = vld1q_f32(q + i);
    const float32x4_t q1 = vld1q_f32(q + i + 4);
    a00 = vfmaq_f32(a00, q0, vld1q_f32(r0 + i));
    a01 = vfmaq_f32(a01, q1, vld1q_f32(r0 + i + 4));
    a10 = vfmaq_f32(a10, q0, vld1q_f32(r1 + i));
    a11 = vfmaq_f32(a11, q1, vld1q_f32(r1 + i + 4));
    a20 = vfmaq_f32(a20, q0, vld1q_f32(r2 + i));
    a21 = vfmaq_f32(a21, q1, vld1q_f32(r2 + i + 4));
    a30 = vfmaq_f32(a30, q0, vld1q_f32(r3 + i));
    a31 = vfmaq_f32(a31, q1, vld1q_f32(r3 + i + 4));
  }
  if (i + 4 <= n) {
    const float32x4_t q0 = vld1q_f32(q + i);
    a00 = vfmaq_f32(a00, q0, vld1q_f32(r0 + i));
    a10 = vfmaq_f32(a10, q0, vld1q_f32(r1 + i));
    a20 = vfmaq_f32(a20, q0, vld1q_f32(r2 + i));
    a30 = vfmaq_f32(a30, q0, vld1q_f32(r3 + i));
    i += 4;
  }
  float t0 = 0.f, t1 = 0.f, t2 = 0.f, t3 = 0.f;
  for (; i < n; ++i) {
    const float qa = q[i];
    t0 = std::fmaf(qa, r0[i], t0);
    t1 = std::fmaf(qa, r1[i], t1);
    t2 = std::fmaf(qa, r2[i], t2);
    t3 = std::fmaf(qa, r3[i], t3);
  }
  out[0] = vaddvq_f32(vaddq_f32(a00, a01)) + t0;
  out[1] = vaddvq_f32(vaddq_f32(a10, a11)) + t1;
  out[2] = vaddvq_f32(vaddq_f32(a20, a21)) + t2;
  out[3] = vaddvq_f32(vaddq_f32(a30, a31)) + t3;
}

// Two rows in flight, accumulating dot and row-norm together (one pass per
// row). dot order matches IpOne; norm order matches SqNormOne.
void CosRows2(const float* q, const float* r0, const float* r1,
              std::size_t n, float* dot_out, float* norm_out) {
  float32x4_t d00 = vdupq_n_f32(0.f), d01 = vdupq_n_f32(0.f);
  float32x4_t d10 = vdupq_n_f32(0.f), d11 = vdupq_n_f32(0.f);
  float32x4_t n00 = vdupq_n_f32(0.f), n01 = vdupq_n_f32(0.f);
  float32x4_t n10 = vdupq_n_f32(0.f), n11 = vdupq_n_f32(0.f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t q0 = vld1q_f32(q + i);
    const float32x4_t q1 = vld1q_f32(q + i + 4);
    const float32x4_t r0c0 = vld1q_f32(r0 + i);
    d00 = vfmaq_f32(d00, q0, r0c0);
    n00 = vfmaq_f32(n00, r0c0, r0c0);
    const float32x4_t r0c1 = vld1q_f32(r0 + i + 4);
    d01 = vfmaq_f32(d01, q1, r0c1);
    n01 = vfmaq_f32(n01, r0c1, r0c1);
    const float32x4_t r1c0 = vld1q_f32(r1 + i);
    d10 = vfmaq_f32(d10, q0, r1c0);
    n10 = vfmaq_f32(n10, r1c0, r1c0);
    const float32x4_t r1c1 = vld1q_f32(r1 + i + 4);
    d11 = vfmaq_f32(d11, q1, r1c1);
    n11 = vfmaq_f32(n11, r1c1, r1c1);
  }
  if (i + 4 <= n) {
    const float32x4_t q0 = vld1q_f32(q + i);
    const float32x4_t r0c = vld1q_f32(r0 + i);
    d00 = vfmaq_f32(d00, q0, r0c);
    n00 = vfmaq_f32(n00, r0c, r0c);
    const float32x4_t r1c = vld1q_f32(r1 + i);
    d10 = vfmaq_f32(d10, q0, r1c);
    n10 = vfmaq_f32(n10, r1c, r1c);
    i += 4;
  }
  float td0 = 0.f, td1 = 0.f, tn0 = 0.f, tn1 = 0.f;
  for (; i < n; ++i) {
    const float qa = q[i];
    const float x0 = r0[i];
    td0 = std::fmaf(qa, x0, td0);
    tn0 = std::fmaf(x0, x0, tn0);
    const float x1 = r1[i];
    td1 = std::fmaf(qa, x1, td1);
    tn1 = std::fmaf(x1, x1, tn1);
  }
  dot_out[0] = vaddvq_f32(vaddq_f32(d00, d01)) + td0;
  dot_out[1] = vaddvq_f32(vaddq_f32(d10, d11)) + td1;
  norm_out[0] = vaddvq_f32(vaddq_f32(n00, n01)) + tn0;
  norm_out[1] = vaddvq_f32(vaddq_f32(n10, n11)) + tn1;
}

// ----------------------------------------------------- batch drivers ----

void BatchL2(const float* q, const float* base, std::size_t count,
             std::size_t dim, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    if (r + 8 <= count) PrefetchRow(base + (r + 4) * dim);
    L2Rows4(q, base + r * dim, base + (r + 1) * dim, base + (r + 2) * dim,
            base + (r + 3) * dim, dim, out + r);
  }
  for (; r < count; ++r) out[r] = L2One(q, base + r * dim, dim);
}

void BatchIp(const float* q, const float* base, std::size_t count,
             std::size_t dim, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    if (r + 8 <= count) PrefetchRow(base + (r + 4) * dim);
    IpRows4(q, base + r * dim, base + (r + 1) * dim, base + (r + 2) * dim,
            base + (r + 3) * dim, dim, out + r);
  }
  for (; r < count; ++r) out[r] = IpOne(q, base + r * dim, dim);
}

void BatchCos(const float* q, const float* base, std::size_t count,
              std::size_t dim, float* out) {
  const float qnorm = internal::SqrtNonNeg(SqNormOne(q, dim));
  std::size_t r = 0;
  float dots[2], norms[2];
  for (; r + 2 <= count; r += 2) {
    if (r + 4 <= count) PrefetchRow(base + (r + 2) * dim);
    CosRows2(q, base + r * dim, base + (r + 1) * dim, dim, dots, norms);
    out[r] = internal::FinishCosine(dots[0], qnorm, norms[0]);
    out[r + 1] = internal::FinishCosine(dots[1], qnorm, norms[1]);
  }
  for (; r < count; ++r) {
    const float* row = base + r * dim;
    out[r] = internal::FinishCosine(IpOne(q, row, dim), qnorm,
                                    SqNormOne(row, dim));
  }
}

}  // namespace

const KernelTable* NeonTable() noexcept {
  static const KernelTable table = {
      "neon", L2One, IpOne, SqNormOne, BatchL2, BatchIp, BatchCos,
  };
  return &table;
}

}  // namespace proximity::detail
