#include "vecmath/ops.h"

#include <cassert>
#include <cmath>

#include "vecmath/kernels.h"

namespace proximity {

void NormalizeL2(std::span<float> v) noexcept {
  const float norm2 = SquaredNorm(v);
  if (norm2 <= 0.f) return;
  const float inv = 1.f / std::sqrt(norm2);
  for (auto& x : v) x *= inv;
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(std::span<float> v, float alpha) noexcept {
  for (auto& x : v) x *= alpha;
}

void MeanOf(std::span<const std::span<const float>> rows,
            std::span<float> out) noexcept {
  assert(!rows.empty());
  for (auto& x : out) x = 0.f;
  for (const auto& row : rows) {
    assert(row.size() == out.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += row[i];
  }
  const float inv = 1.f / static_cast<float>(rows.size());
  for (auto& x : out) x *= inv;
}

std::vector<float> ToVector(std::span<const float> v) {
  return {v.begin(), v.end()};
}

}  // namespace proximity
