// Runtime kernel dispatch: picks the best KernelTable once at startup
// (CPUID on x86, compile-time on aarch64, PROXIMITY_SIMD env override) and
// implements the public kernels.h entry points on top of it.
#include <atomic>
#include <cassert>
#include <cstdlib>

#include "vecmath/cpu_features.h"
#include "vecmath/kernel_table.h"
#include "vecmath/kernels.h"

namespace proximity {

namespace detail {

// Fallback definitions for ISA tables whose translation units are not part
// of this build (PROXIMITY_NATIVE_SIMD=OFF or foreign architecture).
#if !defined(PROXIMITY_HAVE_AVX2)
const KernelTable* Avx2Table() noexcept { return nullptr; }
#endif
#if !defined(PROXIMITY_HAVE_AVX512)
const KernelTable* Avx512Table() noexcept { return nullptr; }
#endif
#if !defined(PROXIMITY_HAVE_NEON)
const KernelTable* NeonTable() noexcept { return nullptr; }
#endif

namespace {

const KernelTable* CompiledTableFor(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kPortable:
      return &kPortableTable;
    case SimdLevel::kNeon:
      return NeonTable();
    case SimdLevel::kAvx2:
      return Avx2Table();
    case SimdLevel::kAvx512:
      return Avx512Table();
  }
  return nullptr;
}

bool CpuSupports(SimdLevel level) noexcept {
  static const CpuFeatures features = DetectCpuFeatures();
  switch (level) {
    case SimdLevel::kPortable:
      return true;
    case SimdLevel::kNeon:
      return features.neon;
    case SimdLevel::kAvx2:
      return features.avx2 && features.fma;
    case SimdLevel::kAvx512:
      return features.avx512f;
  }
  return false;
}

SimdLevel BestLevel() noexcept {
  for (SimdLevel level :
       {SimdLevel::kAvx512, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelSupported(level)) return level;
  }
  return SimdLevel::kPortable;
}

SimdLevel StartupLevel() noexcept {
  if (const char* env = std::getenv("PROXIMITY_SIMD")) {
    const std::string_view want(env);
    for (SimdLevel level : {SimdLevel::kPortable, SimdLevel::kNeon,
                            SimdLevel::kAvx2, SimdLevel::kAvx512}) {
      if (want == SimdLevelName(level) && SimdLevelSupported(level)) {
        return level;
      }
    }
    // Unknown or unsupported override: fall through to auto-detection.
  }
  return BestLevel();
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* Active() noexcept {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  // Benign race: concurrent first calls resolve to the same table.
  table = CompiledTableFor(StartupLevel());
  g_active.store(table, std::memory_order_release);
  return table;
}

SimdLevel LevelOf(const KernelTable* table) noexcept {
  if (table == Avx512Table()) return SimdLevel::kAvx512;
  if (table == Avx2Table()) return SimdLevel::kAvx2;
  if (table == NeonTable()) return SimdLevel::kNeon;
  return SimdLevel::kPortable;
}

}  // namespace
}  // namespace detail

std::string_view SimdLevelName(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kPortable:
      return "portable";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

bool SimdLevelSupported(SimdLevel level) noexcept {
  return detail::CompiledTableFor(level) != nullptr &&
         detail::CpuSupports(level);
}

SimdLevel ActiveSimdLevel() noexcept {
  return detail::LevelOf(detail::Active());
}

bool SetActiveSimdLevel(SimdLevel level) noexcept {
  if (!SimdLevelSupported(level)) return false;
  detail::g_active.store(detail::CompiledTableFor(level),
                         std::memory_order_release);
  return true;
}

float L2SquaredDistance(std::span<const float> a,
                        std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return detail::Active()->l2(a.data(), b.data(), a.size());
}

float InnerProduct(std::span<const float> a,
                   std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return detail::Active()->ip(a.data(), b.data(), a.size());
}

float SquaredNorm(std::span<const float> a) noexcept {
  return detail::Active()->sqnorm(a.data(), a.size());
}

float CosineDistance(std::span<const float> a,
                     std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  const detail::KernelTable* t = detail::Active();
  const float dot = t->ip(a.data(), b.data(), a.size());
  const float na = t->sqnorm(a.data(), a.size());
  const float nb = t->sqnorm(b.data(), b.size());
  return detail::internal::FinishCosine(dot, detail::internal::SqrtNonNeg(na),
                                        nb);
}

float Distance(Metric metric, std::span<const float> a,
               std::span<const float> b) noexcept {
  switch (metric) {
    case Metric::kL2:
      return L2SquaredDistance(a, b);
    case Metric::kInnerProduct:
      return -InnerProduct(a, b);
    case Metric::kCosine:
      return CosineDistance(a, b);
  }
  return 0.f;
}

void BatchDistance(Metric metric, std::span<const float> query,
                   const float* base, std::size_t count, std::size_t dim,
                   float* out) noexcept {
  assert(query.size() == dim);
  const detail::KernelTable* t = detail::Active();
  switch (metric) {
    case Metric::kL2:
      t->batch_l2(query.data(), base, count, dim, out);
      return;
    case Metric::kInnerProduct:
      t->batch_ip(query.data(), base, count, dim, out);
      for (std::size_t r = 0; r < count; ++r) out[r] = -out[r];
      return;
    case Metric::kCosine:
      t->batch_cos(query.data(), base, count, dim, out);
      return;
  }
}

void BatchDistanceWithNorms(Metric metric, std::span<const float> query,
                            const float* base, const float* row_norms,
                            std::size_t count, std::size_t dim,
                            float* out) noexcept {
  assert(query.size() == dim);
  if (row_norms == nullptr) {
    BatchDistance(metric, query, base, count, dim, out);
    return;
  }
  const detail::KernelTable* t = detail::Active();
  switch (metric) {
    case Metric::kL2: {
      // ||q-b||^2 = ||q||^2 + ||b||^2 - 2<q,b>; clamp tiny negatives from
      // cancellation to keep distances in the metric's range.
      t->batch_ip(query.data(), base, count, dim, out);
      const float qn = t->sqnorm(query.data(), dim);
      for (std::size_t r = 0; r < count; ++r) {
        const float d = qn + row_norms[r] - 2.f * out[r];
        out[r] = d > 0.f ? d : 0.f;
      }
      return;
    }
    case Metric::kInnerProduct:
      t->batch_ip(query.data(), base, count, dim, out);
      for (std::size_t r = 0; r < count; ++r) out[r] = -out[r];
      return;
    case Metric::kCosine: {
      // Pre-normalized cosine: one fused inner product per row, norms from
      // the cache. Bit-identical to CosineDistance() because the stored
      // norms come from the same sqnorm kernel.
      t->batch_ip(query.data(), base, count, dim, out);
      const float qnorm =
          detail::internal::SqrtNonNeg(t->sqnorm(query.data(), dim));
      for (std::size_t r = 0; r < count; ++r) {
        out[r] = detail::internal::FinishCosine(out[r], qnorm, row_norms[r]);
      }
      return;
    }
  }
}

void GatherDistance(Metric metric, std::span<const float> query,
                    const float* base, std::size_t dim,
                    const std::uint32_t* ids, std::size_t count,
                    float* out) noexcept {
  assert(query.size() == dim);
  const detail::KernelTable* t = detail::Active();
  const float* q = query.data();
  // Hoist the query norm for cosine; rows still need their own norm pass.
  float qnorm = 0.f;
  if (metric == Metric::kCosine) {
    qnorm = detail::internal::SqrtNonNeg(t->sqnorm(q, dim));
  }
  for (std::size_t j = 0; j < count; ++j) {
    if (j + 1 < count) {
      const char* next =
          reinterpret_cast<const char*>(base + ids[j + 1] * dim);
      __builtin_prefetch(next, 0, 3);
      __builtin_prefetch(next + 64, 0, 3);
      __builtin_prefetch(next + 128, 0, 3);
    }
    const float* row = base + static_cast<std::size_t>(ids[j]) * dim;
    switch (metric) {
      case Metric::kL2:
        out[j] = t->l2(q, row, dim);
        break;
      case Metric::kInnerProduct:
        out[j] = -t->ip(q, row, dim);
        break;
      case Metric::kCosine:
        out[j] = detail::internal::FinishCosine(t->ip(q, row, dim), qnorm,
                                                t->sqnorm(row, dim));
        break;
    }
  }
}

}  // namespace proximity
