// Elementary vector operations shared by the embedder, k-means, and tests.
#pragma once

#include <span>
#include <vector>

namespace proximity {

/// Scales `v` to unit L2 norm in place; leaves zero vectors untouched.
void NormalizeL2(std::span<float> v) noexcept;

/// y += alpha * x
void Axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// v *= alpha
void Scale(std::span<float> v, float alpha) noexcept;

/// out = mean of the given rows (each a span of equal length). rows must be
/// non-empty and out must match their dimension.
void MeanOf(std::span<const std::span<const float>> rows,
            std::span<float> out) noexcept;

/// Returns a copy of `v` as a vector<float>.
std::vector<float> ToVector(std::span<const float> v);

}  // namespace proximity
